/**
 * @file
 * Example: offline dI/dt characterization of a workload
 * (paper Section 4 end to end).
 *
 * Given a benchmark name, this program:
 *   1. runs it on the Table-1 machine and collects the current trace,
 *   2. classifies execution windows with the chi-square Gaussian test,
 *   3. decomposes the trace into wavelet subbands and reports where
 *      the current energy lives relative to the supply resonance,
 *   4. estimates voltage-emergency exposure with the calibrated
 *      wavelet variance model and compares it against the measured
 *      (convolved) voltage.
 *
 * Usage: characterize_workload [--benchmark mgrid] [--impedance 1.5]
 */

#include <cstdio>
#include <iostream>

#include "didt/didt.hh"

int
main(int argc, char **argv)
{
    using namespace didt;

    Options opts;
    opts.declare("benchmark", "mgrid", "SPEC benchmark to characterize");
    opts.declare("instructions", "120000", "dynamic instructions");
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    const BenchmarkProfile &bench = profileByName(opts.get("benchmark"));
    const SupplyNetwork network =
        setup.makeNetwork(opts.getDouble("impedance"));

    std::printf("== %s on the Table-1 machine, %sx target impedance ==\n\n",
                bench.name.c_str(), opts.get("impedance").c_str());

    // 1. Current trace.
    const CurrentTrace trace = benchmarkCurrentTrace(
        setup, bench,
        static_cast<std::uint64_t>(opts.getInt("instructions")));
    RunningStats istats;
    for (Amp amp : trace)
        istats.push(amp);
    std::printf("current: mean %.1f A, sigma %.1f A, range [%.1f, %.1f] A "
                "over %zu cycles\n\n",
                istats.mean(), istats.stddev(), istats.min(), istats.max(),
                trace.size());

    // 2. Gaussian window classification (paper Figures 6/12).
    Rng rng(1);
    for (std::size_t window : {32u, 64u, 128u}) {
        const auto summary = classifyWindows(trace, window, 300, rng);
        std::printf("%3zu-cycle windows: %.0f%% Gaussian; non-Gaussian "
                    "window variance %.1f A^2 (overall %.1f A^2)\n",
                    window, 100.0 * summary.acceptanceRate(),
                    summary.meanVarianceNonGaussian,
                    summary.overallVariance);
    }

    // 3. Subband energy map (paper Section 4.1 step 2).
    const Dwt dwt(WaveletBasis::haar());
    std::vector<double> scale_var(8, 0.0);
    std::size_t windows = 0;
    const std::span<const double> samples(trace.data(), trace.size());
    for (std::size_t off = 0; off + 256 <= trace.size(); off += 256) {
        const auto stats =
            computeScaleStats(dwt.forward(samples.subspan(off, 256), 8));
        for (std::size_t j = 0; j < 8; ++j)
            scale_var[j] += stats.subbandVariance[j];
        ++windows;
    }
    std::printf("\nper-scale current variance (A^2; resonance at %.0f "
                "MHz):\n",
                network.resonantFrequency() / 1e6);
    double max_var = 0.0;
    for (double v : scale_var)
        max_var = std::max(max_var, v / windows);
    for (std::size_t j = 0; j < 8; ++j) {
        const SubbandFrequency band =
            detailBandFrequency(j, setup.proc.clockHz);
        const double v = scale_var[j] / windows;
        std::printf("  level %zu [%4.0f-%4.0f MHz]  %7.1f  %s\n", j,
                    band.lowHz / 1e6, band.highHz / 1e6, v,
                    asciiBar(v, max_var, 30).c_str());
    }

    // 4. Emergency estimation vs measurement (paper Figure 9).
    const VoltageVarianceModel model = makeCalibratedModel(setup, network);
    const EmergencyProfile profile =
        profileTrace(trace, network, model, 0.97, 1.03);
    std::printf("\nvoltage-emergency exposure (below 0.97 V):\n"
                "  wavelet estimate : %6.2f%% of cycles\n"
                "  measured         : %6.2f%% of cycles\n"
                "  est. voltage var : %.3e V^2 (measured %.3e V^2)\n",
                100.0 * profile.estimatedBelow,
                100.0 * profile.measuredBelow, profile.estimatedVariance,
                profile.measuredVariance);

    const bool problematic = profile.estimatedBelow > 0.03;
    std::printf("\nverdict: %s is %s for dI/dt at this impedance "
                "(threshold: 3%% of cycles below 0.97 V)\n",
                bench.name.c_str(),
                problematic ? "PROBLEMATIC" : "benign");
    return 0;
}
