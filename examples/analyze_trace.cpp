/**
 * @file
 * Example: analyze an external current trace.
 *
 * The characterization pipeline only needs a per-cycle current
 * waveform, so traces from any source — this library's simulator, a
 * Wattch run, or silicon measurement — can be analyzed. This tool
 * reads a trace file (text: one amperage per line, '#' comments;
 * or the binary format via --binary), runs the wavelet
 * characterization against a supply network, and prints the verdict.
 *
 * With --demo it first writes a demonstration trace (synthetic mgrid)
 * so the example is runnable out of the box:
 *
 *   ./analyze_trace --demo
 *   ./analyze_trace --trace my_wattch_trace.txt --resonant-mhz 100
 */

#include <cstdio>

#include "didt/didt.hh"

int
main(int argc, char **argv)
{
    using namespace didt;

    Options opts;
    opts.declare("trace", "demo_trace.txt", "trace file to analyze");
    opts.declare("binary", "false", "trace file is in binary format");
    opts.declare("demo", "false",
                 "first generate a demo trace at the given path");
    opts.declare("clock-ghz", "3.0", "clock of the traced machine");
    opts.declare("resonant-mhz", "125", "supply resonant frequency");
    opts.declare("q", "5.0", "supply quality factor");
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("threshold", "0.97", "low voltage of interest");
    opts.parse(argc, argv);

    const std::string path = opts.get("trace");
    if (opts.getBool("demo")) {
        const ExperimentSetup setup = makeStandardSetup();
        const CurrentTrace demo =
            benchmarkCurrentTrace(setup, profileByName("mgrid"), 100000);
        writeTraceText(path, demo,
                       "demo trace: synthetic mgrid on the Table-1 "
                       "machine");
        std::printf("wrote %zu-cycle demo trace to %s\n\n", demo.size(),
                    path.c_str());
    }

    const CurrentTrace trace = opts.getBool("binary")
                                   ? readTraceBinary(path)
                                   : readTraceText(path);
    if (trace.size() < 4096)
        didt_fatal("trace too short for analysis: ", trace.size(),
                   " cycles");
    RunningStats stats;
    for (Amp amp : trace)
        stats.push(amp);
    std::printf("trace: %zu cycles, mean %.1f A, sigma %.1f A\n",
                trace.size(), stats.mean(), stats.stddev());

    // Build a supply sized to this trace: calibrate target impedance
    // so that the trace's own worst stretch at 100% just fits the
    // +/-5% band (an external trace arrives without a machine model,
    // so its own dynamics define the worst case).
    SupplyNetworkConfig supply;
    supply.clockHz = opts.getDouble("clock-ghz") * 1e9;
    supply.resonantHz = opts.getDouble("resonant-mhz") * 1e6;
    supply.qualityFactor = opts.getDouble("q");
    supply = calibrateTargetImpedance(supply, trace);
    supply.impedanceScale = opts.getDouble("impedance");
    const SupplyNetwork network(supply);
    std::printf("supply: f0 %.0f MHz, Q %.1f, R(100%%) %.3e ohm, "
                "analyzing at %.0f%% impedance\n\n",
                network.resonantFrequency() / 1e6, supply.qualityFactor,
                supply.dcResistance, 100.0 * supply.impedanceScale);

    // Calibrate the estimator on the trace's own leading quarter and
    // evaluate on the rest (honest split for external traces).
    const std::size_t split = trace.size() / 4;
    std::vector<CurrentTrace> training{
        CurrentTrace(trace.begin(), trace.begin() + split)};
    VoltageVarianceModel model(network);
    model.calibrateOnTraces(training);

    const CurrentTrace rest(trace.begin() + split, trace.end());
    const Volt threshold = opts.getDouble("threshold");
    const EmergencyProfile profile =
        profileTrace(rest, network, model, threshold, 1.03);
    std::printf("wavelet estimate: %.2f%% of cycles below %.2f V "
                "(measured %.2f%%)\n",
                100.0 * profile.estimatedBelow, threshold,
                100.0 * profile.measuredBelow);
    std::printf("verdict: %s\n", profile.estimatedBelow > 0.03
                                     ? "PROBLEMATIC for dI/dt"
                                     : "benign at this impedance");
    return 0;
}
