/**
 * @file
 * Example: power-supply design exploration with the dI/dt toolkit.
 *
 * A supply designer's question: how much can target impedance be
 * relaxed (saving package cost) if the microarchitecture provides
 * wavelet-based dI/dt control? This example sweeps the impedance
 * scale, reporting for each point whether the machine is safe
 * uncontrolled, and the overhead of making it safe with control —
 * reproducing the paper's framing that a 150% target-impedance supply
 * plus control trades a 33% dI/dt reduction for <1% performance.
 *
 * Usage: design_supply [--benchmark galgel] [--instructions 60000]
 */

#include <cstdio>
#include <iostream>

#include "didt/didt.hh"

int
main(int argc, char **argv)
{
    using namespace didt;

    Options opts;
    opts.declare("benchmark", "galgel", "stress benchmark for the sweep");
    opts.declare("instructions", "60000", "dynamic instructions");
    opts.declare("terms", "13", "wavelet convolution terms");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    const BenchmarkProfile &bench = profileByName(opts.get("benchmark"));

    std::printf("== supply design sweep: %s, wavelet control with %lld "
                "terms ==\n\n",
                bench.name.c_str(), opts.getInt("terms"));
    std::printf("100%% target impedance R = %.3e ohm (calibrated so the "
                "dI/dt virus just meets +/-5%%)\n\n",
                setup.supplyBase.dcResistance);

    Table table({"impedance_pct", "didt_reduction_pct", "unctl_faults",
                 "ctl_faults", "ctl_slowdown_pct", "ctl_tolerance_mV"});
    for (double scale : {1.0, 1.25, 1.5, 1.75, 2.0}) {
        const SupplyNetwork network = setup.makeNetwork(scale);
        CosimConfig cfg;
        cfg.instructions =
            static_cast<std::uint64_t>(opts.getInt("instructions"));
        cfg.waveletTerms =
            static_cast<std::size_t>(opts.getInt("terms"));
        // Conservative tolerance grows with supply weakness.
        cfg.control.tolerance = 0.010 + 0.010 * (scale - 1.0) * 2.0;

        cfg.scheme = ControlScheme::None;
        const CosimResult base = runClosedLoop(bench, setup.proc,
                                               setup.power, network, cfg);
        cfg.scheme = ControlScheme::Wavelet;
        const CosimResult ctl = runClosedLoop(bench, setup.proc,
                                              setup.power, network, cfg);

        table.newRow();
        table.add(100.0 * scale, 0);
        // "If microarchitectural techniques can eliminate voltage
        // faults on a system with 150% target impedance, we say we
        // have reduced dI/dt by 33%" (paper Section 3.1).
        table.add(100.0 * (1.0 - 1.0 / scale), 0);
        table.add(static_cast<long long>(base.lowFaults + base.highFaults));
        table.add(static_cast<long long>(ctl.lowFaults + ctl.highFaults));
        table.add(100.0 * slowdown(ctl, base), 3);
        table.add(1000.0 * cfg.control.tolerance, 0);
    }
    table.printText(std::cout);

    std::printf("\nreading: a row with 0 controlled faults means that "
                "supply, plus wavelet control,\nis a viable design point; "
                "the slowdown column is the price paid.\n");
    return 0;
}
