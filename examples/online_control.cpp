/**
 * @file
 * Example: closed-loop wavelet dI/dt control (paper Section 5).
 *
 * Runs a benchmark on a weakened supply (150% target impedance by
 * default), first uncontrolled — counting the voltage faults that
 * would crash a real machine — then under each control scheme:
 * the paper's wavelet-convolution monitor, the full time-domain
 * convolution monitor, a delayed analog voltage sensor, and pipeline
 * damping. Reports faults eliminated, slowdown, and control activity.
 *
 * Usage: online_control [--benchmark mgrid] [--impedance 1.5]
 *                       [--tolerance-mv 25] [--terms 13]
 */

#include <cstdio>

#include "didt/didt.hh"

int
main(int argc, char **argv)
{
    using namespace didt;

    Options opts;
    opts.declare("benchmark", "mgrid", "SPEC benchmark to control");
    opts.declare("instructions", "80000", "dynamic instructions");
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("tolerance-mv", "25", "control tolerance in millivolts");
    opts.declare("terms", "13", "wavelet convolution terms");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    const BenchmarkProfile &bench = profileByName(opts.get("benchmark"));
    const SupplyNetwork network =
        setup.makeNetwork(opts.getDouble("impedance"));

    CosimConfig cfg;
    cfg.instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    cfg.control.tolerance = opts.getDouble("tolerance-mv") / 1000.0;
    cfg.waveletTerms = static_cast<std::size_t>(opts.getInt("terms"));

    std::printf("== %s at %sx target impedance, control points "
                "[%.3f, %.3f] V ==\n\n",
                bench.name.c_str(), opts.get("impedance").c_str(),
                cfg.control.lowControl(), cfg.control.highControl());

    cfg.scheme = ControlScheme::None;
    const CosimResult base =
        runClosedLoop(bench, setup.proc, setup.power, network, cfg);
    std::printf("%-18s %8llu cycles, %5llu low faults, %4llu high "
                "faults, min %.4f V\n",
                "uncontrolled", static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.lowFaults),
                static_cast<unsigned long long>(base.highFaults),
                base.minVoltage);

    for (ControlScheme scheme :
         {ControlScheme::Wavelet, ControlScheme::FullConvolution,
          ControlScheme::AnalogSensor, ControlScheme::PipelineDamping}) {
        cfg.scheme = scheme;
        const CosimResult r =
            runClosedLoop(bench, setup.proc, setup.power, network, cfg);
        std::printf("%-18s %8llu cycles, %5llu low faults, %4llu high "
                    "faults, min %.4f V, slowdown %6.3f%%, %6llu control "
                    "cycles\n",
                    r.scheme.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.lowFaults),
                    static_cast<unsigned long long>(r.highFaults),
                    r.minVoltage, 100.0 * slowdown(r, base),
                    static_cast<unsigned long long>(r.controlCycles));
    }

    std::printf("\nhardware cost per cycle: wavelet monitor %lld terms vs "
                "%zu taps for full convolution\n",
                opts.getInt("terms"),
                FullConvolutionMonitor(network).termCount());
    return 0;
}
