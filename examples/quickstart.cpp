/**
 * @file
 * Quickstart: the full wavelet dI/dt workflow in one program.
 *
 *  1. Build the paper's Table-1 processor and run a synthetic SPEC
 *     benchmark, collecting its per-cycle current trace.
 *  2. Calibrate the second-order supply network to 100% target
 *     impedance and inspect its resonance.
 *  3. Wavelet-decompose a 256-cycle window (paper Figures 3-4).
 *  4. Characterize voltage-emergency exposure offline with the wavelet
 *     variance model (paper Section 4).
 *  5. Close the loop with the wavelet-convolution dI/dt controller and
 *     measure its overhead (paper Section 5).
 */

#include <cstdio>
#include <iostream>

#include "didt/didt.hh"

int
main()
{
    using namespace didt;

    // ---- 1. Machine + workload -----------------------------------------
    std::cout << "== Processor configuration (paper Table 1) ==\n";
    ExperimentSetup setup = makeStandardSetup();
    setup.proc.print(std::cout);
    std::printf("idle current %.1f A, peak current %.1f A\n\n",
                setup.idleCurrent, setup.peakCurrent);

    const BenchmarkProfile &bench = profileByName("gzip");
    const CurrentTrace trace =
        benchmarkCurrentTrace(setup, bench, 120000);
    RunningStats istats;
    for (double amp : trace)
        istats.push(amp);
    std::printf("gzip: %zu cycles, mean current %.1f A, sigma %.1f A\n\n",
                trace.size(), istats.mean(), istats.stddev());

    // ---- 2. Supply network ----------------------------------------------
    const SupplyNetwork network = setup.makeNetwork(1.5); // 150% impedance
    std::printf("supply: R=%.2e ohm, L=%.2e H, C=%.2e F, f0=%.1f MHz\n",
                network.resistance(), network.inductance(),
                network.capacitance(),
                network.resonantFrequency() / 1e6);
    std::printf("impedance at f0: %.2e ohm (dc %.2e)\n\n",
                network.impedanceAt(network.resonantFrequency()),
                network.impedanceAt(1.0));

    // ---- 3. Wavelet analysis of one window ------------------------------
    const Dwt dwt(WaveletBasis::haar());
    std::vector<double> window(trace.begin() + 20000,
                               trace.begin() + 20000 + 256);
    const WaveletDecomposition dec = dwt.forward(window, 8);
    std::cout << "== Scalogram of a 256-cycle gzip window (Figure 4) ==\n";
    Scalogram(dec).renderAscii(std::cout, 96);
    std::cout << '\n';

    // ---- 4. Offline emergency characterization --------------------------
    const VoltageVarianceModel model = makeCalibratedModel(setup, network);
    const EmergencyProfile profile =
        profileTrace(trace, network, model, 0.97, 1.03);
    std::printf("offline estimate: %.2f%% of cycles below 0.97 V "
                "(measured %.2f%%)\n\n",
                100.0 * profile.estimatedBelow,
                100.0 * profile.measuredBelow);

    // ---- 5. Online wavelet control ---------------------------------------
    CosimConfig cosim;
    cosim.instructions = 60000;
    cosim.scheme = ControlScheme::None;
    const CosimResult baseline =
        runClosedLoop(bench, setup.proc, setup.power, network, cosim);
    cosim.scheme = ControlScheme::Wavelet;
    cosim.waveletTerms = 13;
    cosim.control.tolerance = 0.020;
    const CosimResult controlled =
        runClosedLoop(bench, setup.proc, setup.power, network, cosim);
    std::printf("uncontrolled: %llu low-voltage faults, min %.4f V\n",
                static_cast<unsigned long long>(baseline.lowFaults),
                baseline.minVoltage);
    std::printf("wavelet ctl : %llu faults, min %.4f V, slowdown %.3f%%, "
                "%llu control cycles\n",
                static_cast<unsigned long long>(controlled.lowFaults),
                controlled.minVoltage,
                100.0 * slowdown(controlled, baseline),
                static_cast<unsigned long long>(controlled.controlCycles));
    return 0;
}
