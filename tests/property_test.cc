/**
 * @file
 * Property tests that cross-check core components against independent
 * reference implementations: the cache against a brute-force LRU
 * model, the supply network's biquad recursion against direct
 * convolution with the impulse response, the DWT against a naive
 * matrix transform, and the workload generator's statistics across all
 * 26 SPEC profiles.
 */

#include <algorithm>
#include <cmath>
#include <list>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "power/convolution.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "sim/cache.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "wavelet/basis.hh"
#include "wavelet/dwt.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

// ---------------------------------------------------------------------------
// Cache vs reference LRU model
// ---------------------------------------------------------------------------

/** Brute-force set-associative LRU cache. */
class ReferenceCache
{
  public:
    ReferenceCache(std::size_t sets, std::size_t ways,
                   std::size_t line_bytes)
        : sets_(sets), ways_(ways), lineBytes_(line_bytes),
          contents_(sets)
    {
    }

    bool
    access(std::uint64_t address)
    {
        const std::uint64_t line = address / lineBytes_;
        const std::size_t set = line % sets_;
        auto &mru = contents_[set]; // front = most recent
        const auto it = std::find(mru.begin(), mru.end(), line);
        if (it != mru.end()) {
            mru.erase(it);
            mru.push_front(line);
            return true;
        }
        mru.push_front(line);
        if (mru.size() > ways_)
            mru.pop_back();
        return false;
    }

  private:
    std::size_t sets_;
    std::size_t ways_;
    std::size_t lineBytes_;
    std::vector<std::list<std::uint64_t>> contents_;
};

struct CacheGeometry
{
    std::size_t size;
    std::size_t ways;
};

class CacheVsReference : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheVsReference, RandomStreamsAgreeExactly)
{
    const auto [size, ways] = GetParam();
    Cache cache({size, ways, 64, 1});
    ReferenceCache ref(size / 64 / ways, ways, 64);

    Rng rng(size + ways);
    for (int n = 0; n < 50000; ++n) {
        // Mix of hot and streaming addresses for realistic reuse.
        const std::uint64_t addr =
            rng.bernoulli(0.7) ? rng.uniformInt(size * 2)
                               : rng.uniformInt(1 << 22);
        ASSERT_EQ(cache.access(addr), ref.access(addr))
            << "divergence at access " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(CacheGeometry{1024, 1}, CacheGeometry{1024, 2},
                      CacheGeometry{4096, 4}, CacheGeometry{8192, 8},
                      CacheGeometry{64 * 1024, 2}));

// ---------------------------------------------------------------------------
// Supply network biquad vs direct convolution
// ---------------------------------------------------------------------------

class SupplyVsConvolution : public ::testing::TestWithParam<double>
{
};

TEST_P(SupplyVsConvolution, RecursionMatchesImpulseConvolution)
{
    SupplyNetworkConfig cfg;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = GetParam();
    cfg.dcResistance = 3.0e-4;
    const SupplyNetwork net(cfg);

    Rng rng(17);
    CurrentTrace trace = gaussianCurrent(40.0, 10.0, 3000, rng);
    // Make the warm-start history trivial so batch convolution (which
    // assumes zero history) is comparable: start from zero current.
    trace[0] = 0.0;

    const VoltageTrace fast = net.computeVoltage(trace);
    const auto droop = convolve(trace, net.impulseResponse());
    for (std::size_t n = 2048; n < trace.size(); ++n) {
        // After the response length, truncation effects vanish.
        EXPECT_NEAR(fast[n], 1.0 - droop[n], 2e-6) << "cycle " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(QualityFactors, SupplyVsConvolution,
                         ::testing::Values(2.0, 5.0, 10.0));

// ---------------------------------------------------------------------------
// DWT vs naive basis-matrix transform
// ---------------------------------------------------------------------------

/**
 * Naive Haar analysis: explicitly build each basis vector by upsampling
 * and convolving, then take inner products. O(N^2), independent of the
 * pyramid implementation.
 */
std::vector<std::vector<double>>
naiveHaarDetails(const std::vector<double> &x, std::size_t levels)
{
    std::vector<std::vector<double>> details;
    const std::size_t n = x.size();
    for (std::size_t j = 1; j <= levels; ++j) {
        const std::size_t block = std::size_t(1) << j;
        std::vector<double> level(n / block);
        for (std::size_t k = 0; k < level.size(); ++k) {
            double first = 0.0;
            double second = 0.0;
            for (std::size_t t = 0; t < block / 2; ++t) {
                first += x[k * block + t];
                second += x[k * block + block / 2 + t];
            }
            level[k] =
                (first - second) / std::sqrt(static_cast<double>(block));
        }
        details.push_back(std::move(level));
    }
    return details;
}

TEST(DwtVsNaive, HaarDetailsMatchDirectComputation)
{
    Rng rng(23);
    std::vector<double> x(256);
    for (auto &v : x)
        v = rng.normal(40.0, 10.0);

    const Dwt dwt(WaveletBasis::haar());
    const auto dec = dwt.forward(x, 8);
    const auto naive = naiveHaarDetails(x, 8);
    for (std::size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(dec.details[j].size(), naive[j].size());
        for (std::size_t k = 0; k < naive[j].size(); ++k)
            EXPECT_NEAR(dec.details[j][k], naive[j][k], 1e-9)
                << "level " << j << " k " << k;
    }
}

TEST(DwtVsNaive, ApproximationIsScaledBlockSum)
{
    Rng rng(29);
    std::vector<double> x(64);
    for (auto &v : x)
        v = rng.normal(0.0, 1.0);
    const Dwt dwt(WaveletBasis::haar());
    const auto dec = dwt.forward(x, 6);
    ASSERT_EQ(dec.approximation.size(), 1u);
    double sum = 0.0;
    for (double v : x)
        sum += v;
    EXPECT_NEAR(dec.approximation[0], sum / 8.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Generator statistics across all 26 profiles
// ---------------------------------------------------------------------------

class AllProfiles : public ::testing::TestWithParam<std::size_t>
{
  protected:
    const BenchmarkProfile &profile() const
    {
        return spec2000Profiles()[GetParam()];
    }
};

TEST_P(AllProfiles, StreamIsDeterministicAndWellFormed)
{
    const auto &prof = profile();
    SyntheticWorkload a(prof, 4000, 3);
    SyntheticWorkload b(prof, 4000, 3);
    Instruction ia;
    Instruction ib;
    while (a.next(ia)) {
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.pc, ib.pc) << prof.name;
        ASSERT_EQ(ia.op, ib.op) << prof.name;
        // PCs stay inside the code footprint.
        ASSERT_GE(ia.pc, 0x00400000u) << prof.name;
        ASSERT_LT(ia.pc, 0x00400000u + prof.codeBytes) << prof.name;
        if (isMemOp(ia.op)) {
            ASSERT_NE(ia.address, 0u) << prof.name;
        }
    }
}

TEST_P(AllProfiles, MixRoughlyMatchesDeclaredFractions)
{
    const auto &prof = profile();
    SyntheticWorkload w(prof, 30000, 0);
    std::map<OpClass, double> counts;
    Instruction inst;
    while (w.next(inst))
        counts[inst.op] += 1.0;

    // Aggregate declared fractions, weighted by phase length.
    double total_len = 0.0;
    double want_mem = 0.0;
    double want_branch = 0.0;
    for (const auto &ph : prof.phases) {
        const double len = static_cast<double>(ph.lengthInsts);
        total_len += len;
        want_mem += (ph.loadFrac + ph.storeFrac) * len;
        want_branch += ph.branchFrac * len;
    }
    want_mem /= total_len;
    want_branch /= total_len;

    const double n = 30000.0;
    const double got_mem =
        (counts[OpClass::Load] + counts[OpClass::Store]) / n;
    const double got_branch = counts[OpClass::Branch] / n;
    EXPECT_NEAR(got_mem, want_mem, 0.05) << prof.name;
    EXPECT_NEAR(got_branch, want_branch, 0.04) << prof.name;
}

INSTANTIATE_TEST_SUITE_P(Spec2000, AllProfiles,
                         ::testing::Range<std::size_t>(0, 26));

// ---------------------------------------------------------------------------
// Streaming convolver equals batch for random kernels
// ---------------------------------------------------------------------------

class ConvolverProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ConvolverProperty, StreamingEqualsBatch)
{
    Rng rng(GetParam());
    std::vector<double> kernel(GetParam());
    for (auto &c : kernel)
        c = rng.normal();
    std::vector<double> x(512, 0.0);
    for (std::size_t i = 1; i < x.size(); ++i)
        x[i] = rng.normal(5.0, 2.0);

    StreamingConvolver conv(kernel);
    const auto batch = convolve(x, kernel);
    for (std::size_t n = 0; n < x.size(); ++n) {
        conv.push(x[n]);
        if (n >= kernel.size()) {
            ASSERT_NEAR(conv.value(), batch[n], 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(KernelLengths, ConvolverProperty,
                         ::testing::Values(1, 2, 7, 33, 128));

// ---------------------------------------------------------------------------
// Every registered basis: orthonormality, perfect reconstruction at
// non-dyadic lengths, energy preservation, flat-vs-legacy bit identity
// ---------------------------------------------------------------------------

class AllBases : public ::testing::TestWithParam<std::string>
{
  protected:
    WaveletBasis basis() const { return WaveletBasis::byName(GetParam()); }
};

TEST_P(AllBases, FilterSatisfiesDoubleShiftOrthogonality)
{
    const WaveletBasis b = basis();
    const std::vector<double> &h = b.lowpass();
    // sum_n h[n] h[n + 2k] = delta(k): the CQF condition perfect
    // reconstruction rests on.
    for (std::size_t k = 0; 2 * k < h.size(); ++k) {
        double dot = 0.0;
        for (std::size_t n = 0; n + 2 * k < h.size(); ++n)
            dot += h[n] * h[n + 2 * k];
        EXPECT_NEAR(dot, k == 0 ? 1.0 : 0.0, 1e-12)
            << b.name() << " shift " << k;
    }
}

TEST_P(AllBases, PerfectReconstructionAtNonDyadicLengths)
{
    const Dwt dwt(basis());
    // Non-dyadic lengths: divisible by 2^levels but not powers of two.
    const struct
    {
        std::size_t length;
        std::size_t levels;
    } cases[] = {{96, 5}, {160, 4}, {288, 5}};
    Rng rng(101);
    for (const auto &c : cases) {
        std::vector<double> x(c.length);
        for (auto &v : x)
            v = rng.normal();
        const WaveletDecomposition dec = dwt.forward(x, c.levels);
        const std::vector<double> back = dwt.inverse(dec);
        ASSERT_EQ(back.size(), x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            ASSERT_NEAR(back[i], x[i], 1e-12)
                << GetParam() << " n=" << c.length << " i=" << i;
    }
}

TEST_P(AllBases, EnergyIsPreserved)
{
    const Dwt dwt(basis());
    Rng rng(103);
    std::vector<double> x(256);
    double energy = 0.0;
    for (auto &v : x) {
        v = rng.normal(2.0, 1.5);
        energy += v * v;
    }
    const WaveletDecomposition dec = dwt.forward(x, 6);
    EXPECT_NEAR(dec.energy(), energy, 1e-10 * energy) << GetParam();
}

TEST_P(AllBases, FlatPathBitIdenticalToLegacy)
{
    const Dwt dwt(basis());
    Rng rng(107);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.normal(40.0, 10.0);

    const WaveletDecomposition legacy = dwt.forward(x, 5);
    FlatDecomposition flat;
    DwtWorkspace ws;
    dwt.forward(x, 5, flat, ws);
    for (std::size_t j = 0; j < 5; ++j) {
        const auto row = flat.detail(j);
        ASSERT_EQ(row.size(), legacy.details[j].size());
        for (std::size_t k = 0; k < row.size(); ++k)
            ASSERT_EQ(row[k], legacy.details[j][k])
                << GetParam() << " level " << j;
    }
    const auto approx = flat.approximation();
    ASSERT_EQ(approx.size(), legacy.approximation.size());
    for (std::size_t k = 0; k < approx.size(); ++k)
        ASSERT_EQ(approx[k], legacy.approximation[k]) << GetParam();

    std::vector<double> back_flat(x.size());
    dwt.inverse(flat, back_flat, ws);
    const std::vector<double> back_legacy = dwt.inverse(legacy);
    for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_EQ(back_flat[i], back_legacy[i]) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Registered, AllBases,
    ::testing::ValuesIn(WaveletBasis::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace didt
