/**
 * @file
 * Tests for the observability layer: striped metric aggregation under
 * concurrency, histogram bucket boundaries, scoped-timer spans, the
 * deterministic snapshot JSON, and the invariant that metrics never
 * change campaign result bytes.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "didt/didt.hh"

using namespace didt;

namespace
{

/** A small campaign spec shared by the determinism tests. */
CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    const auto &all = spec2000Profiles();
    spec.profiles.assign(all.begin(), all.begin() + 2);
    spec.impedanceScales = {1.0, 1.2};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 20000;
    return spec;
}

} // namespace

TEST(MetricsRegistry, CounterAggregatesAcrossThreads)
{
    obs::MetricsRegistry registry;
    obs::Counter counter = registry.counter("test.hits");

    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kAddsPerThread; ++i)
                counter.add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(counter.total(),
              static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsRegistry, HistogramAggregatesAcrossThreads)
{
    obs::MetricsRegistry registry;
    obs::Histogram histogram =
        registry.histogram("test.latency", {1.0, 10.0, 100.0});

    constexpr int kThreads = 6;
    constexpr int kObsPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&histogram, t] {
            for (int i = 0; i < kObsPerThread; ++i)
                histogram.observe(static_cast<double>(t) + 1.0);
        });
    }
    for (std::thread &t : threads)
        t.join();

    const obs::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(kThreads) * kObsPerThread);
    // Serial total: sum over t of (t+1)*kObsPerThread.
    double expected_sum = 0.0;
    for (int t = 0; t < kThreads; ++t)
        expected_sum += (t + 1.0) * kObsPerThread;
    EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
}

TEST(MetricsRegistry, HandlesShareStateByName)
{
    obs::MetricsRegistry registry;
    obs::Counter a = registry.counter("test.shared");
    obs::Counter b = registry.counter("test.shared");
    a.add(3);
    b.add(4);
    EXPECT_EQ(a.total(), 7u);
    EXPECT_EQ(b.total(), 7u);
}

TEST(MetricsRegistry, GaugeTracksLastAndMax)
{
    obs::MetricsRegistry registry;
    obs::Gauge gauge = registry.gauge("test.depth");
    gauge.record(5.0);
    gauge.record(12.0);
    gauge.record(3.0);
    EXPECT_DOUBLE_EQ(gauge.last(), 3.0);
    EXPECT_DOUBLE_EQ(gauge.max(), 12.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles)
{
    obs::MetricsRegistry registry;
    obs::Counter counter = registry.counter("test.count");
    obs::Histogram histogram = registry.histogram("test.h", {1.0});
    counter.add(5);
    histogram.observe(0.5);
    registry.reset();
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_EQ(histogram.snapshot().count, 0u);
    counter.add(2);
    EXPECT_EQ(counter.total(), 2u);
}

TEST(MetricsRegistry, DefaultHandlesNoOp)
{
    obs::Counter counter;
    obs::Gauge gauge;
    obs::Histogram histogram;
    counter.add(1);
    gauge.record(1.0);
    histogram.observe(1.0);
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_FALSE(counter);
    EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges)
{
    obs::MetricsRegistry registry;
    obs::Histogram histogram =
        registry.histogram("test.edges", {1.0, 2.0, 5.0});

    histogram.observe(0.5); // bucket 0
    histogram.observe(1.0); // bucket 0 (inclusive upper edge)
    histogram.observe(1.5); // bucket 1
    histogram.observe(2.0); // bucket 1
    histogram.observe(5.0); // bucket 2
    histogram.observe(7.0); // bucket 3 (overflow)

    const obs::HistogramSnapshot snap = histogram.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 6u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 7.0);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets)
{
    obs::MetricsRegistry registry;
    obs::Histogram histogram =
        registry.histogram("test.q", {10.0, 20.0});
    for (int i = 0; i < 100; ++i)
        histogram.observe(5.0); // all in bucket [0, 10]
    const obs::HistogramSnapshot snap = histogram.snapshot();
    const double p50 = snap.quantile(0.5);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 10.0);
}

TEST(ScopedTimer, RecordsIntoHistogram)
{
    obs::MetricsRegistry registry;
    obs::Histogram histogram = registry.histogram("test.span_ms");
    {
        obs::ScopedTimer timer("unit", histogram);
    }
    EXPECT_EQ(histogram.snapshot().count, 1u);
}

TEST(ScopedTimer, NestedSpansLandInSink)
{
    obs::TraceEventSink sink;
    sink.setEnabled(true);
    {
        obs::ScopedTimer outer("outer", obs::Histogram{}, &sink);
        {
            obs::ScopedTimer inner("inner", obs::Histogram{}, &sink);
        }
    }
    const std::vector<obs::TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    // Inner scope exits first, so it is recorded first.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[1].name, "outer");
    // The outer span must fully contain the inner one.
    EXPECT_LE(events[1].startUs, events[0].startUs);
    EXPECT_GE(events[1].startUs + events[1].durationUs,
              events[0].startUs + events[0].durationUs);
}

TEST(ScopedTimer, DisabledSinkRecordsNothing)
{
    obs::TraceEventSink sink;
    {
        obs::ScopedTimer timer("ignored", obs::Histogram{}, &sink);
    }
    EXPECT_EQ(sink.eventCount(), 0u);
}

TEST(MetricsSnapshot, JsonGolden)
{
    obs::MetricsRegistry registry;
    registry.counter("b.count").add(3);
    registry.gauge("c.depth").record(2.5);
    obs::Histogram histogram = registry.histogram("a.lat_ms", {1.0, 2.0});
    histogram.observe(0.5);
    histogram.observe(1.5);

    const std::string golden = R"({
  "schema": "didt-metrics-v1",
  "metrics": [
    {
      "name": "a.lat_ms",
      "kind": "histogram",
      "count": 2,
      "sum": 2,
      "min": 0.5,
      "max": 1.5,
      "mean": 1,
      "p50": 1,
      "p95": 1.8999999999999999,
      "bounds": [
        1,
        2
      ],
      "buckets": [
        1,
        1,
        0
      ]
    },
    {
      "name": "b.count",
      "kind": "counter",
      "value": 3
    },
    {
      "name": "c.depth",
      "kind": "gauge",
      "value": 2.5,
      "max": 2.5
    }
  ]
})";
    EXPECT_EQ(registry.snapshot().toJson().dump(), golden);
}

TEST(MetricsSnapshot, DiffSubtractsCountersAndHistograms)
{
    obs::MetricsRegistry registry;
    obs::Counter counter = registry.counter("d.count");
    obs::Gauge gauge = registry.gauge("d.depth");
    obs::Histogram histogram = registry.histogram("d.ms", {1.0, 2.0});
    counter.add(3);
    gauge.record(7.0);
    histogram.observe(0.5);
    const obs::MetricsSnapshot before = registry.snapshot();

    counter.add(4);
    gauge.record(2.0);
    histogram.observe(1.5);
    histogram.observe(1.7);
    registry.counter("d.new").add(1); // born between snapshots
    const obs::MetricsSnapshot after = registry.snapshot();

    const obs::MetricsSnapshot delta = diffSnapshots(before, after);
    const obs::MetricSnapshot *dc = delta.find("d.count");
    ASSERT_NE(dc, nullptr);
    EXPECT_DOUBLE_EQ(dc->value, 4.0);
    // Gauges are instantaneous: the delta carries the current value.
    const obs::MetricSnapshot *dg = delta.find("d.depth");
    ASSERT_NE(dg, nullptr);
    EXPECT_DOUBLE_EQ(dg->value, 2.0);
    const obs::MetricSnapshot *dh = delta.find("d.ms");
    ASSERT_NE(dh, nullptr);
    EXPECT_EQ(dh->histogram.count, 2u);
    EXPECT_DOUBLE_EQ(dh->histogram.sum, 3.2);
    ASSERT_EQ(dh->histogram.counts.size(), 3u);
    EXPECT_EQ(dh->histogram.counts[0], 0u);
    EXPECT_EQ(dh->histogram.counts[1], 2u);
    // A metric absent from the previous snapshot passes through whole.
    const obs::MetricSnapshot *dn = delta.find("d.new");
    ASSERT_NE(dn, nullptr);
    EXPECT_DOUBLE_EQ(dn->value, 1.0);
}

TEST(ScopedTimer, NestedSpansLinkParentIds)
{
    obs::TraceEventSink sink;
    sink.setEnabled(true);
    {
        obs::ScopedTimer outer("outer", obs::Histogram{}, &sink);
        {
            obs::ScopedTimer inner("inner", obs::Histogram{}, &sink);
        }
    }
    const std::vector<obs::TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    const obs::TraceEvent &inner = events[0];
    const obs::TraceEvent &outer = events[1];
    EXPECT_NE(outer.spanId, 0u);
    EXPECT_NE(inner.spanId, 0u);
    EXPECT_NE(inner.spanId, outer.spanId);
    EXPECT_EQ(inner.parentId, outer.spanId);
    // No enclosing ScopedTraceContext: the outer span is a root.
    EXPECT_EQ(outer.parentId, 0u);
}

TEST(TraceContext, PropagatesAcrossThreads)
{
    obs::TraceEventSink sink;
    sink.setEnabled(true);
    {
        obs::ScopedTraceContext request({0, "req-42", ""});
        obs::ScopedTimer root("request", obs::Histogram{}, &sink);
        // Capture on the dispatching thread, re-apply in the worker —
        // exactly what the executor pool does for cell tasks.
        const obs::TraceContext ctx = obs::currentTraceContext();
        std::thread worker([&ctx, &sink] {
            obs::ScopedTraceContext scope(ctx);
            obs::ScopedTimer span("cell", obs::Histogram{}, &sink);
        });
        worker.join();
    }
    const std::vector<obs::TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    const obs::TraceEvent &cell = events[0];
    const obs::TraceEvent &root = events[1];
    EXPECT_EQ(root.name, "request");
    EXPECT_EQ(root.requestId, "req-42");
    EXPECT_EQ(cell.name, "cell");
    EXPECT_EQ(cell.requestId, "req-42");
    // The worker-side span nests under the request's root span even
    // though it was recorded on a different thread.
    EXPECT_EQ(cell.parentId, root.spanId);
}

TEST(TraceContext, RestoredOnScopeExit)
{
    const obs::TraceContext &outer = obs::currentTraceContext();
    EXPECT_EQ(outer.requestId, "");
    {
        obs::ScopedTraceContext scope({7, "inner-req", "batch-9"});
        EXPECT_EQ(obs::currentTraceContext().parentSpan, 7u);
        EXPECT_EQ(obs::currentTraceContext().requestId, "inner-req");
        EXPECT_EQ(obs::currentTraceContext().batchId, "batch-9");
    }
    EXPECT_EQ(obs::currentTraceContext().parentSpan, 0u);
    EXPECT_EQ(obs::currentTraceContext().requestId, "");
}

TEST(ScopedTimer, LabelsAreInterned)
{
    const std::string &a = obs::internSpanLabel("cell gzip@1.0");
    std::string dynamic = "cell gzip@";
    dynamic += "1.0";
    const std::string &b = obs::internSpanLabel(dynamic);
    EXPECT_EQ(&a, &b); // same table node: no per-span allocation
}

TEST(Prometheus, TextExpositionRendersAllKinds)
{
    obs::MetricsRegistry registry;
    registry.counter("p.requests").add(5);
    registry.gauge("p.depth").record(2.0);
    obs::Histogram histogram = registry.histogram("p.ms", {1.0, 2.0});
    histogram.observe(0.5);
    histogram.observe(1.5);
    const std::string text =
        obs::prometheusText(registry.snapshot());

    EXPECT_NE(text.find("# TYPE didt_p_requests_total counter\n"
                        "didt_p_requests_total 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE didt_p_depth gauge\ndidt_p_depth 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE didt_p_ms histogram\n"),
              std::string::npos);
    // Buckets are cumulative; +Inf equals the observation count.
    EXPECT_NE(text.find("didt_p_ms_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("didt_p_ms_bucket{le=\"2\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("didt_p_ms_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("didt_p_ms_count 2\n"), std::string::npos);
    EXPECT_NE(text.find("didt_p_ms_sum 2\n"), std::string::npos);
}

TEST(TraceEventSink, ChromeTraceCarriesSpanArgs)
{
    obs::TraceEventSink sink;
    sink.setEnabled(true);
    {
        obs::ScopedTraceContext scope({0, "req-7", "batch-3"});
        obs::ScopedTimer timer("work", obs::Histogram{}, &sink);
    }
    const std::string path =
        testing::TempDir() + "obs_trace_args_test.json";
    sink.writeChromeTrace(path);
    const JsonValue doc = readJsonFile(path);
    const JsonValue &event = doc.find("traceEvents")->items()[0];
    const JsonValue *args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_GT(args->find("span")->asNumber(), 0.0);
    EXPECT_EQ(args->find("request")->asString(), "req-7");
    EXPECT_EQ(args->find("batch")->asString(), "batch-3");
}

TEST(MetricsSnapshot, JsonRoundTripsThroughParser)
{
    obs::MetricsRegistry registry;
    registry.counter("x.events").add(41);
    registry.histogram("y.ms").observe(3.0);
    const JsonValue doc = registry.snapshot().toJson();
    const JsonValue reparsed = parseJson(doc.dump());
    EXPECT_EQ(doc, reparsed);
}

TEST(MetricsSnapshot, FindLocatesMetrics)
{
    obs::MetricsRegistry registry;
    registry.counter("k.n").add(9);
    const obs::MetricsSnapshot snap = registry.snapshot();
    const obs::MetricSnapshot *m = snap.find("k.n");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->value, 9.0);
    EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(TraceEventSink, ChromeTraceIsValidJson)
{
    obs::TraceEventSink sink;
    sink.setEnabled(true);
    {
        obs::ScopedTimer timer("phase", obs::Histogram{}, &sink, "test");
    }
    const std::string path =
        testing::TempDir() + "obs_trace_test.json";
    sink.writeChromeTrace(path);
    const JsonValue doc = readJsonFile(path);
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items().size(), 1u);
    const JsonValue &event = events->items()[0];
    EXPECT_EQ(event.find("name")->asString(), "phase");
    EXPECT_EQ(event.find("cat")->asString(), "test");
    EXPECT_EQ(event.find("ph")->asString(), "X");
    EXPECT_GE(event.find("dur")->asNumber(), 0.0);
}

TEST(ObsDeterminism, MetricsDoNotChangeCampaignBytes)
{
    const ExperimentSetup setup = makeStandardSetup();
    const CampaignSpec spec = tinySpec();

    obs::setMetricsEnabled(false);
    TraceRepository repo_off(setup);
    const std::string off =
        campaignToJson(
            runCharacterizationCampaign(setup, spec, repo_off, 1), false)
            .dump();

    obs::setMetricsEnabled(true);
    obs::TraceEventSink::global().setEnabled(true);
    TraceRepository repo_on(setup);
    const std::string on =
        campaignToJson(
            runCharacterizationCampaign(setup, spec, repo_on, 4), false)
            .dump();
    obs::TraceEventSink::global().setEnabled(false);
    obs::TraceEventSink::global().clear();

    EXPECT_EQ(off, on);
    EXPECT_GT(obs::MetricsRegistry::global()
                  .snapshot()
                  .metrics.size(),
              0u);
}
