/**
 * @file
 * Unit tests for the util library: RNG, tables, and option parsing.
 */

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.hh"
#include "util/options.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(99);
    const std::uint64_t first = a.next();
    a.next();
    a.seed(99);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.5, 2.25);
        EXPECT_GE(u, -3.5);
        EXPECT_LT(u, 2.25);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinRange)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntApproximatelyUniform)
{
    Rng rng(12);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(14);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(15);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(16);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(18);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricCertainSuccessIsZero)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Table, TextFormattingAligns)
{
    Table t({"name", "value"});
    t.newRow();
    t.add("alpha");
    t.add(1.5, 2);
    t.newRow();
    t.add("b");
    t.add(22.0, 2);
    std::ostringstream os;
    t.printText(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("22.00"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.newRow();
    t.add("x");
    t.add(static_cast<long long>(3));
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,3\n");
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table t({"a"});
    t.newRow();
    t.add("has,comma \"quoted\"");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a\n\"has,comma \"\"quoted\"\"\"\n");
}

TEST(Table, RowAndColumnCounts)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.newRow();
    EXPECT_EQ(t.rows(), 1u);
}

TEST(AsciiBar, ScalesWithValue)
{
    EXPECT_EQ(asciiBar(10.0, 10.0, 20).size(), 20u);
    EXPECT_EQ(asciiBar(5.0, 10.0, 20).size(), 10u);
    EXPECT_TRUE(asciiBar(0.0, 10.0, 20).empty());
    EXPECT_TRUE(asciiBar(5.0, 0.0, 20).empty());
}

TEST(AsciiBar, ClampsAboveMax)
{
    EXPECT_EQ(asciiBar(30.0, 10.0, 20).size(), 20u);
}

TEST(Options, DefaultsApply)
{
    Options opts;
    opts.declare("count", "42", "a count");
    EXPECT_EQ(opts.getInt("count"), 42);
}

TEST(Options, ParseSpaceSeparated)
{
    Options opts;
    opts.declare("count", "1", "a count");
    const char *argv[] = {"prog", "--count", "7"};
    opts.parse(3, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("count"), 7);
}

TEST(Options, ParseEqualsForm)
{
    Options opts;
    opts.declare("ratio", "0.5", "a ratio");
    const char *argv[] = {"prog", "--ratio=0.25"};
    opts.parse(2, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio"), 0.25);
}

TEST(Options, BoolFlagWithoutValue)
{
    Options opts;
    opts.declare("verbose", "false", "flag");
    const char *argv[] = {"prog", "--verbose"};
    opts.parse(2, const_cast<char **>(argv));
    EXPECT_TRUE(opts.getBool("verbose"));
}

TEST(Options, BoolRecognizesForms)
{
    Options opts;
    opts.declare("x", "yes", "flag");
    EXPECT_TRUE(opts.getBool("x"));
    Options opts2;
    opts2.declare("x", "0", "flag");
    EXPECT_FALSE(opts2.getBool("x"));
}

TEST(OptionsDeath, UnknownOptionIsFatal)
{
    Options opts;
    opts.declare("known", "1", "known");
    const char *argv[] = {"prog", "--unknown", "3"};
    EXPECT_EXIT(opts.parse(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(OptionsDeath, NonNumericIntIsFatal)
{
    Options opts;
    opts.declare("count", "zzz", "bad");
    EXPECT_EXIT((void)opts.getInt("count"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(Options, SubcommandAndPositionalsParse)
{
    Options opts;
    opts.declareSubcommands({"ping", "replay"});
    opts.declarePositionals("file", 0, 2, "input files");
    opts.declare("socket", "", "daemon socket");
    const char *argv[] = {"prog", "replay", "a.json",
                          "--socket", "/run/d.sock", "b.json"};
    opts.parse(6, const_cast<char **>(argv));
    EXPECT_EQ(opts.subcommand(), "replay");
    ASSERT_EQ(opts.positionals().size(), 2u);
    EXPECT_EQ(opts.positionals()[0], "a.json");
    EXPECT_EQ(opts.positionals()[1], "b.json");
    EXPECT_EQ(opts.get("socket"), "/run/d.sock");
}

TEST(Options, BoolFlagDoesNotSwallowPositional)
{
    // "--verbose gzip" with a boolean --verbose: gzip is a positional,
    // not the flag's value.
    Options opts;
    opts.declarePositionals("name", 0, 1, "a name");
    opts.declare("verbose", "false", "flag");
    const char *argv[] = {"prog", "--verbose", "gzip"};
    opts.parse(3, const_cast<char **>(argv));
    EXPECT_TRUE(opts.getBool("verbose"));
    ASSERT_EQ(opts.positionals().size(), 1u);
    EXPECT_EQ(opts.positionals()[0], "gzip");
}

TEST(Options, UsageNamesSubcommandsAndPositionals)
{
    Options opts;
    opts.declareSubcommands({"ping", "stats"});
    opts.declarePositionals("campaign.json", 0, 1, "file to replay");
    const std::string usage = opts.usage("didt_client");
    EXPECT_NE(usage.find("ping|stats"), std::string::npos) << usage;
    EXPECT_NE(usage.find("campaign.json"), std::string::npos) << usage;
}

TEST(OptionsDeath, UnknownSubcommandIsFatal)
{
    Options opts;
    opts.declareSubcommands({"ping"});
    const char *argv[] = {"prog", "reboot"};
    EXPECT_EXIT(opts.parse(2, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown subcommand");
}

TEST(OptionsDeath, MissingSubcommandIsFatal)
{
    Options opts;
    opts.declareSubcommands({"ping"});
    const char *argv[] = {"prog"};
    EXPECT_EXIT(opts.parse(1, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "missing subcommand");
}

TEST(OptionsDeath, UndeclaredPositionalStaysFatal)
{
    Options opts;
    opts.declare("count", "1", "a count");
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT(opts.parse(2, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1),
                "unexpected positional argument");
}

TEST(OptionsDeath, PositionalOverflowIsFatal)
{
    Options opts;
    opts.declarePositionals("file", 0, 1, "one file");
    const char *argv[] = {"prog", "a", "b"};
    EXPECT_EXIT(opts.parse(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1),
                "too many positional arguments");
}

} // namespace
} // namespace didt
