/**
 * @file
 * Chip-multiprocessor (CMP) generalization tests.
 *
 * The chip path carries a hard compatibility invariant: a 1-core Chip
 * must be byte-identical to the uniprocessor Processor path — same
 * per-cycle currents, same cosim statistics, same campaign JSON — so
 * every pre-chip result stays reproducible. These tests pin that
 * invariant bit-for-bit, then check the genuinely multi-core
 * properties: determinism across job counts, per-core stream
 * independence, and the resonance physics (in-phase clones excite the
 * resonant octave; staggered seeds and staggered actuation damp it).
 */

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/chip_cosim.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "sim/cache.hh"
#include "sim/chip.hh"
#include "sim/processor.hh"
#include "wavelet/basis.hh"
#include "wavelet/modwt.hh"
#include "workload/generator.hh"
#include "workload/mix.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

/** Campaign JSON bytes for @p spec on a fresh repository. */
std::string
campaignJson(const CampaignSpec &spec, std::size_t jobs)
{
    const ExperimentSetup &setup = sharedSetup();
    TraceRepository repo(setup);
    const CampaignResult result =
        runCharacterizationCampaign(setup, spec, repo, jobs);
    std::ostringstream out;
    campaignToJson(result, false).write(out);
    return out.str();
}

/** A small fast spec shared by the campaign-identity tests. */
CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.impedanceScales = {1.0};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 15000;
    return spec;
}

// ---------------------------------------------------------------------------
// 1-core Chip == Processor, bit for bit
// ---------------------------------------------------------------------------

TEST(ChipIdentity, OneCoreCurrentsMatchProcessorBitwise)
{
    const ExperimentSetup &setup = sharedSetup();
    const BenchmarkProfile &profile = profileByName("gzip");

    SyntheticWorkload uni_src(profile, 20000, 7);
    Processor proc(setup.proc, setup.power, uni_src);

    SyntheticWorkload chip_src(profile, 20000, 7);
    ChipConfig config;
    config.core = setup.proc;
    InstructionSource *sources[] = {&chip_src};
    Chip chip(config, setup.power, sources);

    ASSERT_EQ(chip.coreCount(), 1u);
    EXPECT_DOUBLE_EQ(chip.coreScale(0), 1.0);

    bool more_proc = true;
    bool more_chip = true;
    for (std::size_t cycle = 0; cycle < 30000; ++cycle) {
        more_proc = proc.step();
        more_chip = chip.step();
        ASSERT_EQ(more_proc, more_chip) << "cycle " << cycle;
        // Bitwise, not approximate: the 1-core aggregate is scaled by
        // exactly 1.0, so any divergence is a real model change.
        const double uni = proc.lastCurrent();
        const double agg = chip.lastAggregateCurrent();
        std::uint64_t uni_bits, agg_bits;
        std::memcpy(&uni_bits, &uni, sizeof(uni_bits));
        std::memcpy(&agg_bits, &agg, sizeof(agg_bits));
        ASSERT_EQ(uni_bits, agg_bits) << "cycle " << cycle;
        if (!more_proc)
            break;
    }
    EXPECT_EQ(proc.stats().committed, chip.core(0).stats().committed);
    EXPECT_EQ(proc.stats().cycles, chip.core(0).stats().cycles);
}

TEST(ChipIdentity, OneCoreTraceMatchesBenchmarkTraceBitwise)
{
    const ExperimentSetup &setup = sharedSetup();
    const BenchmarkProfile &profile = profileByName("mcf");

    const CurrentTrace uni =
        benchmarkCurrentTrace(setup, profile, 20000, 3);
    const TraceSet chip =
        chipCurrentTrace(setup, {{&profile, 3}}, 20000);

    ASSERT_EQ(chip.perCore.size(), 1u);
    ASSERT_EQ(uni.size(), chip.aggregate.size());
    ASSERT_EQ(uni.size(), chip.perCore[0].size());
    for (std::size_t i = 0; i < uni.size(); ++i) {
        std::uint64_t a, b, c;
        std::memcpy(&a, &uni[i], sizeof(a));
        std::memcpy(&b, &chip.aggregate[i], sizeof(b));
        std::memcpy(&c, &chip.perCore[0][i], sizeof(c));
        ASSERT_EQ(a, b) << "cycle " << i;
        ASSERT_EQ(a, c) << "cycle " << i;
    }
}

TEST(ChipIdentity, OneCoreClosedLoopMatchesUniprocessorWavelet)
{
    const ExperimentSetup &setup = sharedSetup();
    const BenchmarkProfile &profile = profileByName("gzip");
    const SupplyNetwork network = setup.makeNetwork(1.2);

    CosimConfig uni_cfg;
    uni_cfg.instructions = 20000;
    uni_cfg.scheme = ControlScheme::Wavelet;
    const CosimResult uni = runClosedLoop(profile, setup.proc,
                                          setup.power, network, uni_cfg);

    ChipCosimConfig chip_cfg;
    chip_cfg.instructions = 20000;
    chip_cfg.scheme = ChipControlScheme::Independent;
    const ChipCosimResult chip =
        runChipClosedLoop({{&profile, 0}}, setup, network, chip_cfg);

    EXPECT_EQ(chip.cores, 1u);
    EXPECT_EQ(uni.cycles, chip.cycles);
    EXPECT_EQ(uni.committed, chip.committed);
    EXPECT_EQ(uni.lowFaults, chip.lowFaults);
    EXPECT_EQ(uni.highFaults, chip.highFaults);
    EXPECT_EQ(uni.controlCycles, chip.controlCycles);
    EXPECT_EQ(uni.stallCycles, chip.stallCycles);
    EXPECT_EQ(uni.noopCycles, chip.noopCycles);
    EXPECT_EQ(uni.falsePositives, chip.falsePositives);
    EXPECT_DOUBLE_EQ(uni.minVoltage, chip.minVoltage);
    EXPECT_DOUBLE_EQ(uni.maxVoltage, chip.maxVoltage);
    EXPECT_DOUBLE_EQ(uni.meanCurrent, chip.meanCurrent);
    EXPECT_DOUBLE_EQ(uni.energyJ, chip.energyJ);

    // Staggered degenerates to Independent on one core (stride delay
    // of core 0 is zero).
    chip_cfg.scheme = ChipControlScheme::Staggered;
    const ChipCosimResult staggered =
        runChipClosedLoop({{&profile, 0}}, setup, network, chip_cfg);
    EXPECT_EQ(uni.cycles, staggered.cycles);
    EXPECT_EQ(uni.controlCycles, staggered.controlCycles);
    EXPECT_DOUBLE_EQ(uni.minVoltage, staggered.minVoltage);
}

TEST(ChipIdentity, ExplicitSingleCoreCampaignJsonMatchesLegacy)
{
    CampaignSpec legacy = smallSpec();
    legacy.profiles = {profileByName("gzip")};

    CampaignSpec explicit_one = legacy;
    explicit_one.coreCounts = {1};

    EXPECT_EQ(campaignJson(legacy, 2), campaignJson(explicit_one, 2));
}

TEST(ChipIdentity, SingleCoreTraceRequestKeepsLegacyFingerprint)
{
    TraceRequest legacy;
    legacy.profile = profileByName("swim");
    legacy.instructions = 20000;
    legacy.seed = 5;

    // An explicit 1-core chip request that collapsed to the legacy
    // form must share its fingerprint (and its disk cache file) ...
    TraceRequest one_core = legacy;
    one_core.cores = 1;
    EXPECT_EQ(fingerprintTraceRequest(legacy),
              fingerprintTraceRequest(one_core));

    // ... while a real chip request must not.
    TraceRequest two_core = legacy;
    two_core.cores = 2;
    two_core.coreProfiles = {legacy.profile, legacy.profile};
    two_core.coreSeeds = {deriveCoreSeed(5, 0), deriveCoreSeed(5, 1)};
    EXPECT_NE(fingerprintTraceRequest(legacy),
              fingerprintTraceRequest(two_core));
}

// ---------------------------------------------------------------------------
// Multi-core determinism and physics
// ---------------------------------------------------------------------------

TEST(ChipCampaign, TwoCoreMixJsonIdenticalAcrossJobCounts)
{
    CampaignSpec spec = smallSpec();
    spec.mixes = {"inphase-gzip", "staggered-gzip"};
    spec.coreCounts = {2};

    const std::string serial = campaignJson(spec, 1);
    const std::string parallel = campaignJson(spec, 4);
    EXPECT_EQ(serial, parallel);
    // The chip dimensions must be visible in the result document.
    EXPECT_NE(serial.find("\"cores\""), std::string::npos);
    EXPECT_NE(serial.find("staggered-gzip"), std::string::npos);
}

TEST(ChipCampaign, MixedWorkloadCellRunsDistinctProfilesPerCore)
{
    const WorkloadMix mix = mixByName("mixed4");
    ASSERT_EQ(mix.benchmarks.size(), 4u);
    // Cores cycle the benchmark list; with 4 cores each runs its own.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(mixProfileForCore(mix, i).name, mix.benchmarks[i]);
    // Beyond the list length the assignment wraps.
    EXPECT_EQ(mixProfileForCore(mix, 4).name, mix.benchmarks[0]);
    // Staggered mixes give every core its own seed; core 0 keeps the
    // campaign seed so a 1-core mix cell is a legacy cell.
    EXPECT_EQ(mixCoreSeed(mix, 9, 0), 9u);
    EXPECT_NE(mixCoreSeed(mix, 9, 1), mixCoreSeed(mix, 9, 2));

    const WorkloadMix inphase = mixByName("inphase-gzip");
    EXPECT_EQ(mixCoreSeed(inphase, 9, 0), mixCoreSeed(inphase, 9, 3));
}

TEST(ChipPhysics, InPhaseMixExcitesResonantOctave)
{
    const ExperimentSetup &setup = sharedSetup();

    const auto aggregate_for = [&](const std::string &mix_name) {
        const WorkloadMix mix = mixByName(mix_name);
        std::vector<ChipWorkload> workloads;
        for (std::size_t i = 0; i < 4; ++i)
            workloads.push_back(
                {&mixProfileForCore(mix, i), mixCoreSeed(mix, 0, i)});
        return chipCurrentTrace(setup, workloads, 15000).aggregate;
    };

    const CurrentTrace inphase = aggregate_for("inphase-gzip");
    const CurrentTrace staggered = aggregate_for("staggered-gzip");
    ASSERT_GE(inphase.size(), 4096u);
    ASSERT_GE(staggered.size(), 4096u);

    const Modwt modwt(WaveletBasis::haar());
    const std::vector<double> v_in = modwt.waveletVariance(inphase, 8);
    const std::vector<double> v_st =
        modwt.waveletVariance(staggered, 8);

    // Level whose octave contains the package resonance (3 GHz clock,
    // 125 MHz resonance -> level 4, index 3).
    const double ratio = setup.supplyBase.clockHz /
                         setup.supplyBase.resonantHz;
    const std::size_t lvl = static_cast<std::size_t>(
                                std::floor(std::log2(ratio))) -
                            1;
    ASSERT_LT(lvl, v_in.size());

    // Four clones stepping in lockstep add coherently (~N^2 variance);
    // independently seeded streams add incoherently (~N). The in-phase
    // mix must therefore carry strictly more resonance-band variance.
    EXPECT_GT(v_in[lvl], v_st[lvl]);
}

TEST(ChipPhysics, StaggeredActuationReducesResonanceBandVariance)
{
    const ExperimentSetup &setup = sharedSetup();
    const SupplyNetwork network = setup.makeNetwork(1.5);

    // mgrid is one of the paper's dI/dt stressors: its L2-bound
    // oscillation phases keep the wavelet controller engaged, so the
    // actuation phasing actually matters.
    const WorkloadMix mix = mixByName("inphase-mgrid");
    std::vector<ChipWorkload> workloads;
    for (std::size_t i = 0; i < 4; ++i)
        workloads.push_back(
            {&mixProfileForCore(mix, i), mixCoreSeed(mix, 0, i)});

    // The contrast needs the episodic-actuation regime: throttle
    // bursts recur at the resonant frequency, so their phasing across
    // cores decides whether they excite the supply coherently. Long
    // enough a trace for the wavelet variance to stabilise; a wider
    // tolerance would push the controller into near-continuous
    // throttling where phasing no longer matters.
    ChipCosimConfig cfg;
    cfg.instructions = 30000;
    cfg.control.tolerance = 0.030;

    cfg.scheme = ChipControlScheme::Independent;
    const ChipCosimResult independent =
        runChipClosedLoop(workloads, setup, network, cfg);
    cfg.scheme = ChipControlScheme::Staggered;
    const ChipCosimResult staggered =
        runChipClosedLoop(workloads, setup, network, cfg);

    // The contrast is only meaningful when the controller actually
    // actuated: an idle controller makes the two schemes identical.
    ASSERT_GT(independent.controlCycles, 0u);
    ASSERT_GT(staggered.controlCycles, 0u);
    ASSERT_GT(independent.resonanceBandVariance(), 0.0);
    ASSERT_GT(staggered.resonanceBandVariance(), 0.0);
    // Desynchronizing the per-core throttle phases spreads the
    // actuation current steps across the resonant period: the
    // aggregate's resonance-band variance must drop.
    EXPECT_LT(staggered.resonanceBandVariance(),
              independent.resonanceBandVariance());
    // Both controlled runs commit the full streams.
    EXPECT_EQ(independent.committed, staggered.committed);
}

TEST(ChipDeterminism, NCoreStepSequenceReproducible)
{
    const ExperimentSetup &setup = sharedSetup();
    const BenchmarkProfile &profile = profileByName("gcc");

    const auto run = [&] {
        std::vector<SyntheticWorkload> streams;
        streams.reserve(3);
        for (std::size_t i = 0; i < 3; ++i)
            streams.emplace_back(profile, 5000, deriveCoreSeed(1, i));
        InstructionSource *sources[] = {&streams[0], &streams[1],
                                        &streams[2]};
        ChipConfig config;
        config.cores = 3;
        config.core = setup.proc;
        Chip chip(config, setup.power, sources);
        std::vector<double> currents;
        while (chip.step())
            currents.push_back(chip.lastAggregateCurrent());
        return currents;
    };

    const std::vector<double> first = run();
    const std::vector<double> second = run();
    ASSERT_EQ(first.size(), second.size());
    ASSERT_FALSE(first.empty());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "cycle " << i;
}

TEST(ChipL2, BankConflictsStallOnlyCrossCoreTraffic)
{
    // Structurally zero for one core: a core's own same-cycle claims
    // are not conflicts, so the arbiter cannot perturb the 1-core
    // byte-identity invariant.
    L2BankArbiter arbiter(8, 4, 64, 4);
    arbiter.beginCycle();
    EXPECT_EQ(arbiter.claim(0x1000, 0), 0u);
    EXPECT_EQ(arbiter.claim(0x1000, 0), 0u);
    EXPECT_EQ(arbiter.conflicts(), 0u);

    // A second core hitting the same bank in the same cycle pays one
    // penalty per foreign claim.
    EXPECT_EQ(arbiter.claim(0x1000, 1), 2u * 4u);
    // A different bank is free.
    EXPECT_EQ(arbiter.claim(0x1040, 1), 0u);

    // The next cycle starts clean.
    arbiter.beginCycle();
    EXPECT_EQ(arbiter.claim(0x1000, 1), 0u);
}

} // namespace
} // namespace didt
