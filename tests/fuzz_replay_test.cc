/**
 * @file
 * Replays the committed fuzz corpus (tests/fuzz/corpus/) through the
 * structured fuzz drivers as ordinary ctest cases, so every build
 * configuration — not just the Clang libFuzzer one — proves that each
 * corpus input (valid seeds and minimized crashers alike) is handled
 * with a clean error or a correct round-trip, never a crash. A driver
 * that sees a contract violation abort()s, which surfaces here as a
 * test-process crash with the offending file named below.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/drivers.hh"

namespace didt
{
namespace
{

std::vector<std::uint8_t>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

/** Run every file under corpus/<category> through @p driver. */
void
replayCategory(const std::string &category,
               const std::function<int(const std::uint8_t *,
                                       std::size_t)> &driver)
{
    const std::filesystem::path dir =
        std::filesystem::path(DIDT_FUZZ_CORPUS_DIR) / category;
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << "missing corpus directory " << dir;
    std::size_t replayed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        SCOPED_TRACE("corpus file: " + entry.path().string());
        const std::vector<std::uint8_t> bytes = readFile(entry.path());
        EXPECT_EQ(driver(bytes.data(), bytes.size()), 0);
        ++replayed;
    }
    EXPECT_GE(replayed, 4u)
        << "corpus for " << category << " looks gutted";
}

TEST(FuzzReplay, Json) { replayCategory("json", fuzz::runJson); }

TEST(FuzzReplay, TraceText)
{
    replayCategory("trace_text", fuzz::runTraceText);
}

TEST(FuzzReplay, TraceBinary)
{
    replayCategory("trace_binary", fuzz::runTraceBinary);
}

TEST(FuzzReplay, Dwt) { replayCategory("dwt", fuzz::runDwt); }

TEST(FuzzReplay, Frame) { replayCategory("frame", fuzz::runFrame); }

} // namespace
} // namespace didt
