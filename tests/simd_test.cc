/**
 * @file
 * The SIMD determinism contract: every dispatched kernel level
 * produces bit-for-bit the same results as the scalar reference, for
 * every basis, at lengths that are not multiples of the vector width;
 * the devirtualized block/chunked paths (monitor updateBlock, cosim
 * monomorphization, StreamingConvolver's two-segment ring walk) match
 * their per-cycle references exactly; and campaign JSON is
 * byte-identical whichever kernel level runs it.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/monitor.hh"
#include "power/convolution.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "stats/histogram.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "wavelet/basis.hh"
#include "wavelet/dwt.hh"
#include "wavelet/modwt.hh"
#include "wavelet/subband.hh"

namespace didt
{
namespace
{

/** Restore CPU-probed dispatch when a test scope ends. */
struct LevelGuard
{
    ~LevelGuard() { simd::clearForcedLevel(); }
};

std::vector<simd::Level>
vectorLevels()
{
    std::vector<simd::Level> out;
    for (simd::Level level :
         {simd::Level::Sse2, simd::Level::Avx2, simd::Level::Neon})
        if (simd::levelAvailable(level))
            out.push_back(level);
    return out;
}

/** Bit-for-bit comparison: distinguishes -0.0 from 0.0 and treats
 *  identical NaNs as equal, which EXPECT_DOUBLE_EQ does not. */
void
expectBitEqual(std::span<const double> a, std::span<const double> b,
               const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                  std::bit_cast<std::uint64_t>(b[i]))
            << what << " diverges at index " << i << ": " << a[i]
            << " vs " << b[i];
}

std::vector<double>
noisySignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.normal(0.0, 1.0) + 0.3 * std::sin(0.05 * double(i));
    return x;
}

const std::vector<const char *> kBases{"haar", "db4", "db6"};

TEST(SimdDispatch, ScalarAlwaysAvailableAndForcible)
{
    LevelGuard guard;
    EXPECT_TRUE(simd::levelAvailable(simd::Level::Scalar));
    simd::forceLevel(simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    simd::clearForcedLevel();
    EXPECT_EQ(simd::activeLevel(), simd::bestLevel());
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Sse2), "sse2");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
    EXPECT_STREQ(simd::levelName(simd::Level::Neon), "neon");
}

// Lengths chosen to never be multiples of any vector width times the
// subsampling, so every kernel exercises its scalar remainder epilogue
// as well as the vector body.
TEST(SimdEquivalence, DwtForwardBitIdentical)
{
    LevelGuard guard;
    for (const char *name : kBases) {
        const Dwt dwt(WaveletBasis::byName(name));
        for (std::size_t n : {32u, 96u, 160u, 416u}) {
            const std::vector<double> x = noisySignal(n, 7 + n);
            const std::size_t levels = std::min<std::size_t>(
                3, dwt.maxLevels(n));
            ASSERT_GE(levels, 1u);

            simd::forceLevel(simd::Level::Scalar);
            const WaveletDecomposition ref = dwt.forward(x, levels);
            for (simd::Level level : vectorLevels()) {
                simd::forceLevel(level);
                const WaveletDecomposition got = dwt.forward(x, levels);
                ASSERT_EQ(got.details.size(), ref.details.size());
                const std::string what = std::string(name) + "/n=" +
                                         std::to_string(n) + "/" +
                                         simd::levelName(level);
                for (std::size_t j = 0; j < ref.details.size(); ++j)
                    expectBitEqual(got.details[j], ref.details[j],
                                   what + "/detail" + std::to_string(j));
                expectBitEqual(got.approximation, ref.approximation,
                               what + "/approx");
            }
        }
    }
}

TEST(SimdEquivalence, DwtInverseAndSubbandsBitIdentical)
{
    LevelGuard guard;
    for (const char *name : kBases) {
        const Dwt dwt(WaveletBasis::byName(name));
        for (std::size_t n : {96u, 416u}) {
            const std::vector<double> x = noisySignal(n, 11 + n);
            const std::size_t levels = std::min<std::size_t>(
                3, dwt.maxLevels(n));
            ASSERT_GE(levels, 1u);

            simd::forceLevel(simd::Level::Scalar);
            const WaveletDecomposition dec = dwt.forward(x, levels);
            const std::vector<double> ref_inv = dwt.inverse(dec);
            const auto ref_sub = allSubbands(dwt, dec);
            for (simd::Level level : vectorLevels()) {
                simd::forceLevel(level);
                const std::string what = std::string(name) + "/n=" +
                                         std::to_string(n) + "/" +
                                         simd::levelName(level);
                expectBitEqual(dwt.inverse(dec), ref_inv,
                               what + "/inverse");
                const auto got_sub = allSubbands(dwt, dec);
                ASSERT_EQ(got_sub.size(), ref_sub.size());
                for (std::size_t s = 0; s < ref_sub.size(); ++s)
                    expectBitEqual(got_sub[s], ref_sub[s],
                                   what + "/subband" + std::to_string(s));
            }
        }
    }
}

TEST(SimdEquivalence, AnalyzeSynthesizeStepsBitIdentical)
{
    LevelGuard guard;
    for (const char *name : kBases) {
        const Dwt dwt(WaveletBasis::byName(name));
        for (std::size_t n : {6u, 10u, 98u, 250u}) {
            const std::vector<double> x = noisySignal(n, 13 + n);
            std::vector<double> approx(n / 2);
            std::vector<double> detail(n / 2);
            std::vector<double> merged(n);

            simd::forceLevel(simd::Level::Scalar);
            std::vector<double> ref_a(n / 2);
            std::vector<double> ref_d(n / 2);
            std::vector<double> ref_m(n);
            dwt.analyzeStep(x, std::span<double>(ref_a),
                            std::span<double>(ref_d));
            dwt.synthesizeStep(ref_a, ref_d, std::span<double>(ref_m));

            for (simd::Level level : vectorLevels()) {
                simd::forceLevel(level);
                const std::string what = std::string(name) + "/n=" +
                                         std::to_string(n) + "/" +
                                         simd::levelName(level);
                dwt.analyzeStep(x, std::span<double>(approx),
                                std::span<double>(detail));
                expectBitEqual(approx, ref_a, what + "/approx");
                expectBitEqual(detail, ref_d, what + "/detail");
                dwt.synthesizeStep(ref_a, ref_d,
                                   std::span<double>(merged));
                expectBitEqual(merged, ref_m, what + "/merged");
            }
        }
    }
}

TEST(SimdEquivalence, ModwtForwardAndVarianceBitIdentical)
{
    LevelGuard guard;
    for (const char *name : kBases) {
        const Modwt modwt(WaveletBasis::byName(name));
        for (std::size_t n : {97u, 101u, 333u}) {
            const std::vector<double> x = noisySignal(n, 17 + n);
            const std::size_t levels = 3;

            simd::forceLevel(simd::Level::Scalar);
            const ModwtDecomposition ref = modwt.forward(x, levels);
            const std::vector<double> ref_var =
                modwt.waveletVariance(x, levels);
            for (simd::Level level : vectorLevels()) {
                simd::forceLevel(level);
                const ModwtDecomposition got = modwt.forward(x, levels);
                const std::string what = std::string(name) + "/n=" +
                                         std::to_string(n) + "/" +
                                         simd::levelName(level);
                ASSERT_EQ(got.details.size(), ref.details.size());
                for (std::size_t j = 0; j < ref.details.size(); ++j)
                    expectBitEqual(got.details[j], ref.details[j],
                                   what + "/detail" + std::to_string(j));
                expectBitEqual(got.smooth, ref.smooth, what + "/smooth");
                expectBitEqual(modwt.waveletVariance(x, levels), ref_var,
                               what + "/variance");
            }
        }
    }
}

TEST(SimdEquivalence, ConvolveIntoBitIdenticalAtEveryLength)
{
    LevelGuard guard;
    for (std::size_t klen : {1u, 3u, 7u, 33u}) {
        const std::vector<double> kernel = noisySignal(klen, 23 + klen);
        for (std::size_t n = 1; n <= 100; ++n) {
            const std::vector<double> x = noisySignal(n, 29 + n);
            simd::forceLevel(simd::Level::Scalar);
            const std::vector<double> ref = convolve(x, kernel);
            for (simd::Level level : vectorLevels()) {
                simd::forceLevel(level);
                expectBitEqual(convolve(x, kernel), ref,
                               "convolve klen=" + std::to_string(klen) +
                                   " n=" + std::to_string(n) + "/" +
                                   simd::levelName(level));
            }
        }
    }
}

TEST(SimdEquivalence, ThresholdCountsMatchScalarLoop)
{
    LevelGuard guard;
    std::vector<double> v = noisySignal(1003, 31);
    v[17] = std::numeric_limits<double>::quiet_NaN();
    v[500] = -0.5; // exactly at the low threshold: not strictly below
    const double lo = -0.5;
    const double hi = 0.5;

    std::uint64_t ref_below = 0;
    std::uint64_t ref_above = 0;
    for (double x : v) {
        if (x < lo)
            ++ref_below;
        if (x > hi)
            ++ref_above;
    }
    for (simd::Level level : vectorLevels()) {
        std::uint64_t below = 0;
        std::uint64_t above = 0;
        simd::kernelsFor(level).thresholdCounts(v.data(), v.size(), lo, hi,
                                                &below, &above);
        EXPECT_EQ(below, ref_below) << simd::levelName(level);
        EXPECT_EQ(above, ref_above) << simd::levelName(level);
    }
}

TEST(SimdEquivalence, HistogramPushBlockMatchesPush)
{
    LevelGuard guard;
    std::vector<double> v = noisySignal(777, 37);
    v[3] = -100.0; // clamps into bin 0
    v[4] = 100.0;  // clamps into the last bin

    Histogram ref(-2.0, 2.0, 13);
    for (double x : v)
        ref.push(x);

    for (simd::Level level : vectorLevels()) {
        simd::forceLevel(level);
        Histogram got(-2.0, 2.0, 13);
        got.pushBlock(v);
        ASSERT_EQ(got.total(), ref.total()) << simd::levelName(level);
        for (std::size_t b = 0; b < ref.bins(); ++b)
            EXPECT_EQ(got.count(b), ref.count(b))
                << simd::levelName(level) << " bin " << b;
    }
}

TEST(SimdEquivalence, StreamingConvolverMatchesModuloReference)
{
    const std::vector<double> kernel = noisySignal(37, 41);
    const std::vector<double> input = noisySignal(400, 43);

    // The original modulo-per-tap ring walk, kept as the reference for
    // the two-segment implementation.
    std::vector<double> history(kernel.size(), input[0]);
    std::size_t head = 0;
    StreamingConvolver conv(kernel);
    for (double x : input) {
        head = (head + history.size() - 1) % history.size();
        history[head] = x;
        double acc = 0.0;
        std::size_t idx = head;
        for (std::size_t m = 0; m < kernel.size(); ++m) {
            acc += kernel[m] * history[idx];
            idx = (idx + 1) % history.size();
        }
        conv.push(x);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(conv.value()),
                  std::bit_cast<std::uint64_t>(acc));
    }
}

TEST(SimdEquivalence, MonitorUpdateBlockMatchesPerCycle)
{
    const ExperimentSetup setup = makeStandardSetup();
    const SupplyNetwork net = setup.makeNetwork(1.5);
    const CurrentTrace trace = benchmarkCurrentTrace(
        setup, profileByName("gzip"), 9000, 3);
    const VoltageTrace truth = net.computeVoltage(trace);

    const auto check = [&](VoltageMonitor &block_monitor,
                           VoltageMonitor &cycle_monitor) {
        VoltageTrace block_out(trace.size());
        block_monitor.updateBlock(trace, truth, block_out);
        VoltageTrace cycle_out(trace.size());
        for (std::size_t n = 0; n < trace.size(); ++n)
            cycle_out[n] = cycle_monitor.update(trace[n], truth[n]);
        expectBitEqual(block_out, cycle_out, block_monitor.name());
    };

    WaveletMonitor wb(net, 13);
    WaveletMonitor wc(net, 13);
    check(wb, wc);
    FullConvolutionMonitor fb(net);
    FullConvolutionMonitor fc(net);
    check(fb, fc);
    AnalogSensorMonitor ab(net, 4);
    AnalogSensorMonitor ac(net, 4);
    check(ab, ac);
}

class CosimDevirtualization
    : public ::testing::TestWithParam<ControlScheme>
{
};

TEST_P(CosimDevirtualization, MatchesPerCycleVirtualLoop)
{
    const ExperimentSetup setup = makeStandardSetup();
    const SupplyNetwork net = setup.makeNetwork(1.5);
    VoltageVarianceModel model = makeCalibratedModel(setup, net);

    CosimConfig cfg;
    cfg.instructions = 12000;
    cfg.scheme = GetParam();
    cfg.control.tolerance = 0.020;
    cfg.hazardModel = &model;

    cfg.devirtualize = true;
    const CosimResult fast = runClosedLoop(profileByName("gzip"),
                                           setup.proc, setup.power, net,
                                           cfg);
    cfg.devirtualize = false;
    const CosimResult ref = runClosedLoop(profileByName("gzip"),
                                          setup.proc, setup.power, net,
                                          cfg);

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.committed, ref.committed);
    EXPECT_EQ(fast.lowFaults, ref.lowFaults);
    EXPECT_EQ(fast.highFaults, ref.highFaults);
    EXPECT_EQ(fast.controlCycles, ref.controlCycles);
    EXPECT_EQ(fast.stallCycles, ref.stallCycles);
    EXPECT_EQ(fast.noopCycles, ref.noopCycles);
    EXPECT_EQ(fast.falsePositives, ref.falsePositives);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.minVoltage),
              std::bit_cast<std::uint64_t>(ref.minVoltage));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.maxVoltage),
              std::bit_cast<std::uint64_t>(ref.maxVoltage));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.meanCurrent),
              std::bit_cast<std::uint64_t>(ref.meanCurrent));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.energyJ),
              std::bit_cast<std::uint64_t>(ref.energyJ));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CosimDevirtualization,
    ::testing::Values(ControlScheme::None, ControlScheme::Wavelet,
                      ControlScheme::FullConvolution,
                      ControlScheme::AnalogSensor,
                      ControlScheme::PipelineDamping,
                      ControlScheme::AdaptiveWavelet),
    [](const auto &info) {
        std::string name = controlSchemeName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(SimdEquivalence, CampaignJsonByteIdenticalAcrossLevels)
{
    const std::vector<simd::Level> levels = vectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend built; scalar only";
    LevelGuard guard;

    const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    BenchmarkProfile prof;
    prof.name = "simd-det";
    prof.seed = 51;
    WorkloadPhase phase;
    phase.lengthInsts = 5000;
    prof.phases = {phase};
    spec.profiles = {prof};
    spec.impedanceScales = {1.0, 1.5};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 6000;

    simd::forceLevel(simd::Level::Scalar);
    TraceRepository scalar_repo(setup);
    const CampaignResult scalar_result =
        runCharacterizationCampaign(setup, spec, scalar_repo, 2);
    const std::string scalar_json = campaignToJson(scalar_result).dump();

    for (simd::Level level : levels) {
        simd::forceLevel(level);
        TraceRepository repo(setup);
        const CampaignResult result =
            runCharacterizationCampaign(setup, spec, repo, 2);
        EXPECT_EQ(campaignToJson(result).dump(), scalar_json)
            << "campaign JSON must not depend on the "
            << simd::levelName(level) << " kernels";
    }
}

} // namespace
} // namespace didt
