/**
 * @file
 * Unit tests for the paper's contribution: window classification, the
 * voltage-variance model, emergency estimation, on-line monitors, and
 * the dI/dt controllers.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "core/emergency_estimator.hh"
#include "core/monitor.hh"
#include "core/variance_model.hh"
#include "core/window_analysis.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

SupplyNetwork
testNetwork(double scale = 1.0)
{
    SupplyNetworkConfig cfg;
    cfg.clockHz = 3.0e9;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.dcResistance = 3.0e-4;
    cfg.impedanceScale = scale;
    return SupplyNetwork(cfg);
}

// ---------------------------------------------------------------------------
// Window analysis
// ---------------------------------------------------------------------------

TEST(WindowAnalysis, GaussianTraceMostlyAccepted)
{
    Rng rng(1);
    const CurrentTrace trace = gaussianCurrent(40.0, 6.0, 50000, rng);
    Rng sampler(2);
    const auto summary = classifyWindows(trace, 64, 300, sampler);
    EXPECT_EQ(summary.windows, 300u);
    EXPECT_GT(summary.acceptanceRate(), 0.8);
}

TEST(WindowAnalysis, SquareWaveRejected)
{
    const CurrentTrace trace =
        resonantSquareWave(3.0e9, 125.0e6, 20.0, 80.0, 400);
    Rng sampler(3);
    const auto summary = classifyWindows(trace, 64, 200, sampler);
    EXPECT_LT(summary.acceptanceRate(), 0.1);
}

TEST(WindowAnalysis, ConstantTraceRejectedAsDegenerate)
{
    const CurrentTrace trace = constantCurrent(40.0, 10000);
    Rng sampler(4);
    const auto summary = classifyWindows(trace, 64, 50, sampler);
    EXPECT_EQ(summary.accepted, 0u);
    // And its variance is tiny compared to any active workload.
    EXPECT_NEAR(summary.meanVarianceNonGaussian, 0.0, 1e-12);
}

TEST(WindowAnalysis, OverallVarianceMatchesTrace)
{
    Rng rng(5);
    const CurrentTrace trace = gaussianCurrent(40.0, 5.0, 20000, rng);
    Rng sampler(6);
    const auto summary = classifyWindows(trace, 32, 50, sampler);
    EXPECT_NEAR(summary.overallVariance, 25.0, 2.0);
}

// ---------------------------------------------------------------------------
// Variance model
// ---------------------------------------------------------------------------

TEST(VarianceModel, AnalyticFactorsPeakAtResonantLevel)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    // 125 MHz falls in detail level 3 (94-188 MHz at 3 GHz).
    std::size_t peak = 0;
    for (std::size_t j = 1; j < model.levels(); ++j)
        if (model.baseFactor(j) > model.baseFactor(peak))
            peak = j;
    EXPECT_EQ(peak, 3u);
}

TEST(VarianceModel, TopLevelsSelectsResonantNeighbourhood)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    const auto top = model.topLevels(4);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_TRUE(std::find(top.begin(), top.end(), 3u) != top.end());
}

TEST(VarianceModel, SyntheticCalibrationPredictsHeldOutStimuli)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    Rng rng(7);
    model.calibrate(rng, 8);
    ASSERT_TRUE(model.calibrated());

    // Held-out stimuli: resonant square waves must be predicted to
    // the right order of magnitude. (The synthetic ensemble is the
    // fallback calibration; the production path is calibrateOnTraces,
    // whose end-to-end accuracy is covered by the integration tests.)
    const CurrentTrace wave =
        resonantSquareWave(3.0e9, 125.0e6, 30.0, 60.0, 200);
    const VoltageTrace v = net.computeVoltage(wave);
    RunningStats vs;
    for (std::size_t n = 1024; n < v.size(); ++n)
        vs.push(v[n]);

    const std::span<const double> span(wave.data(), wave.size());
    RunningStats est_var;
    for (std::size_t off = 1024; off + 256 <= wave.size(); off += 256)
        est_var.push(model.estimate(span.subspan(off, 256)).variance);
    EXPECT_GT(est_var.mean(), vs.variance() / 8.0);
    EXPECT_LT(est_var.mean(), vs.variance() * 8.0);
}

TEST(VarianceModel, EstimateMeanIsIrDrop)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    const std::vector<double> window(256, 50.0);
    const auto est = model.estimate(window);
    EXPECT_NEAR(est.mean, net.steadyStateVoltage(50.0), 1e-9);
    EXPECT_NEAR(est.variance, 0.0, 1e-15);
}

TEST(VarianceModel, ContributionsSumToVariance)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    Rng rng(9);
    model.calibrate(rng, 4);
    const CurrentTrace wave =
        resonantSquareWave(3.0e9, 125.0e6, 30.0, 60.0, 16);
    const std::span<const double> span(wave.data(), 256);
    const auto est = model.estimate(span);
    double sum = 0.0;
    for (double c : est.contributions)
        sum += c;
    EXPECT_NEAR(sum, est.variance, 1e-12);
}

TEST(VarianceModel, LevelSubsetOnlyCountsSelectedLevels)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    Rng rng(10);
    CurrentTrace noise = gaussianCurrent(40.0, 8.0, 256, rng);
    const std::span<const double> span(noise.data(), 256);
    const std::vector<std::size_t> only3{3};
    const auto full = model.estimate(span);
    const auto subset = model.estimate(span, only3);
    EXPECT_LT(subset.variance, full.variance);
    EXPECT_NEAR(subset.variance, full.contributions[3], 1e-12);
}

TEST(VarianceModel, CorrelationToggleChangesEstimate)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    Rng rng(11);
    model.calibrate(rng, 4);
    const CurrentTrace wave =
        resonantSquareWave(3.0e9, 125.0e6, 30.0, 60.0, 16);
    const std::span<const double> span(wave.data(), 256);
    const auto with = model.estimate(span, {}, true);
    const auto without = model.estimate(span, {}, false);
    EXPECT_NE(with.variance, without.variance);
}

TEST(VarianceModel, CalibrateOnTracesWorks)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    Rng rng(12);
    std::vector<CurrentTrace> traces;
    traces.push_back(gaussianCurrent(40.0, 6.0, 8192, rng));
    traces.push_back(resonantSquareWave(3.0e9, 125.0e6, 25.0, 70.0, 400));
    traces.push_back(resonantSquareWave(3.0e9, 60.0e6, 30.0, 60.0, 200));
    model.calibrateOnTraces(traces);
    EXPECT_TRUE(model.calibrated());
    EXPECT_GT(model.baseFactor(3), 0.0);
}

TEST(WindowEstimate, GaussianTailProbabilities)
{
    WindowEstimate est;
    est.mean = 0.99;
    est.variance = 1e-4; // sigma = 0.01
    EXPECT_NEAR(est.probBelow(0.99), 0.5, 1e-9);
    EXPECT_NEAR(est.probBelow(0.97), stdNormalCdf(-2.0), 1e-9);
    EXPECT_NEAR(est.probAbove(1.01), 1.0 - stdNormalCdf(2.0), 1e-9);
}

TEST(VarianceModelDeath, EstimateBeforeCalibrationPanics)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    const std::vector<double> window(256, 40.0);
    EXPECT_DEATH((void)model.estimate(window), "before calibration");
}

TEST(VarianceModelDeath, WrongWindowLengthPanics)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    const std::vector<double> window(128, 40.0);
    EXPECT_DEATH((void)model.estimate(window), "expects 256");
}

// ---------------------------------------------------------------------------
// Emergency estimation
// ---------------------------------------------------------------------------

TEST(EmergencyEstimator, QuietTraceHasNoEmergencies)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    Rng rng(13);
    const CurrentTrace trace = gaussianCurrent(30.0, 1.0, 20000, rng);
    const auto profile = profileTrace(trace, net, model, 0.97, 1.03);
    EXPECT_LT(profile.estimatedBelow, 1e-4);
    EXPECT_DOUBLE_EQ(profile.measuredBelow, 0.0);
}

TEST(EmergencyEstimator, ResonantTraceHasEmergencies)
{
    const SupplyNetwork net = testNetwork(1.5);
    VoltageVarianceModel model(net);
    Rng rng(14);
    model.calibrate(rng, 6);
    const CurrentTrace trace =
        resonantSquareWave(3.0e9, 125.0e6, 25.0, 75.0, 2000);
    const auto profile = profileTrace(trace, net, model, 0.97, 1.03);
    EXPECT_GT(profile.measuredBelow, 0.05);
    EXPECT_GT(profile.estimatedBelow, 0.02);
}

TEST(EmergencyEstimator, WindowCountMatchesTraceLength)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    const CurrentTrace trace = constantCurrent(40.0, 256 * 10 + 100);
    const auto profile = profileTrace(trace, net, model, 0.97, 1.03);
    EXPECT_EQ(profile.windows, 10u);
}

// ---------------------------------------------------------------------------
// Monitors
// ---------------------------------------------------------------------------

TEST(WaveletMonitor, FullTermCountIsExactWithinWindow)
{
    const SupplyNetwork net = testNetwork(1.5);
    Rng rng(15);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 4000, rng);
    const VoltageTrace v = net.computeVoltage(trace);
    WaveletMonitor mon(net, 256);
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt est = mon.update(trace[n], v[n]);
        if (n > 512) {
            EXPECT_NEAR(est, v[n], 2e-4) << "cycle " << n;
        }
    }
}

TEST(WaveletMonitor, MatchesFullConvolutionAtFullTerms)
{
    const SupplyNetwork net = testNetwork(1.5);
    Rng rng(16);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 2000, rng);
    WaveletMonitor wm(net, 256);
    FullConvolutionMonitor fc(net);
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt a = wm.update(trace[n], 0.0);
        const Volt b = fc.update(trace[n], 0.0);
        if (n > 512) {
            EXPECT_NEAR(a, b, 2e-4);
        }
    }
}

TEST(WaveletMonitor, ErrorDecreasesWithTerms)
{
    const SupplyNetwork net = testNetwork(1.5);
    Rng rng(17);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 3000, rng);
    const VoltageTrace v = net.computeVoltage(trace);
    double prev_err = 1e9;
    for (std::size_t terms : {1u, 4u, 16u, 64u, 256u}) {
        WaveletMonitor mon(net, terms);
        double max_err = 0.0;
        for (std::size_t n = 0; n < trace.size(); ++n) {
            const Volt est = mon.update(trace[n], v[n]);
            if (n > 512)
                max_err = std::max(max_err, std::fabs(est - v[n]));
        }
        EXPECT_LE(max_err, prev_err * 1.5) << terms;
        prev_err = max_err;
    }
    EXPECT_LT(prev_err, 1e-3);
}

TEST(WaveletMonitor, MaxErrorBoundDecreasing)
{
    const SupplyNetwork net = testNetwork(1.5);
    double prev = 1e9;
    for (std::size_t terms : {1u, 5u, 9u, 13u, 20u, 64u, 256u}) {
        const WaveletMonitor mon(net, terms);
        const Volt bound = mon.maxError(40.0);
        EXPECT_LE(bound, prev + 1e-12);
        prev = bound;
    }
    EXPECT_NEAR(prev, 0.0, 1e-6);
}

TEST(WaveletMonitor, BoundDominatesObservedError)
{
    const SupplyNetwork net = testNetwork(1.5);
    Rng rng(18);
    // Current bounded within 40 +/- 20 A.
    CurrentTrace trace(3000);
    for (auto &x : trace)
        x = 40.0 + (rng.bernoulli(0.5) ? 20.0 : -20.0);
    const VoltageTrace v = net.computeVoltage(trace);
    WaveletMonitor mon(net, 13);
    double max_err = 0.0;
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt est = mon.update(trace[n], v[n]);
        if (n > 512)
            max_err = std::max(max_err, std::fabs(est - v[n]));
    }
    EXPECT_LE(max_err, mon.maxError(20.0) + 1e-6);
}

TEST(WaveletMonitor, TermOrderApproxFirstThenByMagnitude)
{
    // Approximation terms (the IR-drop carriers) are always retained
    // first; remaining detail terms are sorted by weight magnitude.
    const SupplyNetwork net = testNetwork();
    const WaveletMonitor mon(net, 32);
    const auto &terms = mon.terms();
    ASSERT_EQ(terms.size(), 32u);
    EXPECT_EQ(terms[0].level, 8u); // the single approximation term
    for (std::size_t i = 2; i < terms.size(); ++i) {
        EXPECT_NE(terms[i].level, 8u);
        EXPECT_GE(std::fabs(terms[i - 1].weight),
                  std::fabs(terms[i].weight));
    }
}

TEST(WaveletMonitor, SteadyStateTracksIrDrop)
{
    const SupplyNetwork net = testNetwork();
    WaveletMonitor mon(net, 13);
    Volt est = 0.0;
    for (int n = 0; n < 1000; ++n)
        est = mon.update(50.0, 0.0);
    EXPECT_NEAR(est, net.steadyStateVoltage(50.0), 1e-3);
}

TEST(FullConvolutionMonitor, TracksTrueVoltage)
{
    const SupplyNetwork net = testNetwork(1.5);
    Rng rng(19);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 2000, rng);
    const VoltageTrace v = net.computeVoltage(trace);
    FullConvolutionMonitor mon(net);
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt est = mon.update(trace[n], v[n]);
        if (n > mon.termCount()) {
            EXPECT_NEAR(est, v[n], 5e-4);
        }
    }
    // Hundreds of taps: the hardware cost the paper criticizes.
    EXPECT_GT(mon.termCount(), 100u);
}

TEST(AnalogSensorMonitor, DelaysTrueVoltage)
{
    const SupplyNetwork net = testNetwork();
    AnalogSensorMonitor mon(net, 3);
    std::vector<Volt> history;
    for (int n = 0; n < 50; ++n) {
        const Volt truth = 1.0 - 0.001 * n;
        const Volt est = mon.update(0.0, truth);
        history.push_back(truth);
        if (n >= 3) {
            EXPECT_DOUBLE_EQ(est, history[n - 3]);
        }
    }
}

// ---------------------------------------------------------------------------
// Controllers
// ---------------------------------------------------------------------------

TEST(ControlConfig, ControlPointsFromTolerance)
{
    ControlConfig cfg;
    cfg.tolerance = 0.010;
    EXPECT_DOUBLE_EQ(cfg.lowControl(), 0.96);
    EXPECT_DOUBLE_EQ(cfg.highControl(), 1.04);
}

TEST(ThresholdController, StallsBelowLowControl)
{
    ThresholdController ctl(ControlConfig{});
    const auto actions = ctl.decide(0.955);
    EXPECT_TRUE(actions.stallIssue);
    EXPECT_FALSE(actions.injectNoops);
}

TEST(ThresholdController, InjectsAboveHighControl)
{
    ThresholdController ctl(ControlConfig{});
    const auto actions = ctl.decide(1.045);
    EXPECT_FALSE(actions.stallIssue);
    EXPECT_TRUE(actions.injectNoops);
}

TEST(ThresholdController, QuietInsideBand)
{
    ThresholdController ctl(ControlConfig{});
    const auto actions = ctl.decide(1.0);
    EXPECT_FALSE(actions.stallIssue);
    EXPECT_FALSE(actions.injectNoops);
    EXPECT_EQ(ctl.controlCycles(), 0u);
}

TEST(ThresholdController, CountsActivity)
{
    ThresholdController ctl(ControlConfig{});
    ctl.decide(0.95);
    ctl.decide(1.05);
    ctl.decide(1.0);
    EXPECT_EQ(ctl.controlCycles(), 2u);
    EXPECT_EQ(ctl.stallCycles(), 1u);
    EXPECT_EQ(ctl.noopCycles(), 1u);
}

TEST(ThresholdControllerDeath, EmptyBandIsFatal)
{
    ControlConfig cfg;
    cfg.tolerance = 0.06; // 0.95+0.06 > 1.05-0.06
    EXPECT_EXIT(ThresholdController ctl(cfg), ::testing::ExitedWithCode(1),
                "control window");
}

TEST(PipelineDamping, TriggersOnRisingCurrent)
{
    PipelineDampingController ctl(8, 10.0);
    for (int i = 0; i < 8; ++i)
        ctl.decide(20.0);
    const auto actions = ctl.decide(35.0); // +15 over the window
    EXPECT_TRUE(actions.stallIssue);
}

TEST(PipelineDamping, TriggersOnFallingCurrent)
{
    PipelineDampingController ctl(8, 10.0);
    for (int i = 0; i < 8; ++i)
        ctl.decide(50.0);
    const auto actions = ctl.decide(30.0);
    EXPECT_TRUE(actions.injectNoops);
}

TEST(PipelineDamping, QuietWithinDelta)
{
    PipelineDampingController ctl(8, 10.0);
    for (int i = 0; i < 32; ++i) {
        const auto actions = ctl.decide(40.0 + (i % 2 ? 3.0 : -3.0));
        EXPECT_FALSE(actions.stallIssue);
        EXPECT_FALSE(actions.injectNoops);
    }
    EXPECT_EQ(ctl.controlCycles(), 0u);
}

TEST(PipelineDamping, InactiveUntilWindowFills)
{
    PipelineDampingController ctl(16, 5.0);
    for (int i = 0; i < 15; ++i) {
        const auto actions = ctl.decide(i % 2 ? 100.0 : 0.0);
        EXPECT_FALSE(actions.stallIssue);
        EXPECT_FALSE(actions.injectNoops);
    }
}

} // namespace
} // namespace didt
