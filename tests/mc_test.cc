/**
 * @file
 * Tests for the Monte Carlo variation layer: determinism of the draw
 * seeding, byte identity of MC campaign JSON across worker counts and
 * across the batch/served paths, yield-curve shape invariants, spec
 * round-tripping of the mc_* fields, and the guarantee that an MC-off
 * campaign emits exactly the pre-MC schema (no draw column, no
 * monte_carlo section, no mc_* spec members).
 */

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "power/variation.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/json.hh"
#include "verify/oracle.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

/** A small but real Monte Carlo sweep: 2 workloads x 1 scale x 6
 *  draws, short enough for a unit test, long enough that the yield
 *  curve has structure. */
CampaignSpec
mcSpec()
{
    CampaignSpec spec;
    spec.profiles = {profileByName("gzip"), profileByName("mcf")};
    spec.impedanceScales = {1.2};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 8000;
    spec.mcDraws = 6;
    spec.mcSeed = 42;
    spec.mcSigmaR = 0.08;
    spec.mcSigmaResonance = 0.08;
    spec.mcSigmaQ = 0.05;
    return spec;
}

/** Serialize a campaign result to its canonical JSON bytes. */
std::string
resultBytes(const CampaignResult &result)
{
    std::ostringstream out;
    campaignToJson(result).write(out);
    return out.str();
}

/** Run @p spec on a fresh repository at @p jobs workers. */
CampaignResult
runFresh(const CampaignSpec &spec, std::size_t jobs)
{
    TraceRepository repo(sharedSetup());
    return runCharacterizationCampaign(sharedSetup(), spec, repo, jobs);
}

/** Unique short socket path (sun_path caps at ~107 bytes). */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/didt_mc_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Draw seeding
// ---------------------------------------------------------------------------

TEST(McDraws, SeedDerivationIsDeterministicAndDistinct)
{
    const std::uint64_t a0 = deriveDrawSeed(7, 0);
    const std::uint64_t a0_again = deriveDrawSeed(7, 0);
    EXPECT_EQ(a0, a0_again);

    // Distinct draw indices and distinct campaign seeds must map to
    // distinct streams (splitmix64 is a bijection per key).
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t seed : {0ull, 7ull, 42ull})
        for (std::size_t draw = 0; draw < 16; ++draw)
            seeds.push_back(deriveDrawSeed(seed, draw));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

TEST(McDraws, DrawSeedsDoNotCollideWithCoreSeeds)
{
    // The draw-seed stream carries its own tag, so draw 0 of campaign
    // seed S never equals the plain splitmix64 output another
    // subsystem would derive from S.
    EXPECT_NE(deriveDrawSeed(42, 0), 42u);
    EXPECT_NE(deriveDrawSeed(0, 0), deriveDrawSeed(1, 0));
}

TEST(McDraws, OracleVariationChecksPass)
{
    const verify::Oracle oracle(sharedSetup());
    const verify::VariationOracleReport report =
        oracle.checkVariation(profileByName("gzip"));
    EXPECT_TRUE(report.zeroSigmaConfigBitIdentical);
    EXPECT_TRUE(report.zeroSigmaVoltageBitIdentical);
    EXPECT_TRUE(report.drawDeterministic);
    EXPECT_TRUE(report.nonzeroSigmaPerturbs);
    EXPECT_TRUE(report.pass);
}

TEST(McDraws, ZeroSigmaDimensionsStayNominalIndividually)
{
    SupplyNetworkConfig base = sharedSetup().supplyBase;
    base.impedanceScale = 1.2;

    // Perturb only the resonance: R and Q must remain bit-identical
    // (the three normal draws always happen, but zero-sigma
    // dimensions never touch the field).
    SupplyVariationSpec only_f;
    only_f.sigmaResonance = 0.1;
    const SupplyNetworkConfig drawn =
        drawSupplyConfig(base, only_f, deriveDrawSeed(9, 3));
    EXPECT_EQ(drawn.dcResistance, base.dcResistance);
    EXPECT_EQ(drawn.qualityFactor, base.qualityFactor);
    EXPECT_NE(drawn.resonantHz, base.resonantHz);
}

// ---------------------------------------------------------------------------
// Campaign determinism and byte identity
// ---------------------------------------------------------------------------

TEST(McCampaign, JsonByteIdenticalAcrossJobCounts)
{
    const CampaignSpec spec = mcSpec();
    const std::string serial = resultBytes(runFresh(spec, 1));
    const std::string parallel = resultBytes(runFresh(spec, 4));
    EXPECT_EQ(serial, parallel);
}

TEST(McCampaign, SameSeedReproducesDifferentSeedDoesNot)
{
    const CampaignSpec spec = mcSpec();
    const std::string first = resultBytes(runFresh(spec, 2));
    const std::string again = resultBytes(runFresh(spec, 2));
    EXPECT_EQ(first, again);

    CampaignSpec reseeded = spec;
    reseeded.mcSeed = spec.mcSeed + 1;
    const std::string other = resultBytes(runFresh(reseeded, 2));
    EXPECT_NE(first, other);
}

TEST(McCampaign, CellsCarryDrawIndicesInnermost)
{
    const CampaignSpec spec = mcSpec();
    const CampaignResult result = runFresh(spec, 2);
    ASSERT_EQ(result.cells.size(), spec.profiles.size() *
                                       spec.impedanceScales.size() *
                                       spec.mcDraws);
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const CampaignCell &cell = result.cells[i];
        EXPECT_EQ(cell.draw, i % spec.mcDraws);
        EXPECT_FALSE(cell.failed) << cell.error;
    }
    // Draws of one group share the workload and scale; different
    // draws genuinely perturb the measured emergency statistics.
    const CampaignCell &d0 = result.cells[0];
    const CampaignCell &d1 = result.cells[1];
    EXPECT_EQ(d0.benchmark, d1.benchmark);
    EXPECT_EQ(d0.impedanceScale, d1.impedanceScale);
    EXPECT_NE(d0.measuredBelowPct + d0.measuredAbovePct,
              d1.measuredBelowPct + d1.measuredAbovePct);
}

TEST(McCampaign, YieldCurveIsMonotoneNonIncreasing)
{
    const JsonValue doc = parseJson(resultBytes(runFresh(mcSpec(), 2)));
    const JsonValue *mc = doc.find("monte_carlo");
    ASSERT_NE(mc, nullptr);
    EXPECT_EQ(mc->find("draws")->asNumber(), 6.0);
    const JsonValue *groups = mc->find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_EQ(groups->items().size(), 2u);
    for (const JsonValue &group : groups->items()) {
        ASSERT_EQ(group.find("completed_draws")->asNumber(), 6.0);
        const JsonValue *curve = group.find("yield_curve");
        ASSERT_NE(curve, nullptr);
        ASSERT_GT(curve->items().size(), 1u);
        double previous = 1.0;
        for (const JsonValue &point : curve->items()) {
            const double frac =
                point.find("exceed_fraction")->asNumber();
            EXPECT_GE(frac, 0.0);
            EXPECT_LE(frac, previous);
            previous = frac;
        }
    }
}

TEST(McCampaign, OffSpecEmitsPreMonteCarloSchema)
{
    CampaignSpec spec = mcSpec();
    spec.mcDraws = 0;
    ASSERT_FALSE(spec.isMonteCarlo());

    const std::string bytes = resultBytes(runFresh(spec, 2));
    EXPECT_EQ(bytes.find("monte_carlo"), std::string::npos);
    EXPECT_EQ(bytes.find("\"draw\""), std::string::npos);
    EXPECT_EQ(bytes.find("mc_draws"), std::string::npos);
    EXPECT_EQ(bytes.find("mc_seed"), std::string::npos);
    EXPECT_EQ(bytes.find("mc_sigma"), std::string::npos);
}

TEST(McCampaign, SpecJsonRoundTripsMonteCarloFields)
{
    const CampaignSpec spec = mcSpec();
    CampaignSpec parsed;
    std::string error;
    ASSERT_TRUE(campaignSpecFromJson(campaignSpecToJson(spec), &parsed,
                                     &error))
        << error;
    EXPECT_EQ(parsed.mcDraws, spec.mcDraws);
    EXPECT_EQ(parsed.mcSeed, spec.mcSeed);
    EXPECT_EQ(parsed.mcSigmaR, spec.mcSigmaR);
    EXPECT_EQ(parsed.mcSigmaResonance, spec.mcSigmaResonance);
    EXPECT_EQ(parsed.mcSigmaQ, spec.mcSigmaQ);

    // And an MC-off spec round-trips to an MC-off spec.
    CampaignSpec off = spec;
    off.mcDraws = 0;
    CampaignSpec parsed_off;
    ASSERT_TRUE(campaignSpecFromJson(campaignSpecToJson(off),
                                     &parsed_off, &error))
        << error;
    EXPECT_FALSE(parsed_off.isMonteCarlo());
}

// ---------------------------------------------------------------------------
// Served replay
// ---------------------------------------------------------------------------

TEST(McServe, ServedMonteCarloResultIsByteIdenticalToBatch)
{
    const CampaignSpec spec = mcSpec();

    // Reference: the batch path at --jobs 1 with a fresh repository.
    const std::string batch = resultBytes(runFresh(spec, 1));

    serve::ServerConfig config;
    config.unixPath = testSocketPath("ident");
    config.jobs = 2;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(config.unixPath, &error)) << error;
    std::string payload;
    ASSERT_TRUE(client.call(serve::characterizeRequestJson(
                                "mc1", campaignSpecToJson(spec)),
                            &payload, &error))
        << error;
    const JsonValue response = parseJson(payload);
    ASSERT_EQ(response.find("type")->asString(), "result")
        << response.dump();
    std::ostringstream served;
    response.find("result")->write(served);
    EXPECT_EQ(served.str(), batch);

    // The daemon advertises the capability it just exercised.
    std::string pong_payload;
    ASSERT_TRUE(client.call(serve::pingRequestJson("p"), &pong_payload,
                            &error))
        << error;
    const std::string &features =
        pong_payload; // raw bytes are enough for a membership check
    EXPECT_NE(features.find("\"mc\""), std::string::npos);
}

} // namespace
} // namespace didt
