/**
 * @file
 * Unit tests for the runner subsystem: ThreadPool exception
 * propagation and ordering, TraceRepository hit/miss accounting and
 * disk persistence, campaign result shape, and the JSON document
 * model (escaping, round-trip, strict parsing).
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/thread_pool.hh"
#include "runner/trace_repository.hh"

namespace didt
{
namespace
{

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto a = pool.submit([] { return 7; });
    auto b = pool.submit([] { return std::string("didt"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "didt");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("cell failed"); });
    auto good = pool.submit([] { return 1; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(good.get(), 1);
}

TEST(ThreadPool, ParallelForRethrowsAfterAllIterationsFinish)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      ++ran;
                                      if (i == 13)
                                          throw std::runtime_error("13");
                                  }),
                 std::runtime_error);
    // Every iteration ran before the rethrow: no silently skipped work.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 50; ++i)
        pending.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : pending)
        f.get();
    std::vector<int> expected(50);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, StressManySmallTasks)
{
    ThreadPool pool(8);
    std::atomic<long long> sum{0};
    std::vector<std::future<void>> pending;
    pending.reserve(2000);
    for (int i = 1; i <= 2000; ++i)
        pending.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &f : pending)
        f.get();
    EXPECT_EQ(sum.load(), 2000LL * 2001 / 2);
}

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(ThreadPool::resolveJobs(3), 3u);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
}

// ---------------------------------------------------------------------------
// TraceRepository
// ---------------------------------------------------------------------------

/** A deliberately tiny benchmark so repository tests stay fast. */
BenchmarkProfile
tinyProfile(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile prof;
    prof.name = name;
    prof.seed = seed;
    WorkloadPhase phase;
    phase.lengthInsts = 4000;
    prof.phases = {phase};
    return prof;
}

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

TEST(Fingerprint, SensitiveToEveryRequestField)
{
    TraceRequest base;
    base.profile = tinyProfile("fp", 1);
    const std::uint64_t h0 = fingerprintTraceRequest(base);
    EXPECT_EQ(fingerprintTraceRequest(base), h0) << "must be stable";

    TraceRequest r = base;
    r.instructions += 1;
    EXPECT_NE(fingerprintTraceRequest(r), h0);
    r = base;
    r.seed += 1;
    EXPECT_NE(fingerprintTraceRequest(r), h0);
    r = base;
    r.trimWarmup += 1;
    EXPECT_NE(fingerprintTraceRequest(r), h0);
    r = base;
    r.profile.seed += 1;
    EXPECT_NE(fingerprintTraceRequest(r), h0);
    r = base;
    r.profile.phases[0].hotProb += 0.001;
    EXPECT_NE(fingerprintTraceRequest(r), h0);
    r = base;
    r.profile.name = "fq";
    EXPECT_NE(fingerprintTraceRequest(r), h0);
}

TEST(TraceRepository, HitAndMissAccounting)
{
    TraceRepository repo(sharedSetup());
    const BenchmarkProfile prof = tinyProfile("acct", 11);

    const auto first = repo.get(prof, 3000);
    const auto second = repo.get(prof, 3000);
    const auto other = repo.get(prof, 2000);

    EXPECT_EQ(first.get(), second.get()) << "same trace object shared";
    EXPECT_NE(first.get(), other.get());

    const TraceCacheStats stats = repo.stats();
    EXPECT_EQ(stats.lookups, 3u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.simulations, 2u);
    EXPECT_EQ(stats.diskLoads, 0u);
    EXPECT_EQ(repo.residentTraces(), 2u);
}

TEST(TraceRepository, ConcurrentRequestsSimulateOnce)
{
    TraceRepository repo(sharedSetup());
    const BenchmarkProfile prof = tinyProfile("conc", 12);

    ThreadPool pool(8);
    std::vector<std::future<std::shared_ptr<const CurrentTrace>>> got;
    for (int i = 0; i < 16; ++i)
        got.push_back(
            pool.submit([&] { return repo.get(prof, 3000); }));
    const auto reference = got[0].get();
    for (auto &f : got) {
        if (f.valid()) {
            EXPECT_EQ(f.get().get(), reference.get());
        }
    }

    const TraceCacheStats stats = repo.stats();
    EXPECT_EQ(stats.lookups, 16u);
    EXPECT_EQ(stats.simulations, 1u)
        << "concurrent misses of one key must simulate exactly once";
    EXPECT_EQ(stats.memoryHits, 15u);
}

TEST(TraceRepository, DiskPersistenceRoundTrip)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_repo_test")
            .string();
    std::filesystem::remove_all(dir);
    const BenchmarkProfile prof = tinyProfile("disk", 13);

    CurrentTrace simulated;
    {
        TraceRepository repo(sharedSetup(), dir);
        simulated = *repo.get(prof, 3000);
        EXPECT_EQ(repo.stats().simulations, 1u);
        EXPECT_EQ(repo.stats().diskStores, 1u);
        EXPECT_TRUE(
            std::filesystem::exists(repo.cachePath(TraceRequest{
                prof, 3000, 0, 4096})));
    }
    {
        TraceRepository repo(sharedSetup(), dir);
        const auto loaded = repo.get(prof, 3000);
        const TraceCacheStats stats = repo.stats();
        EXPECT_EQ(stats.simulations, 0u);
        EXPECT_EQ(stats.diskLoads, 1u);
        EXPECT_EQ(stats.diskStores, 0u);
        EXPECT_EQ(stats.diskCorrupt, 0u);
        EXPECT_EQ(*loaded, simulated) << "persisted trace bit-identical";
    }
    std::filesystem::remove_all(dir);
}

TEST(TraceRepository, CorruptCacheFileIsAMiss)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_repo_corrupt")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const BenchmarkProfile prof = tinyProfile("corrupt", 14);

    TraceRepository repo(sharedSetup(), dir);
    {
        std::ofstream bad(repo.cachePath(TraceRequest{prof, 3000, 0,
                                                      4096}),
                          std::ios::binary);
        bad << "not a trace";
    }
    const auto trace = repo.get(prof, 3000);
    EXPECT_FALSE(trace->empty());
    EXPECT_EQ(repo.stats().simulations, 1u)
        << "corrupt file must fall back to simulation";
    EXPECT_EQ(repo.stats().diskCorrupt, 1u)
        << "the rejected file must be counted";
    EXPECT_EQ(repo.stats().diskStores, 1u)
        << "the corrupt file must be rewritten";
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    spec.profiles = {tinyProfile("cell-a", 21), tinyProfile("cell-b", 22)};
    spec.impedanceScales = {1.0, 1.4};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 6000;
    return spec;
}

TEST(Campaign, ResultShapeAndCacheReuse)
{
    const CampaignSpec spec = tinySpec();
    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), spec, repo, 2);

    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.jobs, 2u);
    // Benchmark-major, scale-minor ordering.
    EXPECT_EQ(result.cells[0].benchmark, "cell-a");
    EXPECT_DOUBLE_EQ(result.cells[0].impedanceScale, 1.0);
    EXPECT_EQ(result.cells[1].benchmark, "cell-a");
    EXPECT_DOUBLE_EQ(result.cells[1].impedanceScale, 1.4);
    EXPECT_EQ(result.cells[2].benchmark, "cell-b");
    EXPECT_EQ(result.cells[3].benchmark, "cell-b");

    for (const CampaignCell &cell : result.cells) {
        EXPECT_GT(cell.traceCycles, spec.windowLength);
        EXPECT_GT(cell.windows, 0u);
        EXPECT_GE(cell.measuredBelowPct, 0.0);
        EXPECT_LE(cell.measuredBelowPct, 100.0);
        EXPECT_GT(cell.measuredVariance, 0.0);
        EXPECT_GT(cell.estimatedVariance, 0.0);
    }

    // The sweep shares one trace per benchmark across both scales.
    EXPECT_EQ(result.cacheStats.lookups, 4u);
    EXPECT_EQ(result.cacheStats.simulations, 2u)
        << "each benchmark simulated exactly once";
    EXPECT_EQ(result.cacheStats.memoryHits, 2u);

    // A higher target impedance strictly degrades the voltage.
    EXPECT_GT(result.cells[1].measuredVariance,
              result.cells[0].measuredVariance);
}

TEST(Campaign, GenericCellFanOutPreservesIndexOrder)
{
    const std::vector<int> out = runCampaignCells<int>(
        100, 4, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Campaign, GenericCellFanOutPropagatesExceptions)
{
    EXPECT_THROW(runCampaignCells<int>(10, 4,
                                       [](std::size_t i) -> int {
                                           if (i == 7)
                                               throw std::runtime_error(
                                                   "cell 7");
                                           return 0;
                                       }),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, StringRoundTripThroughParser)
{
    const std::string nasty = "quote\" slash\\ nl\n tab\t ctl\x02 end";
    JsonValue v(nasty);
    const JsonValue back = parseJson(v.dump());
    EXPECT_EQ(back.asString(), nasty);
}

TEST(Json, NumberRoundTripIsExact)
{
    for (double x : {0.0, -1.0, 3.0, 0.1, -2.5e-7, 1.0 / 3.0,
                     123456789.123456789, 1e15, -1e-15}) {
        const JsonValue back = parseJson(JsonValue(x).dump());
        EXPECT_EQ(back.asNumber(), x) << "value " << x;
    }
}

TEST(Json, DocumentRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", "didt \"campaign\"");
    doc.set("count", static_cast<long long>(42));
    doc.set("ratio", 0.9400000000000001);
    doc.set("ok", true);
    doc.set("missing", JsonValue());
    JsonValue arr = JsonValue::array();
    arr.push(1.0);
    arr.push("two");
    arr.push(false);
    JsonValue nested = JsonValue::object();
    nested.set("k", "v");
    arr.push(std::move(nested));
    doc.set("items", std::move(arr));

    const JsonValue back = parseJson(doc.dump());
    EXPECT_TRUE(back == doc);
    EXPECT_EQ(back.dump(), doc.dump()) << "writer is deterministic";
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parseJson("\"bad \\q escape\""), std::runtime_error);
    EXPECT_THROW(parseJson("12x"), std::runtime_error);
    EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("tru"), std::runtime_error);
}

TEST(Json, CampaignDocumentShape)
{
    const CampaignSpec spec = tinySpec();
    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), spec, repo, 2);

    const JsonValue doc = campaignToJson(result);
    EXPECT_EQ(doc.find("schema")->asString(), "didt-campaign-v1");
    ASSERT_NE(doc.find("spec"), nullptr);
    EXPECT_EQ(doc.find("spec")->find("benchmarks")->items().size(), 2u);
    ASSERT_NE(doc.find("cache"), nullptr);
    EXPECT_EQ(doc.find("cache")->find("simulations")->asNumber(), 2.0);
    ASSERT_NE(doc.find("cells"), nullptr);
    EXPECT_EQ(doc.find("cells")->items().size(), 4u);
    const JsonValue &cell = doc.find("cells")->items()[0];
    EXPECT_EQ(cell.find("benchmark")->asString(), "cell-a");
    ASSERT_NE(cell.find("measured_below_pct"), nullptr);
    EXPECT_EQ(doc.find("timing"), nullptr)
        << "timing omitted by default for byte-stable output";

    // With timing requested the section appears.
    const JsonValue timed = campaignToJson(result, true);
    ASSERT_NE(timed.find("timing"), nullptr);
    EXPECT_EQ(timed.find("timing")->find("cell_ms")->items().size(), 4u);

    // And the whole document survives a parse round-trip.
    EXPECT_TRUE(parseJson(doc.dump()) == doc);
}

} // namespace
} // namespace didt
