/**
 * @file
 * Tests for the wavelet packet transform: tree structure, energy
 * preservation, frequency ordering, band isolation, and best-basis
 * selection.
 */

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "wavelet/fourier.hh"
#include "wavelet/packet.hh"

namespace didt
{
namespace
{

std::vector<double>
tone(std::size_t n, double cycles_per_period, double amp = 1.0)
{
    std::vector<double> x(n);
    for (std::size_t t = 0; t < n; ++t)
        x[t] = amp * std::sin(2.0 * M_PI * static_cast<double>(t) /
                              cycles_per_period);
    return x;
}

TEST(PacketOrder, GrayCodePermutation)
{
    // Depth 2: natural positions LL,LH,HL,HH map to frequency bands
    // 0,1,3,2, so frequency order visits naturals {0,1,3,2}.
    const auto order = packetFrequencyOrder(2);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 3u);
    EXPECT_EQ(order[3], 2u);
}

TEST(PacketOrder, IsAPermutation)
{
    for (std::size_t depth : {1u, 3u, 5u}) {
        const auto order = packetFrequencyOrder(depth);
        std::vector<bool> seen(order.size(), false);
        for (std::size_t p : order) {
            ASSERT_LT(p, order.size());
            ASSERT_FALSE(seen[p]);
            seen[p] = true;
        }
    }
}

TEST(PacketTree, NodeSizesHalveByLevel)
{
    Rng rng(1);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.normal();
    const WaveletPacketTree tree(WaveletBasis::haar(), x, 4);
    EXPECT_EQ(tree.node(0, 0).size(), 128u);
    EXPECT_EQ(tree.node(2, 3).size(), 32u);
    EXPECT_EQ(tree.node(4, 15).size(), 8u);
}

TEST(PacketTree, EnergyPreservedAtEveryLevel)
{
    Rng rng(2);
    std::vector<double> x(256);
    for (auto &v : x)
        v = rng.normal(3.0, 2.0);
    const WaveletPacketTree tree(WaveletBasis::daubechies4(), x, 5);
    const double total = tree.nodeEnergy(0, 0);
    for (std::size_t level = 1; level <= 5; ++level) {
        double level_energy = 0.0;
        for (std::size_t p = 0; p < (std::size_t(1) << level); ++p)
            level_energy += tree.nodeEnergy(level, p);
        EXPECT_NEAR(level_energy, total, 1e-7 * total) << level;
    }
}

TEST(PacketTree, ToneLandsInMatchingFrequencyBand)
{
    // Depth 4 over 512 samples: 16 uniform bands of width fs/32.
    // A tone with period 512/88 samples sits at normalized frequency
    // 88/512 = 0.171875 of fs -> band floor(0.171875 * 32) = 5.
    const std::size_t n = 512;
    const auto x = tone(n, static_cast<double>(n) / 88.0, 5.0);
    const WaveletPacketTree tree(WaveletBasis::daubechies6(), x, 4);
    const auto variances = tree.bandVariances();
    ASSERT_EQ(variances.size(), 16u);
    std::size_t peak = 0;
    for (std::size_t b = 1; b < variances.size(); ++b)
        if (variances[b] > variances[peak])
            peak = b;
    EXPECT_EQ(peak, 5u);
}

TEST(PacketTree, BandVariancesSumToSignalVariance)
{
    Rng rng(3);
    std::vector<double> x(256);
    for (auto &v : x)
        v = rng.normal(40.0, 8.0);
    const WaveletPacketTree tree(WaveletBasis::haar(), x, 4);
    const auto variances = tree.bandVariances();
    double sum = 0.0;
    for (double v : variances)
        sum += v;
    EXPECT_NEAR(sum, variance(x), 1e-6 * variance(x));
}

TEST(PacketTree, PacketBandsRefineDwtScale)
{
    // Two tones inside the same DWT octave (94-188 MHz at 3 GHz,
    // i.e. periods 16-32 cycles) but in different packet bands. Use
    // exact FFT bins so no leakage blurs the band boundary.
    const std::size_t n = 1024;
    std::vector<double> x(n, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
        const double tt = static_cast<double>(t);
        x[t] += 3.0 * std::sin(2.0 * M_PI * 36.0 * tt /
                               static_cast<double>(n)); // ~105 MHz
        x[t] += 3.0 * std::sin(2.0 * M_PI * 60.0 * tt /
                               static_cast<double>(n)); // ~176 MHz
    }

    const WaveletPacketTree tree(WaveletBasis::daubechies6(), x, 5);
    const auto variances = tree.bandVariances(); // 32 bands of fs/64
    // bin 36/1024 * 64 = 2.25 -> band 2; bin 60 -> 3.75 -> band 3.
    // Short filters leak at band edges, so assert ranking: the two
    // tone bands are the two largest of the 32, and together carry
    // the majority of the variance — a resolution the plain DWT
    // cannot offer (both tones share its level-3 octave).
    std::vector<std::size_t> rank(variances.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
        return variances[a] > variances[b];
    });
    EXPECT_TRUE((rank[0] == 2 && rank[1] == 3) ||
                (rank[0] == 3 && rank[1] == 2))
        << rank[0] << "," << rank[1];
    EXPECT_GT(variances[2] + variances[3], 0.5 * variance(x));
}

TEST(BestBasis, CoversTheTimeFrequencyPlaneExactly)
{
    Rng rng(4);
    std::vector<double> x(128);
    for (auto &v : x)
        v = rng.normal();
    const WaveletPacketTree tree(WaveletBasis::haar(), x, 4);
    const auto basis = tree.bestBasis();
    // The chosen nodes' spans must tile the signal length exactly.
    double covered = 0.0;
    for (const auto &[level, p] : basis) {
        EXPECT_LE(level, 4u);
        EXPECT_LT(p, std::size_t(1) << level);
        covered += 1.0 / static_cast<double>(std::size_t(1) << level);
    }
    EXPECT_NEAR(covered, 1.0, 1e-12);
}

TEST(BestBasis, PureToneKeepsDeepNodes)
{
    // A narrowband tone compresses best in deep (narrow) bands: the
    // best basis should not just return the root.
    const auto x = tone(256, 16.0, 5.0);
    const WaveletPacketTree tree(WaveletBasis::daubechies6(), x, 4);
    const auto basis = tree.bestBasis();
    EXPECT_GT(basis.size(), 1u);
}

TEST(BestBasis, ImpulseKeepsRoot)
{
    // A single impulse is already maximally sparse in time: any
    // filtering spreads it, so the root (the raw signal) wins.
    std::vector<double> x(128, 0.0);
    x[57] = 10.0;
    const WaveletPacketTree tree(WaveletBasis::daubechies6(), x, 4);
    const auto basis = tree.bestBasis();
    ASSERT_EQ(basis.size(), 1u);
    EXPECT_EQ(basis[0].first, 0u);
}

TEST(PacketTreeDeath, BadLengthPanics)
{
    const std::vector<double> x(100, 1.0);
    EXPECT_DEATH(WaveletPacketTree(WaveletBasis::haar(), x, 4),
                 "not divisible");
}

} // namespace
} // namespace didt
