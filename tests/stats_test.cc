/**
 * @file
 * Unit tests for the statistics library: running stats, histograms,
 * Gaussian distribution functions, and the chi-square normality test.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/chi_square.hh"
#include "stats/gaussian.hh"
#include "stats/histogram.hh"
#include "stats/quantiles.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.push(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownValues)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombinedStream)
{
    Rng rng(3);
    RunningStats combined;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(3.0, 2.0);
        combined.push(x);
        (i % 2 ? a : b).push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.push(1.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, ClearResets)
{
    RunningStats s;
    s.push(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(BatchStats, MeanAndVariance)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(variance(xs), 1.25);
}

TEST(BatchStats, CovarianceOfLinearlyRelated)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
    EXPECT_DOUBLE_EQ(covariance(xs, ys), 2.0 * variance(xs));
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(BatchStats, PearsonAnticorrelation)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{3.0, 2.0, 1.0};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(BatchStats, PearsonZeroVarianceIsZero)
{
    const std::vector<double> xs{1.0, 1.0, 1.0};
    const std::vector<double> ys{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(BatchStats, Lag1OfAlternatingIsNegative)
{
    std::vector<double> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_NEAR(lag1Autocorrelation(xs), -1.0, 0.05);
}

TEST(BatchStats, Lag1OfSlowRampIsPositive)
{
    std::vector<double> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(std::sin(2.0 * M_PI * i / 64.0));
    EXPECT_GT(lag1Autocorrelation(xs), 0.9);
}

TEST(BatchStats, LagAutocorrelationOfPeriod2)
{
    std::vector<double> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_NEAR(lagAutocorrelation(xs, 2), 1.0, 0.05);
}

TEST(BatchStats, LagAutocorrelationDegenerate)
{
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_DOUBLE_EQ(lagAutocorrelation(xs, 5), 0.0);
    EXPECT_DOUBLE_EQ(lagAutocorrelation(xs, 0), 0.0);
}

TEST(BatchStats, RmsErrorKnown)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{2.0, 2.0, 5.0};
    EXPECT_NEAR(rmsError(a, b), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(rmsError(a, a), 0.0);
}

TEST(Histogram, BasicBinning)
{
    Histogram h(0.0, 10.0, 10);
    h.push(0.5);
    h.push(1.5);
    h.push(1.6);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 3.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.push(-5.0);
    h.push(17.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
    EXPECT_DOUBLE_EQ(h.binWidth(), 0.25);
}

TEST(Histogram, FractionBelowExactBinBoundary)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.push(i + 0.5);
    EXPECT_NEAR(h.fractionBelow(5.0), 0.5, 1e-12);
}

TEST(Histogram, FractionBelowInterpolatesWithinBin)
{
    Histogram h(0.0, 1.0, 1);
    for (int i = 0; i < 100; ++i)
        h.push(0.5);
    // Uniform-density assumption within the single bin.
    EXPECT_NEAR(h.fractionBelow(0.25), 0.25, 0.01);
}

TEST(Histogram, ClearResets)
{
    Histogram h(0.0, 1.0, 2);
    h.push(0.1);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(Gaussian, StandardCdfKnownValues)
{
    EXPECT_NEAR(stdNormalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(stdNormalCdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(stdNormalCdf(-1.96), 0.024997895, 1e-6);
    EXPECT_NEAR(stdNormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(Gaussian, QuantileInvertsCdf)
{
    for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
        const double z = stdNormalQuantile(p);
        EXPECT_NEAR(stdNormalCdf(z), p, 1e-9) << "p = " << p;
    }
}

TEST(Gaussian, PdfIntegratesToOne)
{
    const Gaussian g(2.0, 0.5);
    double integral = 0.0;
    const double dx = 0.001;
    for (double x = -2.0; x < 6.0; x += dx)
        integral += g.pdf(x) * dx;
    EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Gaussian, ShiftedAndScaled)
{
    const Gaussian g(10.0, 2.0);
    EXPECT_NEAR(g.cdf(10.0), 0.5, 1e-12);
    EXPECT_NEAR(g.cdf(12.0), stdNormalCdf(1.0), 1e-12);
    EXPECT_NEAR(g.tail(12.0), 1.0 - stdNormalCdf(1.0), 1e-12);
    EXPECT_NEAR(g.quantile(0.5), 10.0, 1e-9);
}

TEST(Gaussian, PointMass)
{
    const Gaussian g(1.0, 0.0);
    EXPECT_DOUBLE_EQ(g.cdf(0.999), 0.0);
    EXPECT_DOUBLE_EQ(g.cdf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(g.quantile(0.3), 1.0);
}

TEST(ChiSquare, CdfKnownValues)
{
    // Classic table values.
    EXPECT_NEAR(chiSquareCdf(3.841, 1), 0.95, 1e-3);
    EXPECT_NEAR(chiSquareCdf(5.991, 2), 0.95, 1e-3);
    EXPECT_NEAR(chiSquareCdf(11.070, 5), 0.95, 1e-3);
    EXPECT_NEAR(chiSquareCdf(18.307, 10), 0.95, 1e-3);
}

TEST(ChiSquare, CdfMonotone)
{
    double prev = 0.0;
    for (double x = 0.0; x < 30.0; x += 0.5) {
        const double c = chiSquareCdf(x, 4);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(ChiSquare, CriticalValueInvertsCdf)
{
    for (std::size_t dof : {1u, 3u, 7u, 20u}) {
        const double crit = chiSquareCriticalValue(dof, 0.05);
        EXPECT_NEAR(chiSquareCdf(crit, dof), 0.95, 1e-6);
    }
}

TEST(ChiSquare, RegularizedGammaBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedGammaP(1.0, 0.0), 0.0);
    // P(1, x) = 1 - exp(-x).
    EXPECT_NEAR(regularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
}

TEST(Normality, AcceptsGaussianSamples)
{
    Rng rng(21);
    int accepted = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs(128);
        for (auto &x : xs)
            x = rng.normal(40.0, 5.0);
        if (chiSquareNormalityTest(xs).accepted)
            ++accepted;
    }
    // At 95% significance roughly 95% of truly Gaussian windows pass.
    EXPECT_GT(accepted, trials * 80 / 100);
}

TEST(Normality, RejectsBimodalSamples)
{
    Rng rng(22);
    int accepted = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs(128);
        for (std::size_t i = 0; i < xs.size(); ++i)
            xs[i] = (i % 2 ? 10.0 : -10.0) + rng.normal(0.0, 0.5);
        if (chiSquareNormalityTest(xs).accepted)
            ++accepted;
    }
    EXPECT_LT(accepted, 5);
}

TEST(Normality, RejectsUniformSamples)
{
    Rng rng(23);
    int accepted = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs(128);
        for (auto &x : xs)
            x = rng.uniform(-1.0, 1.0);
        if (chiSquareNormalityTest(xs).accepted)
            ++accepted;
    }
    // Uniform is hard to tell from Gaussian at n = 128, but the
    // acceptance rate should clearly drop below the Gaussian case.
    EXPECT_LT(accepted, 80);
}

TEST(Normality, ConstantWindowIsDegenerate)
{
    const std::vector<double> xs(64, 3.0);
    const NormalityResult r = chiSquareNormalityTest(xs);
    EXPECT_TRUE(r.degenerate);
    EXPECT_FALSE(r.accepted);
}

TEST(Normality, TooFewSamplesIsDegenerate)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const NormalityResult r = chiSquareNormalityTest(xs);
    EXPECT_TRUE(r.degenerate);
}

/** Acceptance should hold across the paper's window sizes. */
class NormalityWindowSize : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(NormalityWindowSize, GaussianWindowsMostlyAccepted)
{
    Rng rng(GetParam());
    int accepted = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs(GetParam());
        for (auto &x : xs)
            x = rng.normal(0.0, 1.0);
        if (chiSquareNormalityTest(xs).accepted)
            ++accepted;
    }
    EXPECT_GT(accepted, 75);
}

INSTANTIATE_TEST_SUITE_P(PaperWindowSizes, NormalityWindowSize,
                         ::testing::Values(32, 64, 128, 256));

// Regression: out-of-range samples are still clamped into the edge
// bins (totals preserved), but no longer silently — the counter pair
// reports how much of each tail was truncated.
TEST(Histogram, CountsUnderflowAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.push(-1.0);  // below lo -> bin 0, underflow
    h.push(0.0);   // in range
    h.push(9.99);  // in range
    h.push(10.0);  // at hi -> clamped into last bin, overflow
    h.push(25.0);  // far above -> overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(0), 2u); // -1.0 clamp + 0.0
    EXPECT_EQ(h.count(4), 3u); // 9.99 + two clamps

    h.clear();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, PushBlockCountsTailsLikePush)
{
    const std::vector<double> xs = {-3.0, -0.5, 1.0, 5.0,
                                    9.0,  12.0, 99.0};
    Histogram scalar(0.0, 10.0, 10);
    for (double x : xs)
        scalar.push(x);
    Histogram block(0.0, 10.0, 10);
    block.pushBlock(xs);
    EXPECT_EQ(block.underflow(), scalar.underflow());
    EXPECT_EQ(block.overflow(), scalar.overflow());
    EXPECT_EQ(block.underflow(), 2u);
    EXPECT_EQ(block.overflow(), 2u);
    for (std::size_t i = 0; i < scalar.bins(); ++i)
        EXPECT_EQ(block.count(i), scalar.count(i)) << i;
}

// ---------------------------------------------------------------------------
// Empirical quantiles vs hand-computed fixtures
// ---------------------------------------------------------------------------

TEST(Quantiles, HandComputedFixtures)
{
    // Sorted sample {1, 2, 3, 4}: type-7 position q * 3.
    const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, 0.25), 1.75);
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, 1.0), 4.0);
    // Out-of-range q clamps.
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(empiricalQuantile(s, 1.5), 4.0);
    // Single sample: every quantile is that sample.
    const std::vector<double> one = {7.0};
    EXPECT_DOUBLE_EQ(empiricalQuantile(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(empiricalQuantile(one, 0.99), 7.0);
}

TEST(Quantiles, DistributionQueriesMatchFixtures)
{
    EmpiricalDistribution d;
    // Pushed unsorted on purpose.
    for (double x : {5.0, 1.0, 3.0, 2.0, 4.0})
        d.push(x);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.25), 2.0);
    // CDF counts <= x; exceedance is its complement.
    EXPECT_DOUBLE_EQ(d.cdfAt(3.0), 0.6);
    EXPECT_DOUBLE_EQ(d.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.cdfAt(5.0), 1.0);
    EXPECT_DOUBLE_EQ(d.exceedanceFraction(3.0), 0.4);
    EXPECT_DOUBLE_EQ(d.exceedanceFraction(4.9), 0.2);
}

TEST(Quantiles, MeanIsStableAcrossQueryOrder)
{
    EmpiricalDistribution a;
    EmpiricalDistribution b;
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.normal(3.0, 2.0);
        a.push(x);
        b.push(x);
    }
    // a: mean first; b: quantile (forces the sort) first. The sums
    // must agree bit for bit — aggregation order cannot leak into
    // campaign JSON.
    const double mean_first = a.mean();
    (void)b.quantile(0.5);
    EXPECT_EQ(mean_first, b.mean());
}

} // namespace
} // namespace didt
