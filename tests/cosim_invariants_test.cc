/**
 * @file
 * Invariant tests on the closed-loop co-simulation and the denoising
 * utility: properties that must hold for every control scheme
 * (commit conservation, determinism, cap behaviour, accounting), and
 * SNR improvement from wavelet shrinkage.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosim.hh"
#include "core/experiment.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "wavelet/denoise.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

class CosimInvariants
    : public ::testing::TestWithParam<ControlScheme>
{
  protected:
    static void
    SetUpTestSuite()
    {
        setup_ = new ExperimentSetup(makeStandardSetup());
        network_ = new SupplyNetwork(setup_->makeNetwork(1.5));
        model_ = new VoltageVarianceModel(
            makeCalibratedModel(*setup_, *network_));
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete network_;
        delete setup_;
        model_ = nullptr;
        network_ = nullptr;
        setup_ = nullptr;
    }

    CosimConfig
    config() const
    {
        CosimConfig cfg;
        cfg.instructions = 20000;
        cfg.scheme = GetParam();
        cfg.control.tolerance = 0.020;
        cfg.hazardModel = model_;
        return cfg;
    }

    CosimResult
    run(const CosimConfig &cfg) const
    {
        return runClosedLoop(profileByName("gzip"), setup_->proc,
                             setup_->power, *network_, cfg);
    }

    static ExperimentSetup *setup_;
    static SupplyNetwork *network_;
    static VoltageVarianceModel *model_;
};

ExperimentSetup *CosimInvariants::setup_ = nullptr;
SupplyNetwork *CosimInvariants::network_ = nullptr;
VoltageVarianceModel *CosimInvariants::model_ = nullptr;

TEST_P(CosimInvariants, CommitsEveryInstructionRegardlessOfControl)
{
    const CosimResult r = run(config());
    EXPECT_EQ(r.committed, 20000u);
}

TEST_P(CosimInvariants, DeterministicAcrossRuns)
{
    const CosimResult a = run(config());
    const CosimResult b = run(config());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.lowFaults, b.lowFaults);
    EXPECT_EQ(a.controlCycles, b.controlCycles);
    EXPECT_DOUBLE_EQ(a.minVoltage, b.minVoltage);
}

TEST_P(CosimInvariants, MaxCyclesCapRespected)
{
    CosimConfig cfg = config();
    cfg.maxCycles = 1000;
    const CosimResult r = run(cfg);
    EXPECT_EQ(r.cycles, 1000u);
    EXPECT_LT(r.committed, 20000u);
}

TEST_P(CosimInvariants, AccountingIsConsistent)
{
    const CosimResult r = run(config());
    EXPECT_EQ(r.controlCycles >= r.stallCycles, true);
    EXPECT_LE(r.falsePositives, r.cycles);
    EXPECT_LE(r.minVoltage, r.maxVoltage);
    EXPECT_GT(r.meanCurrent, 0.0);
    EXPECT_GT(r.energyJ, 0.0);
}

TEST_P(CosimInvariants, ControlNeverIncreasesFaultsVsBaseline)
{
    CosimConfig cfg = config();
    cfg.scheme = ControlScheme::None;
    const CosimResult base = run(cfg);
    const CosimResult ctl = run(config());
    if (GetParam() != ControlScheme::None &&
        GetParam() != ControlScheme::AnalogSensor) {
        EXPECT_LE(ctl.lowFaults, base.lowFaults);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CosimInvariants,
    ::testing::Values(ControlScheme::None, ControlScheme::Wavelet,
                      ControlScheme::FullConvolution,
                      ControlScheme::AnalogSensor,
                      ControlScheme::PipelineDamping,
                      ControlScheme::AdaptiveWavelet));

// ---------------------------------------------------------------------------
// Denoising
// ---------------------------------------------------------------------------

TEST(Denoise, ImprovesSnrOnNoisyWaveform)
{
    // Clean piecewise-constant current profile + white noise.
    const std::size_t n = 2048;
    std::vector<double> clean(n);
    for (std::size_t t = 0; t < n; ++t)
        clean[t] = (t / 128) % 2 ? 60.0 : 30.0;
    Rng rng(9);
    std::vector<double> noisy(n);
    for (std::size_t t = 0; t < n; ++t)
        noisy[t] = clean[t] + rng.normal(0.0, 3.0);

    const auto denoised = denoise(noisy);
    EXPECT_LT(rmsError(denoised, clean), 0.5 * rmsError(noisy, clean));
}

TEST(Denoise, SigmaEstimateIsAccurate)
{
    Rng rng(10);
    std::vector<double> x(4096);
    for (auto &v : x)
        v = 40.0 + rng.normal(0.0, 2.5);
    EXPECT_NEAR(estimateNoiseSigma(x), 2.5, 0.3);
}

TEST(Denoise, PreservesCleanSignalEdges)
{
    // A noiseless step should survive (nearly) untouched: its detail
    // coefficients are far above any estimated threshold.
    std::vector<double> x(512, 10.0);
    for (std::size_t t = 256; t < 512; ++t)
        x[t] = 50.0;
    // Tiny dither so the sigma estimate is nonzero but negligible.
    Rng rng(11);
    for (auto &v : x)
        v += rng.normal(0.0, 0.01);
    const auto out = denoise(x);
    EXPECT_LT(rmsError(out, x), 0.05);
    EXPECT_NEAR(out[255], 10.0, 0.5);
    EXPECT_NEAR(out[256], 50.0, 0.5);
}

TEST(Denoise, HardAndSoftDiffer)
{
    Rng rng(12);
    std::vector<double> x(512);
    for (auto &v : x)
        v = 40.0 + rng.normal(0.0, 2.0);
    DenoiseConfig soft;
    soft.rule = Shrinkage::Soft;
    DenoiseConfig hard;
    hard.rule = Shrinkage::Hard;
    const auto a = denoise(x, WaveletBasis::haar(), soft);
    const auto b = denoise(x, WaveletBasis::haar(), hard);
    EXPECT_NE(a, b);
}

TEST(Denoise, ExplicitSigmaOverridesEstimate)
{
    Rng rng(13);
    std::vector<double> x(256);
    for (auto &v : x)
        v = rng.normal(0.0, 1.0);
    DenoiseConfig aggressive;
    aggressive.sigma = 100.0; // threshold kills everything
    const auto out = denoise(x, WaveletBasis::haar(), aggressive);
    // Only the (per-window) mean structure survives.
    RunningStats s;
    for (double v : out)
        s.push(v);
    EXPECT_LT(s.variance(), variance(x) * 0.05);
}

} // namespace
} // namespace didt
