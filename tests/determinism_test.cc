/**
 * @file
 * Determinism guarantees underpinning the trace cache and the
 * campaign runner: the simulator is seed-pure (same request, bit-
 * identical trace) and campaign results are independent of the job
 * count, down to the serialized JSON bytes. These invariants justify
 * content-addressing traces by their request fingerprint and
 * comparing campaign outputs across machines.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"

namespace didt
{
namespace
{

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

BenchmarkProfile
testProfile(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile prof;
    prof.name = name;
    prof.seed = seed;
    WorkloadPhase phase;
    phase.lengthInsts = 5000;
    prof.phases = {phase};
    return prof;
}

TEST(Determinism, SameRequestYieldsBitIdenticalTrace)
{
    const BenchmarkProfile prof = testProfile("det", 31);
    const CurrentTrace a =
        benchmarkCurrentTrace(sharedSetup(), prof, 8000, 5);
    const CurrentTrace b =
        benchmarkCurrentTrace(sharedSetup(), prof, 8000, 5);
    ASSERT_EQ(a.size(), b.size());
    // Bit-identical, not approximately equal: the cache key assumes
    // simulation is a pure function of the request.
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsYieldDifferentTraces)
{
    const BenchmarkProfile prof = testProfile("det", 31);
    const CurrentTrace a =
        benchmarkCurrentTrace(sharedSetup(), prof, 8000, 5);
    const CurrentTrace b =
        benchmarkCurrentTrace(sharedSetup(), prof, 8000, 6);
    EXPECT_NE(a, b) << "the seed must actually reach the workload";
}

TEST(Determinism, FreshSetupReproducesTraces)
{
    // Two independently calibrated environments (as two processes
    // would build) generate the same trace for the same request.
    const ExperimentSetup other = makeStandardSetup();
    const BenchmarkProfile prof = testProfile("det", 32);
    EXPECT_EQ(benchmarkCurrentTrace(sharedSetup(), prof, 8000, 5),
              benchmarkCurrentTrace(other, prof, 8000, 5));
}

TEST(Determinism, CampaignJsonIdenticalAcrossJobCounts)
{
    CampaignSpec spec;
    spec.profiles = {testProfile("det-a", 41), testProfile("det-b", 42),
                     testProfile("det-c", 43)};
    spec.impedanceScales = {1.0, 1.3};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 6000;

    TraceRepository serial_repo(sharedSetup());
    const CampaignResult serial = runCharacterizationCampaign(
        sharedSetup(), spec, serial_repo, 1);

    TraceRepository parallel_repo(sharedSetup());
    const CampaignResult parallel = runCharacterizationCampaign(
        sharedSetup(), spec, parallel_repo, 4);

    EXPECT_EQ(serial.jobs, 1u);
    EXPECT_EQ(parallel.jobs, 4u);
    EXPECT_EQ(campaignToJson(serial).dump(),
              campaignToJson(parallel).dump())
        << "results must not depend on scheduling";

    // The deduplication guarantee holds regardless of parallelism.
    EXPECT_EQ(serial_repo.stats().simulations, 3u);
    EXPECT_EQ(parallel_repo.stats().simulations, 3u);
}

} // namespace
} // namespace didt
