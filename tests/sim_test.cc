/**
 * @file
 * Unit tests for the processor model: caches, branch prediction,
 * functional units, the power model, and pipeline behaviour.
 */

#include <cmath>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/fu_pool.hh"
#include "sim/power_model.hh"
#include "sim/processor.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

TEST(Cache, MissThenHit)
{
    Cache cache({1024, 2, 64, 1});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1038)); // same line
    EXPECT_FALSE(cache.access(0x1040)); // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 8 sets of 64B lines: addresses with equal (addr/64)%8 map
    // to the same set.
    Cache cache({1024, 2, 64, 1});
    const std::uint64_t a = 0x0000;
    const std::uint64_t b = a + 8 * 64;
    const std::uint64_t c = a + 16 * 64;
    cache.access(a);
    cache.access(b);
    cache.access(a);     // a is now MRU
    cache.access(c);     // evicts b (LRU)
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache cache({1024, 2, 64, 1});
    EXPECT_FALSE(cache.probe(0x4000));
    EXPECT_FALSE(cache.access(0x4000)); // still a miss
}

TEST(Cache, FullyResidentWorkingSetStopsMissing)
{
    Cache cache({64 * 1024, 2, 64, 3});
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 64)
            cache.access(addr);
    // Second pass is all hits: misses equal the working-set lines.
    EXPECT_EQ(cache.stats().misses, 32u * 1024 / 64);
}

TEST(Cache, ResetInvalidates)
{
    Cache cache({1024, 2, 64, 1});
    cache.access(0x100);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(Cache, ClearStatsKeepsContents)
{
    Cache cache({1024, 2, 64, 1});
    cache.access(0x100);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.probe(0x100));
}

TEST(Cache, MissRate)
{
    Cache cache({1024, 2, 64, 1});
    cache.access(0x0);
    cache.access(0x0);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache cache({1000, 2, 48, 1}), ::testing::ExitedWithCode(1),
                "");
}

TEST(Hierarchy, LatenciesAccumulateByLevel)
{
    Cache l2({2 * 1024 * 1024, 4, 64, 16});
    MemoryHierarchy h({64 * 1024, 2, 64, 3}, l2, 250);

    const auto miss = h.access(0x123400);
    EXPECT_EQ(miss.level, MemLevel::Memory);
    EXPECT_EQ(miss.latency, 3u + 16u + 250u);

    const auto hit = h.access(0x123400);
    EXPECT_EQ(hit.level, MemLevel::L1);
    EXPECT_EQ(hit.latency, 3u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Cache l2({2 * 1024 * 1024, 4, 64, 16});
    MemoryHierarchy h({1024, 1, 64, 3}, l2, 250); // tiny direct-mapped L1
    h.access(0x0);
    h.access(0x0 + 16 * 64); // same L1 set, evicts
    const auto res = h.access(0x0);
    EXPECT_EQ(res.level, MemLevel::L2);
    EXPECT_EQ(res.latency, 3u + 16u);
}

// ---------------------------------------------------------------------------
// Branch prediction
// ---------------------------------------------------------------------------

Instruction
makeBranch(std::uint64_t pc, bool taken, std::uint64_t target)
{
    Instruction inst;
    inst.op = OpClass::Branch;
    inst.pc = pc;
    inst.taken = taken;
    inst.target = target;
    return inst;
}

TEST(BPred, LearnsStronglyBiasedBranch)
{
    BranchPredictor bp((ProcessorConfig()));
    const auto inst = makeBranch(0x4000, true, 0x5000);
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(inst);
    // After warm-up, an always-taken branch with a stable target is
    // predicted essentially perfectly.
    const std::uint64_t before = bp.stats().directionMispredicts +
                                 bp.stats().targetMispredicts;
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(inst);
    const std::uint64_t after = bp.stats().directionMispredicts +
                                bp.stats().targetMispredicts;
    EXPECT_EQ(after - before, 0u);
}

TEST(BPred, LearnsNotTakenBranch)
{
    BranchPredictor bp((ProcessorConfig()));
    const auto inst = makeBranch(0x4100, false, 0);
    for (int i = 0; i < 50; ++i)
        bp.predictAndTrain(inst);
    const auto pred = bp.predictAndTrain(inst);
    EXPECT_FALSE(pred.taken);
    EXPECT_FALSE(pred.mispredict);
}

TEST(BPred, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... defeats a bimodal counter but is perfectly predicted
    // by global history; the chooser should migrate to gshare.
    BranchPredictor bp((ProcessorConfig()));
    std::uint64_t mispredicts = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto inst = makeBranch(0x4200, i % 2 == 0, 0x6000);
        const auto pred = bp.predictAndTrain(inst);
        if (i >= 1000 && pred.mispredict)
            ++mispredicts;
    }
    EXPECT_LT(mispredicts, 20u);
}

TEST(BPred, BtbProvidesTarget)
{
    BranchPredictor bp((ProcessorConfig()));
    const auto inst = makeBranch(0x4300, true, 0xABCD00);
    bp.predictAndTrain(inst); // trains direction + BTB
    for (int i = 0; i < 10; ++i)
        bp.predictAndTrain(inst);
    const auto pred = bp.predictAndTrain(inst);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, 0xABCD00u);
}

TEST(BPred, RasPredictsReturnAddresses)
{
    BranchPredictor bp((ProcessorConfig()));
    Instruction call = makeBranch(0x5000, true, 0x9000);
    call.isCall = true;
    bp.predictAndTrain(call);

    Instruction ret = makeBranch(0x9100, true, 0);
    ret.isReturn = true;
    // Train direction first so the return predicts taken.
    for (int i = 0; i < 4; ++i) {
        bp.predictAndTrain(call);
        bp.predictAndTrain(ret);
    }
    bp.predictAndTrain(call);
    const auto pred = bp.predictAndTrain(ret);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, 0x5004u); // pc of call + 4
}

TEST(BPred, RasUnderflowCounted)
{
    BranchPredictor bp((ProcessorConfig()));
    Instruction ret = makeBranch(0x9100, true, 0);
    ret.isReturn = true;
    bp.predictAndTrain(ret);
    EXPECT_EQ(bp.stats().rasUnderflows, 1u);
}

TEST(BPred, ResetClearsTraining)
{
    BranchPredictor bp((ProcessorConfig()));
    const auto inst = makeBranch(0x4000, true, 0x5000);
    for (int i = 0; i < 50; ++i)
        bp.predictAndTrain(inst);
    bp.reset();
    EXPECT_EQ(bp.stats().lookups, 0u);
    const auto pred = bp.predictAndTrain(inst);
    // Fresh counters initialize weakly not-taken.
    EXPECT_FALSE(pred.taken);
}

TEST(BPred, MispredictRateComputation)
{
    BPredStats stats;
    stats.lookups = 100;
    stats.directionMispredicts = 7;
    stats.targetMispredicts = 3;
    EXPECT_DOUBLE_EQ(stats.mispredictRate(), 0.10);
}

// ---------------------------------------------------------------------------
// Functional units
// ---------------------------------------------------------------------------

TEST(FuPool, CountsMatchTable1)
{
    const FuPool pool((ProcessorConfig()));
    EXPECT_EQ(pool.unitCount(FuClass::IntAlu), 4u);
    EXPECT_EQ(pool.unitCount(FuClass::IntMultDiv), 1u);
    EXPECT_EQ(pool.unitCount(FuClass::FpAlu), 2u);
    EXPECT_EQ(pool.unitCount(FuClass::FpMultDiv), 1u);
    EXPECT_EQ(pool.unitCount(FuClass::MemPort), 2u);
}

TEST(FuPool, IssueLimitedByUnitCount)
{
    FuPool pool((ProcessorConfig()));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 10, 1));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntAlu, 10, 1));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntAlu, 11, 1));
}

TEST(FuPool, UnpipelinedDividerBlocks)
{
    FuPool pool((ProcessorConfig()));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntMultDiv, 0, 20));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntMultDiv, 5, 1));
    EXPECT_FALSE(pool.tryIssue(FuClass::IntMultDiv, 19, 1));
    EXPECT_TRUE(pool.tryIssue(FuClass::IntMultDiv, 20, 1));
}

TEST(FuPool, BusyCountTracksReservations)
{
    FuPool pool((ProcessorConfig()));
    pool.tryIssue(FuClass::FpAlu, 0, 1);
    EXPECT_EQ(pool.busyCount(FuClass::FpAlu, 0), 1u);
    EXPECT_EQ(pool.busyCount(FuClass::FpAlu, 1), 0u);
}

TEST(FuPool, OpClassMapping)
{
    EXPECT_EQ(fuClassFor(OpClass::IntAlu), FuClass::IntAlu);
    EXPECT_EQ(fuClassFor(OpClass::Branch), FuClass::IntAlu);
    EXPECT_EQ(fuClassFor(OpClass::IntDiv), FuClass::IntMultDiv);
    EXPECT_EQ(fuClassFor(OpClass::FpMult), FuClass::FpMultDiv);
    EXPECT_EQ(fuClassFor(OpClass::Load), FuClass::MemPort);
}

TEST(FuPool, ExecuteLatencies)
{
    const ProcessorConfig cfg;
    EXPECT_EQ(executeLatency(cfg, OpClass::IntAlu), 1u);
    EXPECT_EQ(executeLatency(cfg, OpClass::IntDiv), 20u);
    EXPECT_EQ(executeLatency(cfg, OpClass::FpMult), 4u);
    EXPECT_TRUE(isUnpipelined(OpClass::IntDiv));
    EXPECT_TRUE(isUnpipelined(OpClass::FpDiv));
    EXPECT_FALSE(isUnpipelined(OpClass::FpMult));
}

// ---------------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------------

TEST(PowerModel, IdleBelowPeak)
{
    const PowerModel model({}, ProcessorConfig{});
    EXPECT_GT(model.idlePower(), 0.0);
    EXPECT_LT(model.idlePower(), model.peakPower());
    EXPECT_LT(model.idlePower(), 0.4 * model.peakPower());
}

TEST(PowerModel, FullActivityApproachesPeak)
{
    const ProcessorConfig proc;
    const PowerModel model({}, proc);
    ActivitySample full;
    full.fetched = proc.fetchWidth;
    full.bpredLookups = 1;
    full.decoded = proc.decodeWidth;
    full.dispatched = proc.decodeWidth;
    full.issuedIntAlu = proc.intAluCount;
    full.issuedIntMult = proc.intMultCount;
    full.issuedFpAlu = proc.fpAluCount;
    full.issuedFpMult = proc.fpMultCount;
    full.regReads = 2 * proc.decodeWidth + proc.commitWidth;
    full.regWrites = proc.commitWidth;
    full.lsqOps = proc.memPortCount;
    full.dcacheAccesses = proc.memPortCount;
    full.l2Accesses = 1;
    full.committed = proc.commitWidth;
    full.windowOccupancy = proc.ruuSize;
    EXPECT_NEAR(model.cyclePower(full), model.peakPower(),
                0.02 * model.peakPower());
}

TEST(PowerModel, MoreActivityMorePower)
{
    const PowerModel model({}, ProcessorConfig{});
    ActivitySample low;
    low.issuedIntAlu = 1;
    ActivitySample high = low;
    high.issuedIntAlu = 4;
    high.issuedFpAlu = 2;
    EXPECT_GT(model.cyclePower(high), model.cyclePower(low));
}

TEST(PowerModel, CurrentIsPowerOverVdd)
{
    const ProcessorConfig proc; // Vdd = 1.0
    const PowerModel model({}, proc);
    ActivitySample a;
    a.issuedIntAlu = 2;
    EXPECT_DOUBLE_EQ(model.cycleCurrent(a), model.cyclePower(a));
}

TEST(PowerModel, GatingStylesOrdering)
{
    const ProcessorConfig proc;
    ActivitySample half;
    half.issuedIntAlu = 2; // half the ALUs
    PowerModelConfig cc0;
    cc0.gating = ClockGating::None;
    PowerModelConfig cc1;
    cc1.gating = ClockGating::AllOrNothing;
    PowerModelConfig cc2;
    cc2.gating = ClockGating::Linear;
    PowerModelConfig cc3;
    cc3.gating = ClockGating::LinearIdle;

    const double p0 = PowerModel(cc0, proc).cyclePower(half);
    const double p1 = PowerModel(cc1, proc).cyclePower(half);
    const double p2 = PowerModel(cc2, proc).cyclePower(half);
    const double p3 = PowerModel(cc3, proc).cyclePower(half);
    EXPECT_GE(p0, p1);
    EXPECT_GE(p1, p2);
    EXPECT_GE(p3, p2); // idle floor adds power over pure linear
}

TEST(PowerModel, UnitBreakdownSumsToTotal)
{
    const PowerModel model({}, ProcessorConfig{});
    ActivitySample a;
    a.fetched = 2;
    a.issuedIntAlu = 1;
    a.dcacheAccesses = 1;
    const auto units = model.unitPower(a);
    double sum = model.config().leakage;
    for (double w : units)
        sum += w;
    EXPECT_NEAR(sum, model.cyclePower(a), 1e-9);
}

TEST(PowerModel, UnitNames)
{
    EXPECT_STREQ(powerUnitName(PowerUnit::Fetch), "fetch");
    EXPECT_STREQ(powerUnitName(PowerUnit::Clock), "clock");
}

// ---------------------------------------------------------------------------
// Processor pipeline
// ---------------------------------------------------------------------------

/** A scripted instruction source for pipeline tests. */
class ScriptedSource : public InstructionSource
{
  public:
    explicit ScriptedSource(std::vector<Instruction> insts)
        : insts_(std::move(insts))
    {
    }

    bool
    next(Instruction &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }

  private:
    std::vector<Instruction> insts_;
    std::size_t pos_ = 0;
};

Instruction
simpleOp(OpClass op, std::uint64_t pc, std::uint32_t dep1 = 0)
{
    Instruction inst;
    inst.op = op;
    inst.pc = pc;
    inst.dep1 = dep1;
    return inst;
}

std::vector<Instruction>
independentAlus(std::size_t n)
{
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < n; ++i)
        insts.push_back(simpleOp(OpClass::IntAlu, 0x400000 + 4 * i));
    return insts;
}

/** Pre-touch the code lines of a scripted stream so timed pipeline
 *  tests are not dominated by cold I-cache fills. */
void
warmCode(Processor &proc, const std::vector<Instruction> &insts)
{
    std::vector<std::uint64_t> lines;
    for (const auto &inst : insts)
        if (lines.empty() || inst.pc / 64 * 64 != lines.back())
            lines.push_back(inst.pc / 64 * 64);
    proc.warmupFootprint({}, lines);
}

TEST(Processor, CommitsEveryInstruction)
{
    ScriptedSource src(independentAlus(1000));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().committed, 1000u);
}

TEST(Processor, DrainsAndStops)
{
    ScriptedSource src(independentAlus(10));
    Processor proc({}, {}, src);
    Cycle cycles = 0;
    while (proc.step() && cycles < 10000)
        ++cycles;
    EXPECT_LT(cycles, 1000u);
}

TEST(Processor, IndependentWorkReachesHighIpc)
{
    const auto insts = independentAlus(4000);
    ScriptedSource src(insts);
    Processor proc({}, {}, src);
    warmCode(proc, insts);
    while (proc.step()) {
    }
    // Fetch width 4 bounds IPC; expect to get close once warmed up
    // (the cold I-cache miss at start costs a few hundred cycles).
    EXPECT_GT(proc.stats().ipc(), 2.0);
    EXPECT_LE(proc.stats().ipc(), 4.0);
}

TEST(Processor, SerialChainRunsAtLatencyPerInstruction)
{
    // Every instruction depends on its predecessor: IPC ~ 1 per ALU
    // latency cycle.
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 2000; ++i)
        insts.push_back(simpleOp(OpClass::IntAlu, 0x400000 + 4 * i, 1));
    ScriptedSource src(insts);
    Processor proc({}, {}, src);
    warmCode(proc, insts);
    while (proc.step()) {
    }
    EXPECT_LT(proc.stats().ipc(), 1.2);
    EXPECT_GT(proc.stats().ipc(), 0.7);
}

TEST(Processor, SerialDivideChainIsSlow)
{
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 200; ++i)
        insts.push_back(simpleOp(OpClass::IntDiv, 0x400000 + 4 * i, 1));
    ScriptedSource src(std::move(insts));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    // ~20 cycles per divide.
    EXPECT_GT(proc.stats().cycles, 200u * 15u);
}

TEST(Processor, LoadMissLatencyVisible)
{
    // A chain of dependent loads to distinct cold lines: each pays the
    // full memory round trip.
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 50; ++i) {
        Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i, 1);
        ld.address = 0x30000000 + 64 * i;
        insts.push_back(ld);
    }
    ScriptedSource src(std::move(insts));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    EXPECT_GT(proc.stats().cycles, 50u * 250u);
    EXPECT_EQ(proc.stats().l1dMisses, 50u);
}

TEST(Processor, HotLoadsHitAfterWarmup)
{
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 400; ++i) {
        Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i);
        ld.address = 0x10000000 + 64 * (i % 8);
        insts.push_back(ld);
    }
    ScriptedSource src(std::move(insts));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().l1dMisses, 8u);
}

TEST(Processor, StallIssueSuppressesProgressAndCurrent)
{
    const auto insts = independentAlus(5000);
    ScriptedSource src(insts);
    Processor proc({}, {}, src);
    warmCode(proc, insts);
    for (int i = 0; i < 500; ++i)
        proc.step();
    const std::uint64_t before = proc.stats().committed;
    double stalled_current = 0.0;
    proc.setStallIssue(true);
    for (int i = 0; i < 100; ++i) {
        proc.step();
        stalled_current += proc.lastCurrent();
    }
    // No new completions can commit once in-flight work drains.
    EXPECT_LE(proc.stats().committed - before, 16u);

    proc.setStallIssue(false);
    double running_current = 0.0;
    for (int i = 0; i < 100; ++i) {
        proc.step();
        running_current += proc.lastCurrent();
    }
    EXPECT_GT(running_current, stalled_current * 1.2);
}

TEST(Processor, InjectNoopsRaisesCurrent)
{
    ScriptedSource src(independentAlus(20));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    // Pipeline drained; current is at idle.
    proc.setInjectNoops(false);
    proc.step();
    const double idle = proc.lastCurrent();
    proc.setInjectNoops(true);
    proc.step();
    EXPECT_GT(proc.lastCurrent(), idle + 5.0);
    EXPECT_GT(proc.stats().noopsInjected, 0u);
}

TEST(Processor, DeterministicAcrossRuns)
{
    auto run = [] {
        ScriptedSource src(independentAlus(1000));
        Processor proc({}, {}, src);
        CurrentTrace trace;
        proc.collectTrace(trace, 100000);
        return trace;
    };
    EXPECT_EQ(run(), run());
}

TEST(Processor, CollectTraceRespectsCap)
{
    ScriptedSource src(independentAlus(100000));
    Processor proc({}, {}, src);
    CurrentTrace trace;
    const Cycle executed = proc.collectTrace(trace, 500);
    EXPECT_EQ(executed, 500u);
    EXPECT_EQ(trace.size(), 500u);
}

TEST(Processor, MispredictionBlocksFetch)
{
    // Alternating unpredictable-looking branch stream: mispredicts
    // must appear and cost cycles vs the branch-free stream.
    Rng rng(55);
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 2000; ++i) {
        if (i % 5 == 4) {
            Instruction br = simpleOp(OpClass::Branch, 0x400000 + 4 * i);
            br.taken = rng.bernoulli(0.5);
            br.target = 0x400000 + 4 * ((i + 3) % 500);
            insts.push_back(br);
        } else {
            insts.push_back(simpleOp(OpClass::IntAlu, 0x400000 + 4 * i));
        }
    }
    ScriptedSource src(std::move(insts));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    EXPECT_GT(proc.stats().mispredicts, 50u);

    ScriptedSource src2(independentAlus(2000));
    Processor proc2({}, {}, src2);
    while (proc2.step()) {
    }
    EXPECT_GT(proc2.stats().ipc(), proc.stats().ipc());
}

TEST(Processor, RecoveryEmaCurrentsAreDeterministic)
{
    // The power accumulation across recovery cycles (where the
    // table-driven activity EMAs floor each structure's visible
    // activity) must be a pure function of the stream: two runs of a
    // mispredict-heavy stream produce bitwise-identical currents.
    const auto make_stream = [] {
        Rng rng(77);
        std::vector<Instruction> insts;
        for (std::size_t i = 0; i < 3000; ++i) {
            if (i % 4 == 3) {
                Instruction br =
                    simpleOp(OpClass::Branch, 0x400000 + 4 * i);
                br.taken = rng.bernoulli(0.5);
                br.target = 0x400000 + 4 * ((i + 7) % 600);
                insts.push_back(br);
            } else if (i % 4 == 1) {
                Instruction ld =
                    simpleOp(OpClass::Load, 0x400000 + 4 * i);
                ld.address = 0x10000000 + 64 * (i % 128);
                insts.push_back(ld);
            } else {
                insts.push_back(
                    simpleOp(OpClass::IntAlu, 0x400000 + 4 * i));
            }
        }
        return insts;
    };

    const auto run = [&] {
        ScriptedSource src(make_stream());
        Processor proc({}, {}, src);
        std::vector<double> currents;
        while (proc.step())
            currents.push_back(proc.lastCurrent());
        return currents;
    };

    const std::vector<double> first = run();
    const std::vector<double> second = run();
    ASSERT_EQ(first.size(), second.size());
    ASSERT_FALSE(first.empty());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "cycle " << i;
    // The stream must actually exercise the recovery path.
    ScriptedSource probe_src(make_stream());
    Processor probe({}, {}, probe_src);
    while (probe.step()) {
    }
    EXPECT_GT(probe.stats().mispredicts, 50u);
}

TEST(Processor, WarmupClearsStatsButKeepsState)
{
    std::vector<Instruction> warm;
    for (std::size_t i = 0; i < 100; ++i) {
        Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i);
        ld.address = 0x10000000 + 64 * (i % 16);
        warm.push_back(ld);
    }
    ScriptedSource warm_src(warm);
    ScriptedSource main_src(warm); // same footprint

    Processor proc({}, {}, main_src);
    proc.warmup(warm_src, 100);
    EXPECT_EQ(proc.stats().l1dMisses, 0u);
    while (proc.step()) {
    }
    // All lines were warmed: no misses in the timed run.
    EXPECT_EQ(proc.stats().l1dMisses, 0u);
}

TEST(Processor, WarmupFootprintPrimesCaches)
{
    std::vector<std::uint64_t> lines;
    for (std::uint64_t off = 0; off < 64 * 16; off += 64)
        lines.push_back(0x10000000 + off);

    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 64; ++i) {
        Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i);
        ld.address = 0x10000000 + 64 * (i % 16);
        insts.push_back(ld);
    }
    ScriptedSource src(std::move(insts));
    Processor proc({}, {}, src);
    proc.warmupFootprint(lines, {});
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().l1dMisses, 0u);
}

TEST(Processor, ConfigPrintsTableOne)
{
    std::ostringstream os;
    ProcessorConfig{}.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("80-RUU, 40-LSQ"), std::string::npos);
    EXPECT_NE(out.find("12 cycles"), std::string::npos);
    EXPECT_NE(out.find("64KB, 2-way"), std::string::npos);
    EXPECT_NE(out.find("250 cycle"), std::string::npos);
}

TEST(Processor, MshrLimitCapsMemoryParallelism)
{
    // Independent cold misses: with many MSHRs they overlap, with one
    // they serialize.
    auto run_cycles = [](std::size_t mshrs) {
        std::vector<Instruction> insts;
        for (std::size_t i = 0; i < 64; ++i) {
            Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i);
            ld.address = 0x30000000 + 64 * i;
            insts.push_back(ld);
        }
        ScriptedSource src(std::move(insts));
        ProcessorConfig cfg;
        cfg.mshrCount = mshrs;
        Processor proc(cfg, {}, src);
        while (proc.step()) {
        }
        return proc.stats().cycles;
    };
    const Cycle serial = run_cycles(1);
    const Cycle parallel = run_cycles(8);
    EXPECT_GT(serial, 3 * parallel);
}

TEST(Processor, MshrLimitDoesNotDropLoads)
{
    std::vector<Instruction> insts;
    for (std::size_t i = 0; i < 128; ++i) {
        Instruction ld = simpleOp(OpClass::Load, 0x400000 + 4 * i);
        ld.address = 0x30000000 + 64 * i;
        insts.push_back(ld);
    }
    ScriptedSource src(std::move(insts));
    ProcessorConfig cfg;
    cfg.mshrCount = 2;
    Processor proc(cfg, {}, src);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().committed, 128u);
    EXPECT_EQ(proc.stats().l1dMisses, 128u);
}

TEST(Processor, DumpStatsListsKeyCounters)
{
    ScriptedSource src(independentAlus(500));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    std::ostringstream os;
    proc.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"sim.cycles", "sim.ipc", "bpred.mispredictRate",
          "cache.l1d.missRate", "cache.l2.mpki", "power.meanWatts"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
}

TEST(Processor, EnergyAccumulates)
{
    ScriptedSource src(independentAlus(1000));
    Processor proc({}, {}, src);
    while (proc.step()) {
    }
    EXPECT_GT(proc.stats().totalEnergyJ, 0.0);
    // Sanity: mean power = energy / time should be within machine range.
    const double seconds =
        static_cast<double>(proc.stats().cycles) / proc.config().clockHz;
    const double mean_power = proc.stats().totalEnergyJ / seconds;
    EXPECT_GT(mean_power, proc.powerModel().idlePower() * 0.9);
    EXPECT_LT(mean_power, proc.powerModel().peakPower());
}

} // namespace
} // namespace didt
