/**
 * @file
 * Edge-case and robustness tests across modules: boundary conditions,
 * unusual-but-legal configurations, and failure-injection paths that
 * the mainline suites do not reach.
 */

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/emergency_estimator.hh"
#include "core/monitor.hh"
#include "core/variance_model.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "sim/processor.hh"
#include "stats/histogram.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "wavelet/dwt.hh"
#include "wavelet/scalogram.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

SupplyNetwork
edgeNetwork()
{
    SupplyNetworkConfig cfg;
    cfg.clockHz = 3.0e9;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.dcResistance = 3.0e-4;
    return SupplyNetwork(cfg);
}

// ---------------------------------------------------------------------------
// Wavelet edge cases
// ---------------------------------------------------------------------------

TEST(EdgeDwt, MinimalSignalOneLevel)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x{3.0, 5.0};
    const auto dec = dwt.forward(x, 1);
    EXPECT_NEAR(dec.approximation[0], 8.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(dec.details[0][0], -2.0 / std::sqrt(2.0), 1e-12);
    const auto back = dwt.inverse(dec);
    EXPECT_NEAR(back[0], 3.0, 1e-12);
    EXPECT_NEAR(back[1], 5.0, 1e-12);
}

TEST(EdgeDwt, FullDepthLeavesOneApproximation)
{
    const Dwt dwt(WaveletBasis::haar());
    Rng rng(1);
    std::vector<double> x(64);
    for (auto &v : x)
        v = rng.normal();
    const auto dec = dwt.forward(x, 6);
    EXPECT_EQ(dec.approximation.size(), 1u);
    EXPECT_EQ(dec.details.back().size(), 1u);
}

TEST(EdgeDwt, NegativeSignalsRoundTrip)
{
    const Dwt dwt(WaveletBasis::daubechies4());
    std::vector<double> x(32);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = -100.0 + static_cast<double>(i);
    const auto back = dwt.inverse(dwt.forward(x, 3));
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(EdgeDwtDeath, IndivisibleLengthPanics)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x(12, 1.0);
    EXPECT_DEATH((void)dwt.forward(x, 3), "not divisible");
}

TEST(EdgeDwtDeath, EmptySignalPanics)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x;
    EXPECT_DEATH((void)dwt.forward(x, 1), "empty signal");
}

TEST(EdgeDwtDeath, ZeroLevelsPanics)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x(16, 1.0);
    EXPECT_DEATH((void)dwt.forward(x, 0), "at least one level");
}

TEST(EdgeProfileDeath, TraceShorterThanWindowPanics)
{
    const SupplyNetwork net = edgeNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();
    const CurrentTrace trace(model.windowLength() - 1, 40.0);
    EXPECT_DEATH((void)profileTrace(trace, net, model, 0.97, 1.03),
                 "shorter than one window");
}

TEST(EdgeScalogram, SingleLevel)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x{1, 2, 3, 4};
    const Scalogram sc(dwt.forward(x, 1));
    EXPECT_EQ(sc.scales(), 1u);
    std::ostringstream os;
    sc.renderAscii(os, 8);
    EXPECT_FALSE(os.str().empty());
}

TEST(EdgeScalogram, AllZeroSignal)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> x(16, 0.0);
    const Scalogram sc(dwt.forward(x, 2));
    EXPECT_DOUBLE_EQ(sc.maxMagnitude(), 0.0);
    std::ostringstream os;
    sc.renderAscii(os, 16); // must not divide by zero
    EXPECT_FALSE(os.str().empty());
}

// ---------------------------------------------------------------------------
// Supply network edge cases
// ---------------------------------------------------------------------------

TEST(EdgeSupply, ZeroCurrentTraceStaysNominal)
{
    SupplyNetworkConfig cfg;
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    const VoltageTrace v = net.computeVoltage(constantCurrent(0.0, 100));
    for (Volt x : v)
        EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(EdgeSupply, EmptyTraceYieldsEmptyVoltage)
{
    SupplyNetworkConfig cfg;
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    EXPECT_TRUE(net.computeVoltage({}).empty());
}

TEST(EdgeSupply, VeryLowQStillUnderdamped)
{
    SupplyNetworkConfig cfg;
    cfg.qualityFactor = 0.51; // just above the limit
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    double sum = 0.0;
    for (double z : net.impulseResponse())
        sum += z;
    EXPECT_NEAR(sum, net.resistance(), 1e-3 * net.resistance());
}

TEST(EdgeSupply, HighQRingsLonger)
{
    auto tail_energy = [](double q) {
        SupplyNetworkConfig cfg;
        cfg.qualityFactor = q;
        cfg.dcResistance = 3e-4;
        const SupplyNetwork net(cfg);
        const auto &z = net.impulseResponse();
        double tail = 0.0;
        for (std::size_t n = 256; n < z.size(); ++n)
            tail += z[n] * z[n];
        return tail;
    };
    EXPECT_GT(tail_energy(10.0), 10.0 * tail_energy(2.0));
}

TEST(EdgeMonitor, SingleTermMonitorStillBounded)
{
    SupplyNetworkConfig cfg;
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    WaveletMonitor monitor(net, 1);
    // One term = the approximation (IR drop) only.
    Volt est = 0.0;
    for (int n = 0; n < 600; ++n)
        est = monitor.update(50.0, 0.0);
    EXPECT_NEAR(est, net.steadyStateVoltage(50.0), 2e-3);
}

TEST(EdgeMonitorDeath, ZeroTermsIsFatal)
{
    SupplyNetworkConfig cfg;
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    EXPECT_EXIT(WaveletMonitor monitor(net, 0),
                ::testing::ExitedWithCode(1), "at least one term");
}

TEST(EdgeMonitorDeath, NonPowerOfTwoWindowIsFatal)
{
    SupplyNetworkConfig cfg;
    cfg.dcResistance = 3e-4;
    const SupplyNetwork net(cfg);
    EXPECT_EXIT(WaveletMonitor monitor(net, 8, 100, 2),
                ::testing::ExitedWithCode(1), "power of two");
}

// ---------------------------------------------------------------------------
// Histogram / stats edge cases
// ---------------------------------------------------------------------------

TEST(EdgeHistogram, SingleBin)
{
    Histogram h(0.0, 1.0, 1);
    h.push(0.3);
    h.push(0.9);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(EdgeHistogram, FractionBelowOutsideRange)
{
    Histogram h(0.0, 1.0, 4);
    h.push(0.5);
    EXPECT_DOUBLE_EQ(h.fractionBelow(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(2.0), 1.0);
}

// ---------------------------------------------------------------------------
// Processor edge cases
// ---------------------------------------------------------------------------

/** Empty instruction source. */
class EmptySource : public InstructionSource
{
  public:
    bool
    next(Instruction &) override
    {
        return false;
    }
};

TEST(EdgeProcessor, EmptySourceDrainsImmediately)
{
    EmptySource src;
    Processor proc({}, {}, src);
    Cycle cycles = 0;
    while (proc.step() && cycles < 100)
        ++cycles;
    EXPECT_LT(cycles, 10u);
    EXPECT_EQ(proc.stats().committed, 0u);
}

TEST(EdgeProcessor, SingleInstructionProgram)
{
    SyntheticWorkload w(profileByName("gzip"), 1, 0);
    Processor proc({}, {}, w);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().committed, 1u);
}

TEST(EdgeProcessor, TinyWindowStillCorrect)
{
    ProcessorConfig cfg;
    cfg.ruuSize = 4;
    cfg.lsqSize = 2;
    SyntheticWorkload w(profileByName("gzip"), 2000, 0);
    Processor proc(cfg, {}, w);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().committed, 2000u);
}

TEST(EdgeProcessor, NarrowMachineSlowerThanWide)
{
    auto cycles_for = [](std::size_t width) {
        ProcessorConfig cfg;
        cfg.fetchWidth = width;
        cfg.decodeWidth = width;
        cfg.commitWidth = width;
        SyntheticWorkload w(profileByName("crafty"), 20000, 0);
        Processor proc(cfg, {}, w);
        SyntheticWorkload warm(profileByName("crafty"), 0, 1);
        proc.warmupFootprint(w.dataFootprint(), w.codeFootprint());
        proc.warmup(warm, 100000);
        while (proc.step()) {
        }
        return proc.stats().cycles;
    };
    EXPECT_GT(cycles_for(1), cycles_for(4));
}

TEST(EdgeProcessor, StallAndNoopsCompose)
{
    // Asserting both actuations at once must not crash or deadlock:
    // stall wins on real issue, no-ops fill all units.
    SyntheticWorkload w(profileByName("gzip"), 3000, 0);
    Processor proc({}, {}, w);
    proc.setStallIssue(true);
    proc.setInjectNoops(true);
    for (int n = 0; n < 500; ++n)
        proc.step();
    proc.setStallIssue(false);
    proc.setInjectNoops(false);
    while (proc.step()) {
    }
    EXPECT_EQ(proc.stats().committed, 3000u);
}

// ---------------------------------------------------------------------------
// Workload edge cases
// ---------------------------------------------------------------------------

TEST(EdgeWorkload, UnboundedStreamKeepsProducing)
{
    SyntheticWorkload w(profileByName("gzip"), 0, 0);
    Instruction inst;
    for (int n = 0; n < 100000; ++n)
        ASSERT_TRUE(w.next(inst));
}

TEST(EdgeWorkload, PhaseRotationCoversAllPhases)
{
    // gcc alternates a 1200-instruction compute phase (load fraction
    // ~0.24) with a 900-instruction oscillation phase (~0.03): load
    // density across the boundary must drop sharply.
    SyntheticWorkload w(profileByName("gcc"), 2100, 0);
    Instruction inst;
    int loads_first = 0;  // [0, 1200): compute phase
    int loads_second = 0; // [1200, 2100): oscillation phase
    for (int n = 0; n < 2100; ++n) {
        w.next(inst);
        if (inst.op == OpClass::Load)
            ++(n < 1200 ? loads_first : loads_second);
    }
    const double density_first = loads_first / 1200.0;
    const double density_second = loads_second / 900.0;
    EXPECT_GT(density_first, 3.0 * density_second);
}

TEST(EdgeWorkloadDeath, EmptyPhasesIsFatal)
{
    BenchmarkProfile broken = profileByName("gzip");
    broken.phases.clear();
    EXPECT_EXIT(SyntheticWorkload w(broken, 10, 0),
                ::testing::ExitedWithCode(1), "no phases");
}

// ---------------------------------------------------------------------------
// Logging levels
// ---------------------------------------------------------------------------

TEST(EdgeLogging, LevelsControlOutput)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    didt_warn("suppressed warning");   // must not crash
    didt_inform("suppressed info");
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Normal);
}

} // namespace
} // namespace didt
