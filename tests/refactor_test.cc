/**
 * @file
 * Equivalence guarantees for the zero-allocation refactor: the flat
 * coefficient layout and workspace-threaded analysis paths must be
 * bit-for-bit interchangeable with the legacy vector-of-vectors APIs,
 * and campaign results must stay byte-identical regardless of how many
 * workers (and therefore how many reused per-worker workspaces) run
 * the sweep. Everything here uses EXPECT_EQ on doubles on purpose:
 * the refactor preserves the exact floating-point accumulation order,
 * so approximate comparison would mask a regression.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/emergency_estimator.hh"
#include "core/experiment.hh"
#include "core/variance_model.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "util/rng.hh"
#include "wavelet/dwt.hh"
#include "wavelet/flat_decomposition.hh"
#include "wavelet/modwt.hh"
#include "wavelet/subband.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{
namespace
{

std::vector<double>
randomSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.normal(40.0, 10.0);
    return xs;
}

std::vector<WaveletBasis>
allBases()
{
    return {WaveletBasis::haar(), WaveletBasis::daubechies4(),
            WaveletBasis::daubechies6()};
}

SupplyNetwork
testNetwork()
{
    SupplyNetworkConfig cfg;
    cfg.clockHz = 3.0e9;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.dcResistance = 3.0e-4;
    return SupplyNetwork(cfg);
}

void
expectSameDecomposition(const WaveletDecomposition &legacy,
                        const FlatDecomposition &flat,
                        const std::string &what)
{
    ASSERT_EQ(legacy.details.size(), flat.levels()) << what;
    ASSERT_EQ(legacy.signalLength, flat.signalLength()) << what;
    for (std::size_t j = 0; j < flat.levels(); ++j) {
        const auto row = flat.detail(j);
        ASSERT_EQ(legacy.details[j].size(), row.size()) << what;
        for (std::size_t i = 0; i < row.size(); ++i)
            EXPECT_EQ(legacy.details[j][i], row[i])
                << what << ": detail level " << j << " index " << i;
    }
    const auto approx = flat.approximation();
    ASSERT_EQ(legacy.approximation.size(), approx.size()) << what;
    for (std::size_t i = 0; i < approx.size(); ++i)
        EXPECT_EQ(legacy.approximation[i], approx[i])
            << what << ": approximation index " << i;
}

// ---------------------------------------------------------------------------
// DWT: flat vs legacy, every basis
// ---------------------------------------------------------------------------

TEST(RefactorDwt, FlatForwardMatchesLegacyBitForBit)
{
    for (const WaveletBasis &basis : allBases()) {
        const Dwt dwt(basis);
        const auto signal = randomSignal(256, 101 + basis.length());
        const std::size_t levels = dwt.maxLevels(signal.size());
        ASSERT_GE(levels, 3u);

        const WaveletDecomposition legacy = dwt.forward(signal, levels);
        FlatDecomposition flat;
        DwtWorkspace ws;
        dwt.forward(signal, levels, flat, ws);
        expectSameDecomposition(legacy, flat, basis.name());
    }
}

TEST(RefactorDwt, FlatInverseMatchesLegacyBitForBit)
{
    for (const WaveletBasis &basis : allBases()) {
        const Dwt dwt(basis);
        const auto signal = randomSignal(512, 202 + basis.length());
        const std::size_t levels = dwt.maxLevels(signal.size());

        const WaveletDecomposition legacy = dwt.forward(signal, levels);
        const std::vector<double> legacy_back = dwt.inverse(legacy);

        FlatDecomposition flat;
        DwtWorkspace ws;
        dwt.forward(signal, levels, flat, ws);
        std::vector<double> flat_back(signal.size(), 0.0);
        dwt.inverse(flat, flat_back, ws);

        for (std::size_t i = 0; i < signal.size(); ++i)
            EXPECT_EQ(legacy_back[i], flat_back[i])
                << basis.name() << " index " << i;
    }
}

TEST(RefactorDwt, ReusedWorkspaceIsStateless)
{
    // A workspace warmed on one signal (and one shape) must not leak
    // state into the next transform: recomputing through a dirty
    // workspace gives the same bits as a fresh one.
    const Dwt dwt(WaveletBasis::daubechies4());
    FlatDecomposition dirty_dec;
    DwtWorkspace dirty_ws;
    dwt.forward(randomSignal(1024, 7), dwt.maxLevels(1024), dirty_dec,
                dirty_ws);

    const auto signal = randomSignal(256, 8);
    const std::size_t levels = dwt.maxLevels(signal.size());
    FlatDecomposition fresh_dec;
    DwtWorkspace fresh_ws;
    dwt.forward(signal, levels, fresh_dec, fresh_ws);
    dwt.forward(signal, levels, dirty_dec, dirty_ws);

    ASSERT_EQ(fresh_dec.totalCoefficients(),
              dirty_dec.totalCoefficients());
    const auto fresh = fresh_dec.coefficients();
    const auto dirty = dirty_dec.coefficients();
    for (std::size_t i = 0; i < fresh.size(); ++i)
        EXPECT_EQ(fresh[i], dirty[i]) << "coefficient " << i;
}

TEST(RefactorDwt, NestedRoundTripPreservesBits)
{
    const Dwt dwt(WaveletBasis::daubechies6());
    const auto signal = randomSignal(256, 9);
    FlatDecomposition flat;
    DwtWorkspace ws;
    dwt.forward(signal, dwt.maxLevels(signal.size()), flat, ws);

    FlatDecomposition copy;
    copy.assignFrom(flat.toNested());
    ASSERT_EQ(copy.totalCoefficients(), flat.totalCoefficients());
    const auto a = flat.coefficients();
    const auto b = copy.coefficients();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "coefficient " << i;
    EXPECT_EQ(flat.energy(), copy.energy());
}

// ---------------------------------------------------------------------------
// MODWT
// ---------------------------------------------------------------------------

TEST(RefactorModwt, FlatForwardMatchesLegacyBitForBit)
{
    for (const WaveletBasis &basis : allBases()) {
        const Modwt modwt(basis);
        const auto signal = randomSignal(200, 303 + basis.length());
        const std::size_t levels = 4;

        const ModwtDecomposition legacy = modwt.forward(signal, levels);
        FlatDecomposition flat;
        DwtWorkspace ws;
        modwt.forward(signal, levels, flat, ws);

        ASSERT_EQ(legacy.levels(), flat.levels()) << basis.name();
        for (std::size_t j = 0; j < levels; ++j) {
            const auto row = flat.detail(j);
            ASSERT_EQ(legacy.details[j].size(), row.size());
            for (std::size_t i = 0; i < row.size(); ++i)
                EXPECT_EQ(legacy.details[j][i], row[i])
                    << basis.name() << " level " << j << " index " << i;
        }
        const auto smooth = flat.approximation();
        ASSERT_EQ(legacy.smooth.size(), smooth.size());
        for (std::size_t i = 0; i < smooth.size(); ++i)
            EXPECT_EQ(legacy.smooth[i], smooth[i])
                << basis.name() << " smooth index " << i;
    }
}

TEST(RefactorModwt, InPlaceWaveletVarianceMatchesAllocating)
{
    const Modwt modwt(WaveletBasis::daubechies4());
    const auto signal = randomSignal(300, 11);
    const std::size_t levels = 5;

    const std::vector<double> legacy =
        modwt.waveletVariance(signal, levels);
    std::vector<double> in_place(levels, -1.0);
    DwtWorkspace ws;
    modwt.waveletVariance(signal, levels, in_place, ws);

    ASSERT_EQ(legacy.size(), in_place.size());
    for (std::size_t j = 0; j < levels; ++j)
        EXPECT_EQ(legacy[j], in_place[j]) << "level " << j;
}

// ---------------------------------------------------------------------------
// Subband projections
// ---------------------------------------------------------------------------

TEST(RefactorSubband, FlatProjectionsMatchLegacyBitForBit)
{
    const Dwt dwt(WaveletBasis::daubechies4());
    const auto signal = randomSignal(256, 12);
    const std::size_t levels = dwt.maxLevels(signal.size());

    const WaveletDecomposition legacy = dwt.forward(signal, levels);
    FlatDecomposition flat;
    DwtWorkspace ws;
    dwt.forward(signal, levels, flat, ws);

    std::vector<double> out(signal.size(), 0.0);
    for (std::size_t j = 0; j < levels; ++j) {
        const std::vector<double> want = detailSubband(dwt, legacy, j);
        detailSubband(dwt, flat, j, out, ws);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(want[i], out[i]) << "level " << j << " index " << i;
    }

    const std::vector<double> want_approx =
        approximationSubband(dwt, legacy);
    approximationSubband(dwt, flat, out, ws);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(want_approx[i], out[i]) << "approx index " << i;

    const std::vector<std::size_t> keep{1, 3};
    const std::vector<double> want_filtered =
        filteredReconstruction(dwt, legacy, keep, true);
    filteredReconstruction(dwt, flat, keep, true, out, ws);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(want_filtered[i], out[i]) << "filtered index " << i;
}

// ---------------------------------------------------------------------------
// Scale statistics
// ---------------------------------------------------------------------------

TEST(RefactorStats, FlatScaleStatsMatchNestedBitForBit)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(512, 13);
    const std::size_t levels = dwt.maxLevels(signal.size());

    const ScaleStats want =
        computeScaleStats(dwt.forward(signal, levels));

    FlatDecomposition flat;
    DwtWorkspace ws;
    dwt.forward(signal, levels, flat, ws);
    ScaleStats got;
    got.subbandVariance.assign(3, -7.0); // stale contents must be reset
    computeScaleStats(flat, got);

    ASSERT_EQ(want.subbandVariance.size(), got.subbandVariance.size());
    ASSERT_EQ(want.adjacentCorrelation.size(),
              got.adjacentCorrelation.size());
    for (std::size_t j = 0; j < want.subbandVariance.size(); ++j) {
        EXPECT_EQ(want.subbandVariance[j], got.subbandVariance[j]);
        EXPECT_EQ(want.adjacentCorrelation[j],
                  got.adjacentCorrelation[j]);
    }
    EXPECT_EQ(want.approximationVariance, got.approximationVariance);
}

// ---------------------------------------------------------------------------
// Analysis model and trace profiling
// ---------------------------------------------------------------------------

TEST(RefactorModel, WorkspaceEstimateMatchesLegacyBitForBit)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();

    AnalysisWorkspace ws;
    const std::vector<std::size_t> some_levels{2, 3, 4};
    for (std::uint64_t seed = 20; seed < 24; ++seed) {
        const auto window = randomSignal(model.windowLength(), seed);
        for (const bool correlated : {true, false}) {
            const WindowEstimate want =
                model.estimate(window, {}, correlated);
            WindowEstimate got;
            model.estimate(window, {}, correlated, got, ws);
            EXPECT_EQ(want.mean, got.mean);
            EXPECT_EQ(want.variance, got.variance);
        }
        const WindowEstimate want =
            model.estimate(window, some_levels, true);
        WindowEstimate got;
        model.estimate(window, some_levels, true, got, ws);
        EXPECT_EQ(want.mean, got.mean);
        EXPECT_EQ(want.variance, got.variance);
    }
}

TEST(RefactorModel, WorkspaceProfileTraceMatchesLegacyBitForBit)
{
    const SupplyNetwork net = testNetwork();
    VoltageVarianceModel model(net);
    model.calibrateAnalytic();

    Rng rng(21);
    const CurrentTrace trace =
        gaussianCurrent(40.0, 8.0, model.windowLength() * 16, rng);

    const EmergencyProfile want =
        profileTrace(trace, net, model, 0.97, 1.03);
    AnalysisWorkspace ws;
    const EmergencyProfile got =
        profileTrace(trace, net, model, 0.97, 1.03, ws);

    EXPECT_EQ(want.windows, got.windows);
    EXPECT_EQ(want.estimatedBelow, got.estimatedBelow);
    EXPECT_EQ(want.measuredBelow, got.measuredBelow);
    EXPECT_EQ(want.estimatedAbove, got.estimatedAbove);
    EXPECT_EQ(want.measuredAbove, got.measuredAbove);
    EXPECT_EQ(want.estimatedVariance, got.estimatedVariance);
    EXPECT_EQ(want.measuredVariance, got.measuredVariance);

    // Profiling a second trace through the same workspace must be
    // unaffected by the leftovers of the first.
    Rng rng2(22);
    const CurrentTrace second =
        gaussianCurrent(45.0, 5.0, model.windowLength() * 8, rng2);
    const EmergencyProfile want2 =
        profileTrace(second, net, model, 0.97, 1.03);
    const EmergencyProfile got2 =
        profileTrace(second, net, model, 0.97, 1.03, ws);
    EXPECT_EQ(want2.estimatedVariance, got2.estimatedVariance);
    EXPECT_EQ(want2.measuredVariance, got2.measuredVariance);
    EXPECT_EQ(want2.estimatedBelow, got2.estimatedBelow);
}

// ---------------------------------------------------------------------------
// Campaign byte-identity across job counts
// ---------------------------------------------------------------------------

BenchmarkProfile
refactorProfile(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile prof;
    prof.name = name;
    prof.seed = seed;
    WorkloadPhase phase;
    phase.lengthInsts = 5000;
    prof.phases = {phase};
    return prof;
}

TEST(RefactorCampaign, JsonByteIdenticalAcrossJobCounts)
{
    // The per-worker workspace striping means jobs=1 funnels every
    // cell through one workspace while jobs=4 spreads cells over four
    // plus the caller's slot. The serialized campaign must not be able
    // to tell the difference.
    static const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    spec.profiles = {refactorProfile("flat-a", 51),
                     refactorProfile("flat-b", 52),
                     refactorProfile("flat-c", 53)};
    spec.impedanceScales = {1.0, 1.3};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 6000;

    TraceRepository serial_repo(setup);
    const CampaignResult serial =
        runCharacterizationCampaign(setup, spec, serial_repo, 1);
    TraceRepository parallel_repo(setup);
    const CampaignResult parallel =
        runCharacterizationCampaign(setup, spec, parallel_repo, 4);

    EXPECT_EQ(campaignToJson(serial).dump(),
              campaignToJson(parallel).dump())
        << "shared workspaces must not leak state between cells";
}

} // namespace
} // namespace didt
