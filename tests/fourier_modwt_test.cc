/**
 * @file
 * Tests for the Fourier (FFT) module and the maximal-overlap DWT,
 * including cross-validation between wavelet subband energies and
 * band-limited spectral energies.
 */

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "wavelet/dwt.hh"
#include "wavelet/fourier.hh"
#include "wavelet/modwt.hh"
#include "wavelet/subband.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{
namespace
{

std::vector<double>
randomSignal(std::size_t n, std::uint64_t seed, double mean = 0.0)
{
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.normal(mean, 3.0);
    return xs;
}

// ---------------------------------------------------------------------------
// FFT
// ---------------------------------------------------------------------------

TEST(Fft, RoundTrip)
{
    const auto x = randomSignal(256, 1);
    std::vector<std::complex<double>> data(x.begin(), x.end());
    fft(data);
    fft(data, true);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(data[i].real(), x[i], 1e-9);
        EXPECT_NEAR(data[i].imag(), 0.0, 1e-9);
    }
}

TEST(Fft, MatchesNaiveDft)
{
    const auto x = randomSignal(64, 2);
    const auto fast = dft(x);
    for (std::size_t k = 0; k < x.size(); ++k) {
        std::complex<double> slow(0.0, 0.0);
        for (std::size_t t = 0; t < x.size(); ++t) {
            const double angle = -2.0 * M_PI * static_cast<double>(k) *
                                 static_cast<double>(t) /
                                 static_cast<double>(x.size());
            slow += x[t] * std::complex<double>(std::cos(angle),
                                                std::sin(angle));
        }
        EXPECT_NEAR(fast[k].real(), slow.real(), 1e-7) << k;
        EXPECT_NEAR(fast[k].imag(), slow.imag(), 1e-7) << k;
    }
}

TEST(Fft, PureToneConcentratesInOneBin)
{
    const std::size_t n = 256;
    std::vector<double> x(n);
    for (std::size_t t = 0; t < n; ++t)
        x[t] = std::sin(2.0 * M_PI * 16.0 * static_cast<double>(t) /
                        static_cast<double>(n));
    const auto power = powerSpectrum(x);
    for (std::size_t k = 0; k < power.size(); ++k) {
        if (k == 16)
            EXPECT_NEAR(power[k], 0.5, 1e-9); // sine mean-square = 1/2
        else
            EXPECT_NEAR(power[k], 0.0, 1e-9);
    }
}

TEST(Fft, ParsevalHolds)
{
    const auto x = randomSignal(512, 3, 5.0);
    const auto power = powerSpectrum(x);
    double spectral = 0.0;
    for (double p : power)
        spectral += p;
    double mean_square = 0.0;
    for (double v : x)
        mean_square += v * v;
    mean_square /= static_cast<double>(x.size());
    EXPECT_NEAR(spectral, mean_square, 1e-9 * mean_square);
}

TEST(Fft, BandEnergyOfTone)
{
    const std::size_t n = 1024;
    const double fs = 3.0e9;
    std::vector<double> x(n);
    // Tone at bin 43 -> 43 * fs / n = 126 MHz.
    for (std::size_t t = 0; t < n; ++t)
        x[t] = 10.0 * std::sin(2.0 * M_PI * 43.0 * static_cast<double>(t) /
                               static_cast<double>(n));
    EXPECT_NEAR(bandEnergy(x, 100e6, 150e6, fs), 50.0, 1e-6);
    EXPECT_NEAR(bandEnergy(x, 200e6, 400e6, fs), 0.0, 1e-9);
}

TEST(FftDeath, NonPowerOfTwoPanics)
{
    std::vector<std::complex<double>> data(100);
    EXPECT_DEATH(fft(data), "power of two");
}

// ---------------------------------------------------------------------------
// Cross-validation: DWT subbands vs spectrum
// ---------------------------------------------------------------------------

TEST(CrossValidation, SubbandVarianceMatchesBandSpectralEnergy)
{
    // Narrow-band noise placed inside detail level 3's band
    // (94-188 MHz at 3 GHz) should show up almost entirely in that
    // subband's Parseval variance AND in the corresponding spectral
    // band energy, tying the two analyses together.
    const std::size_t n = 4096;
    const double fs = 3.0e9;
    Rng rng(7);
    std::vector<double> x(n, 0.0);
    for (int tone = 0; tone < 6; ++tone) {
        const double f = rng.uniform(110e6, 170e6);
        const double amp = rng.uniform(1.0, 2.0);
        const double phase = rng.uniform(0.0, 2.0 * M_PI);
        for (std::size_t t = 0; t < n; ++t)
            x[t] += amp * std::sin(2.0 * M_PI * f *
                                       static_cast<double>(t) / fs +
                                   phase);
    }

    const Dwt dwt(WaveletBasis::haar());
    const auto stats = computeScaleStats(dwt.forward(x, 8));
    const double total = variance(x);

    // Most variance in level 3 (94-188 MHz), by both measures.
    EXPECT_GT(stats.subbandVariance[3], 0.5 * total);
    const double band = bandEnergy(x, 94e6, 188e6, fs);
    EXPECT_GT(band, 0.9 * total);
}

// ---------------------------------------------------------------------------
// MODWT
// ---------------------------------------------------------------------------

class ModwtBasis : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ModwtBasis, PerfectReconstruction)
{
    const Modwt modwt(WaveletBasis::byName(GetParam()));
    const auto x = randomSignal(200, 11, 10.0); // non power of two!
    const auto dec = modwt.forward(x, 4);
    const auto back = modwt.inverse(dec);
    ASSERT_EQ(back.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(back[i], x[i], 1e-9) << i;
}

TEST_P(ModwtBasis, EnergyDecomposition)
{
    const Modwt modwt(WaveletBasis::byName(GetParam()));
    const auto x = randomSignal(256, 13);
    const auto dec = modwt.forward(x, 5);
    double energy = 0.0;
    for (const auto &level : dec.details)
        for (double w : level)
            energy += w * w;
    for (double v : dec.smooth)
        energy += v * v;
    double direct = 0.0;
    for (double v : x)
        direct += v * v;
    EXPECT_NEAR(energy, direct, 1e-7 * direct);
}

INSTANTIATE_TEST_SUITE_P(Bases, ModwtBasis,
                         ::testing::Values("haar", "db4", "db6"));

TEST(Modwt, EveryLevelKeepsFullLength)
{
    const Modwt modwt(WaveletBasis::haar());
    const auto x = randomSignal(300, 17);
    const auto dec = modwt.forward(x, 6);
    for (const auto &level : dec.details)
        EXPECT_EQ(level.size(), 300u);
    EXPECT_EQ(dec.smooth.size(), 300u);
}

TEST(Modwt, ShiftInvarianceOfWaveletVariance)
{
    // The defining advantage over the decimated transform: circularly
    // shifting the signal leaves per-scale variance unchanged.
    const Modwt modwt(WaveletBasis::haar());
    std::vector<double> x(256);
    for (std::size_t t = 0; t < 256; ++t)
        x[t] = (t / 12) % 2 ? 1.0 : -1.0; // period 24, off-grid
    const auto base = modwt.waveletVariance(x, 6);

    std::vector<double> shifted(x.size());
    for (std::size_t s : {1u, 5u, 13u}) {
        for (std::size_t t = 0; t < x.size(); ++t)
            shifted[t] = x[(t + s) % x.size()];
        const auto moved = modwt.waveletVariance(shifted, 6);
        for (std::size_t j = 0; j < base.size(); ++j)
            EXPECT_NEAR(moved[j], base[j], 1e-9) << "shift " << s;
    }
}

TEST(Modwt, WaveletVarianceSumsToSampleVariance)
{
    const Modwt modwt(WaveletBasis::haar());
    const auto x = randomSignal(512, 19, 40.0);
    const auto nu = modwt.waveletVariance(x, 7);
    const auto dec = modwt.forward(x, 7);
    double smooth_var = variance(dec.smooth);
    double sum = smooth_var;
    for (double v : nu)
        sum += v;
    // MODWT energy decomposition: detail variances plus the smooth
    // component's second moment about the mean recover Var(x).
    // (The smooth row carries the mean; using its variance about its
    // own mean plus the detail energies matches Var(x).)
    EXPECT_NEAR(sum, variance(x), 0.02 * variance(x));
}

TEST(Modwt, VarianceConcentratesAtMatchingScale)
{
    const Modwt modwt(WaveletBasis::haar());
    std::vector<double> x(512);
    for (std::size_t t = 0; t < 512; ++t)
        x[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
    const auto nu = modwt.waveletVariance(x, 7);
    // Period 24 = 125 MHz at 3 GHz: MODWT level 4 (paper scale j=3
    // covers 16-32 cycle periods -> index 3 or 4 depending on the
    // octave edge; accept the max being one of those).
    std::size_t peak = 0;
    for (std::size_t j = 1; j < nu.size(); ++j)
        if (nu[j] > nu[peak])
            peak = j;
    EXPECT_TRUE(peak == 3 || peak == 4) << peak;
}

TEST(ModwtDeath, TooDeepForSignalIsFatal)
{
    const Modwt modwt(WaveletBasis::haar());
    const std::vector<double> x(16, 1.0);
    EXPECT_EXIT((void)modwt.forward(x, 10), ::testing::ExitedWithCode(1),
                "too deep");
}

} // namespace
} // namespace didt
