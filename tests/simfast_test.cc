/**
 * @file
 * Simulator hot-loop and sampling regression suite (DESIGN.md
 * section 15).
 *
 * The SoA ring-buffer pipeline, the vectorized power accumulation, and
 * the cached idle/peak power are pure performance work: they must not
 * move a single bit of simulator output. The golden FNV-1a hashes
 * below were generated from the deque-based seed build (20000
 * instructions, seed 0, trim 4096) and pin:
 *
 *   - every SPEC 2000 profile's open-loop current trace,
 *   - a 2-core chip's aggregate and per-core traces (shared L2 +
 *     bank arbiter), and
 *   - every closed-loop control scheme's full CosimResult.
 *
 * Sampling (sim/sampling.hh) is the one feature allowed to change
 * output — and only when explicitly enabled: a disabled SamplingConfig
 * must collapse byte-identically to the full-detail path, invalid
 * configurations must throw, and an enabled one must stay inside the
 * verify::Oracle::checkSampling tolerances.
 */

#include <cstdint>
#include <cstring>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosim.hh"
#include "core/experiment.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "sim/chip.hh"
#include "util/simd.hh"
#include "verify/oracle.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

/** FNV-1a, matching the offline golden-hash generator exactly. */
std::uint64_t
fnv1a(const void *data, std::size_t bytes,
      std::uint64_t hash = 1469598103934665603ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
hashTrace(const CurrentTrace &trace)
{
    std::uint64_t n = trace.size();
    std::uint64_t h = fnv1a(&n, sizeof n);
    return fnv1a(trace.data(), trace.size() * sizeof(double), h);
}

std::uint64_t
hashCosim(const CosimResult &r)
{
    std::uint64_t h = fnv1a(r.scheme.data(), r.scheme.size());
    std::uint64_t u[] = {r.cycles,     r.committed,     r.lowFaults,
                         r.highFaults, r.controlCycles, r.stallCycles,
                         r.noopCycles, r.falsePositives};
    h = fnv1a(u, sizeof u, h);
    double d[] = {r.minVoltage, r.maxVoltage, r.meanCurrent, r.energyJ};
    return fnv1a(d, sizeof d, h);
}

struct GoldenHash
{
    const char *name;
    std::uint64_t hash;
};

// Seed-build (deque pipeline) trace hashes: 20000 insts, seed 0,
// trim 4096.
constexpr GoldenHash kProfileGolden[] = {
    {"gzip", 0x5fd1648152423b6bULL},    {"vpr", 0x228194cca56e649eULL},
    {"gcc", 0xd66a1772a937ffc7ULL},     {"mcf", 0x0b056c64c4ee6d9bULL},
    {"crafty", 0xe7dac73bb2086887ULL},  {"parser", 0x1b924bf29a6f0c76ULL},
    {"eon", 0xc308538f06b5968dULL},     {"perlbmk", 0x19ef2066a215d9fbULL},
    {"gap", 0xb60549a1c1986368ULL},     {"vortex", 0x8d77a839d14f57e1ULL},
    {"bzip2", 0xec6f4a4ba35d4b9cULL},   {"twolf", 0x29e7329f610a2ebdULL},
    {"wupwise", 0xfee07097cf348fe8ULL}, {"swim", 0x0250ba6e23f700a5ULL},
    {"mgrid", 0xa88f5689c8275003ULL},   {"applu", 0x581e97908283efe7ULL},
    {"mesa", 0x30271a5a8acb7cb6ULL},    {"galgel", 0x0bef1657736fc83aULL},
    {"art", 0x59eb30175c32e170ULL},     {"equake", 0x675847d899f419a2ULL},
    {"facerec", 0xf98709623082aebbULL}, {"ammp", 0xbf86bef66c9d9110ULL},
    {"lucas", 0x2ee5eb00c2cf9e5eULL},   {"fma3d", 0x98a04e412a3abb37ULL},
    {"sixtrack", 0x17e4a43706d7d92dULL},{"apsi", 0x127c7da183a56212ULL},
};

// Seed-build 2-core chip (gzip seed 0 + mcf seed 1, 20000 insts).
constexpr std::uint64_t kChipAggregateGolden = 0x8698e9513cb52e4aULL;
constexpr std::uint64_t kChipCoreGolden[] = {0x17754c0d559c6a73ULL,
                                             0x8c3c0f686fef91e7ULL};

// Seed-build closed-loop results: gzip, 20000 insts, impedance 1.0.
constexpr GoldenHash kSchemeGolden[] = {
    {"none", 0x3976e7728acc3162ULL},
    {"wavelet", 0x60f318f73eaf90f8ULL},
    {"full-convolution", 0xd01b8f310d071ad6ULL},
    {"analog-sensor", 0xdd385c7b7434345bULL},
    {"pipeline-damping", 0x330ce4fb402e3764ULL},
    {"adaptive-wavelet", 0xac19e0d1f10d65a2ULL},
};

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

/** Restore CPU-probed SIMD dispatch when a test scope ends. */
struct LevelGuard
{
    ~LevelGuard() { simd::clearForcedLevel(); }
};

std::vector<simd::Level>
allLevels()
{
    std::vector<simd::Level> out{simd::Level::Scalar};
    for (simd::Level level :
         {simd::Level::Sse2, simd::Level::Avx2, simd::Level::Neon})
        if (simd::levelAvailable(level))
            out.push_back(level);
    return out;
}

TEST(SimLoopGolden, ProfileTracesMatchSeedBuild)
{
    const ExperimentSetup &setup = sharedSetup();
    for (const GoldenHash &golden : kProfileGolden) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, profileByName(golden.name), 20000, 0);
        EXPECT_EQ(hashTrace(trace), golden.hash) << golden.name;
    }
}

TEST(SimLoopGolden, ChipTracesMatchSeedBuild)
{
    const ExperimentSetup &setup = sharedSetup();
    const std::vector<ChipWorkload> workloads{
        {&profileByName("gzip"), 0}, {&profileByName("mcf"), 1}};
    const TraceSet set = chipCurrentTrace(setup, workloads, 20000);
    EXPECT_EQ(hashTrace(set.aggregate), kChipAggregateGolden);
    ASSERT_EQ(set.perCore.size(), 2u);
    for (std::size_t i = 0; i < set.perCore.size(); ++i)
        EXPECT_EQ(hashTrace(set.perCore[i]), kChipCoreGolden[i])
            << "core " << i;
}

TEST(SimLoopGolden, ClosedLoopSchemesMatchSeedBuild)
{
    const ExperimentSetup &setup = sharedSetup();
    const SupplyNetwork network = setup.makeNetwork(1.0);
    const VoltageVarianceModel model =
        makeCalibratedModel(setup, network, 256, 8);
    const ControlScheme schemes[] = {
        ControlScheme::None,           ControlScheme::Wavelet,
        ControlScheme::FullConvolution, ControlScheme::AnalogSensor,
        ControlScheme::PipelineDamping, ControlScheme::AdaptiveWavelet,
    };
    for (std::size_t i = 0; i < std::size(schemes); ++i) {
        CosimConfig cfg;
        cfg.instructions = 20000;
        cfg.scheme = schemes[i];
        if (schemes[i] == ControlScheme::AdaptiveWavelet)
            cfg.hazardModel = &model;
        const CosimResult result = runClosedLoop(
            profileByName("gzip"), setup.proc, setup.power, network, cfg);
        EXPECT_EQ(result.scheme, kSchemeGolden[i].name);
        EXPECT_EQ(hashCosim(result), kSchemeGolden[i].hash)
            << kSchemeGolden[i].name;
    }
}

/** One small campaign's deterministic JSON, as a string. */
std::string
campaignJson(const ExperimentSetup &setup, std::size_t jobs)
{
    CampaignSpec spec;
    spec.profiles = {profileByName("gzip"), profileByName("mcf")};
    spec.impedanceScales = {1.0, 1.2};
    spec.instructions = 20000;
    spec.windowLength = 128;
    spec.levels = 6;
    TraceRepository repo(setup);
    const CampaignResult result =
        runCharacterizationCampaign(setup, spec, repo, jobs);
    std::ostringstream out;
    campaignToJson(result, false).write(out);
    return out.str();
}

TEST(SimLoopGolden, CampaignJsonInvariantAcrossJobsAndSimdLevels)
{
    const ExperimentSetup &setup = sharedSetup();
    LevelGuard guard;
    simd::forceLevel(simd::Level::Scalar);
    const std::string reference = campaignJson(setup, 1);
    EXPECT_NE(reference.find("\"schema\":"), std::string::npos);
    // Sampling-off campaigns must not mention sampling at all.
    EXPECT_EQ(reference.find("sample_"), std::string::npos);
    for (simd::Level level : allLevels()) {
        simd::forceLevel(level);
        for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            EXPECT_EQ(campaignJson(setup, jobs), reference)
                << simd::levelName(level) << " jobs=" << jobs;
        }
    }
}

TEST(Sampling, InvalidConfigsThrow)
{
    SamplingConfig no_detail;
    no_detail.skipCycles = 1000;
    no_detail.detailCycles = 0;
    EXPECT_THROW(no_detail.validate(), std::invalid_argument);

    SamplingConfig warm_overflow;
    warm_overflow.detailCycles = 256;
    warm_overflow.skipCycles = 100;
    warm_overflow.warmupCycles = 200;
    EXPECT_THROW(warm_overflow.validate(), std::invalid_argument);

    const ExperimentSetup &setup = sharedSetup();
    SyntheticWorkload source(profileByName("gzip"), 2000, 0);
    Processor processor(setup.proc, setup.power, source);
    CurrentTrace trace;
    EXPECT_THROW(processor.collectTraceSampled(trace, 10000, no_detail),
                 std::invalid_argument);
    EXPECT_TRUE(trace.empty());
}

TEST(Sampling, DisabledCollapsesToFullDetail)
{
    const ExperimentSetup &setup = sharedSetup();

    SyntheticWorkload full_source(profileByName("vpr"), 5000, 0);
    Processor full(setup.proc, setup.power, full_source);
    CurrentTrace full_trace;
    const Cycle full_cycles = full.collectTrace(full_trace, 400000);

    SamplingConfig off; // skipCycles == 0: sampling disabled
    off.detailCycles = 1234;
    SyntheticWorkload sampled_source(profileByName("vpr"), 5000, 0);
    Processor sampled(setup.proc, setup.power, sampled_source);
    CurrentTrace sampled_trace;
    const Cycle sampled_cycles =
        sampled.collectTraceSampled(sampled_trace, 400000, off);

    EXPECT_EQ(full_cycles, sampled_cycles);
    ASSERT_EQ(full_trace.size(), sampled_trace.size());
    EXPECT_EQ(std::memcmp(full_trace.data(), sampled_trace.data(),
                          full_trace.size() * sizeof(double)),
              0);
}

TEST(Sampling, CoversRequestedCyclesAndSkipsDetail)
{
    const ExperimentSetup &setup = sharedSetup();
    SamplingConfig sampling;
    sampling.detailCycles = 2048;
    sampling.skipCycles = 8192;
    sampling.warmupCycles = 512;

    const CurrentTrace full =
        benchmarkCurrentTrace(setup, profileByName("gzip"), 30000, 0);
    const CurrentTrace sampled = benchmarkCurrentTrace(
        setup, profileByName("gzip"), 30000, 0, 4096, sampling);

    // The sampled trace covers the same virtual cycles (within one
    // window+skip period of drift from where the stream ends).
    ASSERT_FALSE(sampled.empty());
    const double drift =
        static_cast<double>(sampling.detailCycles + sampling.skipCycles);
    EXPECT_NEAR(static_cast<double>(sampled.size()),
                static_cast<double>(full.size()), drift);
}

TEST(Sampling, ChipSampledCoversRequestedCycles)
{
    const ExperimentSetup &setup = sharedSetup();
    SamplingConfig sampling;
    sampling.detailCycles = 2048;
    sampling.skipCycles = 8192;
    sampling.warmupCycles = 512;

    const std::vector<ChipWorkload> workloads{
        {&profileByName("gzip"), 0}, {&profileByName("mcf"), 1}};
    const TraceSet full = chipCurrentTrace(setup, workloads, 20000);
    const TraceSet sampled =
        chipCurrentTrace(setup, workloads, 20000, 4096, {}, sampling);

    ASSERT_EQ(sampled.perCore.size(), 2u);
    // Lockstep windows: every per-core trace spans exactly the
    // aggregate's cycles.
    for (const CurrentTrace &trace : sampled.perCore)
        EXPECT_EQ(trace.size(), sampled.aggregate.size());
    const double drift =
        static_cast<double>(sampling.detailCycles + sampling.skipCycles);
    EXPECT_NEAR(static_cast<double>(sampled.aggregate.size()),
                static_cast<double>(full.aggregate.size()), drift);
}

TEST(Sampling, OracleTolerancesHold)
{
    const ExperimentSetup &setup = sharedSetup();
    const verify::Oracle oracle(setup);
    SamplingConfig sampling;
    sampling.detailCycles = 4096;
    sampling.skipCycles = 8192;
    sampling.warmupCycles = 512;
    for (const char *name : {"gzip", "mgrid", "mcf"}) {
        const verify::SamplingOracleReport report =
            oracle.checkSampling(profileByName(name), sampling, 60000);
        EXPECT_GT(report.fullCycles, 0u) << name;
        EXPECT_GT(report.sampledCycles, 0u) << name;
        EXPECT_TRUE(report.pass)
            << name << ": variance rel err "
            << report.resonanceVarianceRelError << ", low crossing err "
            << report.lowCrossingPctError << " pct, high crossing err "
            << report.highCrossingPctError << " pct";
    }
}

TEST(Sampling, SpecJsonRoundTripsAndValidates)
{
    CampaignSpec spec;
    spec.sampleDetail = 2048;
    spec.sampleSkip = 16384;
    spec.sampleWarmup = 256;
    ASSERT_TRUE(spec.isSampled());
    std::ostringstream out;
    campaignSpecToJson(spec).write(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"sample_detail\": 2048"), std::string::npos);
    EXPECT_NE(json.find("\"sample_skip\": 16384"), std::string::npos);
    EXPECT_NE(json.find("\"sample_warmup\": 256"), std::string::npos);

    std::string error;
    JsonValue parsed = parseJson(json);
    CampaignSpec round;
    ASSERT_TRUE(campaignSpecFromJson(parsed, &round, &error)) << error;
    EXPECT_EQ(round.sampleDetail, spec.sampleDetail);
    EXPECT_EQ(round.sampleSkip, spec.sampleSkip);
    EXPECT_EQ(round.sampleWarmup, spec.sampleWarmup);

    // Contradictory sampled specs are rejected with a field error.
    parsed.set("sample_detail", static_cast<long long>(0));
    EXPECT_FALSE(campaignSpecFromJson(parsed, &round, &error));
    EXPECT_NE(error.find("sample_detail"), std::string::npos);

    // Sampling-off specs keep their historical JSON bytes.
    CampaignSpec off;
    std::ostringstream off_json;
    campaignSpecToJson(off).write(off_json);
    EXPECT_EQ(off_json.str().find("sample_"), std::string::npos);
}

} // namespace
} // namespace didt
