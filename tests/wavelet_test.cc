/**
 * @file
 * Unit and property tests for the wavelet library: bases, the fast
 * DWT, subband projection, scalograms, and coefficient statistics.
 */

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "wavelet/basis.hh"
#include "wavelet/dwt.hh"
#include "wavelet/scalogram.hh"
#include "wavelet/subband.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{
namespace
{

std::vector<double>
randomSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.normal(10.0, 4.0);
    return xs;
}

// ---------------------------------------------------------------------------
// Bases
// ---------------------------------------------------------------------------

class BasisTest : public ::testing::TestWithParam<const char *>
{
  protected:
    WaveletBasis basis() const { return WaveletBasis::byName(GetParam()); }
};

TEST_P(BasisTest, LowpassSumsToSqrt2)
{
    const auto b = basis();
    double sum = 0.0;
    for (double c : b.lowpass())
        sum += c;
    EXPECT_NEAR(sum, std::sqrt(2.0), 1e-9);
}

TEST_P(BasisTest, LowpassUnitEnergy)
{
    const auto b = basis();
    double sum_sq = 0.0;
    for (double c : b.lowpass())
        sum_sq += c * c;
    EXPECT_NEAR(sum_sq, 1.0, 1e-9);
}

TEST_P(BasisTest, HighpassSumsToZero)
{
    const auto b = basis();
    double sum = 0.0;
    for (double c : b.highpass())
        sum += c;
    EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST_P(BasisTest, FiltersAreOrthogonal)
{
    const auto b = basis();
    double dot = 0.0;
    for (std::size_t i = 0; i < b.length(); ++i)
        dot += b.lowpass()[i] * b.highpass()[i];
    EXPECT_NEAR(dot, 0.0, 1e-12);
}

TEST_P(BasisTest, DoubleShiftOrthogonality)
{
    // <h, h shifted by 2k> = delta(k): the orthonormality condition.
    const auto b = basis();
    const auto &h = b.lowpass();
    for (std::size_t shift = 2; shift < h.size(); shift += 2) {
        double dot = 0.0;
        for (std::size_t i = 0; i + shift < h.size(); ++i)
            dot += h[i] * h[i + shift];
        EXPECT_NEAR(dot, 0.0, 1e-9) << "shift " << shift;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBases, BasisTest,
                         ::testing::Values("haar", "db4", "db6"));

TEST(Basis, HaarFilterValues)
{
    const auto haar = WaveletBasis::haar();
    const double r = 1.0 / std::sqrt(2.0);
    ASSERT_EQ(haar.length(), 2u);
    EXPECT_DOUBLE_EQ(haar.lowpass()[0], r);
    EXPECT_DOUBLE_EQ(haar.lowpass()[1], r);
    EXPECT_DOUBLE_EQ(haar.highpass()[0], r);
    EXPECT_DOUBLE_EQ(haar.highpass()[1], -r);
}

TEST(Basis, HaarScalingFunctionShape)
{
    // Paper Figure 1 (left): phi = 1 on [0,1).
    EXPECT_DOUBLE_EQ(haarScalingFunction(0.0), 1.0);
    EXPECT_DOUBLE_EQ(haarScalingFunction(0.999), 1.0);
    EXPECT_DOUBLE_EQ(haarScalingFunction(1.0), 0.0);
    EXPECT_DOUBLE_EQ(haarScalingFunction(-0.1), 0.0);
}

TEST(Basis, HaarWaveletFunctionShape)
{
    // Paper Figure 1 (right): psi = +1 on [0,.5), -1 on [.5,1).
    EXPECT_DOUBLE_EQ(haarWaveletFunction(0.25), 1.0);
    EXPECT_DOUBLE_EQ(haarWaveletFunction(0.5), -1.0);
    EXPECT_DOUBLE_EQ(haarWaveletFunction(0.75), -1.0);
    EXPECT_DOUBLE_EQ(haarWaveletFunction(1.0), 0.0);
    EXPECT_DOUBLE_EQ(haarWaveletFunction(-0.5), 0.0);
}

TEST(BasisDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(WaveletBasis::byName("sym9"), ::testing::ExitedWithCode(1),
                "unknown wavelet basis");
}

// ---------------------------------------------------------------------------
// DWT
// ---------------------------------------------------------------------------

TEST(Dwt, PaperFigure3Example)
{
    // The worked example of paper Figure 3: {2,4,2,0,2,4,2,0} under the
    // Haar basis. Level-1 details are (x0-x1)/sqrt2 etc.
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> signal{2, 4, 2, 0, 2, 4, 2, 0};
    const WaveletDecomposition dec = dwt.forward(signal, 2);

    const double r = 1.0 / std::sqrt(2.0);
    ASSERT_EQ(dec.details.size(), 2u);
    ASSERT_EQ(dec.details[0].size(), 4u);
    EXPECT_NEAR(dec.details[0][0], (2 - 4) * r, 1e-12);
    EXPECT_NEAR(dec.details[0][1], (2 - 0) * r, 1e-12);
    EXPECT_NEAR(dec.details[0][2], (2 - 4) * r, 1e-12);
    EXPECT_NEAR(dec.details[0][3], (2 - 0) * r, 1e-12);

    // Level 2: a1 = {6r, 2r, 6r, 2r}; d2 = (a1[0]-a1[1])/sqrt2 = 2.
    ASSERT_EQ(dec.details[1].size(), 2u);
    EXPECT_NEAR(dec.details[1][0], 2.0, 1e-12);
    EXPECT_NEAR(dec.details[1][1], 2.0, 1e-12);

    // Approximation: block sums / 2 = {4, 4}.
    ASSERT_EQ(dec.approximation.size(), 2u);
    EXPECT_NEAR(dec.approximation[0], 4.0, 1e-12);
    EXPECT_NEAR(dec.approximation[1], 4.0, 1e-12);
}

struct DwtCase
{
    const char *basis;
    std::size_t length;
    std::size_t levels;
};

class DwtRoundTrip : public ::testing::TestWithParam<DwtCase>
{
};

TEST_P(DwtRoundTrip, PerfectReconstruction)
{
    const auto [basis_name, length, levels] = GetParam();
    const Dwt dwt(WaveletBasis::byName(basis_name));
    const auto signal = randomSignal(length, 42 + length);
    const auto dec = dwt.forward(signal, levels);
    const auto back = dwt.inverse(dec);
    ASSERT_EQ(back.size(), signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(back[i], signal[i], 1e-9) << "index " << i;
}

TEST_P(DwtRoundTrip, ParsevalEnergyPreserved)
{
    const auto [basis_name, length, levels] = GetParam();
    const Dwt dwt(WaveletBasis::byName(basis_name));
    const auto signal = randomSignal(length, 7 + length);
    double energy = 0.0;
    for (double x : signal)
        energy += x * x;
    const auto dec = dwt.forward(signal, levels);
    EXPECT_NEAR(dec.energy(), energy, 1e-7 * energy);
}

TEST_P(DwtRoundTrip, CoefficientCountMatchesSignal)
{
    const auto [basis_name, length, levels] = GetParam();
    const Dwt dwt(WaveletBasis::byName(basis_name));
    const auto signal = randomSignal(length, 9);
    const auto dec = dwt.forward(signal, levels);
    EXPECT_EQ(dec.totalCoefficients(), length);
    EXPECT_EQ(dec.signalLength, length);
    EXPECT_EQ(dec.levels(), levels);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DwtRoundTrip,
    ::testing::Values(DwtCase{"haar", 8, 1}, DwtCase{"haar", 8, 3},
                      DwtCase{"haar", 256, 8}, DwtCase{"haar", 64, 4},
                      DwtCase{"db4", 64, 3}, DwtCase{"db4", 256, 6},
                      DwtCase{"db6", 128, 4}, DwtCase{"db6", 256, 5},
                      DwtCase{"haar", 96, 5}));

TEST(Dwt, ConstantSignalHasZeroDetails)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> signal(64, 5.0);
    const auto dec = dwt.forward(signal, 4);
    for (const auto &level : dec.details)
        for (double d : level)
            EXPECT_NEAR(d, 0.0, 1e-12);
    // Approximation carries all the mass: a = 5 * 2^(levels/2).
    for (double a : dec.approximation)
        EXPECT_NEAR(a, 5.0 * 4.0, 1e-12);
}

TEST(Dwt, Linearity)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto a = randomSignal(64, 1);
    const auto b = randomSignal(64, 2);
    std::vector<double> sum(64);
    for (std::size_t i = 0; i < 64; ++i)
        sum[i] = 2.0 * a[i] + 3.0 * b[i];
    const auto da = dwt.forward(a, 3);
    const auto db = dwt.forward(b, 3);
    const auto ds = dwt.forward(sum, 3);
    for (std::size_t j = 0; j < 3; ++j)
        for (std::size_t k = 0; k < ds.details[j].size(); ++k)
            EXPECT_NEAR(ds.details[j][k],
                        2.0 * da.details[j][k] + 3.0 * db.details[j][k],
                        1e-9);
}

TEST(Dwt, MaxLevels)
{
    const Dwt haar(WaveletBasis::haar());
    EXPECT_EQ(haar.maxLevels(256), 8u);
    EXPECT_EQ(haar.maxLevels(96), 5u);
    EXPECT_EQ(haar.maxLevels(1), 0u);
}

TEST(Dwt, AnalyzeSynthesizeStepRoundTrip)
{
    const Dwt dwt(WaveletBasis::daubechies4());
    const auto signal = randomSignal(32, 5);
    std::vector<double> approx;
    std::vector<double> detail;
    dwt.analyzeStep(signal, approx, detail);
    ASSERT_EQ(approx.size(), 16u);
    ASSERT_EQ(detail.size(), 16u);
    const auto back = dwt.synthesizeStep(approx, detail);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(back[i], signal[i], 1e-10);
}

// ---------------------------------------------------------------------------
// Subbands
// ---------------------------------------------------------------------------

TEST(Subband, SumOfAllSubbandsReconstructsSignal)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(128, 11);
    const auto dec = dwt.forward(signal, 5);
    const auto bands = allSubbands(dwt, dec);
    ASSERT_EQ(bands.size(), 6u); // 5 details + approximation
    for (std::size_t i = 0; i < signal.size(); ++i) {
        double sum = 0.0;
        for (const auto &band : bands)
            sum += band[i];
        EXPECT_NEAR(sum, signal[i], 1e-9);
    }
}

TEST(Subband, DetailSubbandsHaveZeroMean)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(128, 13);
    const auto dec = dwt.forward(signal, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        const auto band = detailSubband(dwt, dec, j);
        const double m = std::accumulate(band.begin(), band.end(), 0.0);
        EXPECT_NEAR(m, 0.0, 1e-9) << "level " << j;
    }
}

TEST(Subband, ApproximationOfConstantIsConstant)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> signal(64, 3.0);
    const auto dec = dwt.forward(signal, 3);
    const auto approx = approximationSubband(dwt, dec);
    for (double x : approx)
        EXPECT_NEAR(x, 3.0, 1e-12);
}

TEST(Subband, FilteredReconstructionDropsLevels)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(64, 17);
    const auto dec = dwt.forward(signal, 3);
    // Keeping everything reproduces the signal.
    const auto all = filteredReconstruction(dwt, dec, {0, 1, 2}, true);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(all[i], signal[i], 1e-9);
    // Keeping nothing yields zero.
    const auto none = filteredReconstruction(dwt, dec, {}, false);
    for (double x : none)
        EXPECT_NEAR(x, 0.0, 1e-12);
    // Keeping one level equals that subband.
    const auto only1 = filteredReconstruction(dwt, dec, {1}, false);
    const auto band1 = detailSubband(dwt, dec, 1);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(only1[i], band1[i], 1e-9);
}

TEST(Subband, ParsevalSubbandVariance)
{
    // Per paper Section 4.1 step 2: the variance of a detail subband
    // equals the sum of squared coefficients over the signal length.
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(256, 19);
    const auto dec = dwt.forward(signal, 6);
    const auto stats = computeScaleStats(dec);
    for (std::size_t j = 0; j < 6; ++j) {
        const auto band = detailSubband(dwt, dec, j);
        EXPECT_NEAR(stats.subbandVariance[j], variance(band),
                    1e-9 + 1e-6 * stats.subbandVariance[j])
            << "level " << j;
    }
}

TEST(Subband, DetailBandFrequencies)
{
    // Level 0 at a 3 GHz clock covers 750-1500 MHz; each level halves.
    const auto b0 = detailBandFrequency(0, 3.0e9);
    EXPECT_DOUBLE_EQ(b0.highHz, 1.5e9);
    EXPECT_DOUBLE_EQ(b0.lowHz, 0.75e9);
    const auto b3 = detailBandFrequency(3, 3.0e9);
    EXPECT_DOUBLE_EQ(b3.highHz, 3.0e9 / 16.0);
    EXPECT_DOUBLE_EQ(b3.lowHz, 3.0e9 / 32.0);
}

// ---------------------------------------------------------------------------
// Scalogram
// ---------------------------------------------------------------------------

TEST(Scalogram, DimensionsMatchDecomposition)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(256, 23);
    const auto dec = dwt.forward(signal, 8);
    const Scalogram sc(dec);
    EXPECT_EQ(sc.scales(), 8u);
    EXPECT_EQ(sc.row(0).size(), 128u);
    EXPECT_EQ(sc.row(7).size(), 1u);
}

TEST(Scalogram, MagnitudesAreAbsoluteCoefficients)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> signal{2, 4, 2, 0, 2, 4, 2, 0};
    const auto dec = dwt.forward(signal, 2);
    const Scalogram sc(dec);
    EXPECT_NEAR(sc.row(0)[0], std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(sc.row(1)[0], 2.0, 1e-12);
    EXPECT_NEAR(sc.maxMagnitude(), 2.0, 1e-12);
}

TEST(Scalogram, AsciiRenderHasOneLinePerScale)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(64, 29);
    const Scalogram sc(dwt.forward(signal, 4));
    std::ostringstream os;
    sc.renderAscii(os, 32);
    std::size_t lines = 0;
    for (char ch : os.str())
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 4u);
}

TEST(Scalogram, CsvHasHeaderAndAllCoefficients)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(16, 31);
    const Scalogram sc(dwt.forward(signal, 2));
    std::ostringstream os;
    sc.writeCsv(os);
    std::size_t lines = 0;
    for (char ch : os.str())
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 1u + 8u + 4u); // header + level0 + level1
}

// ---------------------------------------------------------------------------
// Coefficient statistics
// ---------------------------------------------------------------------------

TEST(WaveletStats, RankedByDecreasingMagnitude)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(64, 37);
    const auto dec = dwt.forward(signal, 4);
    const auto ranked = rankCoefficients(dec);
    EXPECT_EQ(ranked.size(), 64u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(std::fabs(ranked[i - 1].value),
                  std::fabs(ranked[i].value));
}

TEST(WaveletStats, EnergyCapturedMonotoneToOne)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto signal = randomSignal(64, 41);
    const auto dec = dwt.forward(signal, 4);
    double prev = 0.0;
    for (std::size_t k = 1; k <= 64; ++k) {
        const double captured = energyCaptured(dec, k);
        EXPECT_GE(captured, prev);
        prev = captured;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(WaveletStats, SparseSignalFewCoefficientsSuffice)
{
    // A single Haar step is exactly representable by a handful of
    // coefficients — the sparsity the paper exploits (Section 2.1).
    const Dwt dwt(WaveletBasis::haar());
    std::vector<double> signal(64, 1.0);
    for (std::size_t i = 32; i < 64; ++i)
        signal[i] = 3.0;
    const auto dec = dwt.forward(signal, 6);
    EXPECT_GT(energyCaptured(dec, 3), 0.999);
}

TEST(WaveletStats, EnergyPeaksAtMatchingScale)
{
    // A period-16 square wave concentrates energy at level 3
    // (coefficient window 16).
    const Dwt dwt(WaveletBasis::haar());
    std::vector<double> signal(256);
    for (std::size_t i = 0; i < 256; ++i)
        signal[i] = (i / 8) % 2 ? 1.0 : -1.0; // period 16
    const auto stats = computeScaleStats(dwt.forward(signal, 6));
    std::size_t peak = 0;
    for (std::size_t j = 1; j < 6; ++j)
        if (stats.subbandVariance[j] > stats.subbandVariance[peak])
            peak = j;
    EXPECT_EQ(peak, 3u);
}

TEST(WaveletStats, AdjacentCorrelationDetectsPulseTrains)
{
    // A period-32 oscillation makes level-3 coefficients (window 16 =
    // half a period) alternate in sign: strong anticorrelation, the
    // pulse pattern the paper's model keys on.
    const Dwt dwt(WaveletBasis::haar());
    std::vector<double> signal(256);
    for (std::size_t i = 0; i < 256; ++i)
        signal[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 32.0);
    const auto stats = computeScaleStats(dwt.forward(signal, 6));
    EXPECT_LT(stats.adjacentCorrelation[3], -0.9);
}

TEST(WaveletStats, ApproximationVarianceOfConstantIsZero)
{
    const Dwt dwt(WaveletBasis::haar());
    const std::vector<double> signal(64, 2.5);
    const auto stats = computeScaleStats(dwt.forward(signal, 3));
    EXPECT_NEAR(stats.approximationVariance, 0.0, 1e-12);
}

} // namespace
} // namespace didt
