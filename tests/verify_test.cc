/**
 * @file
 * Tests for the verification subsystem: failpoint trigger policies and
 * spec parsing, fault injection through the trace repository / thread
 * pool / campaign (graceful degradation, not aborts), hardened trace
 * and JSON parsing, and the differential oracles against the paper's
 * tolerances.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "power/trace_io.hh"
#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/thread_pool.hh"
#include "runner/trace_repository.hh"
#include "util/json.hh"
#include "verify/failpoint.hh"
#include "verify/oracle.hh"

namespace didt
{
namespace
{

using verify::TriggerPolicy;

/** Every failpoint test starts and ends with a clean registry. These
 *  tests prove faults *inject*, which a -DDIDT_FAILPOINTS=OFF build
 *  compiles out by design, so there they skip rather than fail. */
class FailPoints : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef DIDT_FAILPOINTS_OFF
        GTEST_SKIP() << "built with -DDIDT_FAILPOINTS=OFF";
#endif
        verify::resetFailPoints();
    }
    void TearDown() override { verify::resetFailPoints(); }
};

BenchmarkProfile
tinyProfile(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile prof;
    prof.name = name;
    prof.seed = seed;
    WorkloadPhase phase;
    phase.lengthInsts = 4000;
    prof.phases = {phase};
    return prof;
}

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

/** The campaign.cell failpoint key of one cell (matches result JSON). */
std::string
cellKey(const std::string &benchmark, double scale)
{
    return benchmark + "@" + jsonNumber(scale);
}

// ---------------------------------------------------------------------------
// Trigger policies
// ---------------------------------------------------------------------------

TEST_F(FailPoints, UnarmedNeverFiresAndGateIsDown)
{
    EXPECT_FALSE(verify::failPointsArmed());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(DIDT_FAILPOINT("test.unarmed"));
    // The gate stayed down, so the site was never even counted.
    EXPECT_EQ(verify::failPointStats("test.unarmed").hits, 0u);
}

TEST_F(FailPoints, AlwaysFiresEveryEvaluation)
{
    verify::armFailPoint("test.a", TriggerPolicy::always());
    EXPECT_TRUE(verify::failPointsArmed());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(DIDT_FAILPOINT("test.a"));
    const verify::FailPointStats stats = verify::failPointStats("test.a");
    EXPECT_EQ(stats.hits, 5u);
    EXPECT_EQ(stats.fires, 5u);
}

TEST_F(FailPoints, NthHitFiresExactlyOnce)
{
    verify::armFailPoint("test.nth", TriggerPolicy::nthHit(3));
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(DIDT_FAILPOINT("test.nth"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                        false}));
    EXPECT_EQ(verify::failPointStats("test.nth").fires, 1u);
}

TEST_F(FailPoints, EveryKFiresPeriodically)
{
    verify::armFailPoint("test.k", TriggerPolicy::everyK(2));
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(DIDT_FAILPOINT("test.k"));
    EXPECT_EQ(fired,
              (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FailPoints, KeyEqualsFiresForExactlyThatKey)
{
    verify::armFailPoint("test.key",
                         TriggerPolicy::keyEquals("mcf@1.2"));
    EXPECT_FALSE(DIDT_FAILPOINT_KEYED("test.key", "gzip@1"));
    EXPECT_TRUE(DIDT_FAILPOINT_KEYED("test.key", "mcf@1.2"));
    EXPECT_FALSE(DIDT_FAILPOINT_KEYED("test.key", "mcf@1.3"));
    EXPECT_FALSE(DIDT_FAILPOINT("test.key")) << "keyless never matches";
}

TEST_F(FailPoints, KeyedProbabilityIsAPureFunctionOfTheKey)
{
    verify::armFailPoint("test.p", TriggerPolicy::probability(0.3, 42));
    // First sweep, in order.
    std::vector<bool> forward;
    for (int i = 0; i < 200; ++i)
        forward.push_back(
            DIDT_FAILPOINT_KEYED("test.p", "key" + std::to_string(i)));
    // Second sweep, reversed: schedule order must not matter.
    std::vector<bool> backward(200);
    for (int i = 199; i >= 0; --i)
        backward[static_cast<std::size_t>(i)] =
            DIDT_FAILPOINT_KEYED("test.p", "key" + std::to_string(i));
    EXPECT_EQ(forward, backward);

    const std::size_t fires = static_cast<std::size_t>(
        std::count(forward.begin(), forward.end(), true));
    EXPECT_GT(fires, 30u) << "rate far below p";
    EXPECT_LT(fires, 90u) << "rate far above p";

    // A different seed must pick a different subset.
    verify::armFailPoint("test.p", TriggerPolicy::probability(0.3, 43));
    std::vector<bool> reseeded;
    for (int i = 0; i < 200; ++i)
        reseeded.push_back(
            DIDT_FAILPOINT_KEYED("test.p", "key" + std::to_string(i)));
    EXPECT_NE(forward, reseeded);
}

TEST_F(FailPoints, ProbabilityZeroAndOneAreExact)
{
    verify::armFailPoint("test.p0", TriggerPolicy::probability(0.0, 1));
    verify::armFailPoint("test.p1", TriggerPolicy::probability(1.0, 1));
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(
            DIDT_FAILPOINT_KEYED("test.p0", std::to_string(i)));
        EXPECT_TRUE(DIDT_FAILPOINT_KEYED("test.p1", std::to_string(i)));
    }
}

TEST_F(FailPoints, DisarmAndResetClearState)
{
    verify::armFailPoint("test.x", TriggerPolicy::always());
    verify::armFailPoint("test.y", TriggerPolicy::always());
    EXPECT_EQ(verify::armedFailPoints(),
              (std::vector<std::string>{"test.x", "test.y"}));
    verify::disarmFailPoint("test.x");
    EXPECT_FALSE(DIDT_FAILPOINT("test.x"));
    EXPECT_TRUE(DIDT_FAILPOINT("test.y"));
    verify::resetFailPoints();
    EXPECT_FALSE(verify::failPointsArmed());
    EXPECT_TRUE(verify::armedFailPoints().empty());
}

TEST_F(FailPoints, SpecStringArmsSites)
{
    std::string error;
    ASSERT_TRUE(verify::armFailPointsFromSpec(
        "repo.disk_read=always;campaign.cell=key:mcf@1.2;"
        "pool.task=nth:4;json.parse=every:2;repo.produce=prob:0.25:7",
        &error))
        << error;
    EXPECT_EQ(verify::armedFailPoints().size(), 5u);
    EXPECT_TRUE(DIDT_FAILPOINT("repo.disk_read"));
    EXPECT_TRUE(DIDT_FAILPOINT_KEYED("campaign.cell", "mcf@1.2"));
    EXPECT_FALSE(DIDT_FAILPOINT_KEYED("campaign.cell", "mcf@1"));

    // "off" disarms a single site without touching the rest.
    ASSERT_TRUE(verify::armFailPointsFromSpec("repo.disk_read=off",
                                              &error))
        << error;
    EXPECT_FALSE(DIDT_FAILPOINT("repo.disk_read"));
    EXPECT_TRUE(DIDT_FAILPOINT_KEYED("campaign.cell", "mcf@1.2"));
}

TEST_F(FailPoints, MalformedSpecIsRejectedAtomically)
{
    std::string error;
    for (const char *bad :
         {"", "noequals", "site=", "site=bogus", "site=nth:", "site=nth:0",
          "site=nth:x", "site=every:0", "site=prob:", "site=prob:2",
          "site=prob:-0.1", "site=prob:0.5:junk", "=always",
          "good=always;bad"}) {
        error.clear();
        EXPECT_FALSE(verify::armFailPointsFromSpec(bad, &error))
            << "spec '" << bad << "' should be rejected";
        EXPECT_FALSE(error.empty()) << "spec '" << bad << "'";
    }
    // Nothing from the half-good spec leaked through.
    EXPECT_TRUE(verify::armedFailPoints().empty());
    EXPECT_FALSE(verify::failPointsArmed());
}

// ---------------------------------------------------------------------------
// Hardened trace parsing (the short-read / absurd-count bug class)
// ---------------------------------------------------------------------------

TEST(TraceIoHardening, TruncatedBinaryFileIsRejectedNotFatal)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "didt_trunc.trc")
            .string();
    CurrentTrace trace(1000);
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i] = static_cast<double>(i) * 0.25;
    writeTraceBinary(path, trace);
    ASSERT_TRUE(tryReadTraceBinary(path).has_value());

    // Chop off the tail: header says 1000 samples, file holds fewer.
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 123);
    EXPECT_FALSE(tryReadTraceBinary(path).has_value())
        << "short read must be a miss, not a short trace";

    // Chop into the header itself.
    std::filesystem::resize_file(path, 10);
    EXPECT_FALSE(tryReadTraceBinary(path).has_value());
    std::filesystem::remove(path);
}

TEST(TraceIoHardening, AbsurdSampleCountDoesNotAllocate)
{
    // Valid magic, then a count claiming ~2^60 samples with 8 bytes of
    // data behind it. The reader must fail cleanly (and quickly): the
    // old implementation allocated count * 8 bytes up front and threw
    // bad_alloc out of the "non-throwing" reader.
    std::ostringstream raw;
    raw.write("DIDTTRC1", 8);
    const std::uint64_t count = std::uint64_t{1} << 60;
    raw.write(reinterpret_cast<const char *>(&count), sizeof(count));
    const double sample = 1.0;
    raw.write(reinterpret_cast<const char *>(&sample), sizeof(sample));
    std::istringstream in(raw.str());
    EXPECT_FALSE(tryReadTraceBinary(in).has_value());
}

TEST(TraceIoHardening, StreamRoundTripAndBadMagic)
{
    std::istringstream bad("XXXXXXXX\0\0\0\0\0\0\0\0");
    EXPECT_FALSE(tryReadTraceBinary(bad).has_value());

    std::istringstream text("1.0 2.0\n# comment\n3.0\n");
    const auto parsed = tryReadTraceText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, (CurrentTrace{1.0, 2.0, 3.0}));

    std::istringstream malformed("1.0\nnope\n");
    EXPECT_FALSE(tryReadTraceText(malformed).has_value());
}

TEST_F(FailPoints, TraceReaderFailpointsForceAMiss)
{
    verify::armFailPoint("trace_io.read_binary",
                         TriggerPolicy::always());
    verify::armFailPoint("trace_io.read_text", TriggerPolicy::always());
    std::istringstream text("1.0\n");
    EXPECT_FALSE(tryReadTraceText(text).has_value());
    std::ostringstream raw;
    raw.write("DIDTTRC1", 8);
    const std::uint64_t count = 0;
    raw.write(reinterpret_cast<const char *>(&count), sizeof(count));
    std::istringstream bin(raw.str());
    EXPECT_FALSE(tryReadTraceBinary(bin).has_value());
}

// ---------------------------------------------------------------------------
// Hardened JSON parsing
// ---------------------------------------------------------------------------

TEST(JsonHardening, DeepNestingIsAParseErrorNotAStackOverflow)
{
    const std::string deep(3000, '[');
    EXPECT_THROW((void)parseJson(deep), std::runtime_error);
    // At the boundary: 255 levels still parse.
    std::string ok(255, '[');
    ok += "1";
    ok += std::string(255, ']');
    EXPECT_NO_THROW((void)parseJson(ok));
}

TEST(JsonHardening, OutOfRangeNumbersAreRejected)
{
    // "1e999" -> inf under strtod; accepting it would make the parsed
    // document unserializable (the writer panics on non-finite).
    EXPECT_THROW((void)parseJson("1e999"), std::runtime_error);
    EXPECT_THROW((void)parseJson("[-1e999]"), std::runtime_error);
    EXPECT_NO_THROW((void)parseJson("1e308"));
}

TEST_F(FailPoints, JsonParseFailpointThrowsParseError)
{
    verify::armFailPoint("json.parse", TriggerPolicy::nthHit(2));
    EXPECT_NO_THROW((void)parseJson("{}"));
    EXPECT_THROW((void)parseJson("{}"), std::runtime_error);
    EXPECT_NO_THROW((void)parseJson("{}"));
}

// ---------------------------------------------------------------------------
// ThreadPool fault injection
// ---------------------------------------------------------------------------

TEST_F(FailPoints, PoolTaskFaultReachesTheFutureAndSparesTheWorker)
{
    ThreadPool pool(1);
    verify::armFailPoint("pool.task", TriggerPolicy::nthHit(1));
    auto faulted = pool.submit([] { return 1; });
    auto healthy = pool.submit([] { return 2; });
    EXPECT_THROW(
        {
            try {
                faulted.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "injected fault (pool.task)");
                throw;
            }
        },
        std::runtime_error);
    // The worker that ran the faulting task is still alive.
    EXPECT_EQ(healthy.get(), 2);
    EXPECT_EQ(verify::failPointStats("pool.task").fires, 1u);
}

// ---------------------------------------------------------------------------
// TraceRepository fault injection
// ---------------------------------------------------------------------------

TEST_F(FailPoints, InjectedDiskReadFaultFallsBackToSimulation)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_verify_repo")
            .string();
    std::filesystem::remove_all(dir);
    const BenchmarkProfile prof = tinyProfile("vread", 31);

    {
        TraceRepository warm(sharedSetup(), dir);
        (void)warm.get(prof, 3000);
        ASSERT_EQ(warm.stats().diskStores, 1u);
    }
    verify::armFailPoint("repo.disk_read", TriggerPolicy::always());
    TraceRepository repo(sharedSetup(), dir);
    const auto trace = repo.get(prof, 3000);
    EXPECT_FALSE(trace->empty());
    const TraceCacheStats stats = repo.stats();
    EXPECT_EQ(stats.diskLoads, 0u);
    EXPECT_EQ(stats.diskCorrupt, 1u)
        << "the injected unreadable file must be counted as corrupt";
    EXPECT_EQ(stats.simulations, 1u) << "and recomputed";
    std::filesystem::remove_all(dir);
}

TEST_F(FailPoints, TruncatedCacheFileFallsBackToSimulation)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_verify_trunc")
            .string();
    std::filesystem::remove_all(dir);
    const BenchmarkProfile prof = tinyProfile("vtrunc", 32);
    CurrentTrace first;
    std::string cached;
    {
        TraceRepository warm(sharedSetup(), dir);
        first = *warm.get(prof, 3000);
        cached = warm.cachePath(TraceRequest{prof, 3000, 0, 4096});
        ASSERT_TRUE(std::filesystem::exists(cached));
    }
    // Simulate a writer that died mid-store.
    std::filesystem::resize_file(
        cached, std::filesystem::file_size(cached) - 64);

    TraceRepository repo(sharedSetup(), dir);
    const auto trace = repo.get(prof, 3000);
    const TraceCacheStats stats = repo.stats();
    EXPECT_EQ(stats.diskCorrupt, 1u);
    EXPECT_EQ(stats.simulations, 1u);
    EXPECT_EQ(stats.diskStores, 1u) << "the bad file must be replaced";
    EXPECT_EQ(*trace, first) << "recomputed trace is bit-identical";
    // The rewritten file is whole again.
    EXPECT_TRUE(tryReadTraceBinary(cached).has_value());
    std::filesystem::remove_all(dir);
}

TEST_F(FailPoints, InjectedWriteFaultSkipsTheStoreButServesTheTrace)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_verify_wfault")
            .string();
    std::filesystem::remove_all(dir);
    verify::armFailPoint("repo.disk_write", TriggerPolicy::always());
    const BenchmarkProfile prof = tinyProfile("vwrite", 33);
    TraceRepository repo(sharedSetup(), dir);
    const auto trace = repo.get(prof, 3000);
    EXPECT_FALSE(trace->empty());
    EXPECT_EQ(repo.stats().diskStores, 0u);
    EXPECT_FALSE(std::filesystem::exists(
        repo.cachePath(TraceRequest{prof, 3000, 0, 4096})));
    std::filesystem::remove_all(dir);
}

TEST_F(FailPoints, FailedProducerIsEvictedSoLaterGetsRetry)
{
    verify::armFailPoint("repo.produce", TriggerPolicy::nthHit(1));
    const BenchmarkProfile prof = tinyProfile("vretry", 34);
    TraceRepository repo(sharedSetup());
    EXPECT_THROW((void)repo.get(prof, 3000), std::runtime_error);
    // The failed production must not be cached: the next get elects a
    // fresh producer and succeeds.
    const auto trace = repo.get(prof, 3000);
    EXPECT_FALSE(trace->empty());
    EXPECT_EQ(repo.stats().simulations, 1u);
}

// ---------------------------------------------------------------------------
// Campaign fault injection: failed cells, not aborts
// ---------------------------------------------------------------------------

CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    spec.profiles = {tinyProfile("cell-a", 21),
                     tinyProfile("cell-b", 22)};
    spec.impedanceScales = {1.0, 1.5};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 6000;
    return spec;
}

TEST_F(FailPoints, CampaignRecordsFailedCellsAndKeepsGoing)
{
    const CampaignSpec spec = tinySpec();
    verify::armFailPoint(
        "campaign.cell",
        TriggerPolicy::keyEquals(cellKey("cell-b", 1.5)));

    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), spec, repo, 2);

    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.failedCells(), 1u);
    std::size_t failed_seen = 0;
    for (const CampaignCell &cell : result.cells) {
        EXPECT_FALSE(cell.benchmark.empty());
        if (cell.failed) {
            ++failed_seen;
            EXPECT_EQ(cell.benchmark, "cell-b");
            EXPECT_DOUBLE_EQ(cell.impedanceScale, 1.5);
            EXPECT_NE(cell.error.find("campaign.cell"),
                      std::string::npos);
            EXPECT_EQ(cell.windows, 0u);
        } else {
            EXPECT_GT(cell.windows, 0u);
            EXPECT_TRUE(cell.error.empty());
        }
    }
    EXPECT_EQ(failed_seen, 1u);

    // rmsEstimationErrorPct skips the failed cell instead of folding
    // its zeroed measurements into the mean.
    EXPECT_GE(result.rmsEstimationErrorPct(), 0.0);

    const JsonValue doc = campaignToJson(result, false);
    const JsonValue *failed_cells = doc.find("failed_cells");
    ASSERT_NE(failed_cells, nullptr);
    EXPECT_DOUBLE_EQ(failed_cells->asNumber(), 1.0);
    std::size_t marked = 0;
    for (const JsonValue &cell : doc.find("cells")->items()) {
        const JsonValue *failed = cell.find("failed");
        if (!failed)
            continue;
        ++marked;
        EXPECT_TRUE(failed->asBool());
        ASSERT_NE(cell.find("error"), nullptr);
        EXPECT_FALSE(cell.find("error")->asString().empty());
        EXPECT_EQ(cell.find("benchmark")->asString(), "cell-b");
    }
    EXPECT_EQ(marked, 1u);
}

TEST(CampaignJson, CleanCampaignCarriesNoFailureFields)
{
    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), tinySpec(), repo, 2);
    EXPECT_EQ(result.failedCells(), 0u);
    const JsonValue doc = campaignToJson(result, false);
    EXPECT_EQ(doc.find("failed_cells"), nullptr)
        << "clean campaigns keep the pre-failpoint JSON shape";
    for (const JsonValue &cell : doc.find("cells")->items())
        EXPECT_EQ(cell.find("failed"), nullptr);
}

TEST_F(FailPoints, ProducerFaultFailsOnlyThatBenchmarksCells)
{
    const CampaignSpec spec = tinySpec();
    verify::armFailPoint("repo.produce",
                         TriggerPolicy::keyEquals("cell-a"));
    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), spec, repo, 2);
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.failedCells(), 2u);
    for (const CampaignCell &cell : result.cells) {
        EXPECT_EQ(cell.failed, cell.benchmark == "cell-a");
        if (cell.failed) {
            EXPECT_NE(cell.error.find("repo.produce"),
                      std::string::npos);
        }
    }
}

TEST_F(FailPoints, PoolTaskFaultLandsInTheRightCell)
{
    // At --jobs 1 every task evaluates pool.task exactly once, in
    // submission order: the calibration builders, one calibration task
    // per scale, then the sweep (scale-major). Target the first sweep
    // task; it must surface as that cell's failure via the campaign's
    // outer future handler, not abort the run.
    const CampaignSpec spec = tinySpec();
    const std::size_t warmup_tasks =
        calibrationTraceBuilders(sharedSetup()).size() +
        spec.impedanceScales.size();
    verify::armFailPoint(
        "pool.task",
        TriggerPolicy::nthHit(warmup_tasks + 1));
    TraceRepository repo(sharedSetup());
    const CampaignResult result =
        runCharacterizationCampaign(sharedSetup(), spec, repo, 1);
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.failedCells(), 1u);
    const CampaignCell &failed = result.cells[0]; // cell-a @ 1.0
    EXPECT_TRUE(failed.failed);
    EXPECT_EQ(failed.benchmark, "cell-a");
    EXPECT_DOUBLE_EQ(failed.impedanceScale, 1.0);
    EXPECT_NE(failed.error.find("pool.task"), std::string::npos);
}

TEST_F(FailPoints, FaultedCampaignIsByteIdenticalAcrossJobCounts)
{
    const CampaignSpec spec = tinySpec();
    const std::string dir =
        (std::filesystem::temp_directory_path() / "didt_verify_det")
            .string();
    std::filesystem::remove_all(dir);

    const auto run = [&](std::size_t jobs) {
        std::string error;
        verify::resetFailPoints();
        EXPECT_TRUE(verify::armFailPointsFromSpec(
            "campaign.cell=key:" + cellKey("cell-b", 1.5) +
                ";repo.disk_write=always",
            &error))
            << error;
        TraceRepository repo(sharedSetup(), dir);
        const CampaignResult result = runCharacterizationCampaign(
            sharedSetup(), spec, repo, jobs);
        EXPECT_EQ(repo.stats().diskStores, 0u);
        return campaignToJson(result, false).dump();
    };

    const std::string serial = run(1);
    const std::string parallel = run(4);
    EXPECT_EQ(serial, parallel)
        << "injected faults must not break --jobs byte-identity";
    EXPECT_NE(serial.find("\"failed_cells\": 1"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Differential oracles
// ---------------------------------------------------------------------------

TEST(Oracle, MeasureDivergence)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 2.5, 2.0};
    const verify::Divergence d = verify::measureDivergence(a, b);
    EXPECT_DOUBLE_EQ(d.maxAbs, 1.0);
    EXPECT_NEAR(d.rms, std::sqrt((0.25 + 1.0) / 3.0), 1e-12);
    EXPECT_EQ(d.samples, 3u);
}

TEST(Oracle, MonitorTracksExactConvolutionWithinItsBound)
{
    const ExperimentSetup &setup = sharedSetup();
    const SupplyNetwork network = setup.makeNetwork(1.0);
    const CurrentTrace trace = virusCurrentTrace(setup, 8192);
    const verify::Oracle oracle(setup);
    const verify::MonitorOracleReport report =
        oracle.checkMonitor(network, trace, 13);
    EXPECT_EQ(report.divergence.samples, trace.size());
    EXPECT_GT(report.bound, 0.0);
    EXPECT_TRUE(report.pass)
        << "max divergence " << report.divergence.maxAbs
        << " V exceeds bound " << report.bound << " V";
    // More terms must not hurt: the bound shrinks and still holds.
    const verify::MonitorOracleReport more =
        oracle.checkMonitor(network, trace, 40);
    EXPECT_LE(more.bound, report.bound);
    EXPECT_TRUE(more.pass);
}

TEST(Oracle, VarianceModelTracksMeasuredStatistics)
{
    const ExperimentSetup &setup = sharedSetup();
    const SupplyNetwork network = setup.makeNetwork(1.0);
    const VoltageVarianceModel model =
        makeCalibratedModel(setup, network, 128, 6);
    // Judge the model the way the paper does (Figures 9/12): on
    // benchmark-like workloads, not on the adversarial dI/dt viruses
    // in its own training suite.
    std::vector<CurrentTrace> traces;
    for (std::uint64_t seed : {61, 62, 63})
        traces.push_back(benchmarkCurrentTrace(
            setup, tinyProfile("oracle-var-" + std::to_string(seed),
                               seed),
            30000, 0, 4096));
    const verify::Oracle oracle(setup);
    const verify::VarianceOracleReport report =
        oracle.checkVarianceModel(network, model, traces);
    EXPECT_EQ(report.traces, traces.size());
    EXPECT_TRUE(report.pass)
        << "worst variance rel error " << report.maxVarianceRelError
        << ", worst emergency error " << report.maxEmergencyPctError
        << " pct points";
    EXPECT_LE(report.rmsVarianceRelError, report.maxVarianceRelError);
}

TEST(Oracle, EverySchemeMatchesItsPerCycleReference)
{
    const ExperimentSetup &setup = sharedSetup();
    const SupplyNetwork network = setup.makeNetwork(1.0);
    const VoltageVarianceModel hazard =
        makeCalibratedModel(setup, network, 128, 6);
    const BenchmarkProfile prof = tinyProfile("oracle-sch", 55);
    const verify::Oracle oracle(setup);
    for (ControlScheme scheme :
         {ControlScheme::None, ControlScheme::Wavelet,
          ControlScheme::FullConvolution, ControlScheme::AnalogSensor,
          ControlScheme::PipelineDamping,
          ControlScheme::AdaptiveWavelet}) {
        const verify::SchemeOracleReport report = oracle.checkScheme(
            scheme, prof, network, 8000,
            scheme == ControlScheme::AdaptiveWavelet ? &hazard
                                                     : nullptr);
        EXPECT_TRUE(report.pass)
            << report.scheme << ": devirtualized match="
            << report.devirtualizedMatchesReference
            << " committedAll=" << report.committedAll;
        EXPECT_EQ(report.scheme, controlSchemeName(scheme));
    }
}

} // namespace
} // namespace didt
