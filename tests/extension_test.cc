/**
 * @file
 * Tests for the library extensions beyond the paper's core: trace
 * persistence, the power-spreading option, the on-line characterizer,
 * and the phase-adaptive control scheme.
 */

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cosim.hh"
#include "core/emergency_estimator.hh"
#include "core/experiment.hh"
#include "core/online_characterizer.hh"
#include "power/stimulus.hh"
#include "power/trace_io.hh"
#include "sim/processor.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

namespace didt
{
namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------------

TEST(TraceIo, TextRoundTripThroughStream)
{
    Rng rng(1);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 500, rng);
    std::stringstream buffer;
    writeTraceText(buffer, trace, "test trace\nsecond comment line");
    const CurrentTrace back = readTraceText(buffer);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_NEAR(back[i], trace[i], 1e-7);
}

TEST(TraceIo, TextSkipsCommentsAndBlanks)
{
    std::stringstream buffer("# header\n\n1.5\n  # indented comment\n2.5\n");
    const CurrentTrace trace = readTraceText(buffer);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[0], 1.5);
    EXPECT_DOUBLE_EQ(trace[1], 2.5);
}

TEST(TraceIo, TextFileRoundTrip)
{
    const std::string path = tempPath("didt_trace_test.txt");
    const CurrentTrace trace{1.0, 2.0, 3.5};
    writeTraceText(path, trace, "file test");
    EXPECT_EQ(readTraceText(path), trace);
    std::filesystem::remove(path);
}

TEST(TraceIo, BinaryRoundTripIsExact)
{
    Rng rng(2);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 4096, rng);
    const std::string path = tempPath("didt_trace_test.bin");
    writeTraceBinary(path, trace);
    EXPECT_EQ(readTraceBinary(path), trace); // bit-exact
    std::filesystem::remove(path);
}

TEST(TraceIo, TraceSetRoundTripIsExact)
{
    Rng rng(3);
    TraceSet set;
    set.perCore.push_back(gaussianCurrent(40.0, 10.0, 1024, rng));
    set.perCore.push_back(gaussianCurrent(35.0, 8.0, 1024, rng));
    set.aggregate.resize(1024);
    for (std::size_t i = 0; i < 1024; ++i)
        set.aggregate[i] = 0.5 * (set.perCore[0][i] + set.perCore[1][i]);

    const std::string path = tempPath("didt_trace_set.bin");
    writeTraceSetBinary(path, set);
    const TraceSet back = readTraceSetBinary(path);
    ASSERT_EQ(back.perCore.size(), 2u);
    EXPECT_EQ(back.aggregate, set.aggregate); // bit-exact
    EXPECT_EQ(back.perCore[0], set.perCore[0]);
    EXPECT_EQ(back.perCore[1], set.perCore[1]);
    std::filesystem::remove(path);
}

TEST(TraceIo, TraceSetRejectsSingleTraceFile)
{
    // The two binary formats are distinct: a single-trace file is not
    // a valid trace set, and the tolerant reader says so (nullopt)
    // instead of dying.
    Rng rng(4);
    const std::string path = tempPath("didt_trace_not_set.bin");
    writeTraceBinary(path, gaussianCurrent(40.0, 10.0, 64, rng));
    EXPECT_FALSE(tryReadTraceSetBinary(path).has_value());
    std::filesystem::remove(path);
}

TEST(TraceIo, BinaryEmptyTrace)
{
    const std::string path = tempPath("didt_trace_empty.bin");
    writeTraceBinary(path, {});
    EXPECT_TRUE(readTraceBinary(path).empty());
    std::filesystem::remove(path);
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)readTraceText("/nonexistent/didt.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    const std::string path = tempPath("didt_trace_bad.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace at all........", f);
    std::fclose(f);
    EXPECT_EXIT((void)readTraceBinary(path), ::testing::ExitedWithCode(1),
                "not a didt binary trace");
    std::filesystem::remove(path);
}

TEST(TraceIoDeath, MalformedSampleIsFatal)
{
    const std::string path = tempPath("didt_trace_mal.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fputs("1.0\nbogus\n", f);
    std::fclose(f);
    EXPECT_EXIT((void)readTraceText(path), ::testing::ExitedWithCode(1),
                "malformed");
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Power spreading
// ---------------------------------------------------------------------------

/** Burst-then-idle source to expose power spreading. */
class BurstSource : public InstructionSource
{
  public:
    bool
    next(Instruction &out) override
    {
        if (produced_ >= 64)
            return false;
        out = Instruction{};
        out.op = OpClass::IntAlu;
        out.pc = 0x400000 + 4 * produced_;
        ++produced_;
        return true;
    }

  private:
    std::uint64_t produced_ = 0;
};

TEST(PowerSpreading, ConservesTotalEnergy)
{
    auto run_energy = [](std::size_t spread) {
        BurstSource src;
        PowerModelConfig power;
        power.currentNoiseSigma = 0.0;
        power.spreadStages = spread;
        Processor proc({}, power, src);
        while (proc.step()) {
        }
        // A few extra idle cycles to flush the spread ring.
        return proc.stats().totalEnergyJ / proc.stats().cycles;
    };
    // Mean power per cycle should be nearly unchanged by spreading.
    EXPECT_NEAR(run_energy(1), run_energy(3), 0.05 * run_energy(1));
}

TEST(PowerSpreading, SmoothsCycleToCycleSwings)
{
    auto max_delta = [](std::size_t spread) {
        BurstSource src;
        PowerModelConfig power;
        power.currentNoiseSigma = 0.0;
        power.spreadStages = spread;
        Processor proc({}, power, src);
        CurrentTrace trace;
        proc.collectTrace(trace, 100000);
        double worst = 0.0;
        for (std::size_t n = 1; n < trace.size(); ++n)
            worst = std::max(worst, std::abs(trace[n] - trace[n - 1]));
        return worst;
    };
    EXPECT_LT(max_delta(3), max_delta(1));
}

// ---------------------------------------------------------------------------
// Online characterizer
// ---------------------------------------------------------------------------

class OnlineCharacterizerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SupplyNetworkConfig cfg;
        cfg.resonantHz = 125.0e6;
        cfg.qualityFactor = 5.0;
        cfg.dcResistance = 3.0e-4;
        cfg.impedanceScale = 1.5;
        network_ = new SupplyNetwork(cfg);
        model_ = new VoltageVarianceModel(*network_);
        Rng rng(5);
        model_->calibrate(rng, 6);
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete network_;
        model_ = nullptr;
        network_ = nullptr;
    }

    static SupplyNetwork *network_;
    static VoltageVarianceModel *model_;
};

SupplyNetwork *OnlineCharacterizerTest::network_ = nullptr;
VoltageVarianceModel *OnlineCharacterizerTest::model_ = nullptr;

TEST_F(OnlineCharacterizerTest, WindowBoundaryReporting)
{
    OnlineCharacterizer online(*model_, 0.97, 1.03);
    for (std::size_t n = 0; n < 255; ++n)
        EXPECT_FALSE(online.push(40.0));
    EXPECT_TRUE(online.push(40.0));
    EXPECT_EQ(online.windows(), 1u);
    EXPECT_EQ(online.cycles(), 256u);
}

TEST_F(OnlineCharacterizerTest, MatchesOfflineEstimates)
{
    Rng rng(6);
    const CurrentTrace trace = gaussianCurrent(45.0, 8.0, 256 * 40, rng);
    OnlineCharacterizer online(*model_, 0.97, 1.03);
    for (Amp amp : trace)
        online.push(amp);

    const EmergencyProfile offline =
        profileTrace(trace, *network_, *model_, 0.97, 1.03);
    EXPECT_EQ(online.windows(), offline.windows);
    EXPECT_NEAR(online.exposureBelow(), offline.estimatedBelow, 1e-9);
    EXPECT_NEAR(online.exposureAbove(), offline.estimatedAbove, 1e-9);
}

TEST_F(OnlineCharacterizerTest, HazardSignalFollowsPhase)
{
    OnlineCharacterizer online(*model_, 0.97, 1.03);
    // Benign phase: quiet constant current.
    for (std::size_t n = 0; n < 256 * 4; ++n)
        online.push(40.0);
    EXPECT_LT(online.currentHazard(), 1e-4);
    // Hazardous phase: sustained resonant square wave.
    const CurrentTrace wave =
        resonantSquareWave(3.0e9, 125.0e6, 25.0, 75.0, 200);
    for (std::size_t n = 0; n < 256 * 4 && n < wave.size(); ++n)
        online.push(wave[n]);
    EXPECT_GT(online.currentHazard(), 0.01);
}

TEST_F(OnlineCharacterizerTest, ResetClearsState)
{
    OnlineCharacterizer online(*model_, 0.97, 1.03);
    for (std::size_t n = 0; n < 300; ++n)
        online.push(40.0);
    online.reset();
    EXPECT_EQ(online.cycles(), 0u);
    EXPECT_EQ(online.windows(), 0u);
    EXPECT_DOUBLE_EQ(online.exposureBelow(), 0.0);
}

TEST_F(OnlineCharacterizerTest, RequiresCalibratedModel)
{
    VoltageVarianceModel raw(*network_);
    EXPECT_EXIT(OnlineCharacterizer online(raw, 0.97, 1.03),
                ::testing::ExitedWithCode(1), "calibrated");
}

// ---------------------------------------------------------------------------
// Adaptive control
// ---------------------------------------------------------------------------

TEST(AdaptiveControl, SchemeNameAndModelRequirement)
{
    EXPECT_STREQ(controlSchemeName(ControlScheme::AdaptiveWavelet),
                 "adaptive-wavelet");
    const ExperimentSetup setup = makeStandardSetup();
    const SupplyNetwork net = setup.makeNetwork(1.5);
    CosimConfig cfg;
    cfg.instructions = 500;
    cfg.scheme = ControlScheme::AdaptiveWavelet;
    cfg.hazardModel = nullptr;
    EXPECT_EXIT((void)runClosedLoop(profileByName("gzip"), setup.proc,
                                    setup.power, net, cfg),
                ::testing::ExitedWithCode(1), "hazardModel");
}

TEST(AdaptiveControl, ReducesFaultsVsOptimisticFixed)
{
    const ExperimentSetup setup = makeStandardSetup();
    const SupplyNetwork net = setup.makeNetwork(1.5);
    const VoltageVarianceModel model = makeCalibratedModel(setup, net);
    const BenchmarkProfile &prof = profileByName("galgel");

    CosimConfig cfg;
    cfg.instructions = 40000;
    cfg.control.tolerance = 0.010;
    cfg.scheme = ControlScheme::Wavelet;
    const CosimResult fixed =
        runClosedLoop(prof, setup.proc, setup.power, net, cfg);

    cfg.scheme = ControlScheme::AdaptiveWavelet;
    cfg.hazardModel = &model;
    const CosimResult adaptive =
        runClosedLoop(prof, setup.proc, setup.power, net, cfg);

    EXPECT_LT(adaptive.lowFaults, fixed.lowFaults);
}

} // namespace
} // namespace didt
