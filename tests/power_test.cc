/**
 * @file
 * Unit tests for the power library: the second-order supply network,
 * convolution utilities, and stimulus generators.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "power/convolution.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

SupplyNetworkConfig
testConfig()
{
    SupplyNetworkConfig cfg;
    cfg.clockHz = 3.0e9;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.nominalVoltage = 1.0;
    cfg.dcResistance = 3.0e-4;
    return cfg;
}

// ---------------------------------------------------------------------------
// Supply network
// ---------------------------------------------------------------------------

TEST(SupplyNetwork, DcImpedanceEqualsResistance)
{
    const SupplyNetwork net(testConfig());
    EXPECT_NEAR(net.impedanceAt(1.0), net.resistance(),
                1e-6 * net.resistance());
}

TEST(SupplyNetwork, ResonantFrequencyMatchesConfig)
{
    const SupplyNetwork net(testConfig());
    EXPECT_NEAR(net.resonantFrequency(), 125.0e6, 1.0);
}

TEST(SupplyNetwork, ImpedancePeaksNearResonance)
{
    const SupplyNetwork net(testConfig());
    const double at_res = net.impedanceAt(125.0e6);
    EXPECT_GT(at_res, net.impedanceAt(20.0e6));
    EXPECT_GT(at_res, net.impedanceAt(600.0e6));
    // Peak-to-DC ratio approximately Q^2 for the parallel RLC model.
    EXPECT_NEAR(at_res / net.resistance(), 25.0, 3.0);
}

TEST(SupplyNetwork, ImpulseResponseSumsToResistance)
{
    const SupplyNetwork net(testConfig());
    double sum = 0.0;
    for (double z : net.impulseResponse())
        sum += z;
    EXPECT_NEAR(sum, net.resistance(), 1e-4 * net.resistance());
}

TEST(SupplyNetwork, ImpulseResponseDecays)
{
    const SupplyNetwork net(testConfig());
    const auto &z = net.impulseResponse();
    double head = 0.0;
    double tail = 0.0;
    for (std::size_t n = 0; n < z.size(); ++n)
        (n < z.size() / 4 ? head : tail) += std::fabs(z[n]);
    EXPECT_GT(head, 100.0 * tail);
}

TEST(SupplyNetwork, SteadyStateIsIrDrop)
{
    const SupplyNetwork net(testConfig());
    EXPECT_DOUBLE_EQ(net.steadyStateVoltage(0.0), 1.0);
    EXPECT_NEAR(net.steadyStateVoltage(50.0), 1.0 - 50.0 * net.resistance(),
                1e-12);
}

TEST(SupplyNetwork, ConstantCurrentSettlesToIrDrop)
{
    const SupplyNetwork net(testConfig());
    const VoltageTrace v = net.computeVoltage(constantCurrent(40.0, 4096));
    EXPECT_NEAR(v.back(), net.steadyStateVoltage(40.0), 1e-9);
    // Warm start: even the first samples are at steady state.
    EXPECT_NEAR(v.front(), net.steadyStateVoltage(40.0), 1e-9);
}

TEST(SupplyNetwork, StepResponseRingsAndSettles)
{
    const SupplyNetwork net(testConfig());
    const CurrentTrace step = stepCurrent(20.0, 60.0, 4096, 512);
    const VoltageTrace v = net.computeVoltage(step);
    const Volt before = net.steadyStateVoltage(20.0);
    const Volt after = net.steadyStateVoltage(60.0);
    EXPECT_NEAR(v[500], before, 1e-9);
    EXPECT_NEAR(v.back(), after, 1e-6);
    // The underdamped step must overshoot past the final value.
    Volt min_v = 1.0;
    for (std::size_t n = 512; n < 1024; ++n)
        min_v = std::min(min_v, v[n]);
    EXPECT_LT(min_v, after - 0.3 * (before - after));
}

TEST(SupplyNetwork, ResonantStimulusAmplifiedVsOffResonance)
{
    const SupplyNetwork net(testConfig());
    auto swing = [&](Hertz f) {
        const CurrentTrace wave = sineCurrent(40.0, 10.0, f, 3.0e9, 8192);
        const VoltageTrace v = net.computeVoltage(wave);
        RunningStats s;
        for (std::size_t n = 4096; n < v.size(); ++n)
            s.push(v[n]);
        return s.max() - s.min();
    };
    EXPECT_GT(swing(125.0e6), 4.0 * swing(10.0e6));
    EXPECT_GT(swing(125.0e6), 4.0 * swing(1.0e9));
}

TEST(SupplyNetwork, ImpedanceScaleIsLinear)
{
    SupplyNetworkConfig cfg = testConfig();
    const SupplyNetwork base(cfg);
    cfg.impedanceScale = 1.5;
    const SupplyNetwork scaled(cfg);
    for (Hertz f : {1.0e6, 125.0e6, 500.0e6})
        EXPECT_NEAR(scaled.impedanceAt(f), 1.5 * base.impedanceAt(f),
                    1e-9 * scaled.impedanceAt(f));
}

TEST(SupplyNetwork, FaultLevelsAreFivePercent)
{
    const SupplyNetwork net(testConfig());
    EXPECT_DOUBLE_EQ(net.lowFaultLevel(), 0.95);
    EXPECT_DOUBLE_EQ(net.highFaultLevel(), 1.05);
}

TEST(SupplyStream, MatchesBatchComputation)
{
    const SupplyNetwork net(testConfig());
    Rng rng(5);
    const CurrentTrace trace = gaussianCurrent(40.0, 8.0, 2000, rng);
    const VoltageTrace batch = net.computeVoltage(trace);
    SupplyStream stream(net);
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt v = stream.push(trace[n]);
        EXPECT_NEAR(v, batch[n], 1e-12) << "cycle " << n;
    }
}

TEST(SupplyStream, VoltageBeforePushIsNominal)
{
    const SupplyNetwork net(testConfig());
    const SupplyStream stream(net);
    EXPECT_DOUBLE_EQ(stream.voltage(), 1.0);
}

TEST(SupplyNetworkDeath, RejectsOverdamped)
{
    SupplyNetworkConfig cfg = testConfig();
    cfg.qualityFactor = 0.4;
    EXPECT_EXIT(SupplyNetwork net(cfg), ::testing::ExitedWithCode(1),
                "underdamped");
}

TEST(SupplyNetworkDeath, RejectsResonanceAboveNyquist)
{
    SupplyNetworkConfig cfg = testConfig();
    cfg.resonantHz = 2.0e9;
    EXPECT_EXIT(SupplyNetwork net(cfg), ::testing::ExitedWithCode(1),
                "Nyquist");
}

TEST(Calibration, WorstCaseJustFitsAtHundredPercent)
{
    SupplyNetworkConfig cfg = testConfig();
    const CurrentTrace worst =
        resonantSquareWave(cfg.clockHz, cfg.resonantHz, 20.0, 100.0);
    cfg = calibrateTargetImpedance(cfg, worst);

    const SupplyNetwork net100(cfg);
    const VoltageTrace v = net100.computeVoltage(worst);
    Volt lo = 2.0;
    Volt hi = 0.0;
    for (Volt x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_GE(lo, 0.95 - 1e-9);
    EXPECT_LE(hi, 1.05 + 1e-9);
    // And it should be tight: the worst excursion touches a band edge.
    EXPECT_TRUE(lo < 0.9501 || hi > 1.0499);
}

TEST(Calibration, WorstCaseViolatesAtHigherImpedance)
{
    SupplyNetworkConfig cfg = testConfig();
    const CurrentTrace worst =
        resonantSquareWave(cfg.clockHz, cfg.resonantHz, 20.0, 100.0);
    cfg = calibrateTargetImpedance(cfg, worst);
    cfg.impedanceScale = 1.5;
    const SupplyNetwork net150(cfg);
    const VoltageTrace v = net150.computeVoltage(worst);
    Volt lo = 2.0;
    for (Volt x : v)
        lo = std::min(lo, x);
    EXPECT_LT(lo, 0.95);
}

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

TEST(Convolve, KnownSmallCase)
{
    const std::vector<double> x{1.0, 2.0, 3.0};
    const std::vector<double> k{1.0, -1.0};
    const auto out = convolve(x, k);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 1.0);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(Convolve, IdentityKernel)
{
    const std::vector<double> x{4.0, 5.0, 6.0};
    const std::vector<double> k{1.0};
    EXPECT_EQ(convolve(x, k), x);
}

TEST(StreamingConvolver, MatchesBatchAfterWarmup)
{
    Rng rng(6);
    std::vector<double> kernel(32);
    for (auto &c : kernel)
        c = rng.normal();
    std::vector<double> x(256);
    for (auto &v : x)
        v = rng.normal(10.0, 2.0);

    StreamingConvolver conv(kernel);
    const auto batch = convolve(x, kernel);
    for (std::size_t n = 0; n < x.size(); ++n) {
        conv.push(x[n]);
        if (n >= kernel.size()) {
            EXPECT_NEAR(conv.value(), batch[n], 1e-9) << "cycle " << n;
        }
    }
}

TEST(StreamingConvolver, WarmStartAssumesConstantHistory)
{
    const std::vector<double> kernel{0.25, 0.25, 0.25, 0.25};
    StreamingConvolver conv(kernel);
    conv.push(8.0);
    // History behaves as if 8.0 flowed forever: moving average is 8.
    EXPECT_NEAR(conv.value(), 8.0, 1e-12);
}

TEST(StreamingConvolver, ResetClearsState)
{
    const std::vector<double> kernel{1.0, 1.0};
    StreamingConvolver conv(kernel);
    conv.push(5.0);
    conv.reset();
    EXPECT_DOUBLE_EQ(conv.value(), 0.0);
    conv.push(1.0);
    EXPECT_NEAR(conv.value(), 2.0, 1e-12); // warm start with 1.0
}

TEST(TruncateKernel, KeepsRequestedEnergy)
{
    std::vector<double> kernel(100);
    for (std::size_t i = 0; i < kernel.size(); ++i)
        kernel[i] = std::exp(-0.1 * static_cast<double>(i));
    const auto cut = truncateKernel(kernel, 0.99);
    EXPECT_LT(cut.size(), kernel.size());
    double total = 0.0;
    double kept = 0.0;
    for (double v : kernel)
        total += v * v;
    for (double v : cut)
        kept += v * v;
    EXPECT_GE(kept / total, 0.99);
}

TEST(TruncateKernel, FullEnergyKeepsEverything)
{
    const std::vector<double> kernel{1.0, 1.0, 1.0};
    EXPECT_EQ(truncateKernel(kernel, 1.0).size(), 3u);
}

TEST(TruncateKernel, ZeroKernelCollapsesToOneTap)
{
    const std::vector<double> kernel(10, 0.0);
    EXPECT_EQ(truncateKernel(kernel, 0.9).size(), 1u);
}

// ---------------------------------------------------------------------------
// Stimuli
// ---------------------------------------------------------------------------

TEST(Stimulus, ResonantSquareWaveShape)
{
    const CurrentTrace wave =
        resonantSquareWave(3.0e9, 125.0e6, 10.0, 90.0, 4);
    // Period = 24 cycles at these frequencies; 4 periods.
    EXPECT_EQ(wave.size(), 96u);
    EXPECT_DOUBLE_EQ(wave[0], 90.0);
    EXPECT_DOUBLE_EQ(wave[12], 10.0);
    EXPECT_DOUBLE_EQ(wave[24], 90.0);
}

TEST(Stimulus, StepCurrentSwitchesAtRequestedCycle)
{
    const CurrentTrace s = stepCurrent(1.0, 2.0, 10, 4);
    EXPECT_DOUBLE_EQ(s[3], 1.0);
    EXPECT_DOUBLE_EQ(s[4], 2.0);
    EXPECT_DOUBLE_EQ(s[9], 2.0);
}

TEST(Stimulus, GaussianCurrentIsNonNegative)
{
    Rng rng(44);
    const CurrentTrace g = gaussianCurrent(5.0, 10.0, 5000, rng);
    for (double x : g)
        EXPECT_GE(x, 0.0);
}

TEST(Stimulus, SineCurrentAmplitude)
{
    const CurrentTrace s = sineCurrent(50.0, 10.0, 100.0e6, 3.0e9, 3000);
    RunningStats stats;
    for (double x : s)
        stats.push(x);
    EXPECT_NEAR(stats.mean(), 50.0, 0.2);
    EXPECT_NEAR(stats.max(), 60.0, 0.1);
    EXPECT_NEAR(stats.min(), 40.0, 0.1);
}

} // namespace
} // namespace didt
