/**
 * @file
 * Structured fuzz drivers shared by the libFuzzer targets (built under
 * -DDIDT_FUZZ=ON with Clang) and the corpus-replay ctest, which runs
 * the exact same code over the committed corpus in every build
 * configuration. Each driver feeds raw bytes to one parser or
 * transform entry point and checks its safety contract: malformed
 * input must surface as a clean error (nullopt or a parse exception),
 * never a crash, hang, or huge allocation; accepted input must satisfy
 * the round-trip property of its format. Contract violations abort().
 */

#ifndef DIDT_TESTS_FUZZ_DRIVERS_HH
#define DIDT_TESTS_FUZZ_DRIVERS_HH

#include <cstddef>
#include <cstdint>

namespace didt
{
namespace fuzz
{

/** parseJson: clean errors only; accepted docs round-trip via dump(). */
int runJson(const std::uint8_t *data, std::size_t size);

/** tryReadTraceText: never throws; accepted traces re-read cleanly. */
int runTraceText(const std::uint8_t *data, std::size_t size);

/** tryReadTraceBinary: never throws, never trusts the header count. */
int runTraceBinary(const std::uint8_t *data, std::size_t size);

/** DWT/MODWT forward-inverse round-trip on arbitrary sample bytes. */
int runDwt(const std::uint8_t *data, std::size_t size);

/** serve frame decode + request parse: clean statuses, no throws. */
int runFrame(const std::uint8_t *data, std::size_t size);

} // namespace fuzz
} // namespace didt

#endif // DIDT_TESTS_FUZZ_DRIVERS_HH
