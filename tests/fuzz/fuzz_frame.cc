/** libFuzzer entry point for the frame driver (see drivers.hh). */

#include "drivers.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return didt::fuzz::runFrame(data, size);
}
