/** libFuzzer entry point for the trace_binary driver (see drivers.hh). */

#include "drivers.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return didt::fuzz::runTraceBinary(data, size);
}
