#include "drivers.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "power/trace_io.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "util/json.hh"
#include "wavelet/basis.hh"
#include "wavelet/dwt.hh"
#include "wavelet/modwt.hh"

namespace didt
{
namespace fuzz
{

namespace
{

/** Property check: abort (so the fuzzer minimizes a crasher) instead
 *  of silently tolerating a contract violation. */
void
require(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "fuzz driver property violated: %s\n",
                     what);
        std::abort();
    }
}

} // namespace

int
runJson(const std::uint8_t *data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);
    try {
        const JsonValue doc = parseJson(text);
        // Anything the parser accepts must serialize and re-parse to
        // an equal document: accepted-but-unwritable values (inf from
        // "1e999") were a real bug in this parser.
        const JsonValue again = parseJson(doc.dump());
        require(again == doc, "json dump/parse round trip");
    } catch (const std::runtime_error &) {
        // Clean parse error: the only allowed failure mode.
    }
    return 0;
}

int
runTraceText(const std::uint8_t *data, std::size_t size)
{
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    const auto trace = tryReadTraceText(in);
    if (!trace)
        return 0;
    // Accepted traces must survive a write/read cycle with the sample
    // count intact (values may legitimately lose low bits to the text
    // format's precision).
    std::ostringstream out;
    writeTraceText(out, *trace);
    std::istringstream back(out.str());
    const auto again = tryReadTraceText(back);
    require(again.has_value(), "text trace re-read");
    require(again->size() == trace->size(), "text trace sample count");
    return 0;
}

int
runTraceBinary(const std::uint8_t *data, std::size_t size)
{
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    const auto trace = tryReadTraceBinary(in);
    if (trace) {
        // The format stores the sample count in the header; a parse
        // that succeeded must have found exactly that much data.
        require(8 + 8 + trace->size() * sizeof(double) <= size,
                "binary trace longer than its input");
    }
    return 0;
}

int
runDwt(const std::uint8_t *data, std::size_t size)
{
    if (size < 1 + sizeof(double))
        return 0;
    const WaveletBasis basis = data[0] % 3 == 0
                                   ? WaveletBasis::haar()
                                   : data[0] % 3 == 1
                                         ? WaveletBasis::daubechies4()
                                         : WaveletBasis::daubechies6();
    ++data;
    --size;

    std::vector<double> signal(size / sizeof(double));
    std::memcpy(signal.data(), data, signal.size() * sizeof(double));
    // Arbitrary bytes decode to arbitrary doubles; fold the ones no
    // finite-energy trace contains so round-trip error stays meaningful.
    double max_abs = 0.0;
    for (double &x : signal) {
        if (!std::isfinite(x) || std::fabs(x) > 1e100)
            x = 0.0;
        max_abs = std::max(max_abs, std::fabs(x));
    }
    const double tol = 1e-8 * (1.0 + max_abs);

    // Decimated DWT: truncate to a multiple of 2^levels.
    constexpr std::size_t levels = 3;
    const std::size_t dwt_len = signal.size() & ~std::size_t{7};
    if (dwt_len >= 8) {
        const Dwt dwt(basis);
        const std::span<const double> head(signal.data(), dwt_len);
        const WaveletDecomposition dec = dwt.forward(head, levels);
        require(dec.totalCoefficients() == dwt_len,
                "dwt coefficient count");
        const std::vector<double> back = dwt.inverse(dec);
        require(back.size() == dwt_len, "dwt reconstruction length");
        for (std::size_t i = 0; i < dwt_len; ++i)
            require(std::fabs(back[i] - head[i]) <= tol,
                    "dwt perfect reconstruction");
    }

    // MODWT: the upsampled filter span must fit the signal, so the
    // usable depth depends on both length and basis
    // ((1 << (L-1)) * (filter_len - 1) < n).
    std::size_t modwt_levels = 0;
    while (modwt_levels < levels &&
           (std::size_t{1} << modwt_levels) * (basis.length() - 1) <
               signal.size())
        ++modwt_levels;
    if (modwt_levels >= 1) {
        const Modwt modwt(basis);
        const ModwtDecomposition dec =
            modwt.forward(signal, modwt_levels);
        const std::vector<double> back = modwt.inverse(dec);
        require(back.size() == signal.size(),
                "modwt reconstruction length");
        for (std::size_t i = 0; i < signal.size(); ++i)
            require(std::fabs(back[i] - signal[i]) <= tol,
                    "modwt perfect reconstruction");
        const std::vector<double> var =
            modwt.waveletVariance(signal, modwt_levels);
        for (double v : var)
            require(v >= 0.0 && std::isfinite(v),
                    "modwt variance non-negative");
    }
    return 0;
}

int
runFrame(const std::uint8_t *data, std::size_t size)
{
    // A small payload cap keeps hostile length fields from turning
    // into fuzzer OOMs; the limit check itself is part of the
    // contract under test.
    constexpr std::uint32_t max_payload = 1u << 20;
    const char *bytes = reinterpret_cast<const char *>(data);
    std::string payload;
    std::size_t consumed = 0;
    std::string error;
    const serve::FrameStatus status = serve::decodeFrame(
        bytes, size, &payload, &consumed, max_payload, &error);
    switch (status) {
    case serve::FrameStatus::Ok: {
        require(consumed == serve::kFrameHeaderBytes + payload.size(),
                "frame consumed size");
        require(consumed <= size, "frame decoded past its input");
        // Accepted frames must round-trip through the encoder.
        const std::string again = serve::encodeFrame(payload);
        std::string payload2;
        std::size_t consumed2 = 0;
        require(serve::decodeFrame(again.data(), again.size(),
                                   &payload2, &consumed2,
                                   max_payload) ==
                    serve::FrameStatus::Ok,
                "frame encode/decode round trip");
        require(payload2 == payload, "frame payload round trip");
        // A decoded payload feeds the request parser, which must
        // reject anything invalid without throwing.
        serve::Request request;
        std::string parse_error;
        (void)serve::parseRequest(payload, &request, &parse_error);
        break;
    }
    case serve::FrameStatus::NeedMore:
        require(consumed == 0, "NeedMore must consume nothing");
        break;
    case serve::FrameStatus::Malformed:
        require(!error.empty(), "malformed frame without a message");
        break;
    case serve::FrameStatus::Oversized:
        require(!error.empty(), "oversized frame without a message");
        break;
    default:
        require(false, "decodeFrame returned an fd-only status");
    }
    return 0;
}

} // namespace fuzz
} // namespace didt
