/** libFuzzer entry point for the dwt driver (see drivers.hh). */

#include "drivers.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return didt::fuzz::runDwt(data, size);
}
