/**
 * @file
 * Tests for the multi-stage supply network extension and the generic
 * (impulse-response) monitor constructors.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/monitor.hh"
#include "power/multistage.hh"
#include "power/stimulus.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"

namespace didt
{
namespace
{

SupplyNetworkConfig
chipStage()
{
    SupplyNetworkConfig cfg;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.dcResistance = 2.0e-4;
    cfg.responseLength = 2048;
    return cfg;
}

SupplyNetworkConfig
boardStage()
{
    SupplyNetworkConfig cfg;
    cfg.resonantHz = 8.0e6;
    cfg.qualityFactor = 3.0;
    cfg.dcResistance = 1.0e-4;
    cfg.responseLength = 8192; // slower stage rings longer
    return cfg;
}

MultiStageSupplyNetwork
twoStage()
{
    return MultiStageSupplyNetwork({chipStage(), boardStage()});
}

TEST(MultiStage, ResistanceIsSumOfStages)
{
    const auto net = twoStage();
    EXPECT_NEAR(net.resistance(), 3.0e-4, 1e-12);
    EXPECT_NEAR(net.steadyStateVoltage(50.0), 1.0 - 50.0 * 3.0e-4, 1e-12);
}

TEST(MultiStage, ImpulseResponseIsSumOfStages)
{
    const auto net = twoStage();
    const SupplyNetwork chip(chipStage());
    const SupplyNetwork board(boardStage());
    ASSERT_EQ(net.impulseResponse().size(), 8192u);
    for (std::size_t n = 0; n < 2048; n += 97)
        EXPECT_NEAR(net.impulseResponse()[n],
                    chip.impulseResponse()[n] + board.impulseResponse()[n],
                    1e-15);
}

TEST(MultiStage, ImpedanceShowsBothResonances)
{
    const auto net = twoStage();
    const double at_chip = net.impedanceAt(125.0e6);
    const double at_board = net.impedanceAt(8.0e6);
    const double between = net.impedanceAt(40.0e6);
    EXPECT_GT(at_chip, 2.0 * between);
    EXPECT_GT(at_board, 1.5 * between);
}

TEST(MultiStage, VoltageSuperposesStageDroops)
{
    const auto net = twoStage();
    const SupplyNetwork chip(chipStage());
    const SupplyNetwork board(boardStage());
    Rng rng(5);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 3000, rng);
    const VoltageTrace combined = net.computeVoltage(trace);
    const VoltageTrace vc = chip.computeVoltage(trace);
    const VoltageTrace vb = board.computeVoltage(trace);
    for (std::size_t n = 0; n < trace.size(); n += 37) {
        const double droop = (1.0 - vc[n]) + (1.0 - vb[n]);
        EXPECT_NEAR(combined[n], 1.0 - droop, 1e-12);
    }
}

TEST(MultiStage, BothResonancesAmplifySines)
{
    const auto net = twoStage();
    auto swing = [&](Hertz f) {
        const CurrentTrace wave = sineCurrent(40.0, 10.0, f, 3.0e9, 32768);
        const VoltageTrace v = net.computeVoltage(wave);
        RunningStats s;
        for (std::size_t n = 16384; n < v.size(); ++n)
            s.push(v[n]);
        return s.max() - s.min();
    };
    EXPECT_GT(swing(125.0e6), 2.0 * swing(40.0e6));
    EXPECT_GT(swing(8.0e6), 1.5 * swing(40.0e6));
}

TEST(MultiStage, CalibrationFitsBand)
{
    const CurrentTrace worst =
        resonantSquareWave(3.0e9, 125.0e6, 20.0, 100.0);
    const auto stages = calibrateMultiStage({chipStage(), boardStage()},
                                            worst);
    const MultiStageSupplyNetwork net(stages);
    const VoltageTrace v = net.computeVoltage(worst);
    Volt lo = 2.0;
    Volt hi = 0.0;
    for (Volt x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_GE(lo, 0.95 - 1e-6);
    EXPECT_LE(hi, 1.05 + 1e-6);
    EXPECT_TRUE(lo < 0.9502 || hi > 1.0498); // tight
}

TEST(MultiStage, WaveletMonitorTracksCombinedNetwork)
{
    // The generic-constructor monitor must track the two-resonance
    // voltage given the combined response. The slow board stage needs
    // a longer history window.
    const auto net = twoStage();
    Rng rng(6);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 8000, rng);
    const VoltageTrace truth = net.computeVoltage(trace);
    WaveletMonitor monitor(net.impulseResponse(), net.nominalVoltage(),
                           2048, 2048, 10);
    double max_err = 0.0;
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt est = monitor.update(trace[n], truth[n]);
        if (n >= 4096)
            max_err = std::max(max_err, std::fabs(est - truth[n]));
    }
    EXPECT_LT(max_err, 2e-3);
}

TEST(MultiStage, FewTermsStillCaptureBothPeaks)
{
    const auto net = twoStage();
    const CurrentTrace chirp = [&] {
        CurrentTrace t = sineCurrent(40.0, 15.0, 125.0e6, 3.0e9, 8192);
        const CurrentTrace slow =
            sineCurrent(0.0, 15.0, 8.0e6, 3.0e9, 8192);
        for (std::size_t n = 0; n < t.size(); ++n)
            t[n] += slow[n];
        return t;
    }();
    const VoltageTrace truth = net.computeVoltage(chirp);
    WaveletMonitor monitor(net.impulseResponse(), net.nominalVoltage(),
                           48, 2048, 10);
    double max_err = 0.0;
    for (std::size_t n = 0; n < chirp.size(); ++n) {
        const Volt est = monitor.update(chirp[n], truth[n]);
        if (n >= 4096)
            max_err = std::max(max_err, std::fabs(est - truth[n]));
    }
    // 48 terms on a 2048-tap two-peak kernel: still millivolt-class.
    EXPECT_LT(max_err, 0.02);
}

TEST(MultiStage, FullConvolutionGenericCtor)
{
    const auto net = twoStage();
    Rng rng(7);
    const CurrentTrace trace = gaussianCurrent(40.0, 10.0, 4000, rng);
    const VoltageTrace truth = net.computeVoltage(trace);
    FullConvolutionMonitor monitor(net.impulseResponse(),
                                   net.nominalVoltage(), 0.99999999);
    double max_err = 0.0;
    for (std::size_t n = 0; n < trace.size(); ++n) {
        const Volt est = monitor.update(trace[n], truth[n]);
        if (n >= monitor.termCount())
            max_err = std::max(max_err, std::fabs(est - truth[n]));
    }
    EXPECT_LT(max_err, 5e-4);
}

TEST(MultiStageDeath, MismatchedNominalIsFatal)
{
    SupplyNetworkConfig a = chipStage();
    SupplyNetworkConfig b = boardStage();
    b.nominalVoltage = 1.2;
    EXPECT_EXIT(MultiStageSupplyNetwork net({a, b}),
                ::testing::ExitedWithCode(1), "nominal voltage");
}

TEST(MultiStageDeath, EmptyIsFatal)
{
    EXPECT_EXIT(MultiStageSupplyNetwork net({}),
                ::testing::ExitedWithCode(1), "at least one stage");
}

} // namespace
} // namespace didt
