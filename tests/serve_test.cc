/**
 * @file
 * Tests for the didt_serve subsystem: the frame codec (golden bytes,
 * incremental decode, strict rejection of malformed/oversized input),
 * the didt-serve-v1 request schema, batching (key compatibility, spec
 * merging, result slicing), and the live daemon — batch-vs-service
 * byte identity, queue-full backpressure, shared-cache single-flight
 * across concurrent clients, and fault injection on the socket paths
 * (faults become per-request errors, never daemon crashes).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "runner/campaign.hh"
#include "runner/executor.hh"
#include "runner/plan.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "serve/batch.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "verify/failpoint.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup = makeStandardSetup();
    return setup;
}

/** A small but real spec (wire-expressible profile names). */
CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.profiles = {profileByName("gzip"), profileByName("mcf")};
    spec.impedanceScales = {1.0, 1.2};
    spec.windowLength = 64;
    spec.levels = 4;
    spec.instructions = 8000;
    return spec;
}

/** Unique short socket path (sun_path caps at ~107 bytes). */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/didt_serve_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Frame, GoldenEncoding)
{
    const std::string frame = serve::encodeFrame("hi");
    // 12-byte header: "DSRV", version 1 LE, reserved 0, length 2 LE.
    const char expected[] = {'D',  'S',  'R',  'V',  0x01, 0x00, 0x00,
                             0x00, 0x02, 0x00, 0x00, 0x00, 'h',  'i'};
    ASSERT_EQ(frame.size(), sizeof(expected));
    EXPECT_EQ(0, std::memcmp(frame.data(), expected, sizeof(expected)));
}

TEST(Frame, DecodeRoundTrip)
{
    for (const std::string &payload :
         {std::string(), std::string("x"),
          std::string("{\"type\": \"ping\"}"),
          std::string(100000, 'z')}) {
        const std::string frame = serve::encodeFrame(payload);
        std::string out;
        std::size_t consumed = 0;
        EXPECT_EQ(serve::decodeFrame(frame.data(), frame.size(), &out,
                                     &consumed),
                  serve::FrameStatus::Ok);
        EXPECT_EQ(out, payload);
        EXPECT_EQ(consumed, serve::kFrameHeaderBytes + payload.size());
    }
}

TEST(Frame, DecodeLeavesTrailingBytes)
{
    const std::string two =
        serve::encodeFrame("first") + serve::encodeFrame("second");
    std::string payload;
    std::size_t consumed = 0;
    ASSERT_EQ(serve::decodeFrame(two.data(), two.size(), &payload,
                                 &consumed),
              serve::FrameStatus::Ok);
    EXPECT_EQ(payload, "first");
    ASSERT_LT(consumed, two.size());
    ASSERT_EQ(serve::decodeFrame(two.data() + consumed,
                                 two.size() - consumed, &payload,
                                 &consumed),
              serve::FrameStatus::Ok);
    EXPECT_EQ(payload, "second");
}

TEST(Frame, IncompletePrefixNeedsMore)
{
    const std::string frame = serve::encodeFrame("payload");
    // Every strict prefix — partial header and partial payload alike.
    for (std::size_t len = 0; len < frame.size(); ++len) {
        std::string payload;
        std::size_t consumed = 99;
        EXPECT_EQ(serve::decodeFrame(frame.data(), len, &payload,
                                     &consumed),
                  serve::FrameStatus::NeedMore)
            << "prefix length " << len;
        EXPECT_EQ(consumed, 0u);
    }
}

TEST(Frame, MalformedHeaderRejected)
{
    std::string frame = serve::encodeFrame("ok");
    std::string payload;
    std::size_t consumed = 0;
    std::string error;

    std::string bad_magic = frame;
    bad_magic[0] = 'X';
    EXPECT_EQ(serve::decodeFrame(bad_magic.data(), bad_magic.size(),
                                 &payload, &consumed,
                                 serve::kDefaultMaxFrameBytes, &error),
              serve::FrameStatus::Malformed);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    std::string bad_version = frame;
    bad_version[4] = 0x7f;
    EXPECT_EQ(serve::decodeFrame(bad_version.data(), bad_version.size(),
                                 &payload, &consumed),
              serve::FrameStatus::Malformed);

    std::string bad_reserved = frame;
    bad_reserved[6] = 0x01;
    EXPECT_EQ(serve::decodeFrame(bad_reserved.data(),
                                 bad_reserved.size(), &payload,
                                 &consumed),
              serve::FrameStatus::Malformed);
}

TEST(Frame, OversizedPayloadRejected)
{
    const std::string frame = serve::encodeFrame(std::string(64, 'a'));
    std::string payload;
    std::size_t consumed = 0;
    // The limit is enforced from the header alone: a 12-byte prefix is
    // already enough to reject, so a hostile length can never force a
    // large allocation.
    EXPECT_EQ(serve::decodeFrame(frame.data(),
                                 serve::kFrameHeaderBytes, &payload,
                                 &consumed, 63),
              serve::FrameStatus::Oversized);
}

TEST(Frame, StatusNamesAreStable)
{
    EXPECT_STREQ(serve::frameStatusName(serve::FrameStatus::Ok), "ok");
    EXPECT_STREQ(serve::frameStatusName(serve::FrameStatus::Oversized),
                 "oversized");
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(Protocol, CharacterizeRequestRoundTrip)
{
    const CampaignSpec spec = smallSpec();
    const std::string payload = serve::characterizeRequestJson(
        "req-7", campaignSpecToJson(spec));
    serve::Request request;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(payload, &request, &error)) << error;
    EXPECT_EQ(request.type, serve::RequestType::Characterize);
    EXPECT_EQ(request.id, "req-7");
    ASSERT_EQ(request.spec.profiles.size(), 2u);
    EXPECT_EQ(request.spec.profiles[0].name, "gzip");
    EXPECT_EQ(request.spec.profiles[1].name, "mcf");
    EXPECT_EQ(request.spec.impedanceScales,
              (std::vector<double>{1.0, 1.2}));
    EXPECT_EQ(request.spec.windowLength, 64u);
    EXPECT_EQ(request.spec.instructions, 8000u);
}

TEST(Protocol, RejectsBadRequests)
{
    serve::Request request;
    std::string error;
    // Bad JSON.
    EXPECT_FALSE(serve::parseRequest("{nope", &request, &error));
    // Wrong schema marker.
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema\": \"didt-serve-v2\", \"type\": \"ping\"}", &request,
        &error));
    // Unknown type.
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema\": \"didt-serve-v1\", \"type\": \"reboot\"}",
        &request, &error));
    // Invalid spec (unknown benchmark name).
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema\": \"didt-serve-v1\", \"type\": \"characterize\", "
        "\"spec\": {\"benchmarks\": [\"not-a-spec2000-name\"]}}",
        &request, &error));
    EXPECT_NE(error.find("benchmark"), std::string::npos) << error;
}

TEST(Protocol, ErrorCodeNames)
{
    EXPECT_STREQ(serve::errorCodeName(serve::ErrorCode::BadRequest),
                 "bad_request");
    EXPECT_STREQ(serve::errorCodeName(serve::ErrorCode::QueueFull),
                 "queue_full");
    EXPECT_STREQ(serve::errorCodeName(serve::ErrorCode::ShuttingDown),
                 "shutting_down");
    EXPECT_STREQ(serve::errorCodeName(serve::ErrorCode::Internal),
                 "internal");
}

TEST(Protocol, WatchAndEventsRequestsRoundTrip)
{
    serve::Request request;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(
        serve::watchRequestJson("w1", 250.0, 4), &request, &error))
        << error;
    EXPECT_EQ(request.type, serve::RequestType::Watch);
    EXPECT_EQ(request.id, "w1");
    EXPECT_DOUBLE_EQ(request.watchIntervalMs, 250.0);
    EXPECT_EQ(request.watchCount, 4u);

    ASSERT_TRUE(serve::parseRequest(
        serve::eventsRequestJson("e1", 17, 5), &request, &error))
        << error;
    EXPECT_EQ(request.type, serve::RequestType::Events);
    EXPECT_EQ(request.eventsAfter, 17u);
    EXPECT_EQ(request.eventsLimit, 5u);

    // Sub-10ms watch periods are rejected (they would busy-spin the
    // daemon), as are non-numeric ones.
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema\": \"didt-serve-v1\", \"type\": \"watch\", "
        "\"interval_ms\": 1}",
        &request, &error));
}

TEST(Protocol, StatsRequestNegotiatesPrometheusFormat)
{
    serve::Request request;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(serve::statsRequestJson("s", true),
                                    &request, &error))
        << error;
    EXPECT_TRUE(request.wantPrometheus);
    ASSERT_TRUE(serve::parseRequest(serve::statsRequestJson("s"),
                                    &request, &error))
        << error;
    EXPECT_FALSE(request.wantPrometheus);
}

// ---------------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------------

TEST(EventLog, RingDropsOldestAndCountsDrops)
{
    obs::EventLog log(3);
    for (int i = 1; i <= 5; ++i)
        log.append("type" + std::to_string(i));
    EXPECT_EQ(log.appended(), 5u);
    EXPECT_EQ(log.dropped(), 2u);
    EXPECT_EQ(log.size(), 3u);

    const obs::EventLog::Query all = log.since(0);
    ASSERT_EQ(all.events.size(), 3u);
    EXPECT_EQ(all.events[0].seq, 3u);
    EXPECT_EQ(all.events[0].type, "type3");
    EXPECT_EQ(all.events[2].seq, 5u);
    EXPECT_EQ(all.dropped, 2u);
    EXPECT_EQ(all.next, 5u);
}

TEST(EventLog, SinceCursorAndLimitPaginate)
{
    obs::EventLog log(8);
    for (int i = 0; i < 6; ++i) {
        std::string detail = "d";
        detail += std::to_string(i);
        log.append("t", detail);
    }
    const obs::EventLog::Query page1 = log.since(0, 2);
    ASSERT_EQ(page1.events.size(), 2u);
    EXPECT_EQ(page1.events[0].seq, 1u);
    EXPECT_EQ(page1.next, 2u);
    const obs::EventLog::Query page2 = log.since(page1.next, 2);
    ASSERT_EQ(page2.events.size(), 2u);
    EXPECT_EQ(page2.events[0].seq, 3u);
    // Past the end: empty page, cursor unchanged.
    const obs::EventLog::Query done = log.since(6);
    EXPECT_TRUE(done.events.empty());
    EXPECT_EQ(done.next, 6u);
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

TEST(Batch, KeyIgnoresCellSetButNotAnalysisConfig)
{
    CampaignSpec a = smallSpec();
    CampaignSpec b = smallSpec();
    b.profiles = {profileByName("art")};
    b.impedanceScales = {1.5};
    EXPECT_EQ(serve::batchKey(a), serve::batchKey(b))
        << "cell set must not affect batchability";

    CampaignSpec c = smallSpec();
    c.windowLength = 128;
    EXPECT_NE(serve::batchKey(a), serve::batchKey(c));
    CampaignSpec d = smallSpec();
    d.useCorrelation = false;
    EXPECT_NE(serve::batchKey(a), serve::batchKey(d));
}

TEST(Batch, MergeUnionsInFirstAppearanceOrder)
{
    CampaignSpec a = smallSpec(); // gzip, mcf x 1.0, 1.2
    CampaignSpec b = smallSpec();
    b.profiles = {profileByName("mcf"), profileByName("art")};
    b.impedanceScales = {1.2, 1.5};
    const CampaignSpec merged = serve::mergeSpecs({a, b});
    ASSERT_EQ(merged.profiles.size(), 3u);
    EXPECT_EQ(merged.profiles[0].name, "gzip");
    EXPECT_EQ(merged.profiles[1].name, "mcf");
    EXPECT_EQ(merged.profiles[2].name, "art");
    EXPECT_EQ(merged.impedanceScales,
              (std::vector<double>{1.0, 1.2, 1.5}));
}

TEST(Batch, SlicedResultMatchesStandaloneRunByteForByte)
{
    // Run the merged campaign once on a shared executor...
    CampaignSpec merged_request = smallSpec();
    TraceRepository shared_repo(sharedSetup());
    Executor executor(sharedSetup(), shared_repo, 2);
    std::vector<TraceCacheStats> deltas;
    ExecutionHooks hooks;
    hooks.cellCacheDeltas = &deltas;
    const CampaignResult merged =
        executor.run(buildCampaignPlan(merged_request), hooks);

    // ...slice out a one-benchmark request...
    CampaignSpec request = smallSpec();
    request.profiles = {profileByName("mcf")};
    const CampaignResult sliced =
        serve::sliceResult(merged, deltas, request);

    // ...and demand the bytes of a standalone run of that request.
    TraceRepository fresh_repo(sharedSetup());
    const CampaignResult standalone = runCharacterizationCampaign(
        sharedSetup(), request, fresh_repo, 1);
    std::ostringstream sliced_json, standalone_json;
    campaignToJson(sliced).write(sliced_json);
    campaignToJson(standalone).write(standalone_json);
    EXPECT_EQ(sliced_json.str(), standalone_json.str());
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/** Parse a response payload, asserting it is didt-serve-v1. */
JsonValue
parseResponse(const std::string &payload)
{
    const JsonValue doc = parseJson(payload);
    EXPECT_EQ(doc.find("schema")->asString(), "didt-serve-v1");
    return doc;
}

/** One blocking request/response against a running server. */
std::string
callServer(const std::string &socket_path, const std::string &request)
{
    serve::Client client;
    std::string error;
    EXPECT_TRUE(client.connectUnix(socket_path, &error)) << error;
    std::string response;
    EXPECT_TRUE(client.call(request, &response, &error)) << error;
    return response;
}

TEST(Server, PingAndStatsOverUnixSocket)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("ping");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const JsonValue pong =
        parseResponse(callServer(config.unixPath,
                                 serve::pingRequestJson("p1")));
    EXPECT_EQ(pong.find("type")->asString(), "pong");
    EXPECT_EQ(pong.find("id")->asString(), "p1");

    const JsonValue stats =
        parseResponse(callServer(config.unixPath,
                                 serve::statsRequestJson("")));
    EXPECT_EQ(stats.find("type")->asString(), "stats");
    EXPECT_GE(stats.find("stats")->find("requests")->asNumber(), 1.0);

    server.requestStop();
    server.wait();
    // The drained daemon removed its socket: connecting again fails.
    serve::Client client;
    EXPECT_FALSE(client.connectUnix(config.unixPath, &error));
}

TEST(Server, PingOverEphemeralTcpPort)
{
    serve::ServerConfig config;
    config.tcpPort = 0;
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.tcpPort(), 0);

    serve::Client client;
    ASSERT_TRUE(client.connectTcp("127.0.0.1", server.tcpPort(),
                                  &error))
        << error;
    std::string response;
    ASSERT_TRUE(client.call(serve::pingRequestJson("tcp"), &response,
                            &error))
        << error;
    EXPECT_EQ(parseResponse(response).find("type")->asString(), "pong");
}

TEST(Server, ServedResultIsByteIdenticalToBatchCampaign)
{
    const CampaignSpec spec = smallSpec();

    // Reference: the batch path at --jobs 1 with a fresh repository.
    TraceRepository batch_repo(sharedSetup());
    const CampaignResult batch = runCharacterizationCampaign(
        sharedSetup(), spec, batch_repo, 1);
    std::ostringstream batch_json;
    campaignToJson(batch).write(batch_json);

    // Service path: different job count, shared daemon repository.
    serve::ServerConfig config;
    config.unixPath = testSocketPath("ident");
    config.jobs = 2;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const JsonValue response = parseResponse(
        callServer(config.unixPath,
                   serve::characterizeRequestJson(
                       "c1", campaignSpecToJson(spec))));
    ASSERT_EQ(response.find("type")->asString(), "result")
        << response.dump();
    std::ostringstream served_json;
    response.find("result")->write(served_json);
    EXPECT_EQ(served_json.str(), batch_json.str());
}

TEST(Server, ZeroCapacityQueueRejectsWithTypedBackpressure)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("full");
    config.jobs = 1;
    config.maxQueue = 0;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const JsonValue response = parseResponse(
        callServer(config.unixPath,
                   serve::characterizeRequestJson(
                       "q1", campaignSpecToJson(smallSpec()))));
    ASSERT_EQ(response.find("type")->asString(), "error");
    EXPECT_EQ(response.find("error")->find("code")->asString(),
              "queue_full");
    EXPECT_EQ(response.find("id")->asString(), "q1");
}

TEST(Server, ConcurrentClientsShareOneSimulationPerBenchmark)
{
    CampaignSpec spec = smallSpec();
    spec.profiles = {profileByName("gzip")};

    serve::ServerConfig config;
    config.unixPath = testSocketPath("flight");
    config.jobs = 2;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Two clients ask for the same sweep at the same time.
    std::vector<std::string> responses(2);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < responses.size(); ++i)
        clients.emplace_back([&, i] {
            responses[i] = callServer(
                config.unixPath,
                serve::characterizeRequestJson(
                    "cc" + std::to_string(i),
                    campaignSpecToJson(spec)));
        });
    for (std::thread &t : clients)
        t.join();

    // Identical evaluated content — the cells, spec, and summary bytes
    // cannot depend on whether the scheduler happened to batch the two
    // requests or ran them back to back. (The cache section legitimately
    // can: the first request of a back-to-back pair simulates, the
    // second hits the warm shared tier.)
    JsonValue r0 = parseResponse(responses[0]);
    JsonValue r1 = parseResponse(responses[1]);
    ASSERT_EQ(r0.find("type")->asString(), "result") << r0.dump();
    ASSERT_EQ(r1.find("type")->asString(), "result") << r1.dump();
    for (const char *member : {"spec", "cells", "rms_estimation_error_pct"}) {
        std::ostringstream d0, d1;
        r0.find("result")->find(member)->write(d0);
        r1.find("result")->find(member)->write(d1);
        EXPECT_EQ(d0.str(), d1.str()) << member;
    }

    // ...and the shared tier simulated the benchmark exactly once,
    // whether the requests batched together or ran back to back.
    const JsonValue stats = server.statsJson();
    EXPECT_EQ(stats.find("cache")->find("simulations")->asNumber(),
              1.0);
    EXPECT_EQ(stats.find("characterizations")->asNumber(), 2.0);
}

TEST(Server, DecodeFailpointBecomesPerRequestError)
{
    verify::resetFailPoints();
    verify::armFailPoint("serve.decode",
                         verify::TriggerPolicy::nthHit(1));

    serve::ServerConfig config;
    config.unixPath = testSocketPath("fp");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(config.unixPath, &error)) << error;
    std::string response;
    ASSERT_TRUE(client.call(serve::pingRequestJson("f1"), &response,
                            &error))
        << error;
    const JsonValue faulted = parseResponse(response);
    ASSERT_EQ(faulted.find("type")->asString(), "error");
    EXPECT_EQ(faulted.find("error")->find("code")->asString(),
              "bad_request");

    // The daemon survived the injected fault; the connection did too.
    ASSERT_TRUE(client.call(serve::pingRequestJson("f2"), &response,
                            &error))
        << error;
    EXPECT_EQ(parseResponse(response).find("type")->asString(), "pong");
    verify::resetFailPoints();
}

TEST(Server, PongAdvertisesTelemetryFeatures)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("feat");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const JsonValue pong =
        parseResponse(callServer(config.unixPath,
                                 serve::pingRequestJson("f")));
    const JsonValue *features = pong.find("features");
    ASSERT_NE(features, nullptr);
    std::vector<std::string> names;
    for (const JsonValue &f : features->items())
        names.push_back(f.asString());
    for (const char *required : {"events", "timings", "watch"})
        EXPECT_NE(std::find(names.begin(), names.end(), required),
                  names.end())
            << required;
}

TEST(Server, WatchStreamsFramesUntilNextRequestUnsubscribes)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("watch");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(config.unixPath, &error)) << error;
    ASSERT_TRUE(client.send(serve::watchRequestJson("w1", 10.0, 0),
                            &error))
        << error;

    // Unbounded subscription: frames keep arriving with ascending seq.
    double lastSeq = 0.0;
    for (int i = 0; i < 3; ++i) {
        std::string payload;
        ASSERT_TRUE(client.receive(&payload, &error)) << error;
        const JsonValue frame = parseResponse(payload);
        ASSERT_EQ(frame.find("type")->asString(), "watch");
        EXPECT_EQ(frame.find("id")->asString(), "w1");
        const double seq = frame.find("seq")->asNumber();
        EXPECT_GT(seq, lastSeq);
        lastSeq = seq;
        const JsonValue *stats = frame.find("stats");
        ASSERT_NE(stats, nullptr);
        EXPECT_GE(stats->find("active_connections")->asNumber(), 1.0);
        EXPECT_GE(stats->find("watchers")->asNumber(), 1.0);
        ASSERT_NE(frame.find("delta"), nullptr);
    }

    // Any further request unsubscribes: the daemon stops streaming and
    // answers it. In-flight watch frames may still be buffered, so
    // drain until the pong arrives.
    ASSERT_TRUE(client.send(serve::pingRequestJson("after-watch"),
                            &error))
        << error;
    std::string payload;
    for (;;) {
        ASSERT_TRUE(client.receive(&payload, &error)) << error;
        const JsonValue response = parseResponse(payload);
        if (response.find("type")->asString() == "watch")
            continue;
        EXPECT_EQ(response.find("type")->asString(), "pong");
        EXPECT_EQ(response.find("id")->asString(), "after-watch");
        break;
    }

    // The connection is back in plain request/response mode.
    ASSERT_TRUE(client.call(serve::statsRequestJson(""), &payload,
                            &error))
        << error;
    EXPECT_EQ(parseResponse(payload).find("type")->asString(), "stats");
}

TEST(Server, WatchFrameBudgetEndsStream)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("wbudget");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(config.unixPath, &error)) << error;
    ASSERT_TRUE(client.send(serve::watchRequestJson("w2", 10.0, 2),
                            &error))
        << error;
    std::string payload;
    for (int i = 1; i <= 2; ++i) {
        ASSERT_TRUE(client.receive(&payload, &error)) << error;
        EXPECT_EQ(parseResponse(payload).find("seq")->asNumber(),
                  static_cast<double>(i));
    }
    // The budget is spent; the very next frame answers a new request.
    ASSERT_TRUE(client.call(serve::pingRequestJson("done"), &payload,
                            &error))
        << error;
    EXPECT_EQ(parseResponse(payload).find("type")->asString(), "pong");
}

TEST(Server, EventsRequestReturnsRequestLifecycle)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("events");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    parseResponse(callServer(config.unixPath,
                             serve::characterizeRequestJson(
                                 "ev1", campaignSpecToJson(smallSpec()))));

    const JsonValue response = parseResponse(
        callServer(config.unixPath, serve::eventsRequestJson("q", 0, 0)));
    ASSERT_EQ(response.find("type")->asString(), "events");
    EXPECT_EQ(response.find("dropped")->asNumber(), 0.0);
    const JsonValue *events = response.find("events");
    ASSERT_NE(events, nullptr);
    auto detailOf = [&](const char *type) -> std::string {
        for (const JsonValue &event : events->items())
            if (event.find("type")->asString() == type)
                return event.find("detail")->asString();
        return {};
    };
    EXPECT_NE(detailOf("request_admitted").find("ev1"),
              std::string::npos);
    EXPECT_NE(detailOf("batch_formed").find("size=1"),
              std::string::npos);
    EXPECT_NE(detailOf("request_completed").find("ev1"),
              std::string::npos);
    EXPECT_GE(response.find("next")->asNumber(), 3.0);

    // The cursor pages: nothing new after the last seq.
    const JsonValue empty = parseResponse(callServer(
        config.unixPath,
        serve::eventsRequestJson(
            "q2",
            static_cast<std::uint64_t>(
                response.find("next")->asNumber()),
            0)));
    EXPECT_TRUE(empty.find("events")->items().empty());
}

TEST(Server, TimingsEchoedOnlyWhenRequested)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("timings");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const JsonValue plain = parseResponse(
        callServer(config.unixPath,
                   serve::characterizeRequestJson(
                       "t0", campaignSpecToJson(smallSpec()))));
    ASSERT_EQ(plain.find("type")->asString(), "result");
    EXPECT_EQ(plain.find("timings"), nullptr)
        << "timings must be off by default";

    const JsonValue timed = parseResponse(
        callServer(config.unixPath,
                   serve::characterizeRequestJson(
                       "t1", campaignSpecToJson(smallSpec()), true)));
    ASSERT_EQ(timed.find("type")->asString(), "result");
    const JsonValue *timings = timed.find("timings");
    ASSERT_NE(timings, nullptr);
    for (const char *field :
         {"queue_ms", "merge_ms", "execute_ms", "serialize_ms"})
        EXPECT_GE(timings->find(field)->asNumber(), 0.0) << field;
    EXPECT_GE(timings->find("cache")->find("lookups")->asNumber(), 1.0);

    // The attribution rides OUTSIDE the result document: the evaluated
    // members stay byte-identical with and without it.
    for (const char *member :
         {"spec", "cells", "rms_estimation_error_pct"}) {
        std::ostringstream a, b;
        plain.find("result")->find(member)->write(a);
        timed.find("result")->find(member)->write(b);
        EXPECT_EQ(a.str(), b.str()) << member;
    }
}

TEST(Server, ConcurrentRequestsYieldDistinctSpanTrees)
{
    obs::TraceEventSink &sink = obs::TraceEventSink::global();
    sink.clear();
    sink.setEnabled(true);

    serve::ServerConfig config;
    config.unixPath = testSocketPath("spans");
    config.jobs = 2;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Different windows force different batch keys, so the requests
    // execute as two batches — each request tree must nest cell spans.
    std::vector<std::thread> clients;
    for (int i = 0; i < 2; ++i)
        clients.emplace_back([&, i] {
            CampaignSpec spec = smallSpec();
            spec.profiles = {profileByName("gzip")};
            spec.windowLength = i == 0 ? 64 : 128;
            callServer(config.unixPath,
                       serve::characterizeRequestJson(
                           "span" + std::to_string(i),
                           campaignSpecToJson(spec)));
        });
    for (std::thread &t : clients)
        t.join();

    // The root "request" span ends only after the response frame is
    // written, and the dispatcher records the "batch" span after it
    // releases the responses — so a read taken the instant the clients
    // return can still miss the tail of either tree. Poll until both
    // trees are complete (bounded), then assert on the final read.
    std::vector<obs::TraceEvent> events;
    const auto spanTreesComplete =
        [](const std::vector<obs::TraceEvent> &all) {
            std::map<std::uint64_t, const obs::TraceEvent *> spans;
            for (const obs::TraceEvent &event : all)
                spans[event.spanId] = &event;
            auto rootId =
                [&](const obs::TraceEvent &event) -> std::uint64_t {
                const obs::TraceEvent *cursor = &event;
                while (cursor->parentId != 0) {
                    const auto it = spans.find(cursor->parentId);
                    if (it == spans.end())
                        return 0;
                    cursor = it->second;
                }
                return cursor->spanId;
            };
            for (const char *id : {"span0", "span1"}) {
                std::uint64_t root = 0;
                for (const obs::TraceEvent &event : all)
                    if (event.name == "request" &&
                        event.requestId == id)
                        root = event.spanId;
                if (root == 0)
                    return false;
                bool cell = false;
                for (const obs::TraceEvent &event : all)
                    if (event.name.rfind("cell ", 0) == 0 &&
                        event.requestId == id &&
                        rootId(event) == root)
                        cell = true;
                if (!cell)
                    return false;
            }
            return true;
        };
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
        events = sink.events();
        if (spanTreesComplete(events) ||
            std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    sink.setEnabled(false);
    sink.clear();

    std::map<std::uint64_t, const obs::TraceEvent *> bySpan;
    for (const obs::TraceEvent &event : events)
        bySpan[event.spanId] = &event;
    auto rootOf = [&](const obs::TraceEvent &event) -> std::uint64_t {
        const obs::TraceEvent *cursor = &event;
        while (cursor->parentId != 0) {
            const auto it = bySpan.find(cursor->parentId);
            if (it == bySpan.end())
                return 0; // broken link
            cursor = it->second;
        }
        return cursor->spanId;
    };

    for (const char *id : {"span0", "span1"}) {
        // Each request has exactly one root "request" span...
        const obs::TraceEvent *root = nullptr;
        for (const obs::TraceEvent &event : events)
            if (event.name == "request" && event.requestId == id) {
                EXPECT_EQ(root, nullptr) << "duplicate root for " << id;
                root = &event;
            }
        ASSERT_NE(root, nullptr) << id;
        EXPECT_EQ(root->parentId, 0u);
        // ...whose tree nests at least one per-cell execution span.
        std::size_t cells = 0;
        for (const obs::TraceEvent &event : events)
            if (event.name.rfind("cell ", 0) == 0 &&
                event.requestId == id &&
                rootOf(event) == root->spanId)
                ++cells;
        EXPECT_GE(cells, 1u) << id;
    }
}

TEST(Server, MalformedFrameGetsErrorResponseThenHangup)
{
    serve::ServerConfig config;
    config.unixPath = testSocketPath("mal");
    config.jobs = 1;
    serve::Server server(sharedSetup(), config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Raw socket: the Client class refuses to send garbage for us.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, config.unixPath.c_str(),
                config.unixPath.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    // Exactly one header's worth of garbage: the server consumes all
    // of it, so its hangup is a clean FIN, not a reset.
    const char garbage[serve::kFrameHeaderBytes + 1] = "XXXXXXXXXXXX";
    ASSERT_EQ(::send(fd, garbage, serve::kFrameHeaderBytes,
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(serve::kFrameHeaderBytes));

    // The server answers one typed error frame, then hangs up.
    std::string payload;
    ASSERT_EQ(serve::readFrame(fd, &payload), serve::FrameStatus::Ok);
    const JsonValue response = parseResponse(payload);
    ASSERT_EQ(response.find("type")->asString(), "error");
    EXPECT_EQ(response.find("error")->find("code")->asString(),
              "bad_request");
    EXPECT_EQ(serve::readFrame(fd, &payload),
              serve::FrameStatus::Closed);
    ::close(fd);

    // The poisoned stream cost nothing daemon-wide.
    const JsonValue stats = server.statsJson();
    EXPECT_EQ(stats.find("bad_requests")->asNumber(), 1.0);
}

} // namespace
} // namespace didt
