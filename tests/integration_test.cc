/**
 * @file
 * Integration tests: the full experiment pipeline from workload
 * through processor, supply network, offline estimation, and
 * closed-loop control. These mirror the paper's end-to-end claims at
 * reduced scale.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/cosim.hh"
#include "core/emergency_estimator.hh"
#include "core/experiment.hh"
#include "core/window_analysis.hh"
#include "stats/running_stats.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace didt
{
namespace
{

/** Shared expensive fixtures: one calibrated setup per test binary. */
class Experiment : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setup_ = new ExperimentSetup(makeStandardSetup());
    }

    static void
    TearDownTestSuite()
    {
        delete setup_;
        setup_ = nullptr;
    }

    static const ExperimentSetup &setup() { return *setup_; }

  private:
    static ExperimentSetup *setup_;
};

ExperimentSetup *Experiment::setup_ = nullptr;

TEST_F(Experiment, CalibrationKeepsVirusInBandAtHundredPercent)
{
    const SupplyNetwork net = setup().makeNetwork(1.0);
    const CurrentTrace virus = virusCurrentTrace(setup());
    const VoltageTrace v = net.computeVoltage(virus);
    Volt lo = 2.0;
    Volt hi = 0.0;
    for (Volt x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_GE(lo, 0.95 - 5e-4);
    EXPECT_LE(hi, 1.05 + 5e-4);
}

TEST_F(Experiment, VirusViolatesBandAtHundredFiftyPercent)
{
    const SupplyNetwork net = setup().makeNetwork(1.5);
    const CurrentTrace virus = virusCurrentTrace(setup());
    const VoltageTrace v = net.computeVoltage(virus);
    Volt lo = 2.0;
    for (Volt x : v)
        lo = std::min(lo, x);
    EXPECT_LT(lo, 0.95);
}

TEST_F(Experiment, IdleAndPeakCurrentsBracketWorkloads)
{
    // Switching noise may wander slightly below idle (floored at 90%
    // of idle) and a few sigma above peak.
    const double sigma = setup().power.currentNoiseSigma;
    const CurrentTrace trace =
        benchmarkCurrentTrace(setup(), profileByName("gzip"), 30000);
    for (Amp amp : trace) {
        EXPECT_GE(amp, 0.9 * setup().idleCurrent - 1e-9);
        EXPECT_LE(amp, setup().peakCurrent + 6.0 * sigma);
    }
}

TEST_F(Experiment, BenchmarkTraceIsDeterministic)
{
    const CurrentTrace a =
        benchmarkCurrentTrace(setup(), profileByName("vpr"), 20000);
    const CurrentTrace b =
        benchmarkCurrentTrace(setup(), profileByName("vpr"), 20000);
    EXPECT_EQ(a, b);
}

TEST_F(Experiment, MemoryBoundBenchmarkHasLowerMeanCurrent)
{
    RunningStats compute;
    for (Amp a : benchmarkCurrentTrace(setup(), profileByName("sixtrack"),
                                       30000))
        compute.push(a);
    RunningStats memory;
    for (Amp a :
         benchmarkCurrentTrace(setup(), profileByName("mcf"), 30000))
        memory.push(a);
    EXPECT_GT(compute.mean(), memory.mean());
}

TEST_F(Experiment, StressorHasMoreResonantEnergyThanComputeBound)
{
    // The defining contrast of the paper's Figure 9: oscillation
    // benchmarks couple to the resonance far more than smooth ones.
    const SupplyNetwork net = setup().makeNetwork(1.5);
    auto voltage_sigma = [&](const char *name) {
        const CurrentTrace t =
            benchmarkCurrentTrace(setup(), profileByName(name), 60000);
        RunningStats s;
        for (Volt v : net.computeVoltage(t))
            s.push(v);
        return s.stddev();
    };
    EXPECT_GT(voltage_sigma("mgrid"), 1.3 * voltage_sigma("gzip"));
    EXPECT_GT(voltage_sigma("gzip"), 1.5 * voltage_sigma("mcf"));
}

TEST_F(Experiment, OfflineEstimatorTracksMeasuredEmergencies)
{
    const SupplyNetwork net = setup().makeNetwork(1.5);
    const VoltageVarianceModel model = makeCalibratedModel(setup(), net);

    double sq_err = 0.0;
    int n = 0;
    for (const char *name : {"gzip", "mgrid", "mcf", "vpr"}) {
        const CurrentTrace t =
            benchmarkCurrentTrace(setup(), profileByName(name), 60000);
        const auto profile = profileTrace(t, net, model, 0.97, 1.03);
        const double err = profile.estimatedBelow - profile.measuredBelow;
        sq_err += err * err;
        ++n;
        // Each individual estimate within 6 percentage points.
        EXPECT_LT(std::fabs(err), 0.06) << name;
    }
    EXPECT_LT(std::sqrt(sq_err / n), 0.04);
}

TEST_F(Experiment, EstimatorRanksStressorAboveQuiet)
{
    const SupplyNetwork net = setup().makeNetwork(1.5);
    const VoltageVarianceModel model = makeCalibratedModel(setup(), net);
    auto estimated = [&](const char *name) {
        const CurrentTrace t =
            benchmarkCurrentTrace(setup(), profileByName(name), 60000);
        return profileTrace(t, net, model, 0.97, 1.03).estimatedBelow;
    };
    const double stressor = estimated("galgel");
    const double quiet = estimated("equake");
    EXPECT_GT(stressor, 10.0 * std::max(quiet, 1e-6));
}

TEST_F(Experiment, WaveletControlEliminatesFaults)
{
    const SupplyNetwork net = setup().makeNetwork(1.5);
    CosimConfig cfg;
    cfg.instructions = 50000;
    cfg.scheme = ControlScheme::None;
    const CosimResult base = runClosedLoop(
        profileByName("gzip"), setup().proc, setup().power, net, cfg);
    ASSERT_GT(base.lowFaults, 0u) << "baseline must fault at 150%";

    cfg.scheme = ControlScheme::Wavelet;
    cfg.control.tolerance = 0.020;
    cfg.waveletTerms = 13;
    const CosimResult ctl = runClosedLoop(
        profileByName("gzip"), setup().proc, setup().power, net, cfg);
    EXPECT_EQ(ctl.lowFaults, 0u);
    EXPECT_EQ(ctl.highFaults, 0u);
    EXPECT_LT(slowdown(ctl, base), 0.02);
}

TEST_F(Experiment, DampingControlsButCostsMorePerformance)
{
    const SupplyNetwork net = setup().makeNetwork(1.5);
    CosimConfig cfg;
    cfg.instructions = 40000;
    cfg.scheme = ControlScheme::None;
    const CosimResult base = runClosedLoop(
        profileByName("mgrid"), setup().proc, setup().power, net, cfg);

    cfg.scheme = ControlScheme::Wavelet;
    cfg.control.tolerance = 0.030;
    const CosimResult wavelet = runClosedLoop(
        profileByName("mgrid"), setup().proc, setup().power, net, cfg);

    cfg.scheme = ControlScheme::PipelineDamping;
    cfg.dampingWindow = 16;
    cfg.dampingDelta = 10.0;
    const CosimResult damping = runClosedLoop(
        profileByName("mgrid"), setup().proc, setup().power, net, cfg);

    // Damping engages far more often (its false-positive problem) and
    // slows the machine more than wavelet control.
    EXPECT_GT(damping.controlCycles, 2 * wavelet.controlCycles);
    EXPECT_GT(slowdown(damping, base), slowdown(wavelet, base));
}

TEST_F(Experiment, ControlSchemeNamesRoundTrip)
{
    EXPECT_STREQ(controlSchemeName(ControlScheme::None), "none");
    EXPECT_STREQ(controlSchemeName(ControlScheme::Wavelet), "wavelet");
    EXPECT_STREQ(controlSchemeName(ControlScheme::PipelineDamping),
                 "pipeline-damping");
}

TEST_F(Experiment, GaussianWindowRatesDifferByBenchmarkClass)
{
    // Paper Figure 12's mechanism: benchmarks dominated by long
    // memory stalls or resonant oscillation are less Gaussian than
    // smooth compute-bound ones.
    Rng rng(77);
    auto acceptance = [&](const char *name) {
        const CurrentTrace t =
            benchmarkCurrentTrace(setup(), profileByName(name), 60000);
        return classifyWindows(t, 64, 200, rng).acceptanceRate();
    };
    EXPECT_GT(acceptance("gzip"), acceptance("mgrid"));
    EXPECT_GT(acceptance("gzip"), acceptance("swim"));
}

TEST_F(Experiment, CalibrationTracesAreUsable)
{
    const auto traces = calibrationTraces(setup());
    EXPECT_GE(traces.size(), 8u);
    std::size_t windows = 0;
    for (const auto &t : traces)
        windows += t.size() / 256;
    EXPECT_GT(windows, 100u);
}

} // namespace
} // namespace didt
