/**
 * @file
 * Unit tests for the synthetic SPEC workload generator and the dI/dt
 * virus stressmark.
 */

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/processor.hh"
#include "stats/running_stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/virus.hh"

namespace didt
{
namespace
{

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

TEST(Profiles, TwentySixBenchmarks)
{
    EXPECT_EQ(spec2000Profiles().size(), 26u);
    EXPECT_EQ(spec2000Int().size(), 12u);
    EXPECT_EQ(spec2000Fp().size(), 14u);
}

TEST(Profiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : spec2000Profiles())
        names.insert(p.name);
    EXPECT_EQ(names.size(), 26u);
}

TEST(Profiles, PaperBenchmarksPresent)
{
    // The benchmarks the paper singles out in Figures 9-11.
    for (const char *name : {"gzip", "mesa", "crafty", "eon", "swim",
                             "lucas", "mcf", "art", "mgrid", "gcc",
                             "galgel", "apsi", "vpr", "equake", "gap"})
        EXPECT_EQ(profileByName(name).name, name);
}

TEST(Profiles, ProbabilitiesAreValid)
{
    for (const auto &p : spec2000Profiles()) {
        ASSERT_FALSE(p.phases.empty()) << p.name;
        for (const auto &ph : p.phases) {
            EXPECT_GE(ph.loadFrac, 0.0) << p.name;
            EXPECT_GE(ph.storeFrac, 0.0) << p.name;
            EXPECT_GE(ph.branchFrac, 0.0) << p.name;
            EXPECT_LE(ph.loadFrac + ph.storeFrac + ph.branchFrac, 1.0)
                << p.name;
            EXPECT_LE(ph.hotProb + ph.warmProb, 1.0 + 1e-9) << p.name;
            EXPECT_GE(ph.chaseProb, 0.0) << p.name;
            EXPECT_LE(ph.chaseProb, 1.0) << p.name;
            EXPECT_GT(ph.lengthInsts, 0u) << p.name;
        }
    }
}

TEST(Profiles, MemoryBoundBenchmarksAreMarked)
{
    // The four Figure-11 benchmarks must have substantial cold traffic.
    for (const char *name : {"swim", "lucas", "mcf", "art"}) {
        const auto &p = profileByName(name);
        double max_cold = 0.0;
        for (const auto &ph : p.phases)
            max_cold = std::max(max_cold, 1.0 - ph.hotProb - ph.warmProb);
        EXPECT_GT(max_cold, 0.1) << name;
    }
}

TEST(Profiles, StressorsHaveGatedOscillationPhases)
{
    for (const char *name : {"gcc", "mgrid", "galgel", "apsi"}) {
        const auto &p = profileByName(name);
        bool has_osc = false;
        for (const auto &ph : p.phases)
            if (ph.gateOnLoadProb > 0.5 && ph.chaseProb > 0.5)
                has_osc = true;
        EXPECT_TRUE(has_osc) << name;
    }
}

TEST(ProfilesDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(profileByName("doom3"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(Generator, DeterministicForSameSeed)
{
    const auto &prof = profileByName("gzip");
    SyntheticWorkload a(prof, 1000, 5);
    SyntheticWorkload b(prof, 1000, 5);
    Instruction ia;
    Instruction ib;
    while (a.next(ia)) {
        ASSERT_TRUE(b.next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.op, ib.op);
        EXPECT_EQ(ia.address, ib.address);
        EXPECT_EQ(ia.dep1, ib.dep1);
        EXPECT_EQ(ia.taken, ib.taken);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    const auto &prof = profileByName("gzip");
    SyntheticWorkload a(prof, 500, 1);
    SyntheticWorkload b(prof, 500, 2);
    Instruction ia;
    Instruction ib;
    int differences = 0;
    while (a.next(ia) && b.next(ib))
        if (ia.op != ib.op || ia.address != ib.address)
            ++differences;
    EXPECT_GT(differences, 50);
}

TEST(Generator, DeriveCoreSeedIsReproducibleAndIndependent)
{
    // Core 0 is the identity: a 1-core chip cell's stream is exactly
    // the legacy single-core stream for the same campaign seed.
    EXPECT_EQ(deriveCoreSeed(42, 0), 42u);
    EXPECT_EQ(deriveCoreSeed(0, 0), 0u);

    // The derivation is a pure function of (campaign seed, core).
    EXPECT_EQ(deriveCoreSeed(42, 3), deriveCoreSeed(42, 3));

    // Distinct cores draw distinct seeds from one campaign seed, and
    // distinct campaign seeds keep the per-core seeds apart.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t campaign = 0; campaign < 8; ++campaign)
        for (std::size_t core = 0; core < 16; ++core)
            seeds.insert(deriveCoreSeed(campaign, core));
    EXPECT_EQ(seeds.size(), 8u * 16u);
}

TEST(Generator, DerivedCoreSeedsYieldIndependentStreams)
{
    // Two cores of one campaign run visibly different streams (the
    // multi-core decorrelation the chip aggregation relies on) ...
    const auto &prof = profileByName("gzip");
    SyntheticWorkload core0(prof, 500, deriveCoreSeed(7, 0));
    SyntheticWorkload core1(prof, 500, deriveCoreSeed(7, 1));
    Instruction i0;
    Instruction i1;
    int differences = 0;
    while (core0.next(i0) && core1.next(i1))
        if (i0.op != i1.op || i0.address != i1.address)
            ++differences;
    EXPECT_GT(differences, 50);

    // ... while re-deriving the same core reproduces it exactly.
    SyntheticWorkload again(prof, 500, deriveCoreSeed(7, 1));
    SyntheticWorkload reference(prof, 500, deriveCoreSeed(7, 1));
    Instruction ia;
    Instruction ib;
    while (again.next(ia)) {
        ASSERT_TRUE(reference.next(ib));
        ASSERT_EQ(ia.pc, ib.pc);
        ASSERT_EQ(ia.op, ib.op);
        ASSERT_EQ(ia.address, ib.address);
    }
}

TEST(Generator, RespectsInstructionLimit)
{
    SyntheticWorkload w(profileByName("gzip"), 123, 0);
    Instruction inst;
    std::size_t n = 0;
    while (w.next(inst))
        ++n;
    EXPECT_EQ(n, 123u);
    EXPECT_EQ(w.produced(), 123u);
}

TEST(Generator, MixApproximatesPhaseFractions)
{
    BenchmarkProfile prof = profileByName("crafty"); // single phase
    SyntheticWorkload w(prof, 50000, 0);
    const WorkloadPhase &ph = prof.phases[0];
    std::map<OpClass, std::size_t> counts;
    Instruction inst;
    while (w.next(inst))
        ++counts[inst.op];
    const double n = 50000.0;
    EXPECT_NEAR(counts[OpClass::Load] / n, ph.loadFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::Store] / n, ph.storeFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::Branch] / n, ph.branchFrac, 0.03);
}

TEST(Generator, PcStaysInCodeFootprint)
{
    const auto &prof = profileByName("gzip");
    SyntheticWorkload w(prof, 20000, 3);
    Instruction inst;
    while (w.next(inst)) {
        EXPECT_GE(inst.pc, 0x00400000u);
        EXPECT_LT(inst.pc, 0x00400000u + prof.codeBytes);
    }
}

TEST(Generator, BranchSitesAreStable)
{
    // The same PC must always decode to the same class of instruction
    // (branch vs non-branch) within a phase.
    BenchmarkProfile prof = profileByName("crafty");
    SyntheticWorkload w(prof, 60000, 0);
    std::map<std::uint64_t, bool> is_branch;
    Instruction inst;
    while (w.next(inst)) {
        const bool branch = inst.op == OpClass::Branch;
        auto [it, inserted] = is_branch.emplace(inst.pc, branch);
        if (!inserted) {
            EXPECT_EQ(it->second, branch) << "pc " << std::hex << inst.pc;
        }
    }
}

TEST(Generator, BranchTargetsStablePerPc)
{
    BenchmarkProfile prof = profileByName("crafty");
    SyntheticWorkload w(prof, 60000, 0);
    std::map<std::uint64_t, std::uint64_t> target_of;
    Instruction inst;
    while (w.next(inst)) {
        if (inst.op != OpClass::Branch || inst.isReturn)
            continue;
        auto [it, inserted] = target_of.emplace(inst.pc, inst.target);
        if (!inserted) {
            EXPECT_EQ(it->second, inst.target);
        }
    }
}

TEST(Generator, AddressesFallInDeclaredRegions)
{
    const auto &prof = profileByName("gzip");
    SyntheticWorkload w(prof, 30000, 1);
    Instruction inst;
    while (w.next(inst)) {
        if (!isMemOp(inst.op))
            continue;
        const bool hot = inst.address >= 0x10000000ULL &&
                         inst.address < 0x10000000ULL + prof.hotBytes;
        const bool warm = inst.address >= 0x20000000ULL &&
                          inst.address < 0x20000000ULL + prof.warmBytes;
        const bool cold = inst.address >= 0x30000000ULL &&
                          inst.address < 0x30000000ULL + (256ULL << 20);
        EXPECT_TRUE(hot || warm || cold) << std::hex << inst.address;
    }
}

TEST(Generator, FootprintsCoverRegions)
{
    const auto &prof = profileByName("gzip");
    SyntheticWorkload w(prof, 10, 0);
    const auto data = w.dataFootprint();
    EXPECT_EQ(data.size(), prof.hotBytes / 64 + prof.warmBytes / 64);
    const auto code = w.codeFootprint();
    EXPECT_EQ(code.size(), prof.codeBytes / 64);
}

TEST(Generator, DependencyDistancesPositive)
{
    SyntheticWorkload w(profileByName("mcf"), 20000, 0);
    Instruction inst;
    while (w.next(inst)) {
        if (inst.dep1 != 0) {
            EXPECT_GE(inst.dep1, 1u);
        }
        EXPECT_LE(inst.dep1, 200u);
    }
}

// ---------------------------------------------------------------------------
// Virus
// ---------------------------------------------------------------------------

TEST(Virus, AlternatesBurstAndStall)
{
    DiDtVirus virus(8, 2, 40);
    Instruction inst;
    std::vector<OpClass> ops;
    while (virus.next(inst))
        ops.push_back(inst.op);
    ASSERT_EQ(ops.size(), 40u);
    // First 8 are burst (no divides), next 2 are divides.
    for (int i = 0; i < 8; ++i)
        EXPECT_NE(ops[i], OpClass::IntDiv) << i;
    EXPECT_EQ(ops[8], OpClass::IntDiv);
    EXPECT_EQ(ops[9], OpClass::IntDiv);
    EXPECT_NE(ops[10], OpClass::IntDiv);
}

TEST(Virus, BurstDependsOnPrecedingDivide)
{
    DiDtVirus virus(4, 1, 20);
    Instruction inst;
    std::vector<Instruction> all;
    while (virus.next(inst))
        all.push_back(inst);
    // Second burst starts at index 5; op at index 5+i points back to
    // the divide at index 4 (distance i+1).
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(all[5 + i].dep1, static_cast<std::uint32_t>(i + 1));
}

TEST(Virus, TunedForMatchesResonantPeriod)
{
    // 3 GHz / 125 MHz = 24-cycle period: ~12 cycles burst at 4-wide
    // (48 ops) and one 20-cycle divide.
    DiDtVirus virus = DiDtVirus::tunedFor(3.0e9, 125.0e6, 4, 20, 100);
    Instruction inst;
    std::size_t burst_ops = 0;
    while (virus.next(inst) && inst.op != OpClass::IntDiv)
        ++burst_ops;
    EXPECT_EQ(burst_ops, 48u);
}

TEST(Virus, ProcessorRunsItWithoutDeadlock)
{
    DiDtVirus virus = DiDtVirus::tunedFor(3.0e9, 125.0e6, 4, 20, 20000);
    Processor proc({}, {}, virus);
    Cycle cycles = 0;
    while (proc.step() && cycles < 2000000)
        ++cycles;
    EXPECT_EQ(proc.stats().committed, 20000u);
}

TEST(Virus, ProducesLargeCurrentOscillation)
{
    DiDtVirus virus = DiDtVirus::tunedFor(3.0e9, 125.0e6, 4, 20, 0);
    Processor proc({}, {}, virus);
    CurrentTrace trace;
    proc.collectTrace(trace, 60000);
    // Skip the cold-start prefix.
    RunningStats stats;
    for (std::size_t n = 40000; n < trace.size(); ++n)
        stats.push(trace[n]);
    EXPECT_GT(stats.max() - stats.min(), 30.0);
    EXPECT_GT(stats.stddev(), 8.0);
}

TEST(VirusDeath, RejectsZeroLengths)
{
    EXPECT_EXIT(DiDtVirus(0, 1), ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace didt
