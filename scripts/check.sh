#!/usr/bin/env bash
#
# CI gate: strict warnings everywhere, plus the concurrency-heavy
# subsystems' tests under ThreadSanitizer, plus a metrics sidecar smoke
# run validated against the checked-in schema, plus the SIMD
# determinism gate (campaign JSON byte-identical across
# -DDIDT_SIMD=ON/OFF and --jobs 1/4), plus the didt_serve service
# smoke (scripts/serve_smoke.sh: a daemon replay reproduces a batch
# campaign byte for byte and drains cleanly on SIGTERM).
#
#   scripts/check.sh            # full strict build + all tests + TSan + smoke
#   scripts/check.sh --tsan-only  # just the TSan runner/obs-test pass
#
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
TSAN_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1

if [[ $TSAN_ONLY -eq 0 ]]; then
    echo "=== strict build (-Wall -Wextra -Werror) + full test suite ==="
    cmake -B build-ci -S . -DDIDT_WERROR=ON
    cmake --build build-ci -j "$JOBS"
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

    echo "=== metrics sidecar smoke run + schema validation ==="
    SMOKE_DIR=$(mktemp -d)
    trap 'rm -rf "$SMOKE_DIR"' EXIT
    build-ci/tools/didt_campaign --jobs 2 --benchmarks gzip,mcf \
        --impedances 1.0,1.2 --instructions 30000 --window 128 \
        --levels 6 --quiet \
        --json "$SMOKE_DIR/campaign.json" \
        --metrics-out "$SMOKE_DIR/metrics.json" \
        --trace-out "$SMOKE_DIR/trace.json"
    build-ci/tools/didt_metrics_check \
        --schema schemas/didt-metrics-v1.json \
        --input "$SMOKE_DIR/metrics.json"

    echo "=== scalar-fallback build (-DDIDT_SIMD=OFF) + simd label ==="
    cmake -B build-scalar -S . -DDIDT_WERROR=ON -DDIDT_SIMD=OFF
    cmake --build build-scalar -j "$JOBS" --target simd_test didt_campaign
    ctest --test-dir build-scalar -L simd --output-on-failure -j "$JOBS"

    echo "=== campaign JSON byte-identity: SIMD on/off x jobs 1/4 ==="
    CAMPAIGN_ARGS=(--benchmarks gzip,mcf --impedances 1.0,1.2
                   --instructions 30000 --window 128 --levels 6 --quiet)
    build-ci/tools/didt_campaign --jobs 1 "${CAMPAIGN_ARGS[@]}" \
        --json "$SMOKE_DIR/simd_j1.json"
    build-ci/tools/didt_campaign --jobs 4 "${CAMPAIGN_ARGS[@]}" \
        --json "$SMOKE_DIR/simd_j4.json"
    build-scalar/tools/didt_campaign --jobs 1 "${CAMPAIGN_ARGS[@]}" \
        --json "$SMOKE_DIR/scalar_j1.json"
    build-scalar/tools/didt_campaign --jobs 4 "${CAMPAIGN_ARGS[@]}" \
        --json "$SMOKE_DIR/scalar_j4.json"
    SUMS=$(md5sum "$SMOKE_DIR"/simd_j1.json "$SMOKE_DIR"/simd_j4.json \
                  "$SMOKE_DIR"/scalar_j1.json "$SMOKE_DIR"/scalar_j4.json |
           awk '{print $1}' | sort -u | wc -l)
    if [[ "$SUMS" -ne 1 ]]; then
        echo "FAIL: campaign JSON differs across SIMD on/off or jobs 1/4" >&2
        md5sum "$SMOKE_DIR"/simd_j1.json "$SMOKE_DIR"/simd_j4.json \
               "$SMOKE_DIR"/scalar_j1.json "$SMOKE_DIR"/scalar_j4.json >&2
        exit 1
    fi
    echo "campaign JSON identical across SIMD on/off and jobs 1/4"

    echo "=== sampled-campaign byte-identity: SIMD on/off x jobs 1/4 ==="
    # Sampling must be deterministic too: the same sampled sweep gives
    # the same bytes regardless of worker count or kernel dispatch, and
    # its spec JSON records the sampling dimensions.
    SAMPLE_ARGS=("${CAMPAIGN_ARGS[@]}" --sample-detail 4096
                 --sample-skip 28672 --sample-warmup 512)
    build-ci/tools/didt_campaign --jobs 1 "${SAMPLE_ARGS[@]}" \
        --json "$SMOKE_DIR/sampled_j1.json"
    build-ci/tools/didt_campaign --jobs 4 "${SAMPLE_ARGS[@]}" \
        --json "$SMOKE_DIR/sampled_j4.json"
    build-scalar/tools/didt_campaign --jobs 4 "${SAMPLE_ARGS[@]}" \
        --json "$SMOKE_DIR/sampled_scalar.json"
    cmp "$SMOKE_DIR/sampled_j1.json" "$SMOKE_DIR/sampled_j4.json"
    cmp "$SMOKE_DIR/sampled_j1.json" "$SMOKE_DIR/sampled_scalar.json"
    grep -q '"sample_skip": 28672' "$SMOKE_DIR/sampled_j1.json"
    # And sampling OFF must leave the campaign JSON untouched: the
    # sampled run's existence must not perturb the unsampled bytes.
    if grep -q 'sample_' "$SMOKE_DIR/simd_j1.json"; then
        echo "FAIL: sampling-off campaign JSON mentions sampling" >&2
        exit 1
    fi
    echo "sampled campaign JSON identical across SIMD on/off and jobs 1/4"

    echo "=== fault-injection smoke: failed cells recorded, byte-identical ==="
    # A campaign with an injected cell fault and a dead disk cache must
    # still exit 0, mark exactly the faulted cell in the JSON, and stay
    # byte-identical across worker counts.
    FAIL_SPEC='campaign.cell=key:mcf@1.2;repo.disk_write=always'
    build-ci/tools/didt_campaign --jobs 1 "${CAMPAIGN_ARGS[@]}" \
        --failpoints "$FAIL_SPEC" --json "$SMOKE_DIR/fault_j1.json"
    build-ci/tools/didt_campaign --jobs 4 "${CAMPAIGN_ARGS[@]}" \
        --failpoints "$FAIL_SPEC" --json "$SMOKE_DIR/fault_j4.json"
    cmp "$SMOKE_DIR/fault_j1.json" "$SMOKE_DIR/fault_j4.json"
    grep -q '"failed_cells": 1' "$SMOKE_DIR/fault_j1.json"
    grep -q 'injected fault (campaign.cell): mcf@1.2' \
        "$SMOKE_DIR/fault_j1.json"
    echo "faulted campaign JSON identical across jobs 1/4, 1 failed cell"

    echo "=== Monte Carlo campaign byte-identity: jobs 1/4, off = seed bytes ==="
    # The variation-aware draw axis must be as deterministic as the
    # nominal path: an MC sweep gives the same bytes at any worker
    # count, and MC off must not leak a single mc_ field into the JSON.
    MC_ARGS=("${CAMPAIGN_ARGS[@]}" --mc-draws 16 --mc-seed 7
             --mc-sigma 0.08)
    build-ci/tools/didt_campaign --jobs 1 "${MC_ARGS[@]}" \
        --json "$SMOKE_DIR/mc_j1.json"
    build-ci/tools/didt_campaign --jobs 4 "${MC_ARGS[@]}" \
        --json "$SMOKE_DIR/mc_j4.json"
    cmp "$SMOKE_DIR/mc_j1.json" "$SMOKE_DIR/mc_j4.json"
    grep -q '"yield_curve"' "$SMOKE_DIR/mc_j1.json"
    if grep -q 'mc_\|monte_carlo' "$SMOKE_DIR/simd_j1.json"; then
        echo "FAIL: MC-off campaign JSON mentions Monte Carlo" >&2
        exit 1
    fi
    echo "MC campaign JSON identical across jobs 1/4; MC-off bytes clean"

    echo "=== service byte-identity smoke (didt_serve / didt_client) ==="
    BUILD_DIR=build-ci scripts/serve_smoke.sh
fi

echo "=== ThreadSanitizer pass over runner + obs + refactor + simd + verify + serve + simfast + mc tests ==="
cmake -B build-tsan -S . -DDIDT_WERROR=ON -DDIDT_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target runner_test determinism_test \
      obs_test refactor_test simd_test verify_test serve_test \
      fuzz_replay_test simfast_test mc_test
ctest --test-dir build-tsan \
      -L 'runner|obs|refactor|simd|verify|serve|cmp|simfast|mc' \
      --output-on-failure -j "$JOBS"

echo "=== all checks passed ==="
