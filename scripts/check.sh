#!/usr/bin/env bash
#
# CI gate: strict warnings everywhere, plus the runner subsystem's
# concurrency tests under ThreadSanitizer.
#
#   scripts/check.sh            # full strict build + all tests + TSan runner tests
#   scripts/check.sh --tsan-only  # just the TSan runner-test pass
#
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
TSAN_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1

if [[ $TSAN_ONLY -eq 0 ]]; then
    echo "=== strict build (-Wall -Wextra -Werror) + full test suite ==="
    cmake -B build-ci -S . -DDIDT_WERROR=ON
    cmake --build build-ci -j "$JOBS"
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"
fi

echo "=== ThreadSanitizer pass over the runner tests (ctest -L runner) ==="
cmake -B build-tsan -S . -DDIDT_WERROR=ON -DDIDT_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target runner_test determinism_test
ctest --test-dir build-tsan -L runner --output-on-failure -j "$JOBS"

echo "=== all checks passed ==="
