#!/usr/bin/env bash
#
# CI gate: strict warnings everywhere, plus the runner and obs
# subsystems' concurrency tests under ThreadSanitizer, plus a metrics
# sidecar smoke run validated against the checked-in schema.
#
#   scripts/check.sh            # full strict build + all tests + TSan + smoke
#   scripts/check.sh --tsan-only  # just the TSan runner/obs-test pass
#
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
TSAN_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1

if [[ $TSAN_ONLY -eq 0 ]]; then
    echo "=== strict build (-Wall -Wextra -Werror) + full test suite ==="
    cmake -B build-ci -S . -DDIDT_WERROR=ON
    cmake --build build-ci -j "$JOBS"
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

    echo "=== metrics sidecar smoke run + schema validation ==="
    SMOKE_DIR=$(mktemp -d)
    trap 'rm -rf "$SMOKE_DIR"' EXIT
    build-ci/tools/didt_campaign --jobs 2 --benchmarks gzip,mcf \
        --impedances 1.0,1.2 --instructions 30000 --window 128 \
        --levels 6 --quiet \
        --json "$SMOKE_DIR/campaign.json" \
        --metrics-out "$SMOKE_DIR/metrics.json" \
        --trace-out "$SMOKE_DIR/trace.json"
    build-ci/tools/didt_metrics_check \
        --schema schemas/didt-metrics-v1.json \
        --input "$SMOKE_DIR/metrics.json"
fi

echo "=== ThreadSanitizer pass over runner + obs + refactor tests ==="
cmake -B build-tsan -S . -DDIDT_WERROR=ON -DDIDT_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target runner_test determinism_test \
      obs_test refactor_test
ctest --test-dir build-tsan -L 'runner|obs|refactor' --output-on-failure \
      -j "$JOBS"

echo "=== all checks passed ==="
