#!/usr/bin/env bash
#
# Service byte-identity smoke: a didt_client replay of a didt_campaign
# result document through a didt_serve daemon must reproduce the file
# byte for byte — at --jobs 1 and --jobs 4, and with socket failpoints
# armed (the faulted request becomes a per-request error; the daemon
# still drains cleanly and exits 0 on SIGTERM).
#
#   BUILD_DIR=build scripts/serve_smoke.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
CAMPAIGN="$BUILD_DIR/tools/didt_campaign"
SERVE="$BUILD_DIR/tools/didt_serve"
CLIENT="$BUILD_DIR/tools/didt_client"
for tool in "$CAMPAIGN" "$SERVE" "$CLIENT"; do
    [[ -x "$tool" ]] || { echo "missing tool: $tool" >&2; exit 1; }
done

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -KILL "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SPEC_ARGS=(--benchmarks gzip,mcf --impedances 1.0,1.2
           --instructions 30000 --window 128 --levels 6)
SOCK="$WORK/didt.sock"

# Start a daemon, wait for its socket, remember its PID.
start_server() {
    rm -f "$SOCK"
    "$SERVE" --socket "$SOCK" "$@" > "$WORK/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 100); do
        [[ -S "$SOCK" ]] && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || break
        sleep 0.1
    done
    echo "didt_serve did not come up:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}

# SIGTERM the daemon and require a graceful exit 0 with drain output.
stop_server() {
    kill -TERM "$SERVE_PID"
    local status=0
    wait "$SERVE_PID" || status=$?
    SERVE_PID=""
    if [[ $status -ne 0 ]]; then
        echo "FAIL: didt_serve exited $status on SIGTERM" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    grep -q "drained" "$WORK/serve.log" || {
        echo "FAIL: no drain message in daemon log" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
}

echo "=== reference batch campaign (didt_campaign --jobs 1) ==="
"$CAMPAIGN" --jobs 1 "${SPEC_ARGS[@]}" --quiet \
    --json "$WORK/campaign.json"

for jobs in 1 4; do
    echo "=== replay through didt_serve --jobs $jobs ==="
    # A fresh daemon per job count: the replayed cache section must
    # describe a cold shared tier, exactly like the batch run's.
    start_server --jobs "$jobs"
    "$CLIENT" ping --socket "$SOCK"
    "$CLIENT" replay "$WORK/campaign.json" --socket "$SOCK" \
        --out "$WORK/replay_j$jobs.json"
    cmp "$WORK/campaign.json" "$WORK/replay_j$jobs.json"
    echo "replay at --jobs $jobs is byte-identical"
    stop_server
done

echo "=== chip-cell replay leg (--cores 2, --mix) ==="
# A 2-core chip campaign exercises the chip-sweep spec round trip
# (cores/mixes/l2 fields) and the per-core trace production path; the
# served replay must reproduce the batch bytes exactly.
"$CAMPAIGN" --jobs 1 --mix inphase-gzip,staggered-gzip --cores 2 \
    --impedances 1.0,1.2 --instructions 30000 --window 128 --levels 6 \
    --quiet --json "$WORK/chip_campaign.json"
start_server --jobs 2
"$CLIENT" replay "$WORK/chip_campaign.json" --socket "$SOCK" \
    --out "$WORK/chip_replay.json"
cmp "$WORK/chip_campaign.json" "$WORK/chip_replay.json"
echo "2-core chip replay is byte-identical"
stop_server

echo "=== Monte Carlo cell replay leg (--mc-draws 8) ==="
# A variation-aware campaign exercises the mc_* spec round trip and
# the per-draw cell path; the served replay must reproduce the batch
# bytes — yield curves included — exactly.
"$CAMPAIGN" --jobs 1 "${SPEC_ARGS[@]}" --mc-draws 8 --mc-seed 7 \
    --mc-sigma 0.08 --quiet --json "$WORK/mc_campaign.json"
start_server --jobs 2
"$CLIENT" replay "$WORK/mc_campaign.json" --socket "$SOCK" \
    --out "$WORK/mc_replay.json"
cmp "$WORK/mc_campaign.json" "$WORK/mc_replay.json"
echo "Monte Carlo replay is byte-identical"
stop_server

echo "=== socket failpoint leg (serve.decode=nth:1) ==="
start_server --jobs 2 --failpoints 'serve.decode=nth:1'
# The first request hits the injected decode fault and must surface as
# a typed per-request error (client exit 3), not a daemon crash.
status=0
"$CLIENT" replay "$WORK/campaign.json" --socket "$SOCK" \
    --out "$WORK/replay_faulted.json" 2> "$WORK/fault.err" || status=$?
if [[ $status -ne 3 ]]; then
    echo "FAIL: faulted replay exited $status, want 3" >&2
    cat "$WORK/fault.err" >&2
    exit 1
fi
grep -q "bad_request" "$WORK/fault.err"
# The daemon survived; the retry reproduces the reference bytes.
"$CLIENT" replay "$WORK/campaign.json" --socket "$SOCK" \
    --out "$WORK/replay_retry.json"
cmp "$WORK/campaign.json" "$WORK/replay_retry.json"
echo "faulted request was a per-request error; retry is byte-identical"
stop_server

echo "=== live telemetry leg (watch / stats --prom / events) ==="
METRICS_CHECK="$BUILD_DIR/tools/didt_metrics_check"
[[ -x "$METRICS_CHECK" ]] || {
    echo "missing tool: $METRICS_CHECK" >&2; exit 1; }
start_server --jobs 2 --events-capacity 256
# Replay in the background so the watch stream sees real work...
"$CLIENT" replay "$WORK/campaign.json" --socket "$SOCK" \
    --out "$WORK/replay_watched.json" --timings \
    2> "$WORK/timings.err" &
REPLAY_PID=$!
# ...while a subscriber renders a bounded stream of status lines.
"$CLIENT" watch --socket "$SOCK" --interval-ms 100 --count 5 \
    > "$WORK/watch.out"
wait "$REPLAY_PID"
[[ $(wc -l < "$WORK/watch.out") -eq 5 ]] || {
    echo "FAIL: want 5 watch lines, got:" >&2
    cat "$WORK/watch.out" >&2
    exit 1
}
grep -q "conns " "$WORK/watch.out"
grep -q "queue " "$WORK/watch.out"
grep -q "cells " "$WORK/watch.out"
grep -q "p99 " "$WORK/watch.out"
grep -q "queue_ms" "$WORK/timings.err"
# Telemetry must not perturb result bytes (timings ride the envelope).
cmp "$WORK/campaign.json" "$WORK/replay_watched.json"
echo "watch stream rendered 5 frames; replay under watch is byte-identical"

"$CLIENT" stats --prom --socket "$SOCK" > "$WORK/stats.prom"
"$METRICS_CHECK" --prom-input "$WORK/stats.prom"
grep -q "^didt_serve_requests_total " "$WORK/stats.prom"
grep -q "^didt_serve_request_ms_bucket{le=\"+Inf\"} " "$WORK/stats.prom"
grep -q "^didt_campaign_cells_total " "$WORK/stats.prom"
echo "prometheus exposition validated"

"$CLIENT" events --socket "$SOCK" > "$WORK/events.out"
grep -q "request_admitted" "$WORK/events.out"
grep -q "batch_formed" "$WORK/events.out"
grep -q "request_completed" "$WORK/events.out"
stop_server
# The drain dumps the retained event ring for post-mortems.
grep -q "didt_serve: event .* request_completed" "$WORK/serve.log"
echo "event ring queried live and dumped on SIGTERM"

echo "=== client-side write failpoint (transport error, exit 3) ==="
start_server --jobs 2
status=0
"$CLIENT" ping --socket "$SOCK" --failpoints 'serve.write=nth:1' \
    2> /dev/null || status=$?
if [[ $status -ne 3 ]]; then
    echo "FAIL: client write fault exited $status, want 3" >&2
    exit 1
fi
"$CLIENT" ping --socket "$SOCK"
stop_server

echo "=== serve smoke passed ==="
