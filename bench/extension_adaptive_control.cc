/**
 * @file
 * Extension experiment beyond the paper: phase-adaptive wavelet
 * control.
 *
 * The paper's controller uses one fixed control point. Its offline
 * analysis, however, shows most benchmarks alternate benign and
 * hazardous phases — so a controller armed with the Section-4 variance
 * model *online* can run optimistic thresholds in benign phases and
 * tighten only when the wavelet hazard signal fires. This bench
 * compares fixed-optimistic, fixed-conservative, and adaptive wavelet
 * control on faults and slowdown.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);
    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const VoltageVarianceModel model = makeCalibratedModel(setup, net);
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));

    Table table({"benchmark", "policy", "faults", "slowdown_pct",
                 "control_cycles"});
    RunningStats slow_opt;
    RunningStats slow_cons;
    RunningStats slow_adp;
    for (const char *name :
         {"gzip", "mgrid", "galgel", "apsi", "gcc", "crafty", "vpr",
          "swim"}) {
        const BenchmarkProfile &prof = profileByName(name);
        CosimConfig cfg;
        cfg.instructions = instructions;
        cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
        cfg.scheme = ControlScheme::None;
        const CosimResult base =
            runClosedLoop(prof, setup.proc, setup.power, net, cfg);

        struct Policy
        {
            const char *label;
            ControlScheme scheme;
            Volt tolerance;
            RunningStats *agg;
        };
        const Policy policies[] = {
            {"fixed-optimistic", ControlScheme::Wavelet, 0.010, &slow_opt},
            {"fixed-conservative", ControlScheme::Wavelet, 0.025,
             &slow_cons},
            {"adaptive", ControlScheme::AdaptiveWavelet, 0.010, &slow_adp},
        };
        for (const Policy &policy : policies) {
            cfg.scheme = policy.scheme;
            cfg.control.tolerance = policy.tolerance;
            cfg.hazardModel = &model;
            const CosimResult r =
                runClosedLoop(prof, setup.proc, setup.power, net, cfg);
            const double slow = 100.0 * slowdown(r, base);
            policy.agg->push(slow);
            table.newRow();
            table.add(std::string(name));
            table.add(std::string(policy.label));
            table.add(static_cast<long long>(r.lowFaults + r.highFaults));
            table.add(slow, 3);
            table.add(static_cast<long long>(r.controlCycles));
        }
    }
    bench::emit(table, opts,
                "Extension: phase-adaptive wavelet dI/dt control");
    std::printf("mean slowdown: optimistic %.3f%%, conservative %.3f%%, "
                "adaptive %.3f%%\n",
                slow_opt.mean(), slow_cons.mean(), slow_adp.mean());
    return 0;
}
