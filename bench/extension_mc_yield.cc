/**
 * @file
 * Extension experiment beyond the paper: variation-aware yield curves.
 *
 * The paper characterizes one nominal supply network per impedance
 * scale. Real silicon spreads: die-to-die variation moves the DC
 * resistance, resonant frequency, and Q of every shipped chip. This
 * bench runs the Section-4 characterization as a Monte Carlo campaign
 * — N supply-network draws per (benchmark, scale) cell — and prints
 * the yield curve: for each emergency-percentage budget, the fraction
 * of drawn chips whose measured emergency rate exceeds it, plus the
 * quantile band of the emergency rate across draws. Sampled simulation
 * defaults keep hundreds of draws tractable; draws share one simulated
 * trace per workload, so the sweep cost is the voltage analysis, not
 * the simulation.
 */

#include "bench_common.hh"

#include "runner/campaign.hh"
#include "runner/result_json.hh"
#include "runner/trace_repository.hh"
#include "stats/quantiles.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("benchmarks", "gzip,mcf,galgel,swim",
                 "comma-separated benchmark subset");
    opts.declare("impedance", "1.2", "target-impedance scale");
    opts.declare("draws", "200", "Monte Carlo draws per cell");
    opts.declare("mc-seed", "1", "campaign-level Monte Carlo seed");
    opts.declare("sigma", "0.08",
                 "lognormal sigma on R and resonance placement");
    opts.declare("sigma-q", "0.05", "lognormal sigma on quality factor");
    opts.declare("jobs", "0", "worker threads (0 = hardware)");
    opts.parse(argc, argv);
    bench::beginObs(opts);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    CampaignSpec spec;
    {
        std::string list = opts.get("benchmarks");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            spec.profiles.push_back(
                profileByName(list.substr(pos, comma - pos)));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    spec.impedanceScales = {opts.getDouble("impedance")};
    spec.instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    spec.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    spec.windowLength = 128;
    spec.levels = 6;
    // Sampled simulation: the draws reuse one trace per benchmark, so
    // only the first touch of each benchmark pays simulation cost —
    // but for the long default instruction budget that first touch
    // dominates; SimPoint sampling keeps it proportionate.
    spec.sampleDetail = 2048;
    spec.sampleSkip = 8192;
    spec.sampleWarmup = 512;
    spec.mcDraws = static_cast<std::size_t>(opts.getInt("draws"));
    spec.mcSeed = static_cast<std::uint64_t>(opts.getInt("mc-seed"));
    spec.mcSigmaR = opts.getDouble("sigma");
    spec.mcSigmaResonance = opts.getDouble("sigma");
    spec.mcSigmaQ = opts.getDouble("sigma-q");

    TraceRepository repo(setup);
    const CampaignResult result = runCharacterizationCampaign(
        setup, spec, repo,
        static_cast<std::size_t>(opts.getInt("jobs")));

    // Per-benchmark quantile band and yield curve, recomputed here
    // from the cells (the JSON writer does the same aggregation).
    const double budgets[] = {0.01, 0.1, 0.5, 1.0, 2.0, 5.0};
    Table table({"benchmark", "draws", "emerg_p05_pct", "emerg_p50_pct",
                 "emerg_p95_pct", "gt_0.1pct", "gt_1pct", "gt_5pct"});
    const std::size_t draws = spec.drawCount();
    for (std::size_t base = 0; base + draws <= result.cells.size();
         base += draws) {
        EmpiricalDistribution emergency;
        for (std::size_t di = 0; di < draws; ++di) {
            const CampaignCell &cell = result.cells[base + di];
            if (!cell.failed)
                emergency.push(cell.measuredBelowPct +
                               cell.measuredAbovePct);
        }
        if (emergency.count() == 0)
            continue;
        table.newRow();
        table.add(result.cells[base].benchmark);
        table.add(static_cast<long long>(emergency.count()));
        table.add(emergency.quantile(0.05), 4);
        table.add(emergency.quantile(0.50), 4);
        table.add(emergency.quantile(0.95), 4);
        table.add(emergency.exceedanceFraction(0.1), 4);
        table.add(emergency.exceedanceFraction(1.0), 4);
        table.add(emergency.exceedanceFraction(5.0), 4);
    }
    bench::emit(table, opts,
                "Extension: Monte Carlo yield curves (% of draws whose "
                "emergency rate exceeds each budget)");

    // Full yield curve over all benchmarks pooled, the headline
    // "fraction of shipped chips out of budget" number.
    EmpiricalDistribution pooled;
    for (const CampaignCell &cell : result.cells)
        if (!cell.failed)
            pooled.push(cell.measuredBelowPct + cell.measuredAbovePct);
    if (pooled.count() > 0) {
        std::printf("\npooled yield curve (%zu draws):\n",
                    pooled.count());
        for (double budget : budgets)
            std::printf("  > %5.2f%% budget: %6.2f%% of draws  %s\n",
                        budget,
                        100.0 * pooled.exceedanceFraction(budget),
                        asciiBar(pooled.exceedanceFraction(budget), 1.0)
                            .c_str());
    }
    bench::writeObsOutputs(opts);
    return 0;
}
