/**
 * @file
 * Ablation: analysis window length for the offline estimator.
 *
 * The paper chose 256 cycles because it covers the tens-to-hundreds of
 * cycles that matter for dI/dt. This ablation re-runs the Figure-9
 * estimation at 128-, 256-, and 512-cycle windows (with decomposition
 * depth scaled to keep one approximation coefficient).
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.25", "target-impedance scale");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);
    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    std::vector<CurrentTrace> traces;
    std::vector<std::string> names;
    for (const char *name :
         {"gzip", "mgrid", "galgel", "mcf", "vpr", "swim", "apsi"}) {
        names.emplace_back(name);
        traces.push_back(benchmarkCurrentTrace(
            setup, profileByName(name), instructions,
            static_cast<std::uint64_t>(opts.getInt("seed"))));
    }

    Table table({"window_cycles", "levels", "rms_error_pct",
                 "max_error_pct"});
    struct Case
    {
        std::size_t window;
        std::size_t levels;
    };
    for (const Case c : {Case{128, 7}, Case{256, 8}, Case{512, 9}}) {
        const VoltageVarianceModel model =
            makeCalibratedModel(setup, net, c.window, c.levels);
        double sq = 0.0;
        double max_err = 0.0;
        for (const CurrentTrace &trace : traces) {
            const auto profile =
                profileTrace(trace, net, model, 0.97, 1.03);
            const double err = 100.0 * (profile.estimatedBelow -
                                        profile.measuredBelow);
            sq += err * err;
            max_err = std::max(max_err, std::fabs(err));
        }
        table.newRow();
        table.add(static_cast<long long>(c.window));
        table.add(static_cast<long long>(c.levels));
        table.add(std::sqrt(sq / static_cast<double>(traces.size())), 3);
        table.add(max_err, 3);
    }
    bench::emit(table, opts, "Ablation: estimator window length");
    return 0;
}
