/**
 * @file
 * Ablation: wavelet basis choice for the offline estimator and the
 * closed-loop controller.
 *
 * The paper picks the Haar basis for its match to the sharp
 * discontinuities in current waveforms (and its trivially cheap
 * hardware). This ablation re-runs the Figure-9 estimation experiment
 * under every registered basis — Haar, Daubechies-4/6, the
 * adjusted-Haar rotation, and the linear-spline (Battle-Lemarie)
 * family — and reports, per basis: the RMS/max emergency estimation
 * error (Section 4), the worst DWT round-trip reconstruction error
 * over the benchmark traces, and the effectiveness of the adaptive
 * wavelet control scheme when its hazard model is calibrated in that
 * basis (faults and slowdown vs an uncontrolled baseline).
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.25", "target-impedance scale");
    opts.declare("benchmarks", "gzip,mgrid,galgel,mcf,crafty,swim,vpr,apsi",
                 "comma-separated benchmark subset");
    opts.declare("control-instructions", "20000",
                 "closed-loop instructions per benchmark");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);
    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));

    std::vector<std::string> names;
    {
        std::string list = opts.get("benchmarks");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            names.push_back(list.substr(pos, comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    std::vector<CurrentTrace> traces;
    for (const std::string &name : names)
        traces.push_back(benchmarkCurrentTrace(
            setup, profileByName(name), instructions, seed));

    // Uncontrolled baselines for the control-effectiveness columns.
    const auto control_instructions = static_cast<std::uint64_t>(
        opts.getInt("control-instructions"));
    std::vector<CosimResult> baselines;
    for (const std::string &name : names) {
        CosimConfig cfg;
        cfg.instructions = control_instructions;
        cfg.seed = seed;
        cfg.scheme = ControlScheme::None;
        baselines.push_back(runClosedLoop(profileByName(name), setup.proc,
                                          setup.power, net, cfg));
    }

    Table table({"basis", "rms_error_pct", "max_error_pct",
                 "max_recon_err", "ctl_faults", "ctl_slowdown_pct"});
    for (const std::string &basis_name : WaveletBasis::allNames()) {
        const WaveletBasis basis = WaveletBasis::byName(basis_name);
        const VoltageVarianceModel model =
            makeCalibratedModel(setup, net, 256, 8, basis);

        // Section-4 estimation accuracy in this basis.
        double sq = 0.0;
        double max_err = 0.0;
        for (const CurrentTrace &trace : traces) {
            const auto profile =
                profileTrace(trace, net, model, 0.97, 1.03);
            const double err = 100.0 * (profile.estimatedBelow -
                                        profile.measuredBelow);
            sq += err * err;
            max_err = std::max(max_err, std::fabs(err));
        }

        // Analysis fidelity: worst |x - idwt(dwt(x))| over the traces
        // (each truncated to a multiple of 2^levels as the DWT needs).
        const Dwt dwt(basis);
        double max_recon = 0.0;
        for (const CurrentTrace &trace : traces) {
            const std::size_t n = trace.size() & ~std::size_t{255};
            if (n == 0)
                continue;
            const std::span<const double> head(trace.data(), n);
            const WaveletDecomposition dec = dwt.forward(head, 8);
            const std::vector<double> back = dwt.inverse(dec);
            for (std::size_t i = 0; i < n; ++i)
                max_recon = std::max(
                    max_recon, std::fabs(back[i] - head[i]));
        }

        // Closed-loop effectiveness with the hazard model in this
        // basis: total faults and mean slowdown across the subset.
        std::uint64_t faults = 0;
        RunningStats slow;
        for (std::size_t i = 0; i < names.size(); ++i) {
            CosimConfig cfg;
            cfg.instructions = control_instructions;
            cfg.seed = seed;
            cfg.scheme = ControlScheme::AdaptiveWavelet;
            cfg.hazardModel = &model;
            const CosimResult r =
                runClosedLoop(profileByName(names[i]), setup.proc,
                              setup.power, net, cfg);
            faults += r.lowFaults + r.highFaults;
            slow.push(100.0 * slowdown(r, baselines[i]));
        }

        table.newRow();
        table.add(basis_name);
        table.add(std::sqrt(sq / static_cast<double>(traces.size())), 3);
        table.add(max_err, 3);
        char recon[32];
        std::snprintf(recon, sizeof(recon), "%.2e", max_recon);
        table.add(std::string(recon));
        table.add(static_cast<long long>(faults));
        table.add(slow.mean(), 3);
    }
    bench::emit(table, opts,
                "Ablation: wavelet basis for estimation and control");
    return 0;
}
