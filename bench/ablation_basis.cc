/**
 * @file
 * Ablation: wavelet basis choice for the offline estimator.
 *
 * The paper picks the Haar basis for its match to the sharp
 * discontinuities in current waveforms (and its trivially cheap
 * hardware). This ablation re-runs the Figure-9 estimation experiment
 * under Haar, Daubechies-4, and Daubechies-6 and reports the RMS
 * estimation error of each.
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.25", "target-impedance scale");
    opts.declare("benchmarks", "gzip,mgrid,galgel,mcf,crafty,swim,vpr,apsi",
                 "comma-separated benchmark subset");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);
    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));

    std::vector<std::string> names;
    {
        std::string list = opts.get("benchmarks");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            names.push_back(list.substr(pos, comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    std::vector<CurrentTrace> traces;
    for (const std::string &name : names)
        traces.push_back(benchmarkCurrentTrace(
            setup, profileByName(name), instructions,
            static_cast<std::uint64_t>(opts.getInt("seed"))));

    Table table({"basis", "rms_error_pct", "max_error_pct"});
    for (const char *basis_name : {"haar", "db4", "db6"}) {
        const VoltageVarianceModel model = makeCalibratedModel(
            setup, net, 256, 8, WaveletBasis::byName(basis_name));
        double sq = 0.0;
        double max_err = 0.0;
        for (const CurrentTrace &trace : traces) {
            const auto profile =
                profileTrace(trace, net, model, 0.97, 1.03);
            const double err = 100.0 * (profile.estimatedBelow -
                                        profile.measuredBelow);
            sq += err * err;
            max_err = std::max(max_err, std::fabs(err));
        }
        table.newRow();
        table.add(std::string(basis_name));
        table.add(std::sqrt(sq / static_cast<double>(traces.size())), 3);
        table.add(max_err, 3);
    }
    bench::emit(table, opts, "Ablation: wavelet basis for the estimator");
    return 0;
}
