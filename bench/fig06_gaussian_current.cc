/**
 * @file
 * Paper Figure 6: acceptance rate of the chi-square Gaussian test at
 * 95% significance over 32/64/128-cycle execution windows of per-cycle
 * current, reported for SPEC Int, SPEC FP, and all benchmarks.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("windows", "400", "windows sampled per benchmark");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto windows =
        static_cast<std::size_t>(opts.getInt("windows"));

    Table table({"window_cycles", "spec_int", "spec_fp", "all"});
    Rng rng(2026);
    for (std::size_t window : {32u, 64u, 128u}) {
        RunningStats int_rate;
        RunningStats fp_rate;
        RunningStats all_rate;
        for (const auto &prof : spec2000Profiles()) {
            const CurrentTrace trace = benchmarkCurrentTrace(
                setup, prof, instructions,
                static_cast<std::uint64_t>(opts.getInt("seed")));
            const auto summary =
                classifyWindows(trace, window, windows, rng);
            const double rate = summary.acceptanceRate();
            (prof.floatingPoint ? fp_rate : int_rate).push(rate);
            all_rate.push(rate);
        }
        table.newRow();
        table.add(static_cast<long long>(window));
        table.add(100.0 * int_rate.mean(), 1);
        table.add(100.0 * fp_rate.mean(), 1);
        table.add(100.0 * all_rate.mean(), 1);
    }
    bench::emit(table, opts,
                "Figure 6: % windows accepted as Gaussian (chi-sq, 95%)");
    return 0;
}
