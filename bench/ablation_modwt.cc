/**
 * @file
 * Ablation: decimated DWT vs maximal-overlap (undecimated) transform
 * as the front end of the per-scale variance estimator.
 *
 * The paper's reference [19] (Serroukh, Walden & Percival) defines the
 * wavelet variance estimator on the MODWT, which is shift-invariant;
 * the paper itself uses the decimated DWT for cheapness. This bench
 * quantifies the trade: estimator jitter (standard deviation of the
 * resonant-level variance estimate across overlapping window offsets
 * of the same stationary stretch) and cost (coefficients touched per
 * window).
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("benchmark", "mgrid", "benchmark supplying the trace");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const CurrentTrace trace = benchmarkCurrentTrace(
        setup, profileByName(opts.get("benchmark")),
        static_cast<std::uint64_t>(opts.getInt("instructions")),
        static_cast<std::uint64_t>(opts.getInt("seed")));

    const Dwt dwt(WaveletBasis::haar());
    const Modwt modwt(WaveletBasis::haar());
    constexpr std::size_t kWindow = 256;
    constexpr std::size_t kLevels = 8;
    constexpr std::size_t kResonantLevel = 3; // 94-188 MHz at 3 GHz

    // Slide a window through a fixed stretch one cycle at a time; a
    // perfectly shift-invariant estimator would report a smoothly
    // varying value, the decimated DWT jitters with grid alignment.
    const std::size_t base = trace.size() / 2;
    RunningStats dwt_est;
    RunningStats modwt_est;
    const std::span<const double> samples(trace.data(), trace.size());
    for (std::size_t shift = 0; shift < 128; ++shift) {
        const auto window = samples.subspan(base + shift, kWindow);
        const auto stats =
            computeScaleStats(dwt.forward(window, kLevels));
        dwt_est.push(stats.subbandVariance[kResonantLevel]);
        const auto nu = modwt.waveletVariance(window, kLevels);
        modwt_est.push(nu[kResonantLevel]);
    }

    Table table({"estimator", "mean_level3_var", "stddev_across_shifts",
                 "relative_jitter", "coeffs_per_window"});
    table.newRow();
    table.add("DWT (paper)");
    table.add(dwt_est.mean(), 2);
    table.add(dwt_est.stddev(), 2);
    table.add(dwt_est.mean() > 0 ? dwt_est.stddev() / dwt_est.mean() : 0.0,
              3);
    table.add(static_cast<long long>(kWindow));
    table.newRow();
    table.add("MODWT (Percival)");
    table.add(modwt_est.mean(), 2);
    table.add(modwt_est.stddev(), 2);
    table.add(modwt_est.mean() > 0
                  ? modwt_est.stddev() / modwt_est.mean()
                  : 0.0,
              3);
    table.add(static_cast<long long>(kWindow * kLevels));
    bench::emit(table, opts,
                "Ablation: DWT vs MODWT variance estimator stability");
    std::printf("reading: the MODWT estimate is smoother under window "
                "shifts but touches %zux more\ncoefficients — the "
                "cheap decimated DWT is the right choice for the "
                "paper's profiling pass.\n",
                static_cast<std::size_t>(kLevels));
    return 0;
}
