/**
 * @file
 * The paper's Section-2 motivation, quantified: why wavelets and not
 * Fourier for bursty processor current?
 *
 * Two probes on real machine traces and controlled signals:
 *
 *  1. Sparsity — fraction of transform coefficients needed to capture
 *     95% of signal energy. The paper claims wavelet matrices are
 *     sparse for bursty signals ("a small group of coefficients can
 *     represent a signal fairly well"); the DFT needs many bins for a
 *     transient because its basis is global.
 *
 *  2. Localization — a single 32-cycle burst is moved through the
 *     window; the wavelet transform concentrates its energy in a few
 *     time-local coefficients while the burst's DFT energy spreads
 *     over the whole spectrum regardless of position.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.hh"

using namespace didt;

namespace
{

/** Coefficients needed for 95% of energy (count, fraction). */
std::size_t
coefficientsFor95(std::vector<double> magnitudes_sq)
{
    std::sort(magnitudes_sq.begin(), magnitudes_sq.end(),
              std::greater<>());
    double total = 0.0;
    for (double e : magnitudes_sq)
        total += e;
    double acc = 0.0;
    for (std::size_t k = 0; k < magnitudes_sq.size(); ++k) {
        acc += magnitudes_sq[k];
        if (acc >= 0.95 * total)
            return k + 1;
    }
    return magnitudes_sq.size();
}

std::size_t
dwtCoefficients95(const std::vector<double> &x)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto dec = dwt.forward(x, 8);
    std::vector<double> energies;
    for (const auto &level : dec.details)
        for (double d : level)
            energies.push_back(d * d);
    for (double a : dec.approximation)
        energies.push_back(a * a);
    return coefficientsFor95(std::move(energies));
}

std::size_t
dftCoefficients95(const std::vector<double> &x)
{
    const auto spectrum = dft(x);
    std::vector<double> energies;
    for (const auto &c : spectrum)
        energies.push_back(std::norm(c));
    return coefficientsFor95(std::move(energies));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    // ---- Probe 1: sparsity on machine traces and controlled signals.
    Table sparsity({"signal", "dwt_coeffs_for_95pct",
                    "dft_coeffs_for_95pct", "of_total"});
    auto add_signal = [&](const std::string &name,
                          const std::vector<double> &x) {
        // Remove the mean: both transforms would otherwise spend their
        // first coefficient on DC and mask the comparison.
        double mean = 0.0;
        for (double v : x)
            mean += v;
        mean /= static_cast<double>(x.size());
        std::vector<double> centered(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            centered[i] = x[i] - mean;
        sparsity.newRow();
        sparsity.add(name);
        sparsity.add(static_cast<long long>(dwtCoefficients95(centered)));
        sparsity.add(static_cast<long long>(dftCoefficients95(centered)));
        sparsity.add(static_cast<long long>(x.size()));
    };

    const std::size_t n = 1024;
    // Stationary sine: Fourier's home turf.
    std::vector<double> sine(n);
    for (std::size_t t = 0; t < n; ++t)
        sine[t] = 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                  64.0);
    add_signal("stationary sine", sine);

    // Single transient burst: wavelets' home turf.
    std::vector<double> burst(n, 0.0);
    for (std::size_t t = 500; t < 532; ++t)
        burst[t] = 30.0;
    add_signal("32-cycle burst", burst);

    // Step (phase change).
    std::vector<double> step(n, 0.0);
    for (std::size_t t = n / 2; t < n; ++t)
        step[t] = 20.0;
    add_signal("step", step);

    // Real benchmark windows.
    for (const char *name : {"gzip", "mgrid", "mcf"}) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, profileByName(name),
            static_cast<std::uint64_t>(opts.getInt("instructions")));
        add_signal(std::string(name) + " current (1024 cyc)",
                   {trace.begin() + 20000, trace.begin() + 20000 + n});
    }
    bench::emit(sparsity, opts,
                "Motivation 1: coefficients needed for 95% of energy");

    // ---- Probe 2: localization of a moving burst.
    Table local({"burst_position", "dwt_top8_energy_pct",
                 "dft_top8_energy_pct"});
    for (std::size_t pos : {100u, 300u, 500u, 700u, 900u}) {
        std::vector<double> x(n, 0.0);
        for (std::size_t t = pos; t < pos + 32 && t < n; ++t)
            x[t] = 30.0;
        const Dwt dwt(WaveletBasis::haar());
        const auto dec = dwt.forward(x, 8);
        const double dwt_frac = energyCaptured(dec, 8);

        const auto spectrum = dft(x);
        std::vector<double> energies;
        double total = 0.0;
        for (const auto &c : spectrum) {
            energies.push_back(std::norm(c));
            total += std::norm(c);
        }
        std::sort(energies.begin(), energies.end(), std::greater<>());
        double top8 = 0.0;
        for (std::size_t k = 0; k < 8; ++k)
            top8 += energies[k];

        local.newRow();
        local.add(static_cast<long long>(pos));
        local.add(100.0 * dwt_frac, 1);
        local.add(100.0 * top8 / total, 1);
    }
    bench::emit(local, opts,
                "Motivation 2: energy in the 8 largest coefficients, "
                "moving burst");
    std::printf("reading: 8 Haar coefficients pin the burst wherever it "
                "sits; 8 DFT bins never can,\nbecause Fourier "
                "coefficients describe global frequency behaviour "
                "(paper Section 2.1).\n");
    return 0;
}
