/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses.
 *
 * Every bench binary prints the rows/series of one paper figure or
 * table on stdout as an aligned text table and, with --csv FILE, also
 * writes machine-readable CSV for re-plotting.
 */

#ifndef DIDT_BENCH_BENCH_COMMON_HH
#define DIDT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "didt/didt.hh"

namespace didt::bench
{

/** Standard options shared by the figure benches. */
inline void
declareCommonOptions(Options &opts)
{
    opts.declare("instructions", "120000",
                 "dynamic instructions per benchmark");
    opts.declare("csv", "", "also write results as CSV to this file");
    opts.declare("seed", "0", "extra workload seed");
}

/** Emit the table on stdout and optionally as CSV. */
inline void
emit(const Table &table, const Options &opts, const std::string &title)
{
    std::cout << "== " << title << " ==\n";
    table.printText(std::cout);
    const std::string path = opts.get("csv");
    if (!path.empty()) {
        table.writeCsvFile(path);
        std::cout << "(csv written to " << path << ")\n";
    }
}

/** Print a one-line banner with the experiment environment. */
inline void
banner(const ExperimentSetup &setup)
{
    std::printf("machine: 3 GHz Table-1 core, Vdd %.1f V, idle %.1f A, "
                "peak %.1f A; supply f0 %.0f MHz, Q %.1f, 100%% R %.3e "
                "ohm\n\n",
                setup.proc.nominalVoltage, setup.idleCurrent,
                setup.peakCurrent, setup.supplyBase.resonantHz / 1e6,
                setup.supplyBase.qualityFactor,
                setup.supplyBase.dcResistance);
}

} // namespace didt::bench

#endif // DIDT_BENCH_BENCH_COMMON_HH
