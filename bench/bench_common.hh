/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses.
 *
 * Every bench binary prints the rows/series of one paper figure or
 * table on stdout as an aligned text table and, with --csv FILE, also
 * writes machine-readable CSV for re-plotting.
 */

#ifndef DIDT_BENCH_BENCH_COMMON_HH
#define DIDT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "didt/didt.hh"

namespace didt::bench
{

/** Standard options shared by the figure benches. */
inline void
declareCommonOptions(Options &opts)
{
    opts.declare("instructions", "120000",
                 "dynamic instructions per benchmark");
    opts.declare("csv", "", "also write results as CSV to this file");
    opts.declare("seed", "0", "extra workload seed");
    opts.declare("metrics-out", "",
                 "write a metrics sidecar JSON to this file");
    opts.declare("trace-out", "",
                 "write Chrome trace_event JSON (Perfetto) to this file");
}

/** Arm span collection when requested; call right after parse(). */
inline void
beginObs(const Options &opts)
{
    if (!opts.get("trace-out").empty())
        obs::TraceEventSink::global().setEnabled(true);
}

/** Write the requested obs sidecars; call once at the end of main. */
inline void
writeObsOutputs(const Options &opts)
{
    const std::string metrics_out = opts.get("metrics-out");
    if (!metrics_out.empty()) {
        obs::writeMetricsJson(metrics_out,
                              obs::MetricsRegistry::global().snapshot());
        std::cout << "(metrics written to " << metrics_out << ")\n";
    }
    const std::string trace_out = opts.get("trace-out");
    if (!trace_out.empty()) {
        obs::TraceEventSink::global().writeChromeTrace(trace_out);
        std::cout << "(trace written to " << trace_out
                  << "; open in ui.perfetto.dev)\n";
    }
}

/** Emit the table on stdout and optionally as CSV. */
inline void
emit(const Table &table, const Options &opts, const std::string &title)
{
    std::cout << "== " << title << " ==\n";
    table.printText(std::cout);
    const std::string path = opts.get("csv");
    if (!path.empty()) {
        table.writeCsvFile(path);
        std::cout << "(csv written to " << path << ")\n";
    }
}

/** Print a one-line banner with the experiment environment. */
inline void
banner(const ExperimentSetup &setup)
{
    std::printf("machine: 3 GHz Table-1 core, Vdd %.1f V, idle %.1f A, "
                "peak %.1f A; supply f0 %.0f MHz, Q %.1f, 100%% R %.3e "
                "ohm\n\n",
                setup.proc.nominalVoltage, setup.idleCurrent,
                setup.peakCurrent, setup.supplyBase.resonantHz / 1e6,
                setup.supplyBase.qualityFactor,
                setup.supplyBase.dcResistance);
}

} // namespace didt::bench

#endif // DIDT_BENCH_BENCH_COMMON_HH
