/**
 * @file
 * Paper Table 2: quantitative backing for the qualitative comparison
 * of microarchitectural dI/dt proposals — analog voltage sensing,
 * full convolution, pipeline damping, and the wavelet monitor — on
 * false positives, performance impact, residual faults, and
 * implementation complexity (per-cycle terms).
 *
 * Runs through the campaign runner's generic cell fan-out: the
 * (scheme x benchmark) closed-loop co-simulations execute on --jobs
 * worker threads, with the uncontrolled baselines shared across
 * schemes instead of re-simulated per scheme as the serial bench did.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("tolerance-mv", "25", "control tolerance in mV");
    opts.declare("benchmarks", "gzip,mgrid,galgel,mcf,crafty",
                 "comma-separated benchmark subset");
    opts.declare("jobs", "0",
                 "worker threads (0 = one per hardware thread)");
    opts.parse(argc, argv);
    bench::beginObs(opts);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const Volt tolerance = opts.getDouble("tolerance-mv") / 1000.0;
    const std::size_t jobs = ThreadPool::resolveJobs(
        static_cast<std::size_t>(opts.getInt("jobs")));

    std::vector<std::string> names;
    {
        std::string list = opts.get("benchmarks");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            names.push_back(list.substr(pos, comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    struct Scheme
    {
        ControlScheme scheme;
        std::size_t terms; ///< complexity proxy (0 = analog/other)
    };
    const std::vector<Scheme> schemes{
        {ControlScheme::AnalogSensor, 0},
        {ControlScheme::FullConvolution, 0},
        {ControlScheme::PipelineDamping, 1},
        {ControlScheme::Wavelet, 13},
    };

    // Uncontrolled baselines, one per benchmark, shared by every
    // scheme's slowdown computation.
    const std::vector<CosimResult> baselines =
        runCampaignCells<CosimResult>(
            names.size(), jobs, [&](std::size_t i) {
                CosimConfig cfg;
                cfg.instructions = instructions;
                cfg.seed = seed;
                cfg.scheme = ControlScheme::None;
                return runClosedLoop(profileByName(names[i]), setup.proc,
                                     setup.power, net, cfg);
            });

    // One cell per (scheme, benchmark) closed-loop run.
    const std::vector<CosimResult> runs =
        runCampaignCells<CosimResult>(
            schemes.size() * names.size(), jobs, [&](std::size_t i) {
                const Scheme &scheme = schemes[i / names.size()];
                const std::string &name = names[i % names.size()];
                CosimConfig cfg;
                cfg.instructions = instructions;
                cfg.seed = seed;
                cfg.scheme = scheme.scheme;
                cfg.control.tolerance = tolerance;
                cfg.waveletTerms = scheme.terms ? scheme.terms : 13;
                return runClosedLoop(profileByName(name), setup.proc,
                                     setup.power, net, cfg);
            });

    Table table({"scheme", "terms_per_cycle", "mean_slowdown_pct",
                 "residual_faults", "control_cycles", "false_pos_rate"});
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        const Scheme &scheme = schemes[si];
        RunningStats slow;
        std::uint64_t faults = 0;
        std::uint64_t control = 0;
        RunningStats fp_rate;
        std::size_t term_count = scheme.terms;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const CosimResult &r = runs[si * names.size() + bi];
            slow.push(100.0 * slowdown(r, baselines[bi]));
            faults += r.lowFaults + r.highFaults;
            control += r.controlCycles;
            fp_rate.push(r.falsePositiveRate());
        }
        if (scheme.scheme == ControlScheme::FullConvolution)
            term_count = FullConvolutionMonitor(net).termCount();
        table.newRow();
        table.add(std::string(controlSchemeName(scheme.scheme)));
        table.add(static_cast<long long>(term_count));
        table.add(slow.mean(), 3);
        table.add(static_cast<long long>(faults));
        table.add(static_cast<long long>(control));
        table.add(fp_rate.mean(), 2);
    }
    bench::emit(table, opts,
                "Table 2: dI/dt scheme comparison at " +
                    opts.get("impedance") + "x target impedance");
    std::printf("(analog sensor uses a %d-cycle sensing delay; damping "
                "window 16 cycles)\n",
                4);
    bench::writeObsOutputs(opts);
    return 0;
}
