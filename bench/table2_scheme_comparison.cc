/**
 * @file
 * Paper Table 2: quantitative backing for the qualitative comparison
 * of microarchitectural dI/dt proposals — analog voltage sensing,
 * full convolution, pipeline damping, and the wavelet monitor — on
 * false positives, performance impact, residual faults, and
 * implementation complexity (per-cycle terms).
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("tolerance-mv", "25", "control tolerance in mV");
    opts.declare("benchmarks", "gzip,mgrid,galgel,mcf,crafty",
                 "comma-separated benchmark subset");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const Volt tolerance = opts.getDouble("tolerance-mv") / 1000.0;

    std::vector<std::string> names;
    {
        std::string list = opts.get("benchmarks");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            names.push_back(list.substr(pos, comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    struct Scheme
    {
        ControlScheme scheme;
        std::size_t terms; ///< complexity proxy (0 = analog/other)
    };
    const std::vector<Scheme> schemes{
        {ControlScheme::AnalogSensor, 0},
        {ControlScheme::FullConvolution, 0},
        {ControlScheme::PipelineDamping, 1},
        {ControlScheme::Wavelet, 13},
    };

    Table table({"scheme", "terms_per_cycle", "mean_slowdown_pct",
                 "residual_faults", "control_cycles", "false_pos_rate"});
    for (const Scheme &scheme : schemes) {
        RunningStats slow;
        std::uint64_t faults = 0;
        std::uint64_t control = 0;
        RunningStats fp_rate;
        std::size_t term_count = scheme.terms;
        for (const std::string &name : names) {
            const BenchmarkProfile &prof = profileByName(name);
            CosimConfig cfg;
            cfg.instructions = instructions;
            cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
            cfg.scheme = ControlScheme::None;
            const CosimResult base = runClosedLoop(prof, setup.proc,
                                                   setup.power, net, cfg);
            cfg.scheme = scheme.scheme;
            cfg.control.tolerance = tolerance;
            cfg.waveletTerms = scheme.terms ? scheme.terms : 13;
            const CosimResult r = runClosedLoop(prof, setup.proc,
                                                setup.power, net, cfg);
            slow.push(100.0 * slowdown(r, base));
            faults += r.lowFaults + r.highFaults;
            control += r.controlCycles;
            fp_rate.push(r.falsePositiveRate());
            if (scheme.scheme == ControlScheme::FullConvolution)
                term_count = FullConvolutionMonitor(net).termCount();
        }
        table.newRow();
        table.add(std::string(controlSchemeName(scheme.scheme)));
        table.add(static_cast<long long>(term_count));
        table.add(slow.mean(), 3);
        table.add(static_cast<long long>(faults));
        table.add(static_cast<long long>(control));
        table.add(fp_rate.mean(), 2);
    }
    bench::emit(table, opts,
                "Table 2: dI/dt scheme comparison at " +
                    opts.get("impedance") + "x target impedance");
    std::printf("(analog sensor uses a %d-cycle sensing delay; damping "
                "window 16 cycles)\n",
                4);
    return 0;
}
