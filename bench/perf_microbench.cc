/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths:
 * the O(N) fast wavelet transform (the paper's complexity claim),
 * per-cycle monitor updates, the supply-network recursion, and the
 * cycle-level processor model.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "didt/didt.hh"
#include "util/simd.hh"
#include "workload/virus.hh"

namespace
{

using namespace didt;

SupplyNetworkConfig
benchSupplyConfig()
{
    SupplyNetworkConfig cfg;
    cfg.resonantHz = 125.0e6;
    cfg.qualityFactor = 5.0;
    cfg.dcResistance = 3.0e-4;
    return cfg;
}

std::vector<double>
benchSignal(std::size_t n)
{
    Rng rng(99);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.normal(40.0, 10.0);
    return xs;
}

/** Fast DWT throughput; linear scaling demonstrates the O(N) claim. */
void
BM_DwtForward(benchmark::State &state)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto signal = benchSignal(n);
    const std::size_t levels = dwt.maxLevels(n);
    for (auto _ : state) {
        auto dec = dwt.forward(signal, levels);
        benchmark::DoNotOptimize(dec);
    }
    state.SetComplexityN(state.range(0));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DwtForward)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

/**
 * The same forward transform through the flat-layout in-place API with
 * a reused decomposition and workspace: after the first iteration the
 * loop body never touches the allocator. Compare against BM_DwtForward
 * at the same size for the allocation cost of the legacy API; on
 * window-sized signals (the per-window hot path of the analysis model)
 * the workspace path is expected to be >= 2x faster.
 */
void
BM_DwtForwardWorkspace(benchmark::State &state)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto signal = benchSignal(n);
    const std::size_t levels = dwt.maxLevels(n);
    FlatDecomposition dec;
    DwtWorkspace ws;
    for (auto _ : state) {
        dwt.forward(signal, levels, dec, ws);
        benchmark::DoNotOptimize(dec.coefficients().data());
    }
    state.SetComplexityN(state.range(0));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DwtForwardWorkspace)
    ->RangeMultiplier(4)
    ->Range(64, 65536)
    ->Complexity();

void
BM_DwtInverse(benchmark::State &state)
{
    const Dwt dwt(WaveletBasis::haar());
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto dec = dwt.forward(benchSignal(n), dwt.maxLevels(n));
    for (auto _ : state) {
        auto signal = dwt.inverse(dec);
        benchmark::DoNotOptimize(signal);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DwtInverse)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

/** Per-cycle cost of the wavelet monitor vs the full convolution. */
void
BM_WaveletMonitorUpdate(benchmark::State &state)
{
    const SupplyNetwork net(benchSupplyConfig());
    WaveletMonitor monitor(net,
                           static_cast<std::size_t>(state.range(0)));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            monitor.update(rng.normal(40.0, 10.0), 1.0));
}
BENCHMARK(BM_WaveletMonitorUpdate)->Arg(9)->Arg(13)->Arg(20)->Arg(256);

void
BM_FullConvolutionUpdate(benchmark::State &state)
{
    const SupplyNetwork net(benchSupplyConfig());
    FullConvolutionMonitor monitor(net);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            monitor.update(rng.normal(40.0, 10.0), 1.0));
}
BENCHMARK(BM_FullConvolutionUpdate);

/** Batch voltage computation over a long trace (biquad recursion). */
void
BM_ComputeVoltage(benchmark::State &state)
{
    const SupplyNetwork net(benchSupplyConfig());
    const CurrentTrace trace = benchSignal(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto v = net.computeVoltage(trace);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeVoltage)->Arg(65536);

/** Cycle throughput of the out-of-order processor model. */
void
BM_ProcessorStep(benchmark::State &state)
{
    DiDtVirus virus = DiDtVirus::tunedFor(3.0e9, 125.0e6, 4, 20);
    Processor proc({}, {}, virus);
    for (auto _ : state)
        benchmark::DoNotOptimize(proc.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessorStep);

/**
 * Cycle throughput per workload class: the same step() loop driven by
 * a compute-bound (gzip), floating-point (mgrid), and memory-bound
 * (mcf) synthetic stream instead of the dI/dt virus. The classes
 * stress different pipeline paths — mcf keeps the window full of
 * stalled loads, mgrid exercises the FP issue ports — so a hot-loop
 * regression that BM_ProcessorStep's virus misses shows up here
 * (BENCH_simloop.json records the per-class before/after).
 */
void
BM_ProcessorStepClass(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    const char *kClasses[] = {"gzip", "mgrid", "mcf"};
    const char *name = kClasses[state.range(0)];
    state.SetLabel(name);
    SyntheticWorkload source(profileByName(name),
                             std::uint64_t{1} << 40, 0);
    Processor proc(setup.proc, setup.power, source);
    for (auto _ : state)
        benchmark::DoNotOptimize(proc.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessorStepClass)
    ->ArgNames({"class"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

/**
 * Full benchmark trace collection, full-detail vs sampled: the
 * end-to-end cost one campaign cell pays for its trace. The sampled
 * row runs the validated 4096/28672/512 configuration (12.5% detailed
 * cycles — the most aggressive geometry verify::Oracle::checkSampling
 * holds green across all 26 profiles), covering the same virtual
 * cycles; BENCH_simloop.json pairs the rows into the measured speedup
 * and tests/simfast_test.cc bounds what the skip costs in analysis
 * accuracy.
 */
void
BM_CollectTraceSampled(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    SamplingConfig sampling;
    if (state.range(0) != 0) {
        sampling.detailCycles = 4096;
        sampling.skipCycles = 28672;
        sampling.warmupCycles = 512;
    }
    std::size_t cycles = 0;
    for (auto _ : state) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, profileByName("gzip"), 120000, 0, 4096, sampling);
        cycles = trace.size();
        benchmark::DoNotOptimize(trace.data());
    }
    state.counters["trace_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_CollectTraceSampled)
    ->ArgNames({"sampled"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Characterization campaign, full-detail vs sampled, at the default
 * per-cell instruction budget: 8 benchmarks x 2 scales with a fresh
 * in-memory repository per iteration. Simulation dominates this
 * configuration (each workload is simulated once and analyzed twice),
 * so the row pair approximates the campaign-throughput gain sampling
 * buys on the full 26x5 sweep.
 */
void
BM_SampledCampaign(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    {
        const auto &all = spec2000Profiles();
        spec.profiles.assign(all.begin(), all.begin() + 8);
    }
    spec.impedanceScales = {1.0, 1.2};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 120000;
    if (state.range(0) != 0) {
        spec.sampleDetail = 4096;
        spec.sampleSkip = 28672;
        spec.sampleWarmup = 512;
    }
    for (auto _ : state) {
        TraceRepository repo(setup);
        const CampaignResult result =
            runCharacterizationCampaign(setup, spec, repo, 1);
        benchmark::DoNotOptimize(result.cells.data());
    }
    state.counters["cells"] = static_cast<double>(
        spec.profiles.size() * spec.impedanceScales.size());
}
BENCHMARK(BM_SampledCampaign)
    ->ArgNames({"sampled"})
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * Cycle throughput of the N-core chip model: per-core dI/dt viruses
 * behind private L1s and the shared banked L2. Read against
 * BM_ProcessorStep, the cores=1 row prices the Chip wrapper over the
 * bare uniprocessor and the 2/4-core rows price lockstep stepping
 * plus aggregation (BENCH_cmp.json records the measured scaling).
 */
void
BM_ChipStep(benchmark::State &state)
{
    const auto cores = static_cast<std::size_t>(state.range(0));
    std::vector<DiDtVirus> viruses(
        cores, DiDtVirus::tunedFor(3.0e9, 125.0e6, 4, 20));
    std::vector<InstructionSource *> sources;
    sources.reserve(cores);
    for (auto &v : viruses)
        sources.push_back(&v);
    ChipConfig cfg;
    cfg.cores = cores;
    Chip chip(cfg, {}, sources);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chip.step());
        benchmark::DoNotOptimize(chip.lastAggregateCurrent());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cores));
}
BENCHMARK(BM_ChipStep)->ArgNames({"cores"})->Arg(1)->Arg(2)->Arg(4);

/** Shared fixture for the profileTrace rows: one calibrated model and
 *  a 32-window trace, built once. */
struct ProfileBenchFixture
{
    SupplyNetwork net{benchSupplyConfig()};
    VoltageVarianceModel model{net, 256, 8, WaveletBasis::haar()};
    CurrentTrace trace;

    ProfileBenchFixture()
    {
        Rng rng(7);
        model.calibrate(rng, 1);
        trace = benchSignal(256 * 32);
    }
};

ProfileBenchFixture &
profileBenchFixture()
{
    static ProfileBenchFixture fixture;
    return fixture;
}

/** Full-trace emergency profiling through the allocating entry point
 *  (which builds a fresh workspace per call). */
void
BM_ProfileTrace(benchmark::State &state)
{
    ProfileBenchFixture &fx = profileBenchFixture();
    for (auto _ : state) {
        const EmergencyProfile ep =
            profileTrace(fx.trace, fx.net, fx.model, 0.97, 1.03);
        benchmark::DoNotOptimize(ep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.trace.size()));
}
BENCHMARK(BM_ProfileTrace);

/** The same profiling with a caller-owned workspace reused across
 *  calls — the campaign's per-worker configuration. */
void
BM_ProfileTraceWorkspace(benchmark::State &state)
{
    ProfileBenchFixture &fx = profileBenchFixture();
    AnalysisWorkspace ws;
    for (auto _ : state) {
        const EmergencyProfile ep =
            profileTrace(fx.trace, fx.net, fx.model, 0.97, 1.03, ws);
        benchmark::DoNotOptimize(ep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.trace.size()));
}
BENCHMARK(BM_ProfileTraceWorkspace);

/** Chi-square normality classification of one 64-cycle window. */
void
BM_NormalityTest(benchmark::State &state)
{
    const auto window = benchSignal(64);
    for (auto _ : state)
        benchmark::DoNotOptimize(chiSquareNormalityTest(window));
}
BENCHMARK(BM_NormalityTest);

/**
 * End-to-end characterization campaign, serial vs parallel: the same
 * 8-benchmark x 3-scale sweep at jobs=1 and jobs=hardware. Each
 * iteration uses a fresh in-memory TraceRepository, so the measured
 * time covers trace simulation, model calibration, and analysis; on a
 * multi-core machine the jobs:0 row should approach
 * jobs:1 / core-count.
 */
void
BM_CharacterizationCampaign(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    {
        const auto &all = spec2000Profiles();
        spec.profiles.assign(all.begin(), all.begin() + 8);
    }
    spec.impedanceScales = {1.0, 1.2, 1.5};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 30000;
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        TraceRepository repo(setup);
        const CampaignResult result =
            runCharacterizationCampaign(setup, spec, repo, jobs);
        benchmark::DoNotOptimize(result.cells.data());
    }
    state.counters["jobs"] = static_cast<double>(
        ThreadPool::resolveJobs(jobs));
    state.counters["cells"] = static_cast<double>(
        spec.profiles.size() * spec.impedanceScales.size());
}
BENCHMARK(BM_CharacterizationCampaign)
    ->Arg(1)  // serial reference
    ->Arg(0)  // one worker per hardware thread
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * Metrics-instrumentation overhead: the same small campaign with
 * collection disabled vs enabled. Each configuration runs several
 * times and the minimum is kept — run-to-run wall-clock noise on a
 * shared machine swamps the few-permille true overhead, and min is
 * the standard noise-robust estimator. overhead_pct must stay in the
 * low single digits for always-on metrics to be an acceptable
 * default.
 */
void
BM_CampaignMetricsOverhead(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    {
        const auto &all = spec2000Profiles();
        spec.profiles.assign(all.begin(), all.begin() + 4);
    }
    spec.impedanceScales = {1.0, 1.2};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 30000;

    constexpr int kReps = 3;
    const bool was_enabled = obs::metricsEnabled();
    double off_ms = 0.0;
    double on_ms = 0.0;
    for (auto _ : state) {
        // Interleave the configurations so slow machine-load drift hits
        // both equally instead of biasing whichever runs later.
        double best_off = 0.0;
        double best_on = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            for (const bool enabled : {false, true}) {
                obs::setMetricsEnabled(enabled);
                TraceRepository repo(setup);
                const auto start = std::chrono::steady_clock::now();
                const CampaignResult result =
                    runCharacterizationCampaign(setup, spec, repo, 1);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                double &best = enabled ? best_on : best_off;
                if (rep == 0 || ms < best)
                    best = ms;
                benchmark::DoNotOptimize(result.cells.data());
            }
        }
        off_ms += best_off;
        on_ms += best_on;
    }
    obs::setMetricsEnabled(was_enabled);
    state.counters["metrics_off_ms"] = off_ms;
    state.counters["metrics_on_ms"] = on_ms;
    state.counters["overhead_pct"] =
        off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
}
BENCHMARK(BM_CampaignMetricsOverhead)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Failpoint-hook overhead on the analysis hot path. Arg 0 runs
 * BM_ProfileTraceWorkspace's configuration with the failpoint registry
 * disarmed (each compiled-in site is one relaxed atomic load); arg 1
 * runs it with an armed-but-idle site, which routes every evaluated
 * site through the registry lock. The per-window analysis loop
 * deliberately contains no failpoint sites, so both rows must sit on
 * top of the plain BM_ProfileTraceWorkspace row (<1%); a regression
 * here means a hook crept into a per-cycle loop.
 */
void
BM_ProfileTraceFailpoints(benchmark::State &state)
{
    ProfileBenchFixture &fx = profileBenchFixture();
    const bool armed = state.range(0) == 1;
    verify::resetFailPoints();
    if (armed)
        verify::armFailPoint(
            "bench.idle",
            verify::TriggerPolicy::keyEquals("never-matches"));
    AnalysisWorkspace ws;
    for (auto _ : state) {
        const EmergencyProfile ep =
            profileTrace(fx.trace, fx.net, fx.model, 0.97, 1.03, ws);
        benchmark::DoNotOptimize(ep);
    }
    verify::resetFailPoints();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.trace.size()));
    state.counters["failpoints_armed"] = armed ? 1.0 : 0.0;
}
BENCHMARK(BM_ProfileTraceFailpoints)->Arg(0)->Arg(1);

/**
 * Failpoint-hook overhead on the campaign row, measured like
 * BM_CampaignMetricsOverhead (interleaved reps, min kept): the same
 * small campaign with the registry disarmed vs an armed-but-idle site.
 * The campaign path evaluates a handful of sites per cell (pool.task,
 * campaign.cell, repository reads/writes) — coarse-grained enough that
 * overhead_pct must stay under 1% even armed. With
 * -DDIDT_FAILPOINTS=OFF both rows measure the compiled-out hooks and
 * the delta collapses to pure noise.
 */
void
BM_CampaignFailpointOverhead(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    CampaignSpec spec;
    {
        const auto &all = spec2000Profiles();
        spec.profiles.assign(all.begin(), all.begin() + 4);
    }
    spec.impedanceScales = {1.0, 1.2};
    spec.windowLength = 128;
    spec.levels = 6;
    spec.instructions = 30000;

    constexpr int kReps = 3;
    double off_ms = 0.0;
    double armed_ms = 0.0;
    for (auto _ : state) {
        double best_off = 0.0;
        double best_armed = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            for (const bool armed : {false, true}) {
                verify::resetFailPoints();
                if (armed)
                    verify::armFailPoint(
                        "bench.idle",
                        verify::TriggerPolicy::keyEquals(
                            "never-matches"));
                TraceRepository repo(setup);
                const auto start = std::chrono::steady_clock::now();
                const CampaignResult result =
                    runCharacterizationCampaign(setup, spec, repo, 1);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                double &best = armed ? best_armed : best_off;
                if (rep == 0 || ms < best)
                    best = ms;
                benchmark::DoNotOptimize(result.cells.data());
            }
        }
        off_ms += best_off;
        armed_ms += best_armed;
    }
    verify::resetFailPoints();
    state.counters["failpoints_off_ms"] = off_ms;
    state.counters["failpoints_armed_ms"] = armed_ms;
    state.counters["overhead_pct"] =
        off_ms > 0.0 ? 100.0 * (armed_ms - off_ms) / off_ms : 0.0;
}
BENCHMARK(BM_CampaignFailpointOverhead)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// SIMD kernel rows: each benchmark takes a leading "simd" argument
// (0 = scalar reference, 1 = best CPU-dispatched level) so
// BENCH_simd.json can pair the rows into speedups. Results are
// bit-identical either way (tests/simd_test.cc); only the time moves.
// ---------------------------------------------------------------------------

/** Pin the kernel level for one benchmark run per its simd arg. */
struct SimdLevelArg
{
    explicit SimdLevelArg(benchmark::State &state)
    {
        if (state.range(0) == 0)
            simd::forceLevel(simd::Level::Scalar);
        else
            simd::clearForcedLevel();
        state.SetLabel(simd::levelName(simd::activeLevel()));
    }
    ~SimdLevelArg() { simd::clearForcedLevel(); }
};

void
BM_DwtForwardSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    const Dwt dwt(WaveletBasis::haar());
    const auto n = static_cast<std::size_t>(state.range(1));
    const auto signal = benchSignal(n);
    const std::size_t levels = dwt.maxLevels(n);
    FlatDecomposition dec;
    DwtWorkspace ws;
    for (auto _ : state) {
        dwt.forward(signal, levels, dec, ws);
        benchmark::DoNotOptimize(dec.coefficients().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DwtForwardSimd)
    ->ArgNames({"simd", "n"})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({0, 65536})
    ->Args({1, 65536});

void
BM_DwtInverseSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    const Dwt dwt(WaveletBasis::haar());
    const auto n = static_cast<std::size_t>(state.range(1));
    FlatDecomposition dec;
    DwtWorkspace ws;
    dwt.forward(benchSignal(n), dwt.maxLevels(n), dec, ws);
    std::vector<double> out(n);
    for (auto _ : state) {
        dwt.inverse(dec, out, ws);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DwtInverseSimd)
    ->ArgNames({"simd", "n"})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({0, 65536})
    ->Args({1, 65536});

/** MODWT wavelet variance with the 12-tap db6 filter: the general
 *  filter-step kernel with real per-tap work. */
void
BM_ModwtVarianceSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    const Modwt modwt(WaveletBasis::daubechies6());
    const auto n = static_cast<std::size_t>(state.range(1));
    const auto signal = benchSignal(n);
    std::vector<double> var(6);
    DwtWorkspace ws;
    for (auto _ : state) {
        modwt.waveletVariance(signal, var.size(), var, ws);
        benchmark::DoNotOptimize(var.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ModwtVarianceSimd)
    ->ArgNames({"simd", "n"})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({0, 4096})
    ->Args({1, 4096});

/** Batch convolution with the truncated supply impulse response —
 *  the offline analogue of the full-convolution monitor. */
void
BM_ConvolveIntoSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    const SupplyNetwork net(benchSupplyConfig());
    const std::vector<double> kernel =
        truncateKernel(net.impulseResponse());
    const auto n = static_cast<std::size_t>(state.range(1));
    const auto x = benchSignal(n);
    std::vector<double> out;
    for (auto _ : state) {
        convolveInto(x, kernel, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["taps"] = static_cast<double>(kernel.size());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvolveIntoSimd)
    ->ArgNames({"simd", "n"})
    ->Args({0, 4096})
    ->Args({1, 4096});

/** Whole-pipeline profileTrace at the paper's 256-cycle window. */
void
BM_ProfileTraceSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    ProfileBenchFixture &fx = profileBenchFixture();
    AnalysisWorkspace ws;
    for (auto _ : state) {
        const EmergencyProfile ep =
            profileTrace(fx.trace, fx.net, fx.model, 0.97, 1.03, ws);
        benchmark::DoNotOptimize(ep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.trace.size()));
}
BENCHMARK(BM_ProfileTraceSimd)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1);

/** Voltage histogram accumulation (fig10/11 inner loop). */
void
BM_HistogramPushBlockSimd(benchmark::State &state)
{
    SimdLevelArg level(state);
    const auto xs = benchSignal(65536);
    Histogram hist(0.0, 80.0, 30);
    for (auto _ : state) {
        hist.pushBlock(xs);
        benchmark::DoNotOptimize(hist.total());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_HistogramPushBlockSimd)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1);

/** Reusable-buffer voltage computation: the sequential biquad
 *  recurrence that deliberately stays scalar (not vectorizable without
 *  reassociating the recursion). Tracked so regressions in the scalar
 *  hot loop are visible next to the SIMD rows. */
void
BM_ComputeVoltageInto(benchmark::State &state)
{
    const SupplyNetwork net(benchSupplyConfig());
    const CurrentTrace trace =
        benchSignal(static_cast<std::size_t>(state.range(0)));
    VoltageTrace voltage;
    for (auto _ : state) {
        net.computeVoltageInto(trace, voltage);
        benchmark::DoNotOptimize(voltage.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeVoltageInto)->Arg(65536);

/** Per-cycle cost of the streaming convolver's ring walk (the
 *  FullConvolutionMonitor inner loop behind table2). */
void
BM_StreamingConvolverPush(benchmark::State &state)
{
    const SupplyNetwork net(benchSupplyConfig());
    StreamingConvolver conv(truncateKernel(net.impulseResponse()));
    Rng rng(5);
    for (auto _ : state) {
        conv.push(rng.normal(40.0, 10.0));
        benchmark::DoNotOptimize(conv.value());
    }
    state.counters["taps"] = static_cast<double>(conv.taps());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamingConvolverPush);

/**
 * Closed-loop cosim with the monomorphized chunked loop (devirt:1)
 * vs the per-cycle virtual reference (devirt:0) — the fig15/table2
 * driver. Results are identical (tests/simd_test.cc); the row pair
 * prices the per-cycle virtual dispatch.
 */
void
BM_CosimClosedLoop(benchmark::State &state)
{
    static const ExperimentSetup setup = makeStandardSetup();
    static const SupplyNetwork net = setup.makeNetwork(1.5);
    CosimConfig cfg;
    cfg.instructions = 150000;
    cfg.scheme = ControlScheme::Wavelet;
    cfg.control.tolerance = 0.020;
    cfg.devirtualize = state.range(0) != 0;
    for (auto _ : state) {
        const CosimResult r = runClosedLoop(
            profileByName("gzip"), setup.proc, setup.power, net, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.instructions));
}
BENCHMARK(BM_CosimClosedLoop)
    ->ArgNames({"devirt"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
