/**
 * @file
 * Extension experiment: chip-level throttle desynchronization on an
 * N-core CMP.
 *
 * An in-phase multi-program mix (every core running the same stream
 * from the same seed) is the CMP worst case: per-core currents add
 * coherently, so the aggregate stimulus concentrates energy in the
 * resonant octave of the shared supply. Part (a) quantifies that
 * excitation by comparing the uncontrolled aggregate's per-octave
 * wavelet variance for the in-phase mix against its seed-staggered
 * twin. Part (b) closes the loop: the same wavelet controller is run
 * chip-wide, either applying each decision to all cores on the same
 * cycle (chip-independent) or offsetting core i's actuation by
 * i*stride cycles so the throttle edges spread across one resonant
 * period (chip-staggered). In the episodic-actuation regime the
 * staggered scheme measurably reduces the aggregate's resonance-band
 * variance relative to lockstep actuation.
 */

#include <cmath>
#include <vector>

#include "bench_common.hh"

using namespace didt;

namespace
{

std::vector<ChipWorkload>
mixWorkloads(const WorkloadMix &mix, std::size_t cores,
             std::uint64_t seed)
{
    std::vector<ChipWorkload> workloads;
    workloads.reserve(cores);
    for (std::size_t i = 0; i < cores; ++i)
        workloads.push_back(
            {&mixProfileForCore(mix, i), mixCoreSeed(mix, seed, i)});
    return workloads;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("cores", "4", "cores on the simulated chip");
    opts.declare("mix-benchmark", "gzip",
                 "profile for the in-phase vs seed-staggered contrast");
    opts.declare("control-benchmark", "mgrid",
                 "profile for the closed-loop scheme comparison (a "
                 "dI/dt stressor keeps the controller engaged)");
    opts.declare("impedance", "1.5", "supply impedance scale");
    opts.declare("tolerance", "0.030",
                 "controller tolerance (volts above the fault level)");
    opts.parse(argc, argv);
    bench::beginObs(opts);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const auto cores = static_cast<std::size_t>(opts.getInt("cores"));
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const std::string mix_bench = opts.get("mix-benchmark");
    const std::string control_bench = opts.get("control-benchmark");
    const SupplyNetwork network =
        setup.makeNetwork(opts.getDouble("impedance"));

    // Part (a): how much resonance-band energy does phase alignment
    // itself add? Uncontrolled aggregate, in-phase vs seed-staggered.
    const WorkloadMix inphase = mixByName("inphase-" + mix_bench);
    const WorkloadMix staggered_mix =
        mixByName("staggered-" + mix_bench);
    const Modwt modwt(WaveletBasis::haar());
    const std::size_t levels = 8;
    const auto var_inphase = modwt.waveletVariance(
        chipCurrentTrace(setup, mixWorkloads(inphase, cores, seed),
                         instructions)
            .aggregate,
        levels);
    const auto var_staggered = modwt.waveletVariance(
        chipCurrentTrace(setup, mixWorkloads(staggered_mix, cores, seed),
                         instructions)
            .aggregate,
        levels);

    const double ratio = setup.supplyBase.clockHz /
                         setup.supplyBase.resonantHz;
    const std::size_t res_level = std::min<std::size_t>(
        static_cast<std::size_t>(std::floor(std::log2(ratio))) - 1,
        levels - 1);

    double peak = 0.0;
    for (std::size_t j = 0; j < levels; ++j)
        peak = std::max({peak, var_inphase[j], var_staggered[j]});
    Table octaves({"level", "freq_band_mhz", "inphase_var",
                   "staggered_var", "plot_inphase"});
    for (std::size_t j = 0; j < levels; ++j) {
        const double hi = setup.supplyBase.clockHz /
                          std::pow(2.0, static_cast<double>(j + 1)) /
                          1e6;
        octaves.newRow();
        octaves.add(static_cast<long long>(j + 1));
        octaves.add(hi, 1);
        octaves.add(var_inphase[j], 4);
        octaves.add(var_staggered[j], 4);
        octaves.add(asciiBar(var_inphase[j], peak, 28));
    }
    bench::emit(octaves, opts,
                "Uncontrolled aggregate wavelet variance by octave, " +
                    std::to_string(cores) + "-core " + mix_bench +
                    " mix");
    std::printf("resonant octave is level %zu: in-phase %.4f vs "
                "seed-staggered %.4f (x%.2f)\n\n",
                res_level + 1, var_inphase[res_level],
                var_staggered[res_level],
                var_inphase[res_level] /
                    std::max(1e-12, var_staggered[res_level]));

    // Part (b): chip-wide wavelet control of an in-phase stressor
    // mix, lockstep vs staggered actuation phases.
    const std::vector<ChipWorkload> workloads = mixWorkloads(
        mixByName("inphase-" + control_bench), cores, seed);
    ChipCosimConfig cfg;
    cfg.instructions = instructions;
    cfg.control.tolerance = opts.getDouble("tolerance");

    Table schemes({"scheme", "control_cycles", "resonance_var",
                   "min_voltage_v", "low_faults", "committed"});
    double var_independent = 0.0;
    double var_desync = 0.0;
    for (const ChipControlScheme scheme :
         {ChipControlScheme::None, ChipControlScheme::Independent,
          ChipControlScheme::Staggered}) {
        cfg.scheme = scheme;
        const ChipCosimResult r =
            runChipClosedLoop(workloads, setup, network, cfg);
        if (scheme == ChipControlScheme::Independent)
            var_independent = r.resonanceBandVariance();
        if (scheme == ChipControlScheme::Staggered)
            var_desync = r.resonanceBandVariance();
        schemes.newRow();
        schemes.add(r.scheme);
        schemes.add(static_cast<long long>(r.controlCycles));
        schemes.add(r.resonanceBandVariance(), 4);
        schemes.add(r.minVoltage, 4);
        schemes.add(static_cast<long long>(r.lowFaults));
        schemes.add(static_cast<long long>(r.committed));
    }
    bench::emit(schemes, opts,
                "Chip-wide control of the in-phase " + control_bench +
                    " mix, lockstep vs staggered actuation");
    std::printf("staggering the throttle phases cuts resonance-band "
                "variance by %.1f%% vs lockstep actuation\n",
                100.0 * (1.0 - var_desync /
                                   std::max(1e-12, var_independent)));
    bench::writeObsOutputs(opts);
    return 0;
}
