/**
 * @file
 * Extension experiment: wavelet monitoring of a multi-resonance
 * power-delivery network.
 *
 * Real PDNs have several anti-resonances (on-die/package at
 * ~100-200 MHz, package/board at single-digit MHz). The paper's
 * factorized monitor needs nothing new: it projects whatever impulse
 * response it is given onto the Haar basis. This bench composes a
 * chip stage (125 MHz, Q 5) with a board stage (8 MHz, Q 3),
 * calibrates the pair to 100% target impedance against the virus, and
 * reports (a) the combined impedance profile and (b) how many wavelet
 * terms the monitor needs for a 20 mV worst-case error on the
 * two-peak kernel vs the single-stage kernel — quantifying the cost
 * of the slower second resonance (longer history window, more terms).
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("max-terms", "96", "largest term count to evaluate");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    // Two-stage network calibrated like the standard setup.
    SupplyNetworkConfig chip = setup.supplyBase;
    chip.dcResistance = 2.0e-4;
    SupplyNetworkConfig board = setup.supplyBase;
    board.resonantHz = 8.0e6;
    board.qualityFactor = 3.0;
    board.dcResistance = 1.0e-4;
    board.responseLength = 8192;

    const CurrentTrace virus = virusCurrentTrace(setup, 32768);
    auto stages = calibrateMultiStage({chip, board}, virus);
    for (auto &cfg : stages)
        cfg.impedanceScale = 1.5;
    const MultiStageSupplyNetwork net(stages);

    Table imp({"freq_mhz", "impedance_ohm", "plot"});
    const double peak = net.impedanceAt(125e6);
    for (double f :
         {1e6, 4e6, 8e6, 16e6, 40e6, 80e6, 125e6, 200e6, 500e6}) {
        imp.newRow();
        imp.add(f / 1e6, 1);
        imp.add(net.impedanceAt(f), 8);
        imp.add(asciiBar(net.impedanceAt(f), peak, 36));
    }
    bench::emit(imp, opts, "Two-stage PDN impedance (chip + board)");

    // Monitor terms needed on the two-peak kernel.
    const VoltageTrace truth = net.computeVoltage(virus);
    const SupplyNetwork single(stages[0]);
    const VoltageTrace truth_single = single.computeVoltage(virus);

    Table table({"terms", "two_stage_err_V", "single_stage_err_V"});
    const auto max_terms =
        static_cast<std::size_t>(opts.getInt("max-terms"));
    std::size_t knee_two = 0;
    std::size_t knee_one = 0;
    for (std::size_t terms : {4u, 8u, 13u, 20u, 32u, 48u, 64u, 96u}) {
        if (terms > max_terms)
            break;
        WaveletMonitor two(net.impulseResponse(), net.nominalVoltage(),
                           terms, 2048, 10);
        WaveletMonitor one(single, terms);
        double err_two = 0.0;
        double err_one = 0.0;
        for (std::size_t n = 0; n < virus.size(); ++n) {
            const Volt et = two.update(virus[n], truth[n]);
            const Volt eo = one.update(virus[n], truth_single[n]);
            if (n < 8192)
                continue;
            err_two = std::max(err_two, std::abs(et - truth[n]));
            err_one = std::max(err_one, std::abs(eo - truth_single[n]));
        }
        if (knee_two == 0 && err_two <= 0.02)
            knee_two = terms;
        if (knee_one == 0 && err_one <= 0.02)
            knee_one = terms;
        table.newRow();
        table.add(static_cast<long long>(terms));
        table.add(err_two, 4);
        table.add(err_one, 4);
    }
    bench::emit(table, opts,
                "Wavelet-monitor error vs terms, two-peak kernel");
    std::printf("terms for <= 20 mV: two-stage %zu, single-stage %zu; "
                "full convolution of the two-stage kernel would need "
                "%zu taps\n",
                knee_two, knee_one,
                FullConvolutionMonitor(net.impulseResponse(),
                                       net.nominalVoltage())
                    .termCount());
    return 0;
}
