/**
 * @file
 * Paper Figure 12: percentage of 64-cycle execution windows whose
 * per-cycle current is classified Gaussian (chi-square, 95%), per
 * benchmark, SPEC integer and floating-point panels. The paper's
 * shape: high-L2-miss benchmarks are the least Gaussian.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("window", "64", "window length in cycles");
    opts.declare("windows", "400", "windows sampled per benchmark");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const auto window = static_cast<std::size_t>(opts.getInt("window"));
    const auto windows = static_cast<std::size_t>(opts.getInt("windows"));
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));

    Table table({"suite", "benchmark", "accept_pct", "l2_mpki", "plot"});
    Rng rng(2028);
    for (const auto &prof : spec2000Profiles()) {
        // Re-run the processor to also report the L2 miss density the
        // paper correlates against.
        SyntheticWorkload workload(prof, instructions,
                                   static_cast<std::uint64_t>(
                                       opts.getInt("seed")));
        Processor proc(setup.proc, setup.power, workload);
        SyntheticWorkload warm(prof, 0, 0xDEADBEEF);
        proc.warmupFootprint(workload.dataFootprint(),
                             workload.codeFootprint());
        proc.warmup(warm, 150000);
        CurrentTrace trace;
        proc.collectTrace(trace, 64 * instructions + 100000);

        const auto summary = classifyWindows(trace, window, windows, rng);
        table.newRow();
        table.add(std::string(prof.floatingPoint ? "FP" : "Int"));
        table.add(prof.name);
        table.add(100.0 * summary.acceptanceRate(), 1);
        table.add(proc.stats().l2Mpki(), 1);
        table.add(asciiBar(summary.acceptanceRate(), 1.0, 30));
    }
    bench::emit(table, opts,
                "Figure 12: % Gaussian 64-cycle windows per benchmark");
    return 0;
}
