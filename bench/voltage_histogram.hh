/**
 * @file
 * Shared implementation of the Figure 10/11 voltage-histogram benches.
 */

#ifndef DIDT_BENCH_VOLTAGE_HISTOGRAM_HH
#define DIDT_BENCH_VOLTAGE_HISTOGRAM_HH

#include <vector>

#include "bench_common.hh"

namespace didt::bench
{

/**
 * Print per-benchmark voltage histograms (paper Figures 10 and 11):
 * fraction of cycles at each voltage level over [0.90, 1.05].
 */
inline int
runVoltageHistogram(int argc, char **argv,
                    const std::vector<const char *> &benchmarks,
                    const std::string &title)
{
    Options opts;
    declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("bins", "30", "histogram bins over [0.90, 1.05]");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const auto bins = static_cast<std::size_t>(opts.getInt("bins"));
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));

    Table table({"benchmark", "voltage_v", "percent_of_cycles", "plot"});
    for (const char *name : benchmarks) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, profileByName(name), instructions,
            static_cast<std::uint64_t>(opts.getInt("seed")));
        const VoltageTrace voltage = net.computeVoltage(trace);

        Histogram hist(0.90, 1.05, bins);
        hist.pushBlock(voltage);
        RunningStats stats;
        for (Volt v : voltage)
            stats.push(v);

        double peak = 0.0;
        for (std::size_t b = 0; b < bins; ++b)
            peak = std::max(peak, hist.fraction(b));
        for (std::size_t b = 0; b < bins; ++b) {
            table.newRow();
            table.add(std::string(name));
            table.add(hist.binCenter(b), 4);
            table.add(100.0 * hist.fraction(b), 2);
            table.add(asciiBar(hist.fraction(b), peak, 30));
        }
        std::printf("%-8s mean %.4f V, sigma %.4f V, min %.4f V\n", name,
                    stats.mean(), stats.stddev(), stats.min());
    }
    std::printf("\n");
    emit(table, opts, title);
    return 0;
}

} // namespace didt::bench

#endif // DIDT_BENCH_VOLTAGE_HISTOGRAM_HH
