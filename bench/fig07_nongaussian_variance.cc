/**
 * @file
 * Paper Figure 7: mean current variance of the windows rejected by
 * the Gaussian test, versus the overall trace variance — showing that
 * non-Gaussian windows are the quiet ones, so focusing the estimator
 * on Gaussian windows loses little.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("windows", "400", "windows sampled per benchmark");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto windows =
        static_cast<std::size_t>(opts.getInt("windows"));

    Table table({"window_cycles", "group", "nongaussian_var_A2",
                 "gaussian_var_A2", "overall_var_A2"});
    Rng rng(2027);
    for (std::size_t window : {32u, 64u, 128u}) {
        struct Acc
        {
            RunningStats non_gaussian, gaussian, overall;
        };
        Acc int_acc;
        Acc fp_acc;
        Acc all_acc;
        for (const auto &prof : spec2000Profiles()) {
            const CurrentTrace trace = benchmarkCurrentTrace(
                setup, prof, instructions,
                static_cast<std::uint64_t>(opts.getInt("seed")));
            const auto summary =
                classifyWindows(trace, window, windows, rng);
            for (Acc *acc : {prof.floatingPoint ? &fp_acc : &int_acc,
                             &all_acc}) {
                acc->non_gaussian.push(summary.meanVarianceNonGaussian);
                acc->gaussian.push(summary.meanVarianceGaussian);
                acc->overall.push(summary.overallVariance);
            }
        }
        auto row = [&](const char *group, const Acc &acc) {
            table.newRow();
            table.add(static_cast<long long>(window));
            table.add(std::string(group));
            table.add(acc.non_gaussian.mean(), 1);
            table.add(acc.gaussian.mean(), 1);
            table.add(acc.overall.mean(), 1);
        };
        row("SPEC Int", int_acc);
        row("SPEC FP", fp_acc);
        row("All", all_acc);
    }
    bench::emit(table, opts,
                "Figure 7: current variance of non-Gaussian windows");
    return 0;
}
