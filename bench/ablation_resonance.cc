/**
 * @file
 * Ablation: supply resonance placement.
 *
 * The paper notes the dI/dt problem is worst in the 50-200 MHz
 * mid-frequency band. This ablation moves the supply's resonant
 * frequency across that band (recalibrating the target impedance to
 * the machine's worst case each time) and reports how exposed the
 * stressor and compute benchmark classes are at 150% impedance —
 * quantifying how strongly the hazard depends on where the package
 * resonance lands relative to workload periodicities (e.g. the ~21-
 * cycle L2 round trip at 3 GHz = ~143 MHz).
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.parse(argc, argv);

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));

    Table table({"resonance_mhz", "r100_ohm", "mgrid_below097_pct",
                 "gzip_below097_pct", "mcf_below097_pct"});
    for (double f0 : {50.0e6, 80.0e6, 125.0e6, 160.0e6, 200.0e6}) {
        ExperimentSetup setup = makeStandardSetup();
        setup.supplyBase.resonantHz = f0;
        // Recalibrate: the achievable worst case changes with f0.
        setup.supplyBase =
            calibrateTargetImpedance(setup.supplyBase,
                                     virusCurrentTrace(setup));
        const SupplyNetwork net = setup.makeNetwork(1.5);

        auto below = [&](const char *name) {
            const CurrentTrace trace = benchmarkCurrentTrace(
                setup, profileByName(name), instructions,
                static_cast<std::uint64_t>(opts.getInt("seed")));
            const VoltageTrace v = net.computeVoltage(trace);
            std::size_t count = 0;
            for (Volt x : v)
                if (x < 0.97)
                    ++count;
            return 100.0 * static_cast<double>(count) /
                   static_cast<double>(v.size());
        };

        table.newRow();
        table.add(f0 / 1e6, 0);
        table.add(setup.supplyBase.dcResistance, 8);
        table.add(below("mgrid"), 2);
        table.add(below("gzip"), 2);
        table.add(below("mcf"), 2);
    }
    bench::emit(table, opts, "Ablation: resonance placement vs exposure");
    return 0;
}
