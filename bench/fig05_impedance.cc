/**
 * @file
 * Paper Figure 5: frequency response of the second-order supply
 * network model — impedance magnitude versus frequency, showing the
 * DC plateau and the mid-frequency resonance.
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.0", "target-impedance scale");
    opts.declare("points", "40", "number of frequency samples");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    std::printf("R = %.3e ohm, L = %.3e H, C = %.3e F, f0 = %.1f MHz, "
                "|Z(f0)| = %.3e ohm\n\n",
                net.resistance(), net.inductance(), net.capacitance(),
                net.resonantFrequency() / 1e6,
                net.impedanceAt(net.resonantFrequency()));

    Table table({"freq_mhz", "impedance_ohm", "relative_to_dc", "plot"});
    const double dc = net.impedanceAt(1.0);
    const double peak = net.impedanceAt(net.resonantFrequency());
    const int points = static_cast<int>(opts.getInt("points"));
    for (int p = 0; p <= points; ++p) {
        // Log sweep from 1 MHz to 1.5 GHz (Nyquist of a 3 GHz clock).
        const double f =
            1e6 * std::pow(1500.0, static_cast<double>(p) / points);
        const double z = net.impedanceAt(f);
        table.newRow();
        table.add(f / 1e6, 2);
        table.add(z, 8);
        table.add(z / dc, 2);
        table.add(asciiBar(z, peak, 40));
    }
    bench::emit(table, opts, "Figure 5: |Z(f)| of the supply network");
    return 0;
}
