/**
 * @file
 * Paper Figure 4: current waveform and scalogram for a 256-cycle
 * window of gzip.
 *
 * Prints the per-cycle current of the selected window as an ASCII
 * strip chart and the detail-coefficient scalogram below it
 * (approximation coefficients excluded, matching the paper).
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("benchmark", "gzip", "SPEC benchmark to analyze");
    opts.declare("offset", "20000", "window start cycle within the trace");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const BenchmarkProfile &prof = profileByName(opts.get("benchmark"));
    const CurrentTrace trace = benchmarkCurrentTrace(
        setup, prof, static_cast<std::uint64_t>(opts.getInt("instructions")),
        static_cast<std::uint64_t>(opts.getInt("seed")));

    const auto offset = static_cast<std::size_t>(opts.getInt("offset"));
    if (offset + 256 > trace.size())
        didt_fatal("offset ", offset, " leaves no full 256-cycle window");
    const std::vector<double> window(trace.begin() + offset,
                                     trace.begin() + offset + 256);

    // Strip chart of the current waveform (paper Figure 4, top).
    RunningStats stats;
    for (double amp : window)
        stats.push(amp);
    std::printf("current waveform, cycles %zu-%zu (min %.1f A, max %.1f A, "
                "mean %.1f A):\n",
                offset, offset + 255, stats.min(), stats.max(),
                stats.mean());
    constexpr int kRows = 12;
    for (int row = kRows - 1; row >= 0; --row) {
        const double level =
            stats.min() +
            (stats.max() - stats.min()) * (row + 0.5) / kRows;
        std::fputs("  |", stdout);
        for (std::size_t n = 0; n < 256; n += 2)
            std::fputc(std::max(window[n], window[n + 1]) >= level ? '#'
                                                                   : ' ',
                       stdout);
        std::fputs("|\n", stdout);
    }

    // Scalogram (paper Figure 4, bottom).
    const Dwt dwt(WaveletBasis::haar());
    const WaveletDecomposition dec = dwt.forward(window, 8);
    const Scalogram scalogram(dec);
    std::printf("\nscalogram (detail coefficients, darker = larger "
                "|d[j,k]|):\n");
    scalogram.renderAscii(std::cout, 128);

    // Tabular form for re-plotting.
    Table table({"scale", "k", "magnitude"});
    for (std::size_t j = 0; j < scalogram.scales(); ++j) {
        for (std::size_t k = 0; k < scalogram.row(j).size(); ++k) {
            table.newRow();
            table.add(static_cast<long long>(j));
            table.add(static_cast<long long>(k));
            table.add(scalogram.row(j)[k], 4);
        }
    }
    const std::string path = opts.get("csv");
    if (!path.empty()) {
        table.writeCsvFile(path);
        std::printf("(csv written to %s)\n", path.c_str());
    }
    return 0;
}
