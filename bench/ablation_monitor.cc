/**
 * @file
 * Ablation: wavelet-monitor configuration.
 *
 * Sweeps the monitor's history window and decomposition depth at a
 * fixed term budget and reports observed tracking error against the
 * exact voltage on a benchmark trace — quantifying the design point
 * the paper's Figure 13/14 implementation picks (256-cycle window,
 * 8 levels).
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("benchmark", "mgrid", "benchmark supplying the trace");
    opts.declare("terms", "13", "retained wavelet convolution terms");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);
    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));

    const CurrentTrace trace = benchmarkCurrentTrace(
        setup, profileByName(opts.get("benchmark")),
        static_cast<std::uint64_t>(opts.getInt("instructions")),
        static_cast<std::uint64_t>(opts.getInt("seed")));
    const VoltageTrace truth = net.computeVoltage(trace);
    const auto terms = static_cast<std::size_t>(opts.getInt("terms"));

    struct Case
    {
        std::size_t window;
        std::size_t levels;
    };
    Table table({"window", "levels", "terms", "mean_err_mV", "max_err_mV",
                 "bound_mV"});
    for (const Case c : {Case{64, 6}, Case{128, 7}, Case{256, 8},
                         Case{512, 9}, Case{256, 4}, Case{256, 6}}) {
        WaveletMonitor monitor(net, terms, c.window, c.levels);
        VoltageTrace estimates(trace.size());
        monitor.updateBlock(trace, truth, estimates);
        double sum_err = 0.0;
        double max_err = 0.0;
        std::size_t counted = 0;
        for (std::size_t n = 1024; n < trace.size(); ++n) {
            const double err = std::fabs(estimates[n] - truth[n]);
            sum_err += err;
            max_err = std::max(max_err, err);
            ++counted;
        }
        table.newRow();
        table.add(static_cast<long long>(c.window));
        table.add(static_cast<long long>(c.levels));
        table.add(static_cast<long long>(terms));
        table.add(1000.0 * sum_err / static_cast<double>(counted), 2);
        table.add(1000.0 * max_err, 2);
        table.add(1000.0 * monitor.maxError(
                               (setup.peakCurrent - setup.idleCurrent) /
                               2.0),
                  2);
    }
    bench::emit(table, opts,
                "Ablation: wavelet monitor window/depth at fixed terms");
    return 0;
}
