/**
 * @file
 * Paper Figure 13: maximum voltage-estimation error of the wavelet
 * monitor as the number of retained wavelet convolution terms grows,
 * for 125%/150%/200% target impedance. The paper's knee: ~0.02 V at
 * 9/13/20 terms respectively — a handful of terms versus hundreds of
 * time-domain convolution taps.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("max-terms", "30", "largest term count to evaluate");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    // Maximum error is measured on the worst-case execution sequence
    // (the dI/dt virus) — the same stimulus that defines the target
    // impedance. The analytic adversarial bound (L1 norm of the
    // dropped kernel times the machine's half current swing) is
    // reported alongside for the 150% network.
    const Amp half_swing = (setup.peakCurrent - setup.idleCurrent) / 2.0;
    const CurrentTrace stress = virusCurrentTrace(setup);

    const std::vector<double> impedances{1.25, 1.5, 2.0};
    Table table({"terms", "err_125pct_V", "err_150pct_V", "err_200pct_V",
                 "bound_150pct_V"});
    std::vector<SupplyNetwork> networks;
    std::vector<VoltageTrace> truths;
    for (double scale : impedances) {
        networks.push_back(setup.makeNetwork(scale));
        truths.push_back(networks.back().computeVoltage(stress));
    }

    const auto max_terms =
        static_cast<std::size_t>(opts.getInt("max-terms"));
    std::vector<std::size_t> knee(impedances.size(), 0);
    VoltageTrace estimates(stress.size());
    for (std::size_t terms = 1; terms <= max_terms; ++terms) {
        table.newRow();
        table.add(static_cast<long long>(terms));
        Volt bound150 = 0.0;
        for (std::size_t i = 0; i < networks.size(); ++i) {
            WaveletMonitor monitor(networks[i], terms);
            monitor.updateBlock(stress, truths[i], estimates);
            Volt err = 0.0;
            for (std::size_t n = 512; n < stress.size(); ++n)
                err = std::max(err,
                               std::abs(estimates[n] - truths[i][n]));
            if (knee[i] == 0 && err <= 0.02)
                knee[i] = terms;
            table.add(err, 4);
            if (impedances[i] == 1.5)
                bound150 = monitor.maxError(half_swing);
        }
        table.add(bound150, 4);
    }
    bench::emit(table, opts,
                "Figure 13: max wavelet-monitor error vs term count");
    std::printf("terms needed for <= 0.02 V: 125%% -> %zu, 150%% -> %zu, "
                "200%% -> %zu (paper: 9, 13, 20)\n",
                knee[0], knee[1], knee[2]);

    const FullConvolutionMonitor full(networks[1]);
    std::printf("full time-domain convolution needs %zu taps\n",
                full.termCount());
    return 0;
}
