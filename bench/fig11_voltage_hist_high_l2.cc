/**
 * @file
 * Paper Figure 11: voltage histograms for four benchmarks with many L2
 * misses (swim, lucas, mcf, art). Long memory stalls pin the machine
 * near idle, producing a prominent spike near the nominal voltage and
 * a distinctly non-Gaussian shape.
 */

#include "voltage_histogram.hh"

int
main(int argc, char **argv)
{
    return didt::bench::runVoltageHistogram(
        argc, argv, {"swim", "lucas", "mcf", "art"},
        "Figure 11: voltage histograms, high-L2-miss benchmarks");
}
