/**
 * @file
 * Paper Figure 10: voltage histograms for four benchmarks with few L2
 * misses (gzip, mesa, crafty, eon). The distributions should be
 * approximately Gaussian around the loaded operating point.
 */

#include "voltage_histogram.hh"

int
main(int argc, char **argv)
{
    return didt::bench::runVoltageHistogram(
        argc, argv, {"gzip", "mesa", "crafty", "eon"},
        "Figure 10: voltage histograms, low-L2-miss benchmarks");
}
