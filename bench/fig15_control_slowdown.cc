/**
 * @file
 * Paper Figure 15: performance loss of wavelet-based dI/dt control per
 * benchmark, for 125%/150%/200% target impedance. The paper reports
 * near-zero mean slowdown at optimistic thresholds and ~2% maximum at
 * conservative ones (vs up to 22% for pipeline damping).
 *
 * The threshold tolerance scales with impedance: a weaker supply
 * (larger impedance) needs a more conservative control point, exactly
 * the "threshold settings" axis of the paper's figure.
 */

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("terms", "0",
                 "wavelet terms (0 = per-impedance default 9/13/20)");
    opts.declare("tolerance-mv", "0",
                 "control tolerance in mV (0 = per-impedance default)");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    const auto terms = static_cast<std::size_t>(opts.getInt("terms"));
    const double tol_opt = opts.getDouble("tolerance-mv");

    // Per-impedance settings follow the paper: more wavelet terms and
    // more conservative control points as the supply weakens (Figure
    // 13 picks 9/13/20 terms for 125/150/200%).
    struct Setting
    {
        double impedance;
        Volt tolerance;
        std::size_t terms;
    };
    const std::vector<Setting> settings{
        {1.25, tol_opt > 0 ? tol_opt / 1000.0 : 0.015, 9},
        {1.5, tol_opt > 0 ? tol_opt / 1000.0 : 0.020, 13},
        {2.0, tol_opt > 0 ? tol_opt / 1000.0 : 0.025, 20},
    };

    Table table({"benchmark", "slow_125pct", "slow_150pct", "slow_200pct",
                 "faults_150", "faults_200", "plot"});
    std::vector<RunningStats> agg(settings.size());
    for (const auto &prof : spec2000Profiles()) {
        table.newRow();
        table.add(prof.name);
        std::uint64_t faults_150 = 0;
        std::uint64_t faults_200 = 0;
        double slow_150 = 0.0;
        for (std::size_t s = 0; s < settings.size(); ++s) {
            const SupplyNetwork net =
                setup.makeNetwork(settings[s].impedance);
            CosimConfig cfg;
            cfg.instructions = instructions;
            cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
            cfg.scheme = ControlScheme::None;
            const CosimResult base = runClosedLoop(prof, setup.proc,
                                                   setup.power, net, cfg);
            cfg.scheme = ControlScheme::Wavelet;
            cfg.waveletTerms = terms ? terms : settings[s].terms;
            cfg.control.tolerance = settings[s].tolerance;
            const CosimResult ctl = runClosedLoop(prof, setup.proc,
                                                  setup.power, net, cfg);
            const double slow = 100.0 * slowdown(ctl, base);
            agg[s].push(slow);
            table.add(slow, 3);
            if (settings[s].impedance == 1.5) {
                faults_150 = ctl.lowFaults + ctl.highFaults;
                slow_150 = slow;
            }
            if (settings[s].impedance == 2.0)
                faults_200 = ctl.lowFaults + ctl.highFaults;
        }
        table.add(static_cast<long long>(faults_150));
        table.add(static_cast<long long>(faults_200));
        table.add(asciiBar(slow_150, 5.0, 25));
    }
    bench::emit(table, opts,
                "Figure 15: % slowdown under wavelet dI/dt control");
    std::printf("mean slowdown: 125%% -> %.3f%%, 150%% -> %.3f%%, "
                "200%% -> %.3f%%; max at 200%% -> %.2f%% "
                "(paper: ~0.01%% mean, ~2%% max)\n",
                agg[0].mean(), agg[1].mean(), agg[2].mean(), agg[2].max());
    return 0;
}
