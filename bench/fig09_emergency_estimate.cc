/**
 * @file
 * Paper Figure 9: estimated versus measured percentage of cycles spent
 * below the 0.97 V control point, per benchmark, with the RMS
 * estimation error (paper: 0.94%).
 *
 * The shape claims: mgrid/gcc/galgel/apsi are flagged as problematic
 * (>= 3%), vpr/mcf/equake/gap as benign (< 0.5%), and the estimator
 * tracks the measured ranking.
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.25", "target-impedance scale");
    opts.declare("threshold", "0.97", "low control point in volts");
    opts.declare("no-correlation", "false",
                 "ablation: drop the correlation adjustment");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const VoltageVarianceModel model = makeCalibratedModel(setup, net);
    const bool use_corr = !opts.getBool("no-correlation");
    const Volt threshold = opts.getDouble("threshold");

    Table table({"benchmark", "estimated_pct", "measured_pct", "plot"});
    double sq_err = 0.0;
    int n = 0;
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    for (const auto &prof : spec2000Profiles()) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, prof, instructions,
            static_cast<std::uint64_t>(opts.getInt("seed")));
        const EmergencyProfile profile = profileTrace(
            trace, net, model, threshold, 1.03, {}, use_corr);
        const double est = 100.0 * profile.estimatedBelow;
        const double meas = 100.0 * profile.measuredBelow;
        sq_err += (est - meas) * (est - meas);
        ++n;
        table.newRow();
        table.add(prof.name);
        table.add(est, 2);
        table.add(meas, 2);
        table.add(asciiBar(meas, 8.0, 32));
    }
    bench::emit(table, opts,
                "Figure 9: % cycles below " + opts.get("threshold") +
                    " V, estimated vs measured");
    std::printf("RMS estimation error: %.2f%% (paper: 0.94%%)\n",
                std::sqrt(sq_err / n));
    return 0;
}
