/**
 * @file
 * Paper Figure 9: estimated versus measured percentage of cycles spent
 * below the 0.97 V control point, per benchmark, with the RMS
 * estimation error (paper: 0.94%).
 *
 * The shape claims: mgrid/gcc/galgel/apsi are flagged as problematic
 * (>= 3%), vpr/mcf/equake/gap as benign (< 0.5%), and the estimator
 * tracks the measured ranking.
 *
 * Runs through the campaign runner: the 26 benchmark cells fan out
 * over --jobs worker threads and each trace is simulated once via the
 * shared TraceRepository.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.25", "target-impedance scale");
    opts.declare("threshold", "0.97", "low control point in volts");
    opts.declare("no-correlation", "false",
                 "ablation: drop the correlation adjustment");
    opts.declare("jobs", "0",
                 "worker threads (0 = one per hardware thread)");
    opts.parse(argc, argv);
    bench::beginObs(opts);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    CampaignSpec spec;
    spec.impedanceScales = {opts.getDouble("impedance")};
    spec.lowThreshold = opts.getDouble("threshold");
    spec.useCorrelation = !opts.getBool("no-correlation");
    spec.instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    spec.seed = static_cast<std::uint64_t>(opts.getInt("seed"));

    TraceRepository repo(setup);
    const CampaignResult result = runCharacterizationCampaign(
        setup, spec, repo,
        static_cast<std::size_t>(opts.getInt("jobs")));

    Table table({"benchmark", "estimated_pct", "measured_pct", "plot"});
    for (const CampaignCell &cell : result.cells) {
        table.newRow();
        table.add(cell.benchmark);
        table.add(cell.estimatedBelowPct, 2);
        table.add(cell.measuredBelowPct, 2);
        table.add(asciiBar(cell.measuredBelowPct, 8.0, 32));
    }
    bench::emit(table, opts,
                "Figure 9: % cycles below " + opts.get("threshold") +
                    " V, estimated vs measured");
    std::printf("RMS estimation error: %.2f%% (paper: 0.94%%)\n",
                result.rmsEstimationErrorPct());
    bench::writeObsOutputs(opts);
    return 0;
}
