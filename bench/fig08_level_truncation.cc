/**
 * @file
 * Paper Figure 8: error incurred when estimating voltage variance
 * using only 4 of the 8 wavelet decomposition levels, per benchmark.
 * The paper reports 0.1%-1.6% across SPEC; the shape claim is that
 * levels far from the resonance contribute almost nothing.
 */

#include <cmath>

#include "bench_common.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    bench::declareCommonOptions(opts);
    opts.declare("impedance", "1.5", "target-impedance scale");
    opts.declare("levels-kept", "4", "decomposition levels retained");
    opts.parse(argc, argv);

    const ExperimentSetup setup = makeStandardSetup();
    bench::banner(setup);

    const SupplyNetwork net =
        setup.makeNetwork(opts.getDouble("impedance"));
    const VoltageVarianceModel model = makeCalibratedModel(setup, net);
    const auto kept_count =
        static_cast<std::size_t>(opts.getInt("levels-kept"));
    const std::vector<std::size_t> kept = model.topLevels(kept_count);

    std::printf("levels kept (of %zu): ", model.levels());
    for (std::size_t j : kept)
        std::printf("%zu ", j);
    std::printf("\n\n");

    Table table({"benchmark", "full_var", "truncated_var", "error_pct",
                 "plot"});
    RunningStats errors;
    const auto instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    for (const auto &prof : spec2000Profiles()) {
        const CurrentTrace trace = benchmarkCurrentTrace(
            setup, prof, instructions,
            static_cast<std::uint64_t>(opts.getInt("seed")));
        const std::span<const double> samples(trace.data(), trace.size());
        RunningStats full;
        RunningStats truncated;
        for (std::size_t off = 0; off + 256 <= trace.size(); off += 256) {
            const auto window = samples.subspan(off, 256);
            full.push(model.estimate(window).variance);
            truncated.push(model.estimate(window, kept).variance);
        }
        const double err =
            full.mean() > 0.0
                ? 100.0 * (full.mean() - truncated.mean()) / full.mean()
                : 0.0;
        errors.push(err);
        table.newRow();
        table.add(prof.name);
        table.add(full.mean(), 8);
        table.add(truncated.mean(), 8);
        table.add(err, 2);
        table.add(asciiBar(err, 5.0, 25));
    }
    bench::emit(table, opts,
                "Figure 8: variance-estimate error using " +
                    std::to_string(kept_count) + " of 8 levels");
    std::printf("mean error %.2f%%, max %.2f%% (paper: 0.1%%-1.6%%)\n",
                errors.mean(), errors.max());
    return 0;
}
