/**
 * @file
 * Parallel Section-4 characterization sweep.
 *
 * Runs the paper's full evaluation grid — all 26 SPEC 2000 profiles
 * crossed with the target-impedance scales — through the campaign
 * runner: every benchmark trace is simulated exactly once (shared via
 * the content-addressed TraceRepository), cells fan out over --jobs
 * worker threads, and results land in deterministic JSON/CSV files
 * whose bytes do not depend on the job count.
 *
 * Typical use:
 *   didt_campaign --jobs 8 --json campaign.json --csv campaign.csv
 *   didt_campaign --benchmarks gzip,mcf --impedances 1.0,1.5
 *
 * SIGINT/SIGTERM drain gracefully: in-flight cells finish, cells that
 * have not started are marked failed/"interrupted", and every
 * configured sink (JSON, CSV, metrics, trace) is still flushed before
 * the process exits non-zero.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "didt/didt.hh"

using namespace didt;

namespace
{

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(pos, comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** --report: one line per metric, histograms with count/mean/p95. */
void
printMetricsReport(const obs::MetricsSnapshot &snapshot)
{
    std::printf("\nmetrics (%zu):\n", snapshot.metrics.size());
    for (const obs::MetricSnapshot &m : snapshot.metrics) {
        switch (m.kind) {
          case obs::MetricKind::Counter:
            std::printf("  %-28s %12.0f\n", m.name.c_str(), m.value);
            break;
          case obs::MetricKind::Gauge:
            std::printf("  %-28s last %8.1f  max %8.1f\n",
                        m.name.c_str(), m.value, m.maxValue);
            break;
          case obs::MetricKind::Histogram: {
            const obs::HistogramSnapshot &h = m.histogram;
            std::printf("  %-28s n %8llu  mean %9.3f ms  "
                        "p50 %9.3f  p95 %9.3f  max %9.3f\n",
                        m.name.c_str(),
                        static_cast<unsigned long long>(h.count),
                        h.mean(), h.quantile(0.5), h.quantile(0.95),
                        h.max);
            break;
          }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("jobs", "0",
                 "worker threads (0 = one per hardware thread)");
    opts.declare("benchmarks", "",
                 "comma-separated benchmark subset (empty = all 26)");
    opts.declare("mix", "",
                 "comma-separated workload mixes (int4, fp4, mem4, "
                 "mixed4, inphase-<bench>, staggered-<bench>); replaces "
                 "the benchmarks axis");
    opts.declare("cores", "",
                 "comma-separated chip sizes to sweep (empty = 1)");
    opts.declare("l2-banks", "8",
                 "shared-L2 banks for chip cells (power of two)");
    opts.declare("l2-bank-penalty", "4",
                 "bank-conflict stall cycles for chip cells");
    opts.declare("impedances", "1.0,1.1,1.2,1.3,1.5",
                 "comma-separated target-impedance scales");
    opts.declare("sample-detail", "0",
                 "sampled simulation: detailed cycles per window "
                 "(required when --sample-skip is set)");
    opts.declare("sample-skip", "0",
                 "sampled simulation: cycles fast-forwarded between "
                 "detailed windows (0 = full detail)");
    opts.declare("sample-warmup", "512",
                 "sampled simulation: detailed refill cycles at the end "
                 "of each skip (must not exceed --sample-skip)");
    opts.declare("instructions", "120000",
                 "dynamic instructions per benchmark");
    opts.declare("seed", "0", "extra workload seed");
    opts.declare("window", "256", "analysis window in cycles");
    opts.declare("levels", "8", "wavelet decomposition depth");
    opts.declare("basis", "haar",
                 "wavelet basis (haar, db4, db6, ahaar, spline)");
    opts.declare("bases", "",
                 "comma-separated basis ablation: run the sweep once "
                 "per basis and write a combined "
                 "didt-basis-ablation-v1 JSON (overrides --basis)");
    opts.declare("mc-draws", "0",
                 "Monte Carlo supply-network draws per cell "
                 "(0 = nominal network only)");
    opts.declare("mc-seed", "0", "campaign-level Monte Carlo seed");
    opts.declare("mc-sigma", "0.05",
                 "relative sigma on supply DC resistance and resonance "
                 "placement for Monte Carlo draws");
    opts.declare("mc-sigma-q", "0",
                 "lognormal sigma on supply quality factor for Monte "
                 "Carlo draws");
    opts.declare("low", "0.97", "low control point in volts");
    opts.declare("high", "1.03", "high control point in volts");
    opts.declare("no-correlation", "false",
                 "drop the correlation adjustment");
    opts.declare("cache-dir", "",
                 "persist traces here across invocations");
    opts.declare("json", "", "write campaign JSON to this file");
    opts.declare("csv", "", "write per-cell CSV to this file");
    opts.declare("timing-json", "false",
                 "include the (non-deterministic) timing section in "
                 "the JSON output");
    opts.declare("quiet", "false", "suppress per-cell progress lines");
    opts.declare("metrics-out", "",
                 "write a metrics sidecar JSON to this file");
    opts.declare("trace-out", "",
                 "write Chrome trace_event JSON (Perfetto) to this file");
    opts.declare("no-metrics", "false",
                 "disable metrics collection entirely");
    opts.declare("report", "false",
                 "print a human-readable metrics summary at the end");
    opts.declare("failpoints", "",
                 "arm fault-injection sites, e.g. "
                 "'campaign.cell=key:mcf@1.2;repo.disk_write=always' "
                 "(also read from $DIDT_FAILPOINTS)");
    opts.parse(argc, argv);

    // Env first so an explicit --failpoints wins over it.
    verify::armFailPointsFromEnv();
    if (const std::string fp = opts.get("failpoints"); !fp.empty()) {
        std::string error;
        if (!verify::armFailPointsFromSpec(fp, &error))
            didt_fatal("--failpoints: ", error);
    }

    if (opts.getBool("no-metrics"))
        obs::setMetricsEnabled(false);
    const std::string trace_out = opts.get("trace-out");
    if (!trace_out.empty())
        obs::TraceEventSink::global().setEnabled(true);

    CampaignSpec spec;
    for (const std::string &name : splitList(opts.get("benchmarks")))
        spec.profiles.push_back(profileByName(name));
    for (const std::string &name : splitList(opts.get("mix"))) {
        mixByName(name); // fatal on unknown names, with suggestions
        spec.mixes.push_back(name);
    }
    if (!spec.mixes.empty() && !spec.profiles.empty())
        didt_fatal("--benchmarks and --mix are mutually exclusive");
    for (const std::string &count : splitList(opts.get("cores"))) {
        std::size_t consumed = 0;
        unsigned long value = 0;
        try {
            value = std::stoul(count, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed != count.size() || value == 0 || value > 1024)
            didt_fatal("--cores: bad chip size '" + count + "'");
        spec.coreCounts.push_back(static_cast<std::size_t>(value));
    }
    spec.l2Banks = static_cast<std::size_t>(opts.getInt("l2-banks"));
    spec.l2BankPenalty =
        static_cast<std::size_t>(opts.getInt("l2-bank-penalty"));
    if (spec.l2Banks == 0 || (spec.l2Banks & (spec.l2Banks - 1)) != 0)
        didt_fatal("--l2-banks must be a power of two");
    spec.impedanceScales.clear();
    for (const std::string &scale : splitList(opts.get("impedances"))) {
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(scale, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed != scale.size() || value <= 0.0)
            didt_fatal("--impedances: bad scale '" + scale + "'");
        spec.impedanceScales.push_back(value);
    }
    if (spec.impedanceScales.empty())
        didt_fatal("--impedances must name at least one scale");
    spec.windowLength = static_cast<std::size_t>(opts.getInt("window"));
    spec.levels = static_cast<std::size_t>(opts.getInt("levels"));
    spec.basis = opts.get("basis");
    spec.lowThreshold = opts.getDouble("low");
    spec.highThreshold = opts.getDouble("high");
    spec.useCorrelation = !opts.getBool("no-correlation");
    spec.instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    spec.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    spec.sampleDetail =
        static_cast<Cycle>(opts.getInt("sample-detail"));
    spec.sampleSkip = static_cast<Cycle>(opts.getInt("sample-skip"));
    spec.sampleWarmup =
        static_cast<Cycle>(opts.getInt("sample-warmup"));
    if (spec.isSampled()) {
        if (spec.sampleDetail == 0)
            didt_fatal("--sample-skip requires --sample-detail > 0");
        if (spec.sampleWarmup > spec.sampleSkip)
            didt_fatal("--sample-warmup must not exceed --sample-skip");
    }
    spec.mcDraws = static_cast<std::size_t>(opts.getInt("mc-draws"));
    if (spec.isMonteCarlo()) {
        spec.mcSeed = static_cast<std::uint64_t>(opts.getInt("mc-seed"));
        spec.mcSigmaR = opts.getDouble("mc-sigma");
        spec.mcSigmaResonance = spec.mcSigmaR;
        spec.mcSigmaQ = opts.getDouble("mc-sigma-q");
        if (spec.mcDraws > 100000)
            didt_fatal("--mc-draws must not exceed 100000");
        for (double sigma : {spec.mcSigmaR, spec.mcSigmaQ})
            if (sigma < 0.0 || sigma > 1.0)
                didt_fatal("--mc-sigma/--mc-sigma-q must be in [0, 1]");
    }
    const std::vector<std::string> bases = splitList(opts.get("bases"));
    for (const std::string &name : bases)
        if (!WaveletBasis::isKnownName(name))
            didt_fatal("--bases: unknown wavelet basis '", name,
                       "' (try ", WaveletBasis::knownNamesHint(), ")");
    if (!bases.empty() && !opts.get("csv").empty())
        didt_fatal("--bases and --csv are mutually exclusive (the "
                   "ablation writes one combined JSON document)");

    const std::size_t jobs = ThreadPool::resolveJobs(
        static_cast<std::size_t>(opts.getInt("jobs")));
    const bool quiet = opts.getBool("quiet");

    const auto setup_start = std::chrono::steady_clock::now();
    const ExperimentSetup setup = makeStandardSetup();
    const double setup_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - setup_start)
            .count();

    const std::size_t workloads = spec.mixes.empty()
                                      ? spec.effectiveProfiles().size()
                                      : spec.mixes.size();
    const std::size_t chip_sizes = spec.effectiveCoreCounts().size();
    const std::size_t total_cells = workloads * chip_sizes *
                                    spec.impedanceScales.size() *
                                    spec.drawCount();
    if (spec.isMonteCarlo())
        std::printf("campaign: %zu workloads x %zu impedance scales x "
                    "%zu Monte Carlo draws = %zu cells, %zu jobs\n",
                    workloads * chip_sizes, spec.impedanceScales.size(),
                    spec.mcDraws, total_cells, jobs);
    else if (spec.isChipSweep())
        std::printf("campaign: %zu workloads x %zu chip sizes x %zu "
                    "impedance scales = %zu cells, %zu jobs\n",
                    workloads, chip_sizes, spec.impedanceScales.size(),
                    total_cells, jobs);
    else
        std::printf("campaign: %zu benchmarks x %zu impedance scales = "
                    "%zu cells, %zu jobs\n",
                    workloads, spec.impedanceScales.size(), total_cells,
                    jobs);

    TraceRepository repo(setup, opts.get("cache-dir"));

    // Basis ablation: run the identical sweep once per basis through
    // one shared repository (each workload trace simulates exactly
    // once) and combine the runs into one document plus a summary
    // table on stdout.
    if (!bases.empty()) {
        installShutdownHandler();
        JsonValue campaigns = JsonValue::array();
        JsonValue summary = JsonValue::array();
        std::printf("basis ablation: %zu bases x %zu cells\n\n",
                    bases.size(), total_cells);
        std::printf("%-8s %14s %18s %18s\n", "basis", "rms_err_pct",
                    "mean_meas_below", "mean_est_below");
        const bool timing = opts.getBool("timing-json");
        for (const std::string &name : bases) {
            CampaignSpec ablated = spec;
            ablated.basis = name;
            const CampaignResult result = runCharacterizationCampaign(
                setup, ablated, repo, jobs, {}, &shutdownFlag());
            double meas = 0.0;
            double est = 0.0;
            std::size_t completed = 0;
            for (const CampaignCell &cell : result.cells) {
                if (cell.failed)
                    continue;
                meas += cell.measuredBelowPct;
                est += cell.estimatedBelowPct;
                ++completed;
            }
            const double denom =
                completed > 0 ? static_cast<double>(completed) : 1.0;
            std::printf("%-8s %14.4f %18.4f %18.4f\n", name.c_str(),
                        result.rmsEstimationErrorPct(), meas / denom,
                        est / denom);
            JsonValue row = JsonValue::object();
            row.set("basis", name);
            row.set("rms_estimation_error_pct",
                    result.rmsEstimationErrorPct());
            row.set("mean_measured_below_pct", meas / denom);
            row.set("mean_estimated_below_pct", est / denom);
            summary.push(std::move(row));
            campaigns.push(campaignToJson(result, timing));
            if (result.interrupted) {
                std::printf("interrupted during basis '%s'\n",
                            name.c_str());
                return 1;
            }
        }
        if (!opts.get("json").empty()) {
            JsonValue doc = JsonValue::object();
            doc.set("schema", "didt-basis-ablation-v1");
            JsonValue basis_names = JsonValue::array();
            for (const std::string &name : bases)
                basis_names.push(name);
            doc.set("bases", std::move(basis_names));
            doc.set("summary", std::move(summary));
            doc.set("campaigns", std::move(campaigns));
            std::ofstream out(opts.get("json"));
            if (!out)
                didt_fatal("cannot open ", opts.get("json"),
                           " for writing");
            doc.write(out);
            out << '\n';
            std::printf("(json written to %s)\n",
                        opts.get("json").c_str());
        }
        return 0;
    }
    std::size_t done = 0;
    const std::size_t progress_stride =
        std::max<std::size_t>(std::size_t{1}, total_cells / 10);
    const auto sweep_start = std::chrono::steady_clock::now();
    const auto on_cell = [&](const CampaignCell &cell) {
        ++done;
        if (quiet)
            return;
        if (cell.failed)
            std::printf("[%3zu/%zu] %-8s @%.2fx  FAILED: %s\n", done,
                        total_cells, cell.benchmark.c_str(),
                        cell.impedanceScale, cell.error.c_str());
        else
            std::printf("[%3zu/%zu] %-8s @%.2fx  est %6.2f%%  "
                        "meas %6.2f%%  (%.0f ms)\n",
                        done, total_cells, cell.benchmark.c_str(),
                        cell.impedanceScale, cell.estimatedBelowPct,
                        cell.measuredBelowPct, cell.wallMillis);
        if (done % progress_stride == 0 && done != total_cells) {
            const double elapsed_s =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - sweep_start)
                    .count();
            const double eta_s = elapsed_s /
                                 static_cast<double>(done) *
                                 static_cast<double>(total_cells - done);
            std::printf("-- %zu/%zu cells, ETA %.0f s\n", done,
                        total_cells, eta_s);
        }
    };

    // Graceful SIGINT/SIGTERM: the flag cancels not-yet-started cells
    // and the sinks below still flush whatever completed.
    installShutdownHandler();
    const CampaignResult result = runCharacterizationCampaign(
        setup, spec, repo, jobs, on_cell, &shutdownFlag());

    double cell_ms_sum = 0.0;
    for (const CampaignCell &cell : result.cells)
        cell_ms_sum += cell.wallMillis;

    std::printf("\n%zu cells in %.2f s wall (setup %.2f s, calibration "
                "%.2f s; sum of cell times %.2f s, parallel efficiency "
                "proxy %.2fx)\n",
                result.cells.size(), result.wallMillis / 1000.0,
                setup_ms / 1000.0, result.calibrationMillis / 1000.0,
                cell_ms_sum / 1000.0,
                result.wallMillis > 0.0
                    ? cell_ms_sum / result.wallMillis
                    : 0.0);
    std::printf("trace cache: %llu lookups, %llu memory hits, %llu disk "
                "loads, %llu disk stores, %llu corrupt, "
                "%llu simulations\n",
                static_cast<unsigned long long>(
                    result.cacheStats.lookups),
                static_cast<unsigned long long>(
                    result.cacheStats.memoryHits),
                static_cast<unsigned long long>(
                    result.cacheStats.diskLoads),
                static_cast<unsigned long long>(
                    result.cacheStats.diskStores),
                static_cast<unsigned long long>(
                    result.cacheStats.diskCorrupt),
                static_cast<unsigned long long>(
                    result.cacheStats.simulations));
    std::printf("RMS estimation error: %.2f%%\n",
                result.rmsEstimationErrorPct());
    if (const std::size_t failed = result.failedCells(); failed > 0)
        std::printf("failed cells: %zu of %zu (marked in the result "
                    "JSON)\n",
                    failed, result.cells.size());

    const bool timing_json = opts.getBool("timing-json");
    if (!opts.get("json").empty()) {
        writeCampaignJson(opts.get("json"), result, timing_json);
        std::printf("(json written to %s)\n", opts.get("json").c_str());
    }
    if (!opts.get("csv").empty()) {
        writeCampaignCsv(opts.get("csv"), result);
        std::printf("(csv written to %s)\n", opts.get("csv").c_str());
    }

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    if (!opts.get("metrics-out").empty()) {
        obs::writeMetricsJson(opts.get("metrics-out"), snapshot);
        std::printf("(metrics written to %s)\n",
                    opts.get("metrics-out").c_str());
    }
    if (!trace_out.empty()) {
        obs::TraceEventSink::global().writeChromeTrace(trace_out);
        std::printf("(trace written to %s; open in ui.perfetto.dev)\n",
                    trace_out.c_str());
    }
    if (opts.getBool("report"))
        printMetricsReport(snapshot);
    if (result.interrupted) {
        std::printf("interrupted: %zu cells were cancelled before "
                    "evaluation (marked in the result JSON)\n",
                    result.failedCells());
        return 1;
    }
    return 0;
}
