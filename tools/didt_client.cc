/**
 * @file
 * Client for the didt_serve daemon.
 *
 * Subcommands:
 *   ping          liveness check (prints the daemon's feature list)
 *   stats         print the daemon's counters (JSON; --prom for
 *                 Prometheus text exposition format)
 *   characterize  run a sweep described by the spec options below
 *                 (--timings echoes the daemon's latency breakdown)
 *   replay        re-run a campaign from a didt-campaign-v1 JSON file
 *                 (or a bare spec object) through the daemon
 *   watch         subscribe to live daemon telemetry: one status line
 *                 per tick (connections, queue depth, cells/s, cache
 *                 hit-rate, p50/p99 request ms)
 *   events        print the daemon's recent structured events
 *
 * Typical use:
 *   didt_client ping --socket /tmp/didt.sock
 *   didt_client characterize --benchmarks gzip,mcf --out result.json
 *   didt_client replay campaign.json --out replayed.json
 *   didt_client watch --interval-ms 500
 *   didt_client stats --prom | promtool check metrics
 *
 * For characterize and replay the daemon's embedded result document is
 * written verbatim (--out file or stdout); it is byte-identical to
 * what `didt_campaign --json` writes for the same spec, so
 * `cmp campaign.json replayed.json` is the end-to-end integrity check.
 *
 * Exit codes: 0 success, 1 usage/configuration error, 3 transport
 * failure or an error response from the daemon (the typed error code
 * and message go to stderr).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "didt/didt.hh"

using namespace didt;

namespace
{

/** Exit status for daemon-side errors and transport failures. */
constexpr int kExitServeError = 3;

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(pos, comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Connect per the --socket / --tcp-* options; exits on bad usage. */
serve::Client
connectClient(const Options &opts)
{
    serve::Client client;
    std::string error;
    if (const std::string path = opts.get("socket"); !path.empty()) {
        if (!client.connectUnix(path, &error)) {
            std::fprintf(stderr, "didt_client: %s\n", error.c_str());
            std::exit(kExitServeError);
        }
        return client;
    }
    const int port = static_cast<int>(opts.getInt("tcp-port"));
    if (port < 0)
        didt_fatal("need --socket or --tcp-port");
    if (!client.connectTcp(opts.get("tcp-host"), port, &error)) {
        std::fprintf(stderr, "didt_client: %s\n", error.c_str());
        std::exit(kExitServeError);
    }
    return client;
}

/** One request/response round trip; exits on transport failure. */
JsonValue
roundTrip(serve::Client &client, const std::string &request)
{
    std::string payload;
    std::string error;
    if (!client.call(request, &payload, &error)) {
        std::fprintf(stderr, "didt_client: %s\n", error.c_str());
        std::exit(kExitServeError);
    }
    try {
        return parseJson(payload);
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "didt_client: unparseable response: %s\n",
                     e.what());
        std::exit(kExitServeError);
    }
}

/** Exit with the daemon's typed error when @p response carries one. */
void
exitOnErrorResponse(const JsonValue &response)
{
    const JsonValue *type = response.find("type");
    if (!type || type->kind() != JsonValue::Kind::String ||
        type->asString() != "error")
        return;
    const JsonValue *error = response.find("error");
    const JsonValue *code = error ? error->find("code") : nullptr;
    const JsonValue *message = error ? error->find("message") : nullptr;
    std::fprintf(
        stderr, "didt_client: daemon error [%s]: %s\n",
        code && code->kind() == JsonValue::Kind::String
            ? code->asString().c_str()
            : "unknown",
        message && message->kind() == JsonValue::Kind::String
            ? message->asString().c_str()
            : "(no message)");
    std::exit(kExitServeError);
}

/**
 * Write the embedded campaign result exactly as didt_campaign --json
 * writes it (the shared writer is byte-deterministic, so a replay of a
 * campaign file reproduces it byte-for-byte).
 */
void
writeResult(const JsonValue &response, const std::string &out_path)
{
    const JsonValue *result = response.find("result");
    if (!result) {
        std::fprintf(stderr,
                     "didt_client: response carries no result\n");
        std::exit(kExitServeError);
    }
    if (out_path.empty()) {
        result->write(std::cout);
        std::cout << '\n';
        return;
    }
    std::ofstream out(out_path);
    if (!out)
        didt_fatal("cannot open ", out_path, " for writing");
    result->write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing result to ", out_path);
    std::printf("(result written to %s)\n", out_path.c_str());
}

/** Build the characterize spec JSON from the spec options. */
JsonValue
specFromOptions(const Options &opts)
{
    CampaignSpec spec;
    for (const std::string &name : splitList(opts.get("benchmarks")))
        spec.profiles.push_back(profileByName(name));
    spec.impedanceScales.clear();
    for (const std::string &scale : splitList(opts.get("impedances"))) {
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(scale, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed != scale.size() || value <= 0.0)
            didt_fatal("--impedances: bad scale '" + scale + "'");
        spec.impedanceScales.push_back(value);
    }
    if (spec.impedanceScales.empty())
        didt_fatal("--impedances must name at least one scale");
    spec.windowLength = static_cast<std::size_t>(opts.getInt("window"));
    spec.levels = static_cast<std::size_t>(opts.getInt("levels"));
    spec.basis = opts.get("basis");
    spec.lowThreshold = opts.getDouble("low");
    spec.highThreshold = opts.getDouble("high");
    spec.useCorrelation = !opts.getBool("no-correlation");
    spec.instructions =
        static_cast<std::uint64_t>(opts.getInt("instructions"));
    spec.seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    return campaignSpecToJson(spec);
}

/** Numeric field of a JSON object, or 0.0 when absent/non-numeric. */
double
numberField(const JsonValue &object, const char *name)
{
    const JsonValue *value = object.find(name);
    if (!value || value->kind() != JsonValue::Kind::Number)
        return 0.0;
    return value->asNumber();
}

/**
 * Render one watch frame as a single status line. On a terminal the
 * line overwrites itself (carriage return); piped output gets one line
 * per frame so the stream stays grep-able.
 */
void
renderWatchLine(const JsonValue &stats, double seq, bool tty)
{
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "watch #%.0f | conns %.0f queue %.0f watchers %.0f | "
        "cells %.0f (%.1f/s) | hit %.1f%% | req p50 %.1fms p99 %.1fms",
        seq, numberField(stats, "active_connections"),
        numberField(stats, "queue_depth"),
        numberField(stats, "watchers"),
        numberField(stats, "cells_done"),
        numberField(stats, "cells_per_sec"),
        100.0 * numberField(stats, "cache_hit_rate"),
        numberField(stats, "request_ms_p50"),
        numberField(stats, "request_ms_p99"));
    if (tty) {
        std::printf("\r%-110s", line);
        std::fflush(stdout);
    } else {
        std::printf("%s\n", line);
    }
}

/** Extract the spec to replay from a result or bare-spec JSON file. */
JsonValue
specFromFile(const std::string &path)
{
    const JsonValue doc = readJsonFile(path);
    if (doc.kind() != JsonValue::Kind::Object)
        didt_fatal(path, ": expected a JSON object");
    if (const JsonValue *schema = doc.find("schema")) {
        if (schema->kind() != JsonValue::Kind::String ||
            schema->asString() != "didt-campaign-v1")
            didt_fatal(path, ": not a didt-campaign-v1 document");
        const JsonValue *spec = doc.find("spec");
        if (!spec)
            didt_fatal(path, ": document carries no spec");
        return *spec;
    }
    return doc; // a bare spec object
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declareSubcommands(
        {"ping", "stats", "characterize", "replay", "watch", "events"});
    opts.declarePositionals("campaign.json", 0, 1,
                            "replay: the didt-campaign-v1 result (or "
                            "bare spec) file to re-run");
    opts.declare("socket", "", "daemon unix-domain socket path");
    opts.declare("tcp-host", "127.0.0.1", "daemon TCP address");
    opts.declare("tcp-port", "-1", "daemon TCP port (-1 = use --socket)");
    opts.declare("id", "", "request id echoed back by the daemon");
    opts.declare("out", "",
                 "write the result document here (default: stdout)");
    opts.declare("benchmarks", "",
                 "characterize: benchmark subset (empty = all 26)");
    opts.declare("impedances", "1.0,1.1,1.2,1.3,1.5",
                 "characterize: target-impedance scales");
    opts.declare("instructions", "120000",
                 "characterize: dynamic instructions per benchmark");
    opts.declare("seed", "0", "characterize: extra workload seed");
    opts.declare("window", "256", "characterize: window in cycles");
    opts.declare("levels", "8", "characterize: decomposition depth");
    opts.declare("basis", "haar", "characterize: wavelet basis");
    opts.declare("low", "0.97", "characterize: low control point (V)");
    opts.declare("high", "1.03", "characterize: high control point (V)");
    opts.declare("no-correlation", "false",
                 "characterize: drop the correlation adjustment");
    opts.declare("failpoints", "",
                 "arm client-side fault-injection sites, e.g. "
                 "'serve.write=nth:1'");
    opts.declare("prom", "false",
                 "stats: print Prometheus text exposition format");
    opts.declare("timings", "false",
                 "characterize/replay: print the daemon's latency "
                 "attribution (queue/merge/execute/serialize ms) to "
                 "stderr");
    opts.declare("interval-ms", "1000",
                 "watch: telemetry frame period in milliseconds");
    opts.declare("count", "0",
                 "watch: stop after this many frames (0 = until "
                 "interrupted)");
    opts.declare("after", "0",
                 "events: return only events with seq > this cursor");
    opts.declare("limit", "0",
                 "events: cap the number of events returned (0 = all "
                 "retained)");
    opts.parse(argc, argv);

    verify::armFailPointsFromEnv();
    if (const std::string fp = opts.get("failpoints"); !fp.empty()) {
        std::string error;
        if (!verify::armFailPointsFromSpec(fp, &error))
            didt_fatal("--failpoints: ", error);
    }

    const std::string &command = opts.subcommand();
    serve::Client client = connectClient(opts);

    if (command == "ping") {
        const JsonValue response = roundTrip(
            client, serve::pingRequestJson(opts.get("id")));
        exitOnErrorResponse(response);
        std::printf("pong\n");
        return 0;
    }
    if (command == "stats") {
        const bool prom = opts.getBool("prom");
        const JsonValue response = roundTrip(
            client, serve::statsRequestJson(opts.get("id"), prom));
        exitOnErrorResponse(response);
        if (prom) {
            const JsonValue *text = response.find("prometheus");
            if (!text || text->kind() != JsonValue::Kind::String) {
                std::fprintf(
                    stderr,
                    "didt_client: response carries no prometheus "
                    "text\n");
                return kExitServeError;
            }
            std::fputs(text->asString().c_str(), stdout);
            return 0;
        }
        const JsonValue *stats = response.find("stats");
        if (!stats) {
            std::fprintf(stderr,
                         "didt_client: response carries no stats\n");
            return kExitServeError;
        }
        stats->write(std::cout);
        std::cout << '\n';
        return 0;
    }
    if (command == "watch") {
        const double intervalMs = opts.getDouble("interval-ms");
        const std::uint64_t count =
            static_cast<std::uint64_t>(opts.getInt("count"));
        std::string error;
        if (!client.send(serve::watchRequestJson(opts.get("id"),
                                                 intervalMs, count),
                         &error)) {
            std::fprintf(stderr, "didt_client: %s\n", error.c_str());
            return kExitServeError;
        }
        const bool tty = ::isatty(STDOUT_FILENO) != 0;
        std::uint64_t frames = 0;
        std::string payload;
        while (client.receive(&payload, &error)) {
            JsonValue frame;
            try {
                frame = parseJson(payload);
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "didt_client: unparseable frame: %s\n",
                             e.what());
                return kExitServeError;
            }
            exitOnErrorResponse(frame);
            const JsonValue *stats = frame.find("stats");
            if (!stats)
                continue;
            renderWatchLine(*stats, numberField(frame, "seq"), tty);
            ++frames;
            if (count != 0 && frames >= count)
                break;
        }
        if (tty && frames != 0)
            std::printf("\n");
        // The stream ends normally when the frame budget is spent or
        // the daemon drains; report a transport error only if no frame
        // was ever delivered.
        if (frames == 0) {
            std::fprintf(stderr, "didt_client: %s\n", error.c_str());
            return kExitServeError;
        }
        return 0;
    }
    if (command == "events") {
        const JsonValue response = roundTrip(
            client,
            serve::eventsRequestJson(
                opts.get("id"),
                static_cast<std::uint64_t>(opts.getInt("after")),
                static_cast<std::uint64_t>(opts.getInt("limit"))));
        exitOnErrorResponse(response);
        const JsonValue *events = response.find("events");
        if (!events || events->kind() != JsonValue::Kind::Array) {
            std::fprintf(stderr,
                         "didt_client: response carries no events\n");
            return kExitServeError;
        }
        for (const JsonValue &event : events->items()) {
            const JsonValue *type = event.find("type");
            const JsonValue *detail = event.find("detail");
            std::printf(
                "#%-5.0f %9.1fms  %-18s %s\n",
                numberField(event, "seq"), numberField(event, "at_ms"),
                type && type->kind() == JsonValue::Kind::String
                    ? type->asString().c_str()
                    : "?",
                detail && detail->kind() == JsonValue::Kind::String
                    ? detail->asString().c_str()
                    : "");
        }
        std::printf("(dropped %.0f, next cursor %.0f)\n",
                    numberField(response, "dropped"),
                    numberField(response, "next"));
        return 0;
    }

    // characterize / replay: one spec, one result document.
    JsonValue spec;
    if (command == "replay") {
        if (opts.positionals().size() != 1)
            didt_fatal("replay needs exactly one campaign JSON file");
        spec = specFromFile(opts.positionals().front());
    } else {
        spec = specFromOptions(opts);
    }
    const bool wantTimings = opts.getBool("timings");
    const JsonValue response = roundTrip(
        client, serve::characterizeRequestJson(opts.get("id"), spec,
                                               wantTimings));
    exitOnErrorResponse(response);
    writeResult(response, opts.get("out"));
    if (wantTimings) {
        if (const JsonValue *timings = response.find("timings")) {
            std::ostringstream text;
            timings->write(text);
            std::fprintf(stderr, "didt_client: timings %s\n",
                         text.str().c_str());
        }
    }
    return 0;
}
