/**
 * @file
 * The didt_serve daemon: characterization as a service.
 *
 * Hosts one long-lived Executor and one shared TraceRepository tier
 * (byte-budgeted in-memory LRU + optional disk cache) behind Unix
 * and/or TCP didt-serve-v1 sockets. Compatible characterize requests
 * are batched into one campaign; every result is byte-identical to
 * what a standalone didt_campaign run of the same spec writes.
 *
 * Typical use:
 *   didt_serve --socket /tmp/didt.sock --jobs 8 \
 *              --cache-bytes 268435456 --cache-dir /var/cache/didt \
 *              --metrics-out /run/didt_serve.metrics.json
 *
 * SIGINT/SIGTERM drain gracefully: admitted requests finish and their
 * responses are written, new requests are rejected with
 * shutting_down, then the process exits 0.
 */

#include <cerrno>
#include <cstdio>

#include <poll.h>
#include <unistd.h>

#include "didt/didt.hh"

using namespace didt;

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("socket", "", "unix-domain socket path to listen on");
    opts.declare("tcp-port", "-1",
                 "TCP port to listen on (-1 = no TCP listener, "
                 "0 = ephemeral; the bound port is printed)");
    opts.declare("tcp-host", "127.0.0.1", "TCP bind address");
    opts.declare("max-queue", "64",
                 "admission-queue capacity; further characterize "
                 "requests are rejected with queue_full");
    opts.declare("cache-bytes", "0",
                 "trace-cache memory budget in bytes (0 = unlimited)");
    opts.declare("cache-dir", "",
                 "trace-cache directory shared with didt_campaign");
    opts.declare("jobs", "0",
                 "worker threads (0 = one per hardware thread)");
    opts.declare("max-frame-bytes", "16777216",
                 "frame payload size limit in bytes");
    opts.declare("metrics-out", "",
                 "rewrite a live didt-metrics-v1 snapshot here");
    opts.declare("metrics-interval-ms", "1000",
                 "telemetry rewrite period in milliseconds");
    opts.declare("events-capacity", "1024",
                 "daemon-event ring size: newest N events retained "
                 "for `events` queries and the shutdown dump");
    opts.declare("failpoints", "",
                 "arm fault-injection sites, e.g. "
                 "'serve.decode=nth:1;serve.accept=prob:0.1:7' "
                 "(also read from $DIDT_FAILPOINTS)");
    opts.parse(argc, argv);

    verify::armFailPointsFromEnv();
    if (const std::string fp = opts.get("failpoints"); !fp.empty()) {
        std::string error;
        if (!verify::armFailPointsFromSpec(fp, &error))
            didt_fatal("--failpoints: ", error);
    }

    serve::ServerConfig config;
    config.unixPath = opts.get("socket");
    config.tcpPort = static_cast<int>(opts.getInt("tcp-port"));
    config.tcpHost = opts.get("tcp-host");
    config.maxQueue =
        static_cast<std::size_t>(opts.getInt("max-queue"));
    config.cacheBytes =
        static_cast<std::uint64_t>(opts.getInt("cache-bytes"));
    config.cacheDir = opts.get("cache-dir");
    config.jobs = static_cast<std::size_t>(opts.getInt("jobs"));
    config.maxFrameBytes =
        static_cast<std::uint32_t>(opts.getInt("max-frame-bytes"));
    config.metricsOut = opts.get("metrics-out");
    config.metricsIntervalMs = opts.getDouble("metrics-interval-ms");
    config.eventCapacity =
        static_cast<std::size_t>(opts.getInt("events-capacity"));
    if (config.unixPath.empty() && config.tcpPort < 0)
        didt_fatal("need --socket and/or --tcp-port");

    // Install before service threads start so they inherit the mask.
    installShutdownHandler();

    const ExperimentSetup setup = makeStandardSetup();
    serve::Server server(setup, config);
    std::string error;
    if (!server.start(&error))
        didt_fatal("didt_serve: ", error);

    if (!config.unixPath.empty())
        std::printf("didt_serve: listening on %s\n",
                    config.unixPath.c_str());
    if (config.tcpPort >= 0)
        std::printf("didt_serve: listening on %s:%d\n",
                    config.tcpHost.c_str(), server.tcpPort());
    std::printf("didt_serve: %zu jobs, queue %zu, cache budget %llu "
                "bytes%s%s\n",
                server.executor().jobs(), config.maxQueue,
                static_cast<unsigned long long>(config.cacheBytes),
                config.cacheDir.empty() ? "" : ", disk cache ",
                config.cacheDir.c_str());
    std::fflush(stdout);

    // Sleep until the shutdown self-pipe is readable, then drain.
    pollfd wake{shutdownWakeFd(), POLLIN, 0};
    while (!shutdownRequested()) {
        if (wake.fd < 0) {
            // Degraded mode (no pipe): poll the flag.
            ::usleep(50 * 1000);
            continue;
        }
        if (::poll(&wake, 1, -1) < 0 && errno != EINTR)
            break;
    }

    std::printf("didt_serve: draining...\n");
    std::fflush(stdout);
    server.requestStop();
    server.wait();

    const JsonValue stats = server.statsJson();
    std::printf("didt_serve: drained; served %s requests (%s "
                "characterizations, %s batches)\n",
                jsonNumber(stats.find("requests")->asNumber()).c_str(),
                jsonNumber(
                    stats.find("characterizations")->asNumber())
                    .c_str(),
                jsonNumber(stats.find("batches")->asNumber()).c_str());

    // Dump the retained event ring so a post-mortem of the service
    // window survives the process (the in-memory ring would not).
    const obs::EventLog::Query tail = server.events().since(0);
    if (tail.dropped != 0)
        std::printf("didt_serve: event %llu older events dropped\n",
                    static_cast<unsigned long long>(tail.dropped));
    for (const obs::Event &event : tail.events)
        std::printf("didt_serve: event #%llu %+.1fms %s %s\n",
                    static_cast<unsigned long long>(event.seq),
                    event.atMs, event.type.c_str(),
                    event.detail.c_str());
    return 0;
}
