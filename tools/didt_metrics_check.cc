/**
 * @file
 * Structural validator for didt-metrics-v1 sidecar files and for the
 * Prometheus text exposition `didt_client stats --prom` emits.
 *
 * JSON mode checks a --metrics-out file against the checked-in schema
 * (schemas/didt-metrics-v1.json): schema tag, metric member sets per
 * kind, name ordering, histogram bucket/bound consistency, and the
 * presence of the always-emitted metric names. Prometheus mode checks
 * exposition-format invariants: legal metric names, a TYPE declaration
 * preceding every sample, counters named *_total, histogram bucket
 * cumulativity, and +Inf bucket == _count with _sum present. Exits 0
 * on success so check.sh can gate on either.
 *
 *   didt_metrics_check --schema schemas/didt-metrics-v1.json \
 *                      --input metrics.json
 *   didt_client stats --prom > stats.prom
 *   didt_metrics_check --prom-input stats.prom
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "didt/didt.hh"

using namespace didt;

namespace
{

int failures = 0;

template <typename... Args>
void
fail(Args &&...args)
{
    ++failures;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    std::fprintf(stderr, "didt_metrics_check: %s\n", os.str().c_str());
}

/** The member named @p name, or null-kind reference on failure. */
const JsonValue *
member(const JsonValue &obj, const std::string &context,
       const std::string &name)
{
    const JsonValue *value = obj.find(name);
    if (value == nullptr)
        fail(context, ": missing member '", name, "'");
    return value;
}

void
checkHistogram(const JsonValue &entry, const std::string &context)
{
    const JsonValue *bounds = entry.find("bounds");
    const JsonValue *buckets = entry.find("buckets");
    const JsonValue *count = entry.find("count");
    if (bounds == nullptr || buckets == nullptr || count == nullptr)
        return; // missing members already reported
    if (buckets->items().size() != bounds->items().size() + 1)
        fail(context, ": expected ", bounds->items().size() + 1,
             " buckets for ", bounds->items().size(), " bounds, got ",
             buckets->items().size());
    double prev = -1.0e300;
    for (const JsonValue &b : bounds->items()) {
        if (b.asNumber() <= prev)
            fail(context, ": bounds not strictly ascending");
        prev = b.asNumber();
    }
    double total = 0.0;
    for (const JsonValue &b : buckets->items()) {
        if (b.asNumber() < 0.0)
            fail(context, ": negative bucket count");
        total += b.asNumber();
    }
    if (total != count->asNumber())
        fail(context, ": bucket counts sum to ", total,
             " but count says ", count->asNumber());
}

/** True for a legal exposition metric name. */
bool
legalMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name.front()))
        return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

bool
endsWith(const std::string &name, const std::string &suffix)
{
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Per-family running state while scanning histogram samples. */
struct HistogramState
{
    double lastBucket = -1.0;
    double infBucket = -1.0;
    double count = -1.0;
    bool sawSum = false;
};

/**
 * Validate Prometheus text exposition format as emitted by
 * obs::prometheusText (every family TYPE-declared before its samples,
 * including derived gauge *_max families).
 */
int
checkPrometheus(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        didt_fatal("cannot open ", path);

    std::map<std::string, std::string> types;
    std::map<std::string, HistogramState> histograms;
    std::size_t samples = 0;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string context =
            path + ":" + std::to_string(lineno);
        if (line.empty())
            continue;
        if (line.front() == '#') {
            std::istringstream is(line);
            std::string hash, keyword, family, type;
            is >> hash >> keyword;
            if (keyword != "TYPE")
                continue; // HELP or free-form comment
            is >> family >> type;
            if (!legalMetricName(family))
                fail(context, ": illegal family name '", family, "'");
            if (type != "counter" && type != "gauge" &&
                type != "histogram")
                fail(context, ": unknown type '", type, "'");
            if (type == "counter" && !endsWith(family, "_total"))
                fail(context, ": counter '", family,
                     "' does not end in _total");
            if (!types.emplace(family, type).second)
                fail(context, ": family '", family, "' redeclared");
            continue;
        }

        // A sample: name[{labels}] value
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        if (space == std::string::npos) {
            fail(context, ": sample has no value");
            continue;
        }
        const std::string name =
            line.substr(0, std::min(brace, space));
        std::string labels;
        std::string rest;
        if (brace != std::string::npos && brace < space) {
            const std::size_t close = line.find('}', brace);
            if (close == std::string::npos) {
                fail(context, ": unterminated label set");
                continue;
            }
            labels = line.substr(brace + 1, close - brace - 1);
            rest = line.substr(close + 1);
        } else {
            rest = line.substr(space);
        }
        if (!legalMetricName(name)) {
            fail(context, ": illegal metric name '", name, "'");
            continue;
        }
        double value = 0.0;
        try {
            std::size_t consumed = 0;
            value = std::stod(rest, &consumed);
            while (consumed < rest.size() &&
                   (rest[consumed] == ' ' || rest[consumed] == '\r'))
                ++consumed;
            if (consumed != rest.size())
                fail(context, ": trailing junk after value");
        } catch (const std::exception &) {
            fail(context, ": unparseable value '", rest, "'");
            continue;
        }
        ++samples;

        // Resolve the declaring family: exact for counters/gauges,
        // base name for histogram _bucket/_sum/_count series.
        std::string family = name;
        std::string series;
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string base =
                endsWith(name, suffix) && name.size() > strlen(suffix)
                    ? name.substr(0, name.size() - strlen(suffix))
                    : std::string();
            auto it = types.find(base);
            if (!base.empty() && it != types.end() &&
                it->second == "histogram") {
                family = base;
                series = suffix;
                break;
            }
        }
        const auto type = types.find(family);
        if (type == types.end()) {
            fail(context, ": sample '", name,
                 "' has no preceding TYPE declaration");
            continue;
        }
        if (type->second != "histogram") {
            if (!labels.empty())
                fail(context, ": unexpected labels on '", name, "'");
            continue;
        }
        HistogramState &state = histograms[family];
        if (series == "_bucket") {
            if (labels.find("le=\"") == std::string::npos) {
                fail(context, ": bucket without le label");
                continue;
            }
            if (value < state.lastBucket)
                fail(context, ": bucket counts not cumulative");
            state.lastBucket = value;
            if (labels.find("le=\"+Inf\"") != std::string::npos)
                state.infBucket = value;
        } else if (series == "_sum") {
            state.sawSum = true;
        } else if (series == "_count") {
            state.count = value;
        } else {
            fail(context, ": bare sample '", name,
                 "' for histogram family");
        }
    }

    for (const auto &[family, type] : types) {
        if (type != "histogram")
            continue;
        const auto it = histograms.find(family);
        if (it == histograms.end()) {
            fail(path, ": histogram '", family, "' has no samples");
            continue;
        }
        const HistogramState &state = it->second;
        if (state.infBucket < 0.0)
            fail(path, ": histogram '", family,
                 "' is missing its +Inf bucket");
        if (!state.sawSum)
            fail(path, ": histogram '", family, "' is missing _sum");
        if (state.count < 0.0)
            fail(path, ": histogram '", family, "' is missing _count");
        if (state.infBucket >= 0.0 && state.count >= 0.0 &&
            state.infBucket != state.count)
            fail(path, ": histogram '", family, "' +Inf bucket ",
                 state.infBucket, " != _count ", state.count);
    }

    if (failures != 0) {
        std::fprintf(stderr, "didt_metrics_check: FAILED (%d errors)\n",
                     failures);
        return 1;
    }
    std::printf("didt_metrics_check: OK (%zu families, %zu samples)\n",
                types.size(), samples);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("schema", "schemas/didt-metrics-v1.json",
                 "schema description to validate against");
    opts.declare("input", "", "metrics JSON file to validate");
    opts.declare("prom-input", "",
                 "Prometheus text exposition file to validate "
                 "(didt_client stats --prom output)");
    opts.parse(argc, argv);
    if (const std::string prom = opts.get("prom-input");
        !prom.empty()) {
        if (!opts.get("input").empty())
            didt_fatal("--input and --prom-input are exclusive");
        return checkPrometheus(prom);
    }
    if (opts.get("input").empty())
        didt_fatal("--input or --prom-input is required");

    const JsonValue schema = readJsonFile(opts.get("schema"));
    const JsonValue doc = readJsonFile(opts.get("input"));

    const JsonValue *tag = member(doc, "document", "schema");
    const JsonValue *expected_tag = member(schema, "schema", "schema");
    if (tag != nullptr && expected_tag != nullptr &&
        tag->asString() != expected_tag->asString())
        fail("document: schema is '", tag->asString(), "', expected '",
             expected_tag->asString(), "'");

    const JsonValue *required_members =
        member(schema, "schema", "required_members");
    const JsonValue *metrics = member(doc, "document", "metrics");
    if (required_members == nullptr || metrics == nullptr) {
        std::fprintf(stderr, "didt_metrics_check: FAILED (%d errors)\n",
                     failures);
        return 1;
    }

    std::set<std::string> seen;
    std::string prev_name;
    for (const JsonValue &entry : metrics->items()) {
        const JsonValue *name = entry.find("name");
        const std::string context =
            name != nullptr ? name->asString() : "<unnamed metric>";
        if (name == nullptr) {
            fail(context, ": missing member 'name'");
            continue;
        }
        if (context <= prev_name && !prev_name.empty())
            fail(context, ": metrics not sorted by name (follows '",
                 prev_name, "')");
        prev_name = context;
        seen.insert(context);

        const JsonValue *kind = member(entry, context, "kind");
        if (kind == nullptr)
            continue;
        const JsonValue *members = required_members->find(kind->asString());
        if (members == nullptr) {
            fail(context, ": unknown kind '", kind->asString(), "'");
            continue;
        }
        for (const JsonValue &required : members->items())
            member(entry, context, required.asString());
        if (kind->asString() == "histogram")
            checkHistogram(entry, context);
    }

    if (const JsonValue *required = schema.find("required_metrics")) {
        for (const JsonValue &name : required->items())
            if (seen.find(name.asString()) == seen.end())
                fail("document: required metric '", name.asString(),
                     "' is absent");
    }

    if (failures != 0) {
        std::fprintf(stderr, "didt_metrics_check: FAILED (%d errors)\n",
                     failures);
        return 1;
    }
    std::printf("didt_metrics_check: OK (%zu metrics)\n",
                metrics->items().size());
    return 0;
}
