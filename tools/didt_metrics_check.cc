/**
 * @file
 * Structural validator for didt-metrics-v1 sidecar files.
 *
 * Checks a --metrics-out file against the checked-in schema
 * (schemas/didt-metrics-v1.json): schema tag, metric member sets per
 * kind, name ordering, histogram bucket/bound consistency, and the
 * presence of the always-emitted metric names. Exits 0 on success so
 * check.sh can gate on it.
 *
 *   didt_metrics_check --schema schemas/didt-metrics-v1.json \
 *                      --input metrics.json
 */

#include <cstdio>
#include <set>
#include <sstream>
#include <string>

#include "didt/didt.hh"

using namespace didt;

namespace
{

int failures = 0;

template <typename... Args>
void
fail(Args &&...args)
{
    ++failures;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    std::fprintf(stderr, "didt_metrics_check: %s\n", os.str().c_str());
}

/** The member named @p name, or null-kind reference on failure. */
const JsonValue *
member(const JsonValue &obj, const std::string &context,
       const std::string &name)
{
    const JsonValue *value = obj.find(name);
    if (value == nullptr)
        fail(context, ": missing member '", name, "'");
    return value;
}

void
checkHistogram(const JsonValue &entry, const std::string &context)
{
    const JsonValue *bounds = entry.find("bounds");
    const JsonValue *buckets = entry.find("buckets");
    const JsonValue *count = entry.find("count");
    if (bounds == nullptr || buckets == nullptr || count == nullptr)
        return; // missing members already reported
    if (buckets->items().size() != bounds->items().size() + 1)
        fail(context, ": expected ", bounds->items().size() + 1,
             " buckets for ", bounds->items().size(), " bounds, got ",
             buckets->items().size());
    double prev = -1.0e300;
    for (const JsonValue &b : bounds->items()) {
        if (b.asNumber() <= prev)
            fail(context, ": bounds not strictly ascending");
        prev = b.asNumber();
    }
    double total = 0.0;
    for (const JsonValue &b : buckets->items()) {
        if (b.asNumber() < 0.0)
            fail(context, ": negative bucket count");
        total += b.asNumber();
    }
    if (total != count->asNumber())
        fail(context, ": bucket counts sum to ", total,
             " but count says ", count->asNumber());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.declare("schema", "schemas/didt-metrics-v1.json",
                 "schema description to validate against");
    opts.declare("input", "", "metrics JSON file to validate");
    opts.parse(argc, argv);
    if (opts.get("input").empty())
        didt_fatal("--input is required");

    const JsonValue schema = readJsonFile(opts.get("schema"));
    const JsonValue doc = readJsonFile(opts.get("input"));

    const JsonValue *tag = member(doc, "document", "schema");
    const JsonValue *expected_tag = member(schema, "schema", "schema");
    if (tag != nullptr && expected_tag != nullptr &&
        tag->asString() != expected_tag->asString())
        fail("document: schema is '", tag->asString(), "', expected '",
             expected_tag->asString(), "'");

    const JsonValue *required_members =
        member(schema, "schema", "required_members");
    const JsonValue *metrics = member(doc, "document", "metrics");
    if (required_members == nullptr || metrics == nullptr) {
        std::fprintf(stderr, "didt_metrics_check: FAILED (%d errors)\n",
                     failures);
        return 1;
    }

    std::set<std::string> seen;
    std::string prev_name;
    for (const JsonValue &entry : metrics->items()) {
        const JsonValue *name = entry.find("name");
        const std::string context =
            name != nullptr ? name->asString() : "<unnamed metric>";
        if (name == nullptr) {
            fail(context, ": missing member 'name'");
            continue;
        }
        if (context <= prev_name && !prev_name.empty())
            fail(context, ": metrics not sorted by name (follows '",
                 prev_name, "')");
        prev_name = context;
        seen.insert(context);

        const JsonValue *kind = member(entry, context, "kind");
        if (kind == nullptr)
            continue;
        const JsonValue *members = required_members->find(kind->asString());
        if (members == nullptr) {
            fail(context, ": unknown kind '", kind->asString(), "'");
            continue;
        }
        for (const JsonValue &required : members->items())
            member(entry, context, required.asString());
        if (kind->asString() == "histogram")
            checkHistogram(entry, context);
    }

    if (const JsonValue *required = schema.find("required_metrics")) {
        for (const JsonValue &name : required->items())
            if (seen.find(name.asString()) == seen.end())
                fail("document: required metric '", name.asString(),
                     "' is absent");
    }

    if (failures != 0) {
        std::fprintf(stderr, "didt_metrics_check: FAILED (%d errors)\n",
                     failures);
        return 1;
    }
    std::printf("didt_metrics_check: OK (%zu metrics)\n",
                metrics->items().size());
    return 0;
}
