# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/wavelet_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fourier_modwt_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/multistage_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
