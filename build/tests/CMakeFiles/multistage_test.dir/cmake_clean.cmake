file(REMOVE_RECURSE
  "CMakeFiles/multistage_test.dir/multistage_test.cc.o"
  "CMakeFiles/multistage_test.dir/multistage_test.cc.o.d"
  "multistage_test"
  "multistage_test.pdb"
  "multistage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
