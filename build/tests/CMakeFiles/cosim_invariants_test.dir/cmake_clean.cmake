file(REMOVE_RECURSE
  "CMakeFiles/cosim_invariants_test.dir/cosim_invariants_test.cc.o"
  "CMakeFiles/cosim_invariants_test.dir/cosim_invariants_test.cc.o.d"
  "cosim_invariants_test"
  "cosim_invariants_test.pdb"
  "cosim_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
