# Empty dependencies file for fourier_modwt_test.
# This may be replaced when dependencies are built.
