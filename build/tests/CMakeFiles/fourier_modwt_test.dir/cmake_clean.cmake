file(REMOVE_RECURSE
  "CMakeFiles/fourier_modwt_test.dir/fourier_modwt_test.cc.o"
  "CMakeFiles/fourier_modwt_test.dir/fourier_modwt_test.cc.o.d"
  "fourier_modwt_test"
  "fourier_modwt_test.pdb"
  "fourier_modwt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourier_modwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
