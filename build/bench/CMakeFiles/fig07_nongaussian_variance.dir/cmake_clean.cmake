file(REMOVE_RECURSE
  "CMakeFiles/fig07_nongaussian_variance.dir/fig07_nongaussian_variance.cc.o"
  "CMakeFiles/fig07_nongaussian_variance.dir/fig07_nongaussian_variance.cc.o.d"
  "fig07_nongaussian_variance"
  "fig07_nongaussian_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nongaussian_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
