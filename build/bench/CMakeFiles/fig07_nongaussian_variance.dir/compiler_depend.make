# Empty compiler generated dependencies file for fig07_nongaussian_variance.
# This may be replaced when dependencies are built.
