# Empty compiler generated dependencies file for fig08_level_truncation.
# This may be replaced when dependencies are built.
