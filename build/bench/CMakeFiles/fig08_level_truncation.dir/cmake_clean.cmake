file(REMOVE_RECURSE
  "CMakeFiles/fig08_level_truncation.dir/fig08_level_truncation.cc.o"
  "CMakeFiles/fig08_level_truncation.dir/fig08_level_truncation.cc.o.d"
  "fig08_level_truncation"
  "fig08_level_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_level_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
