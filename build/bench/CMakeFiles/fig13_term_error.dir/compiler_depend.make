# Empty compiler generated dependencies file for fig13_term_error.
# This may be replaced when dependencies are built.
