file(REMOVE_RECURSE
  "CMakeFiles/fig13_term_error.dir/fig13_term_error.cc.o"
  "CMakeFiles/fig13_term_error.dir/fig13_term_error.cc.o.d"
  "fig13_term_error"
  "fig13_term_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_term_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
