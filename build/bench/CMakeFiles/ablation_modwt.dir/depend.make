# Empty dependencies file for ablation_modwt.
# This may be replaced when dependencies are built.
