file(REMOVE_RECURSE
  "CMakeFiles/ablation_modwt.dir/ablation_modwt.cc.o"
  "CMakeFiles/ablation_modwt.dir/ablation_modwt.cc.o.d"
  "ablation_modwt"
  "ablation_modwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
