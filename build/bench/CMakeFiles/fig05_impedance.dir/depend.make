# Empty dependencies file for fig05_impedance.
# This may be replaced when dependencies are built.
