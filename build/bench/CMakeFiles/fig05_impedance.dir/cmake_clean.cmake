file(REMOVE_RECURSE
  "CMakeFiles/fig05_impedance.dir/fig05_impedance.cc.o"
  "CMakeFiles/fig05_impedance.dir/fig05_impedance.cc.o.d"
  "fig05_impedance"
  "fig05_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
