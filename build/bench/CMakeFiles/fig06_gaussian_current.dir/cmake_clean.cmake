file(REMOVE_RECURSE
  "CMakeFiles/fig06_gaussian_current.dir/fig06_gaussian_current.cc.o"
  "CMakeFiles/fig06_gaussian_current.dir/fig06_gaussian_current.cc.o.d"
  "fig06_gaussian_current"
  "fig06_gaussian_current.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gaussian_current.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
