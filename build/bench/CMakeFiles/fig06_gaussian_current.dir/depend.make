# Empty dependencies file for fig06_gaussian_current.
# This may be replaced when dependencies are built.
