# Empty dependencies file for ablation_basis.
# This may be replaced when dependencies are built.
