file(REMOVE_RECURSE
  "CMakeFiles/ablation_basis.dir/ablation_basis.cc.o"
  "CMakeFiles/ablation_basis.dir/ablation_basis.cc.o.d"
  "ablation_basis"
  "ablation_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
