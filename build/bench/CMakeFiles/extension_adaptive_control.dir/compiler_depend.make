# Empty compiler generated dependencies file for extension_adaptive_control.
# This may be replaced when dependencies are built.
