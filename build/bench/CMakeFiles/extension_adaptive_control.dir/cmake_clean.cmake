file(REMOVE_RECURSE
  "CMakeFiles/extension_adaptive_control.dir/extension_adaptive_control.cc.o"
  "CMakeFiles/extension_adaptive_control.dir/extension_adaptive_control.cc.o.d"
  "extension_adaptive_control"
  "extension_adaptive_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_adaptive_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
