# Empty dependencies file for fig04_scalogram.
# This may be replaced when dependencies are built.
