file(REMOVE_RECURSE
  "CMakeFiles/fig04_scalogram.dir/fig04_scalogram.cc.o"
  "CMakeFiles/fig04_scalogram.dir/fig04_scalogram.cc.o.d"
  "fig04_scalogram"
  "fig04_scalogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_scalogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
