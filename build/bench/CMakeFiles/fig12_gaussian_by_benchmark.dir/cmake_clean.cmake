file(REMOVE_RECURSE
  "CMakeFiles/fig12_gaussian_by_benchmark.dir/fig12_gaussian_by_benchmark.cc.o"
  "CMakeFiles/fig12_gaussian_by_benchmark.dir/fig12_gaussian_by_benchmark.cc.o.d"
  "fig12_gaussian_by_benchmark"
  "fig12_gaussian_by_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_gaussian_by_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
