# Empty dependencies file for fig12_gaussian_by_benchmark.
# This may be replaced when dependencies are built.
