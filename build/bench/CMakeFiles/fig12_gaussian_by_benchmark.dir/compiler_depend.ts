# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_gaussian_by_benchmark.
