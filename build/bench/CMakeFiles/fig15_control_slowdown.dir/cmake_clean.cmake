file(REMOVE_RECURSE
  "CMakeFiles/fig15_control_slowdown.dir/fig15_control_slowdown.cc.o"
  "CMakeFiles/fig15_control_slowdown.dir/fig15_control_slowdown.cc.o.d"
  "fig15_control_slowdown"
  "fig15_control_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_control_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
