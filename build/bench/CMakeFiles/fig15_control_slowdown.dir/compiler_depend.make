# Empty compiler generated dependencies file for fig15_control_slowdown.
# This may be replaced when dependencies are built.
