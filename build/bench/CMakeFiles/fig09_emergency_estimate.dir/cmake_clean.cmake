file(REMOVE_RECURSE
  "CMakeFiles/fig09_emergency_estimate.dir/fig09_emergency_estimate.cc.o"
  "CMakeFiles/fig09_emergency_estimate.dir/fig09_emergency_estimate.cc.o.d"
  "fig09_emergency_estimate"
  "fig09_emergency_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_emergency_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
