# Empty compiler generated dependencies file for fig09_emergency_estimate.
# This may be replaced when dependencies are built.
