
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_emergency_estimate.cc" "bench/CMakeFiles/fig09_emergency_estimate.dir/fig09_emergency_estimate.cc.o" "gcc" "bench/CMakeFiles/fig09_emergency_estimate.dir/fig09_emergency_estimate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/didt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/didt_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/didt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/didt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/didt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/didt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/didt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
