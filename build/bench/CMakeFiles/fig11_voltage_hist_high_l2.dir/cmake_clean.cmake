file(REMOVE_RECURSE
  "CMakeFiles/fig11_voltage_hist_high_l2.dir/fig11_voltage_hist_high_l2.cc.o"
  "CMakeFiles/fig11_voltage_hist_high_l2.dir/fig11_voltage_hist_high_l2.cc.o.d"
  "fig11_voltage_hist_high_l2"
  "fig11_voltage_hist_high_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_voltage_hist_high_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
