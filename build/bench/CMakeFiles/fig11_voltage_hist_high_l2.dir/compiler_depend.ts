# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_voltage_hist_high_l2.
