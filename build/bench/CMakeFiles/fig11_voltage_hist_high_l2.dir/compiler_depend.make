# Empty compiler generated dependencies file for fig11_voltage_hist_high_l2.
# This may be replaced when dependencies are built.
