# Empty dependencies file for extension_multistage.
# This may be replaced when dependencies are built.
