file(REMOVE_RECURSE
  "CMakeFiles/extension_multistage.dir/extension_multistage.cc.o"
  "CMakeFiles/extension_multistage.dir/extension_multistage.cc.o.d"
  "extension_multistage"
  "extension_multistage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multistage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
