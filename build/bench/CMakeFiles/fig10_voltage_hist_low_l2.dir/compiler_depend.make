# Empty compiler generated dependencies file for fig10_voltage_hist_low_l2.
# This may be replaced when dependencies are built.
