file(REMOVE_RECURSE
  "CMakeFiles/fig10_voltage_hist_low_l2.dir/fig10_voltage_hist_low_l2.cc.o"
  "CMakeFiles/fig10_voltage_hist_low_l2.dir/fig10_voltage_hist_low_l2.cc.o.d"
  "fig10_voltage_hist_low_l2"
  "fig10_voltage_hist_low_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_voltage_hist_low_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
