# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_voltage_hist_low_l2.
