file(REMOVE_RECURSE
  "CMakeFiles/motivation_fourier_vs_wavelet.dir/motivation_fourier_vs_wavelet.cc.o"
  "CMakeFiles/motivation_fourier_vs_wavelet.dir/motivation_fourier_vs_wavelet.cc.o.d"
  "motivation_fourier_vs_wavelet"
  "motivation_fourier_vs_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_fourier_vs_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
