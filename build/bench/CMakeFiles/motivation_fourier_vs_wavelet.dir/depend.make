# Empty dependencies file for motivation_fourier_vs_wavelet.
# This may be replaced when dependencies are built.
