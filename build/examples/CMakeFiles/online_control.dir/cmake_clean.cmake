file(REMOVE_RECURSE
  "CMakeFiles/online_control.dir/online_control.cpp.o"
  "CMakeFiles/online_control.dir/online_control.cpp.o.d"
  "online_control"
  "online_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
