# Empty compiler generated dependencies file for online_control.
# This may be replaced when dependencies are built.
