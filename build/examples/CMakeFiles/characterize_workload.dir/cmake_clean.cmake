file(REMOVE_RECURSE
  "CMakeFiles/characterize_workload.dir/characterize_workload.cpp.o"
  "CMakeFiles/characterize_workload.dir/characterize_workload.cpp.o.d"
  "characterize_workload"
  "characterize_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
