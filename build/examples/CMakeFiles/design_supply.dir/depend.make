# Empty dependencies file for design_supply.
# This may be replaced when dependencies are built.
