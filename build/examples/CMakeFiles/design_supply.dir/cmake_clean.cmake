file(REMOVE_RECURSE
  "CMakeFiles/design_supply.dir/design_supply.cpp.o"
  "CMakeFiles/design_supply.dir/design_supply.cpp.o.d"
  "design_supply"
  "design_supply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_supply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
