file(REMOVE_RECURSE
  "libdidt_sim.a"
)
