# Empty dependencies file for didt_sim.
# This may be replaced when dependencies are built.
