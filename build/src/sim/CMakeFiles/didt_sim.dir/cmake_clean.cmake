file(REMOVE_RECURSE
  "CMakeFiles/didt_sim.dir/bpred.cc.o"
  "CMakeFiles/didt_sim.dir/bpred.cc.o.d"
  "CMakeFiles/didt_sim.dir/cache.cc.o"
  "CMakeFiles/didt_sim.dir/cache.cc.o.d"
  "CMakeFiles/didt_sim.dir/config.cc.o"
  "CMakeFiles/didt_sim.dir/config.cc.o.d"
  "CMakeFiles/didt_sim.dir/fu_pool.cc.o"
  "CMakeFiles/didt_sim.dir/fu_pool.cc.o.d"
  "CMakeFiles/didt_sim.dir/power_model.cc.o"
  "CMakeFiles/didt_sim.dir/power_model.cc.o.d"
  "CMakeFiles/didt_sim.dir/processor.cc.o"
  "CMakeFiles/didt_sim.dir/processor.cc.o.d"
  "libdidt_sim.a"
  "libdidt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
