
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bpred.cc" "src/sim/CMakeFiles/didt_sim.dir/bpred.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/bpred.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/didt_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/didt_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/fu_pool.cc" "src/sim/CMakeFiles/didt_sim.dir/fu_pool.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/fu_pool.cc.o.d"
  "/root/repo/src/sim/power_model.cc" "src/sim/CMakeFiles/didt_sim.dir/power_model.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/power_model.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/didt_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/didt_sim.dir/processor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/didt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/didt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
