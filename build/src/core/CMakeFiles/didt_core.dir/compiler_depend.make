# Empty compiler generated dependencies file for didt_core.
# This may be replaced when dependencies are built.
