file(REMOVE_RECURSE
  "CMakeFiles/didt_core.dir/controller.cc.o"
  "CMakeFiles/didt_core.dir/controller.cc.o.d"
  "CMakeFiles/didt_core.dir/cosim.cc.o"
  "CMakeFiles/didt_core.dir/cosim.cc.o.d"
  "CMakeFiles/didt_core.dir/emergency_estimator.cc.o"
  "CMakeFiles/didt_core.dir/emergency_estimator.cc.o.d"
  "CMakeFiles/didt_core.dir/experiment.cc.o"
  "CMakeFiles/didt_core.dir/experiment.cc.o.d"
  "CMakeFiles/didt_core.dir/monitor.cc.o"
  "CMakeFiles/didt_core.dir/monitor.cc.o.d"
  "CMakeFiles/didt_core.dir/online_characterizer.cc.o"
  "CMakeFiles/didt_core.dir/online_characterizer.cc.o.d"
  "CMakeFiles/didt_core.dir/variance_model.cc.o"
  "CMakeFiles/didt_core.dir/variance_model.cc.o.d"
  "CMakeFiles/didt_core.dir/window_analysis.cc.o"
  "CMakeFiles/didt_core.dir/window_analysis.cc.o.d"
  "libdidt_core.a"
  "libdidt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
