file(REMOVE_RECURSE
  "libdidt_core.a"
)
