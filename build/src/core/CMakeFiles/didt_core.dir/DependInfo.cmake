
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/didt_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/controller.cc.o.d"
  "/root/repo/src/core/cosim.cc" "src/core/CMakeFiles/didt_core.dir/cosim.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/cosim.cc.o.d"
  "/root/repo/src/core/emergency_estimator.cc" "src/core/CMakeFiles/didt_core.dir/emergency_estimator.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/emergency_estimator.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/didt_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/didt_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/online_characterizer.cc" "src/core/CMakeFiles/didt_core.dir/online_characterizer.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/online_characterizer.cc.o.d"
  "/root/repo/src/core/variance_model.cc" "src/core/CMakeFiles/didt_core.dir/variance_model.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/variance_model.cc.o.d"
  "/root/repo/src/core/window_analysis.cc" "src/core/CMakeFiles/didt_core.dir/window_analysis.cc.o" "gcc" "src/core/CMakeFiles/didt_core.dir/window_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/didt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/didt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/didt_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/didt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/didt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/didt_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
