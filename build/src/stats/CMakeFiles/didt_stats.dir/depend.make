# Empty dependencies file for didt_stats.
# This may be replaced when dependencies are built.
