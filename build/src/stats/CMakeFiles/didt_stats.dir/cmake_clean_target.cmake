file(REMOVE_RECURSE
  "libdidt_stats.a"
)
