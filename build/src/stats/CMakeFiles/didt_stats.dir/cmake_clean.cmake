file(REMOVE_RECURSE
  "CMakeFiles/didt_stats.dir/chi_square.cc.o"
  "CMakeFiles/didt_stats.dir/chi_square.cc.o.d"
  "CMakeFiles/didt_stats.dir/gaussian.cc.o"
  "CMakeFiles/didt_stats.dir/gaussian.cc.o.d"
  "CMakeFiles/didt_stats.dir/histogram.cc.o"
  "CMakeFiles/didt_stats.dir/histogram.cc.o.d"
  "CMakeFiles/didt_stats.dir/running_stats.cc.o"
  "CMakeFiles/didt_stats.dir/running_stats.cc.o.d"
  "libdidt_stats.a"
  "libdidt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
