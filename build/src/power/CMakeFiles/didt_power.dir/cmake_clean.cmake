file(REMOVE_RECURSE
  "CMakeFiles/didt_power.dir/convolution.cc.o"
  "CMakeFiles/didt_power.dir/convolution.cc.o.d"
  "CMakeFiles/didt_power.dir/multistage.cc.o"
  "CMakeFiles/didt_power.dir/multistage.cc.o.d"
  "CMakeFiles/didt_power.dir/stimulus.cc.o"
  "CMakeFiles/didt_power.dir/stimulus.cc.o.d"
  "CMakeFiles/didt_power.dir/supply_network.cc.o"
  "CMakeFiles/didt_power.dir/supply_network.cc.o.d"
  "CMakeFiles/didt_power.dir/trace_io.cc.o"
  "CMakeFiles/didt_power.dir/trace_io.cc.o.d"
  "libdidt_power.a"
  "libdidt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
