
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/convolution.cc" "src/power/CMakeFiles/didt_power.dir/convolution.cc.o" "gcc" "src/power/CMakeFiles/didt_power.dir/convolution.cc.o.d"
  "/root/repo/src/power/multistage.cc" "src/power/CMakeFiles/didt_power.dir/multistage.cc.o" "gcc" "src/power/CMakeFiles/didt_power.dir/multistage.cc.o.d"
  "/root/repo/src/power/stimulus.cc" "src/power/CMakeFiles/didt_power.dir/stimulus.cc.o" "gcc" "src/power/CMakeFiles/didt_power.dir/stimulus.cc.o.d"
  "/root/repo/src/power/supply_network.cc" "src/power/CMakeFiles/didt_power.dir/supply_network.cc.o" "gcc" "src/power/CMakeFiles/didt_power.dir/supply_network.cc.o.d"
  "/root/repo/src/power/trace_io.cc" "src/power/CMakeFiles/didt_power.dir/trace_io.cc.o" "gcc" "src/power/CMakeFiles/didt_power.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/didt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/didt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
