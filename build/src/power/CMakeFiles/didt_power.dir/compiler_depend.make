# Empty compiler generated dependencies file for didt_power.
# This may be replaced when dependencies are built.
