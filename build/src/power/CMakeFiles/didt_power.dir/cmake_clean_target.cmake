file(REMOVE_RECURSE
  "libdidt_power.a"
)
