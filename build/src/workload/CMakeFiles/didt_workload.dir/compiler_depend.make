# Empty compiler generated dependencies file for didt_workload.
# This may be replaced when dependencies are built.
