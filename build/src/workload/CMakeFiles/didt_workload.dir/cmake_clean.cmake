file(REMOVE_RECURSE
  "CMakeFiles/didt_workload.dir/generator.cc.o"
  "CMakeFiles/didt_workload.dir/generator.cc.o.d"
  "CMakeFiles/didt_workload.dir/profile.cc.o"
  "CMakeFiles/didt_workload.dir/profile.cc.o.d"
  "CMakeFiles/didt_workload.dir/virus.cc.o"
  "CMakeFiles/didt_workload.dir/virus.cc.o.d"
  "libdidt_workload.a"
  "libdidt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
