file(REMOVE_RECURSE
  "libdidt_workload.a"
)
