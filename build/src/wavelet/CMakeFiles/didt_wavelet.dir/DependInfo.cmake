
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/basis.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/basis.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/basis.cc.o.d"
  "/root/repo/src/wavelet/denoise.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/denoise.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/denoise.cc.o.d"
  "/root/repo/src/wavelet/dwt.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/dwt.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/dwt.cc.o.d"
  "/root/repo/src/wavelet/fourier.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/fourier.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/fourier.cc.o.d"
  "/root/repo/src/wavelet/modwt.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/modwt.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/modwt.cc.o.d"
  "/root/repo/src/wavelet/packet.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/packet.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/packet.cc.o.d"
  "/root/repo/src/wavelet/scalogram.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/scalogram.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/scalogram.cc.o.d"
  "/root/repo/src/wavelet/subband.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/subband.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/subband.cc.o.d"
  "/root/repo/src/wavelet/wavelet_stats.cc" "src/wavelet/CMakeFiles/didt_wavelet.dir/wavelet_stats.cc.o" "gcc" "src/wavelet/CMakeFiles/didt_wavelet.dir/wavelet_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/didt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/didt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
