file(REMOVE_RECURSE
  "CMakeFiles/didt_wavelet.dir/basis.cc.o"
  "CMakeFiles/didt_wavelet.dir/basis.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/denoise.cc.o"
  "CMakeFiles/didt_wavelet.dir/denoise.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/dwt.cc.o"
  "CMakeFiles/didt_wavelet.dir/dwt.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/fourier.cc.o"
  "CMakeFiles/didt_wavelet.dir/fourier.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/modwt.cc.o"
  "CMakeFiles/didt_wavelet.dir/modwt.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/packet.cc.o"
  "CMakeFiles/didt_wavelet.dir/packet.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/scalogram.cc.o"
  "CMakeFiles/didt_wavelet.dir/scalogram.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/subband.cc.o"
  "CMakeFiles/didt_wavelet.dir/subband.cc.o.d"
  "CMakeFiles/didt_wavelet.dir/wavelet_stats.cc.o"
  "CMakeFiles/didt_wavelet.dir/wavelet_stats.cc.o.d"
  "libdidt_wavelet.a"
  "libdidt_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
