file(REMOVE_RECURSE
  "libdidt_wavelet.a"
)
