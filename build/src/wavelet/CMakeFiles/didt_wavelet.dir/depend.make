# Empty dependencies file for didt_wavelet.
# This may be replaced when dependencies are built.
