file(REMOVE_RECURSE
  "CMakeFiles/didt_util.dir/csv.cc.o"
  "CMakeFiles/didt_util.dir/csv.cc.o.d"
  "CMakeFiles/didt_util.dir/logging.cc.o"
  "CMakeFiles/didt_util.dir/logging.cc.o.d"
  "CMakeFiles/didt_util.dir/options.cc.o"
  "CMakeFiles/didt_util.dir/options.cc.o.d"
  "CMakeFiles/didt_util.dir/rng.cc.o"
  "CMakeFiles/didt_util.dir/rng.cc.o.d"
  "libdidt_util.a"
  "libdidt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/didt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
