# Empty dependencies file for didt_util.
# This may be replaced when dependencies are built.
