file(REMOVE_RECURSE
  "libdidt_util.a"
)
