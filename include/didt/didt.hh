/**
 * @file
 * Umbrella header for the wavelet dI/dt characterization library.
 *
 * Public API surface, by subsystem:
 *  - wavelet/  : Haar/Daubechies DWT, subbands, scalograms, statistics
 *  - power/    : second-order supply network, convolution, stimuli
 *  - sim/      : cycle-level out-of-order processor with Wattch-style
 *                power accounting (paper Table 1 machine)
 *  - workload/ : synthetic SPEC CPU2000 profiles and trace generation
 *  - core/     : offline wavelet variance characterization and online
 *                wavelet-convolution dI/dt control (the paper's
 *                contribution)
 *  - runner/   : parallel experiment campaigns (plan / executor split)
 *                with a content-addressed trace cache and structured
 *                JSON/CSV results
 *  - serve/    : the didt_serve daemon — characterization requests
 *                over Unix/TCP sockets, request batching, and the
 *                shared byte-budgeted trace-cache tier
 *  - obs/      : metrics registry, scoped timers, and Chrome trace
 *                spans across all of the above
 *  - verify/   : deterministic fault-injection failpoints and the
 *                online-vs-reference differential oracle
 */

#ifndef DIDT_DIDT_HH
#define DIDT_DIDT_HH

#include "core/controller.hh"
#include "core/chip_cosim.hh"
#include "core/cosim.hh"
#include "core/emergency_estimator.hh"
#include "core/experiment.hh"
#include "core/monitor.hh"
#include "core/online_characterizer.hh"
#include "core/variance_model.hh"
#include "core/window_analysis.hh"
#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/scoped_timer.hh"
#include "obs/trace_event.hh"
#include "power/convolution.hh"
#include "runner/campaign.hh"
#include "runner/executor.hh"
#include "runner/plan.hh"
#include "runner/result_json.hh"
#include "runner/thread_pool.hh"
#include "runner/trace_repository.hh"
#include "serve/batch.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "power/multistage.hh"
#include "power/stimulus.hh"
#include "power/supply_network.hh"
#include "power/trace_io.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/chip.hh"
#include "sim/config.hh"
#include "sim/instruction.hh"
#include "sim/power_model.hh"
#include "sim/processor.hh"
#include "stats/chi_square.hh"
#include "stats/gaussian.hh"
#include "stats/histogram.hh"
#include "stats/running_stats.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/rng.hh"
#include "util/shutdown.hh"
#include "util/types.hh"
#include "verify/failpoint.hh"
#include "verify/oracle.hh"
#include "wavelet/basis.hh"
#include "wavelet/denoise.hh"
#include "wavelet/dwt.hh"
#include "wavelet/flat_decomposition.hh"
#include "wavelet/fourier.hh"
#include "wavelet/modwt.hh"
#include "wavelet/packet.hh"
#include "wavelet/scalogram.hh"
#include "wavelet/subband.hh"
#include "wavelet/wavelet_stats.hh"
#include "workload/generator.hh"
#include "workload/mix.hh"
#include "workload/profile.hh"

#endif // DIDT_DIDT_HH
