/**
 * @file
 * Content-addressed cache of benchmark current traces.
 *
 * Generating a benchmark's per-cycle current trace (cycle-level
 * simulation of the Table-1 machine) dominates the cost of every
 * evaluation sweep, and a sweep revisits the same trace once per
 * impedance scale / analysis setting. The repository memoizes
 * benchmarkCurrentTrace() results keyed by the full content of the
 * request — every BenchmarkProfile field plus (instructions, seed,
 * trim) — so a campaign simulates each distinct workload exactly once
 * no matter how many cells share it or how many threads ask at once.
 *
 * Concurrency: the first requester of a key claims it and simulates;
 * concurrent requesters of the same key block on a shared future and
 * receive the same immutable trace. This makes the hit/miss counters
 * deterministic: simulations always equals the number of distinct
 * keys, independent of thread interleaving.
 *
 * Persistence: with a cache directory set, traces are also stored as
 * binary didt trace files named by their 64-bit content fingerprint,
 * so repeated campaign invocations skip simulation entirely. A
 * corrupt or truncated file is treated as a miss and overwritten.
 *
 * Memory budget: as a shared cross-request tier (the didt_serve
 * daemon keeps one repository alive for its whole lifetime) the
 * in-memory map can be capped with setMemoryBudgetBytes(). Completed
 * traces are tracked in LRU order; when the resident bytes exceed the
 * budget the least-recently-used complete traces are evicted (the
 * most recent one always stays, and in-flight productions are never
 * evicted). An evicted trace costs a disk load or a re-simulation on
 * its next request; callers holding shared_ptrs are unaffected.
 */

#ifndef DIDT_RUNNER_TRACE_REPOSITORY_HH
#define DIDT_RUNNER_TRACE_REPOSITORY_HH

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "util/types.hh"
#include "workload/profile.hh"

namespace didt
{

/** Parameters fully determining one benchmark current trace. */
struct TraceRequest
{
    BenchmarkProfile profile{};
    std::uint64_t instructions = 120000;
    std::uint64_t seed = 0;
    std::size_t trimWarmup = 4096;

    /**
     * Chip size. 1 (the default) is the legacy uniprocessor path:
     * the request is exactly (profile, instructions, seed, trim) and
     * keeps its historical fingerprint. With cores > 1 the request
     * describes an N-core Chip whose aggregate current is the cached
     * trace; coreProfiles/coreSeeds (both of size cores) give each
     * core its stream, and the shared-L2 parameters below shape the
     * bank-conflict model.
     */
    std::size_t cores = 1;
    std::vector<BenchmarkProfile> coreProfiles; ///< per-core, cores > 1
    std::vector<std::uint64_t> coreSeeds;       ///< per-core, cores > 1
    std::size_t l2Banks = 8;        ///< chip shared-L2 banks
    std::size_t l2BankPenalty = 4;  ///< bank-conflict stall cycles

    /**
     * SimPoint-style sampling (sim/sampling.hh). sampleSkip == 0 (the
     * default) is full-detail simulation: the request hashes exactly
     * as before sampling existed, so every unsampled request keeps its
     * historical fingerprint and on-disk cache file. With
     * sampleSkip > 0 the sampling dimensions join the key — a sampled
     * trace is a different artifact and must never alias a full one.
     */
    Cycle sampleDetail = 0;   ///< detailed cycles per window
    Cycle sampleSkip = 0;     ///< skipped cycles between windows
    Cycle sampleWarmup = 512; ///< detailed refill tail of each skip
};

/**
 * 64-bit FNV-1a fingerprint over every field of the request (profile
 * parameters included, so two profiles that differ only in a phase
 * probability hash apart). Doubles are hashed by bit pattern; the
 * simulator is deterministic, so bit-equal requests produce bit-equal
 * traces.
 */
std::uint64_t fingerprintTraceRequest(const TraceRequest &request);

/** Monotonic counters describing repository effectiveness. */
struct TraceCacheStats
{
    std::uint64_t lookups = 0;     ///< total get() calls
    std::uint64_t memoryHits = 0;  ///< served from the in-memory map
    std::uint64_t diskLoads = 0;   ///< served from the cache directory
    std::uint64_t diskStores = 0;  ///< traces written to the cache dir
    std::uint64_t diskCorrupt = 0; ///< corrupt cache files rejected
    std::uint64_t simulations = 0; ///< actually simulated
    std::uint64_t evictions = 0;   ///< traces evicted by the byte budget

    /** Field-wise sum, for aggregating per-cell deltas. */
    TraceCacheStats &operator+=(const TraceCacheStats &other);
};

/** Thread-safe memoizing store of benchmark current traces. */
class TraceRepository
{
  public:
    /**
     * @param setup experiment environment traces are simulated in
     *        (kept by reference; must outlive the repository)
     * @param cache_dir directory for binary trace persistence; empty
     *        disables the disk tier. Created on first write if absent.
     */
    explicit TraceRepository(const ExperimentSetup &setup,
                             std::string cache_dir = "");

    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /**
     * Fetch the trace for @p request, simulating it at most once per
     * repository (and, with a cache directory, at most once per
     * directory lifetime). Safe to call from any number of threads;
     * an exception during generation propagates to every waiter of
     * that key.
     *
     * @param delta when non-null, the counters this call contributed
     *        are also added to @p delta (unsynchronized: the caller
     *        owns it). Lets a multi-request consumer (the didt_serve
     *        daemon) attribute shared-repository traffic per request.
     */
    std::shared_ptr<const CurrentTrace>
    get(const TraceRequest &request, TraceCacheStats *delta = nullptr);

    /** Convenience wrapper building the request inline. */
    std::shared_ptr<const CurrentTrace>
    get(const BenchmarkProfile &profile, std::uint64_t instructions,
        std::uint64_t seed = 0, std::size_t trim_warmup = 4096);

    /**
     * Cap the resident bytes of completed traces. 0 (the default)
     * disables eviction. Shrinking the budget evicts immediately. The
     * budget is approximate: the most recently completed trace is
     * always kept, even when it alone exceeds the budget.
     */
    void setMemoryBudgetBytes(std::uint64_t bytes);

    /** The configured byte budget (0 = unlimited). */
    std::uint64_t memoryBudgetBytes() const;

    /** Bytes of completed traces currently resident in memory. */
    std::uint64_t residentBytes() const;

    /** Snapshot of the counters (consistent under concurrency). */
    TraceCacheStats stats() const;

    /** Number of traces currently resident in memory. */
    std::size_t residentTraces() const;

    /** Disk path a request would persist to ("" without a cache dir). */
    std::string cachePath(const TraceRequest &request) const;

  private:
    using TracePtr = std::shared_ptr<const CurrentTrace>;

    struct Entry
    {
        std::shared_future<TracePtr> future;
        std::uint64_t bytes = 0; ///< 0 until production completes
        bool resident = false;   ///< true once tracked in the LRU list
        std::list<std::uint64_t>::iterator lruIt; ///< valid iff resident
    };

    /** Generate (or load) the trace for one claimed key. */
    TracePtr produce(const TraceRequest &request, TraceCacheStats *delta);

    /** Move @p key to the front (MRU end) of the LRU list. */
    void touchLocked(Entry &entry);

    /** Evict LRU entries until the budget is satisfied. */
    void enforceBudgetLocked();

    const ExperimentSetup &setup_;
    const std::string cacheDir_;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, Entry> entries_;
    std::list<std::uint64_t> lru_; ///< front = most recently used
    std::uint64_t residentBytes_ = 0;
    std::uint64_t budgetBytes_ = 0;
    TraceCacheStats stats_;
};

} // namespace didt

#endif // DIDT_RUNNER_TRACE_REPOSITORY_HH
