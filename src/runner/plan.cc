#include "runner/plan.hh"

namespace didt
{

CampaignPlan
buildCampaignPlan(const CampaignSpec &spec)
{
    CampaignPlan plan;
    plan.spec = spec;
    // Materialize the all-SPEC default so the plan (and every result
    // built from it) echoes the exact benchmark list it ran. Under the
    // mixes axis the mixes list is the workload axis and the profiles
    // list stays untouched.
    if (spec.mixes.empty())
        plan.spec.profiles = spec.effectiveProfiles();

    const std::size_t workloads = plan.workloadCount();
    const std::size_t cores = plan.spec.effectiveCoreCounts().size();
    const std::size_t scales = plan.spec.impedanceScales.size();
    const std::size_t draws = plan.spec.drawCount();
    plan.order.reserve(workloads * cores * scales * draws);
    // Workloads stay innermost so the first batch of tasks covers
    // distinct workloads (priming the trace cache) before the draws —
    // which all share the same trace — queue up behind it.
    for (std::size_t si = 0; si < scales; ++si)
        for (std::size_t ci = 0; ci < cores; ++ci)
            for (std::size_t di = 0; di < draws; ++di)
                for (std::size_t pi = 0; pi < workloads; ++pi)
                    plan.order.push_back(PlanCell{pi, ci, si, di});
    return plan;
}

} // namespace didt
