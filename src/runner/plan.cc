#include "runner/plan.hh"

namespace didt
{

CampaignPlan
buildCampaignPlan(const CampaignSpec &spec)
{
    CampaignPlan plan;
    plan.spec = spec;
    // Materialize the all-SPEC default so the plan (and every result
    // built from it) echoes the exact benchmark list it ran.
    plan.spec.profiles = spec.effectiveProfiles();

    const std::size_t profiles = plan.spec.profiles.size();
    const std::size_t scales = plan.spec.impedanceScales.size();
    plan.order.reserve(profiles * scales);
    for (std::size_t si = 0; si < scales; ++si)
        for (std::size_t pi = 0; pi < profiles; ++pi)
            plan.order.push_back(PlanCell{pi, si});
    return plan;
}

} // namespace didt
