/**
 * @file
 * Declarative experiment campaigns (paper Sections 4-5 sweeps).
 *
 * A campaign describes a full characterization sweep — a benchmark
 * set crossed with impedance scales under one analysis configuration.
 * Execution follows a request / plan / execute split: the spec is
 * materialized into a CampaignPlan (runner/plan.hh) and evaluated by
 * an Executor (runner/executor.hh) that owns the ThreadPool, pulls
 * every current trace through a shared TraceRepository (each distinct
 * workload simulated exactly once), and calibrates per-impedance-scale
 * variance models in parallel on a training set built once. Results
 * are deterministic: cell values depend only on the spec, never on
 * --jobs, scheduling order, or whether the batch CLI or the didt_serve
 * daemon ran them.
 */

#ifndef DIDT_RUNNER_CAMPAIGN_HH
#define DIDT_RUNNER_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "power/variation.hh"
#include "runner/thread_pool.hh"
#include "runner/trace_repository.hh"
#include "util/types.hh"
#include "workload/profile.hh"

namespace didt
{

/** Declarative description of one characterization sweep. */
struct CampaignSpec
{
    /** Benchmarks to sweep (empty = all 26 SPEC 2000 profiles). */
    std::vector<BenchmarkProfile> profiles;

    /** Target-impedance scales (paper Section 4: 100%..150%). */
    std::vector<double> impedanceScales{1.0, 1.1, 1.2, 1.3, 1.5};

    /** Analysis window in cycles (paper: 256). */
    std::size_t windowLength = 256;

    /** Wavelet decomposition depth (paper: 8). */
    std::size_t levels = 8;

    /** Wavelet basis name for WaveletBasis::byName (paper: haar). */
    std::string basis = "haar";

    /** Low control point in volts (paper: 0.97). */
    Volt lowThreshold = 0.97;

    /** High control point in volts. */
    Volt highThreshold = 1.03;

    /** Include the correlation adjustment (Section 4.1). */
    bool useCorrelation = true;

    /** Dynamic instructions per benchmark. */
    std::uint64_t instructions = 120000;

    /** Extra workload seed. */
    std::uint64_t seed = 0;

    /** Warmup cycles trimmed from each trace. */
    std::size_t trimWarmup = 4096;

    /**
     * Chip sizes to sweep (empty = {1}, the uniprocessor). A cell with
     * cores > 1 simulates an N-core Chip: the benchmark (or mix) runs
     * on every core with deterministically derived per-core seeds, and
     * the analyzed trace is the aggregate chip current.
     */
    std::vector<std::size_t> coreCounts;

    /**
     * Workload mixes by name (see findMixByName). When non-empty the
     * mixes replace the benchmarks axis: each cell co-schedules one
     * mix across the cell's cores. When empty the benchmarks axis is
     * used (each benchmark cloned across cores when cores > 1).
     */
    std::vector<std::string> mixes;

    /** Shared-L2 banks for chip cells (power of two). */
    std::size_t l2Banks = 8;

    /** Bank-conflict penalty in cycles for chip cells. */
    std::size_t l2BankPenalty = 4;

    /**
     * SimPoint-style trace sampling (sim/sampling.hh), applied to
     * every cell's simulation. sampleSkip == 0 (the default) keeps the
     * historical full-detail behaviour — and the historical JSON
     * bytes, cache keys, and disk files. sampleSkip > 0 requires
     * sampleDetail > 0 and sampleWarmup <= sampleSkip.
     */
    Cycle sampleDetail = 0;   ///< detailed cycles per window
    Cycle sampleSkip = 0;     ///< skipped cycles between windows
    Cycle sampleWarmup = 512; ///< detailed refill tail of each skip

    /**
     * Variation-aware Monte Carlo (power/variation.hh). mcDraws == 0
     * (the default) is the nominal path: one cell per (workload,
     * cores, scale) against the calibrated network, byte-identical to
     * the historical JSON. mcDraws > 0 fans every (workload, cores,
     * scale) cell into mcDraws supply-network draws — first-class
     * cells with deterministic splitmix64-derived seeds
     * (deriveDrawSeed(mcSeed, draw)) — and the result JSON gains a
     * per-group yield-curve aggregation. Draws vary only the supply
     * network, so all draws of one workload share one simulated trace,
     * and each scale's variance model stays the nominal calibration
     * (the spread therefore measures both chip yield and model
     * robustness across corners).
     */
    std::size_t mcDraws = 0;      ///< draws per cell (0 = MC off)
    std::uint64_t mcSeed = 0;     ///< campaign-level Monte Carlo seed
    double mcSigmaR = 0.0;        ///< lognormal sigma on DC resistance
    double mcSigmaResonance = 0.0; ///< relative sigma on resonance
    double mcSigmaQ = 0.0;        ///< lognormal sigma on quality factor

    /** The profiles list with the all-SPEC default applied. */
    const std::vector<BenchmarkProfile> &effectiveProfiles() const;

    /** The core-count list with the uniprocessor default applied. */
    const std::vector<std::size_t> &effectiveCoreCounts() const;

    /** True when any spec dimension needs the chip path. */
    bool isChipSweep() const;

    /** True when trace sampling is active. */
    bool isSampled() const { return sampleSkip > 0; }

    /** True when the Monte Carlo draw axis is active. */
    bool isMonteCarlo() const { return mcDraws > 0; }

    /** Cells per (workload, cores, scale) group: max(mcDraws, 1). */
    std::size_t drawCount() const { return mcDraws > 0 ? mcDraws : 1; }

    /** The variation sigmas as a power/variation.hh spec. */
    SupplyVariationSpec variation() const
    {
        return SupplyVariationSpec{mcSigmaR, mcSigmaResonance, mcSigmaQ};
    }
};

/** One (benchmark, impedance scale) cell of a campaign. */
struct CampaignCell
{
    std::string benchmark;       ///< profile (or mix) name
    double impedanceScale = 1.0; ///< network scale for this cell
    std::size_t cores = 1;       ///< chip size simulated for this cell
    std::size_t draw = 0;        ///< Monte Carlo draw index (MC only)
    std::size_t traceCycles = 0; ///< trace length analyzed
    std::size_t windows = 0;     ///< analysis windows profiled

    double estimatedBelowPct = 0.0; ///< model % cycles below low point
    double measuredBelowPct = 0.0;  ///< measured % below low point
    double estimatedAbovePct = 0.0; ///< model % above high point
    double measuredAbovePct = 0.0;  ///< measured % above high point
    double estimatedVariance = 0.0; ///< mean estimated voltage variance
    double measuredVariance = 0.0;  ///< measured voltage variance

    /**
     * True when this cell's evaluation threw (disk fault, injected
     * failpoint, ...). The campaign records the failure and keeps
     * going; benchmark/impedanceScale stay valid, the measurements are
     * zero, and @ref error says what happened.
     */
    bool failed = false;

    /** Failure description when failed (deterministic text). */
    std::string error;

    /** Wall-clock of this cell's analysis (excluded from the
     *  deterministic JSON body). */
    double wallMillis = 0.0;
};

/** Everything a finished campaign produced. */
struct CampaignResult
{
    CampaignSpec spec;               ///< the sweep that ran
    std::vector<CampaignCell> cells; ///< benchmark-major, scale-minor

    /**
     * Trace-cache traffic attributable to this run: the sum over its
     * cells of what each cell's repository lookup observed. For a
     * fresh repository this equals the repository totals; against a
     * shared repository (the didt_serve daemon) it is this run's own
     * contribution.
     */
    TraceCacheStats cacheStats;

    std::size_t jobs = 1;            ///< worker threads used
    double wallMillis = 0.0;         ///< end-to-end wall clock
    double calibrationMillis = 0.0;  ///< training + model calibration

    /** True when a cancellation flag cut the run short; the skipped
     *  cells are marked failed with an "interrupted" error. */
    bool interrupted = false;

    /** RMS of (estimated - measured) emergency percentage, over the
     *  cells that completed (failed cells carry no measurements). */
    double rmsEstimationErrorPct() const;

    /** Number of cells that failed instead of completing. */
    std::size_t failedCells() const;
};

/**
 * Run a characterization campaign. Convenience wrapper that builds a
 * CampaignPlan (runner/plan.hh) and evaluates it on a one-shot
 * Executor (runner/executor.hh); long-lived consumers such as the
 * didt_serve daemon use those pieces directly so requests share one
 * pool, calibration cache, and trace repository.
 *
 * @param setup experiment environment (shared, read-only)
 * @param spec the sweep description
 * @param repo trace store shared by all cells (and, with a cache
 *        directory, across campaign invocations)
 * @param jobs worker threads (0 = hardware concurrency)
 * @param on_cell optional progress callback, invoked from worker
 *        threads as cells finish (serialized by the campaign)
 * @param cancel optional cooperative cancellation flag: once true,
 *        cells that have not started are marked failed/"interrupted"
 *        instead of evaluated (graceful SIGINT/SIGTERM drain)
 */
CampaignResult
runCharacterizationCampaign(const ExperimentSetup &setup,
                            const CampaignSpec &spec,
                            TraceRepository &repo, std::size_t jobs = 0,
                            const std::function<void(const CampaignCell &)>
                                &on_cell = {},
                            const std::atomic<bool> *cancel = nullptr);

/**
 * Generic campaign fan-out for sweeps whose cells are not emergency
 * characterizations (e.g. closed-loop scheme comparisons): evaluate
 * @p cell(i) for i in [0, count) on @p jobs workers and return results
 * in index order. Exceptions from any cell propagate to the caller.
 */
template <typename R>
std::vector<R>
runCampaignCells(std::size_t count, std::size_t jobs,
                 const std::function<R(std::size_t)> &cell)
{
    std::vector<R> results(count);
    ThreadPool pool(jobs);
    pool.parallelFor(count, [&](std::size_t i) { results[i] = cell(i); });
    return results;
}

} // namespace didt

#endif // DIDT_RUNNER_CAMPAIGN_HH
