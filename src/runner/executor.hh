/**
 * @file
 * Campaign executor: the "pool + repository + metrics" half of the
 * request / plan / execute split.
 *
 * An Executor owns the worker pool, the per-worker analysis
 * workspaces, and a cache of calibrated variance models, and evaluates
 * CampaignPlans against a shared TraceRepository. It is long-lived by
 * design: the didt_serve daemon keeps one Executor for its whole
 * lifetime so every request reuses the same threads, workspaces,
 * calibrated models, and trace cache, while batch didt_campaign builds
 * one per invocation. Both paths produce byte-identical result JSON
 * for identical specs because cell values depend only on the spec —
 * never on scheduling, sharing, or which entry point asked.
 *
 * Calibration caching: the training trace set depends only on the
 * experiment setup and is built once per executor; calibrated models
 * are memoized by (impedance scale, window, levels, basis), so a
 * daemon serving many requests with the paper's standard analysis
 * configuration calibrates each scale exactly once. Calibration is
 * deterministic, so a cached model is bit-identical to a fresh one.
 *
 * run() is safe to call from multiple threads; cells from concurrent
 * runs interleave on the shared pool. Each worker owns one workspace,
 * and a worker evaluates one cell at a time, so workspace reuse across
 * concurrent runs is race-free.
 */

#ifndef DIDT_RUNNER_EXECUTOR_HH
#define DIDT_RUNNER_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "core/variance_model.hh"
#include "obs/trace_event.hh"
#include "runner/plan.hh"
#include "runner/thread_pool.hh"
#include "runner/trace_repository.hh"

namespace didt
{

/** Optional observers and controls for one Executor::run call. */
struct ExecutionHooks
{
    /** Invoked (serialized) from worker threads as cells finish. */
    std::function<void(const CampaignCell &)> onCell;

    /**
     * Cooperative cancellation: when set and true, cells that have not
     * started are marked failed with an "interrupted" error instead of
     * being evaluated; in-flight cells finish normally. Used for
     * graceful SIGINT/SIGTERM drain.
     */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * When non-null, resized to the plan's cell count and filled with
     * each cell's trace-cache contribution (indexed like
     * CampaignResult::cells). Lets the daemon attribute shared-cache
     * traffic to the requests of a merged batch.
     */
    std::vector<TraceCacheStats> *cellCacheDeltas = nullptr;

    /**
     * Trace context the run's spans attach under. run() installs it on
     * the calling thread and re-applies it inside pool workers, so the
     * sweep/cell spans of a served campaign nest under the daemon's
     * batch span (and carry its request/batch labels) even though they
     * execute on pool threads. Default: root, unattributed — the batch
     * CLI's flat layout.
     */
    obs::TraceContext traceContext;
};

/** Long-lived campaign execution engine (pool + repo + calibration). */
class Executor
{
  public:
    /**
     * @param setup experiment environment (kept by reference)
     * @param repo shared trace store (kept by reference)
     * @param jobs worker threads (0 = hardware concurrency)
     */
    Executor(const ExperimentSetup &setup, TraceRepository &repo,
             std::size_t jobs = 0);

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Evaluate every cell of @p plan; see runCharacterizationCampaign
     *  for the result contract. */
    CampaignResult run(const CampaignPlan &plan,
                       const ExecutionHooks &hooks = {});

    /** Worker threads in the pool. */
    std::size_t jobs() const { return pool_.size(); }

    /** The shared trace repository. */
    TraceRepository &repository() { return repo_; }

    /** The experiment environment plans run in. */
    const ExperimentSetup &setup() const { return setup_; }

    /** Calibrated models currently memoized (for telemetry/tests). */
    std::size_t cachedModels() const;

  private:
    /** One memoized calibration: the network must outlive the model
     *  that references it, so they live and die together. */
    struct CalibratedScale
    {
        explicit CalibratedScale(SupplyNetwork net)
            : network(std::move(net))
        {
        }
        SupplyNetwork network;
        std::unique_ptr<VoltageVarianceModel> model;
    };

    /** (scale bit pattern, window, levels, basis name). */
    using ModelKey =
        std::tuple<std::uint64_t, std::size_t, std::size_t, std::string>;

    /** Training traces, built on first use (pool-parallel). */
    const std::vector<CurrentTrace> &trainingTraces();

    /**
     * Calibrated models for the plan's scales, in scale order. Missing
     * entries are calibrated in parallel; cached entries are returned
     * as-is. Returned pointers stay valid for the executor's lifetime.
     */
    std::vector<const CalibratedScale *>
    calibratedScales(const CampaignSpec &spec);

    const ExperimentSetup &setup_;
    TraceRepository &repo_;
    ThreadPool pool_;
    /** One workspace per worker plus one for non-worker threads. */
    std::vector<AnalysisWorkspace> workspaces_;

    std::mutex trainingMutex_;
    bool trainingBuilt_ = false;
    std::vector<CurrentTrace> training_;

    mutable std::mutex modelsMutex_;
    std::map<ModelKey, std::unique_ptr<CalibratedScale>> models_;
};

} // namespace didt

#endif // DIDT_RUNNER_EXECUTOR_HH
