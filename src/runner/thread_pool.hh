/**
 * @file
 * Fixed-size worker pool for experiment campaigns.
 *
 * A single shared FIFO queue feeds N worker threads; submitted
 * callables return std::futures, so exceptions thrown inside a task
 * propagate to whoever waits on its result instead of killing a
 * worker. Tasks are started in submission order (completion order is
 * up to the scheduler), which campaign drivers exploit to prime
 * distinct cache keys before the sharing cells pile up behind them.
 */

#ifndef DIDT_RUNNER_THREAD_POOL_HH
#define DIDT_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "verify/failpoint.hh"

namespace didt
{

/** A fixed-size thread pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. 0 means one worker per hardware
     * thread (at least one).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a callable; returns a future for its result. An
     * exception thrown by the callable is captured and rethrown from
     * future::get().
     */
    template <typename F>
    std::future<std::invoke_result_t<F>> submit(F &&fn)
    {
        using R = std::invoke_result_t<F>;
        // shared_ptr because std::function requires a copyable
        // callable and packaged_task is move-only. The pool.task
        // failpoint fires inside the packaged_task, so an injected
        // fault takes the same path as a real task exception: captured
        // into the future, worker survives.
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(fn)]() mutable -> R {
                if (DIDT_FAILPOINT("pool.task"))
                    throw std::runtime_error(
                        "injected fault (pool.task)");
                return fn();
            });
        std::future<R> result = task->get_future();
        std::size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
            depth = queue_.size();
        }
        available_.notify_one();
        noteSubmitted(depth);
        return result;
    }

    /**
     * Run @p fn(i) for i in [0, count) across the pool and block until
     * every iteration finishes. The first exception (lowest index) is
     * rethrown after all iterations complete.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /** Resolve a --jobs style request: 0 means hardware concurrency. */
    static std::size_t resolveJobs(std::size_t requested);

    /** Sentinel returned by workerIndex() on non-worker threads. */
    static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

    /**
     * Index of the calling thread within the pool that owns it, in
     * [0, size()), or kNotAWorker on threads that are not pool workers
     * (e.g. the thread driving the campaign). Lets callers keep one
     * lock-free slot of mutable state per worker — the striping
     * pattern the observability layer uses for its counters.
     */
    static std::size_t workerIndex();

  private:
    void workerLoop(std::size_t index);

    /** Record pool.tasks / pool.queue_depth metrics for one submit. */
    static void noteSubmitted(std::size_t queue_depth);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace didt

#endif // DIDT_RUNNER_THREAD_POOL_HH
