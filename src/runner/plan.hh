/**
 * @file
 * Campaign plans: the "what to evaluate" half of the request / plan /
 * execute split.
 *
 * A CampaignPlan is a fully materialized, immutable description of the
 * cells one execution will evaluate: the spec with its all-SPEC default
 * applied, plus the deterministic submission order. Both the batch
 * didt_campaign driver and the didt_serve daemon build plans and hand
 * them to an Executor, so the two entry points share one execution
 * path and produce byte-identical results for identical specs.
 */

#ifndef DIDT_RUNNER_PLAN_HH
#define DIDT_RUNNER_PLAN_HH

#include <cstddef>
#include <vector>

#include "runner/campaign.hh"

namespace didt
{

/** One cell of a plan, by index into the plan's axes. */
struct PlanCell
{
    /** Workload index: into plan.spec.profiles, or into
     *  plan.spec.mixes when the mixes axis is active. */
    std::size_t profileIndex = 0;
    std::size_t coreIndex = 0;  ///< into plan.spec.effectiveCoreCounts()
    std::size_t scaleIndex = 0; ///< into plan.spec.impedanceScales
    std::size_t drawIndex = 0;  ///< Monte Carlo draw (always 0 MC-off)
};

/** A materialized campaign: spec plus deterministic cell order. */
struct CampaignPlan
{
    /**
     * The sweep, with profiles materialized (never empty) when the
     * benchmarks axis is active; under the mixes axis the mixes list
     * is the workload axis and profiles stay as given.
     */
    CampaignSpec spec;

    /**
     * Cells in submission order: scale-major, so the first batch of
     * tasks covers distinct workloads and primes the trace cache
     * before the sharing cells queue up behind it.
     */
    std::vector<PlanCell> order;

    /** Workloads on the cell axis (mixes when active, else profiles). */
    std::size_t workloadCount() const
    {
        return spec.mixes.empty() ? spec.profiles.size()
                                  : spec.mixes.size();
    }

    /** Display name of workload @p index (profile or mix name). */
    const std::string &workloadName(std::size_t index) const
    {
        return spec.mixes.empty() ? spec.profiles[index].name
                                  : spec.mixes[index];
    }

    /** Total cells (workloads x cores x scales x draws). */
    std::size_t cellCount() const
    {
        return workloadCount() * spec.effectiveCoreCounts().size() *
               spec.impedanceScales.size() * spec.drawCount();
    }

    /**
     * Storage index of a cell in CampaignResult::cells
     * (workload-major, then cores, then scales, then Monte Carlo
     * draws — the reporting order; reduces to benchmark-major /
     * scale-minor for a single-core MC-off sweep). Draws are
     * innermost so one group's draws sit contiguous for quantile
     * aggregation.
     */
    std::size_t storageIndex(const PlanCell &cell) const
    {
        return ((cell.profileIndex * spec.effectiveCoreCounts().size() +
                 cell.coreIndex) *
                    spec.impedanceScales.size() +
                cell.scaleIndex) *
                   spec.drawCount() +
               cell.drawIndex;
    }
};

/**
 * Build the plan for @p spec: materialize the benchmark list and lay
 * out the scale-major submission order. Pure; the same spec always
 * yields the same plan.
 */
CampaignPlan buildCampaignPlan(const CampaignSpec &spec);

} // namespace didt

#endif // DIDT_RUNNER_PLAN_HH
