/**
 * @file
 * Campaign plans: the "what to evaluate" half of the request / plan /
 * execute split.
 *
 * A CampaignPlan is a fully materialized, immutable description of the
 * cells one execution will evaluate: the spec with its all-SPEC default
 * applied, plus the deterministic submission order. Both the batch
 * didt_campaign driver and the didt_serve daemon build plans and hand
 * them to an Executor, so the two entry points share one execution
 * path and produce byte-identical results for identical specs.
 */

#ifndef DIDT_RUNNER_PLAN_HH
#define DIDT_RUNNER_PLAN_HH

#include <cstddef>
#include <vector>

#include "runner/campaign.hh"

namespace didt
{

/** One cell of a plan, by index into the plan's profiles / scales. */
struct PlanCell
{
    std::size_t profileIndex = 0; ///< into plan.spec.profiles
    std::size_t scaleIndex = 0;   ///< into plan.spec.impedanceScales
};

/** A materialized campaign: spec plus deterministic cell order. */
struct CampaignPlan
{
    /** The sweep, with profiles materialized (never empty). */
    CampaignSpec spec;

    /**
     * Cells in submission order: scale-major, so the first batch of
     * tasks covers distinct benchmarks and primes the trace cache
     * before the sharing cells queue up behind it.
     */
    std::vector<PlanCell> order;

    /** Total cells (profiles x scales). */
    std::size_t cellCount() const
    {
        return spec.profiles.size() * spec.impedanceScales.size();
    }

    /**
     * Storage index of a cell in CampaignResult::cells
     * (benchmark-major, scale-minor — the reporting order).
     */
    std::size_t storageIndex(const PlanCell &cell) const
    {
        return cell.profileIndex * spec.impedanceScales.size() +
               cell.scaleIndex;
    }
};

/**
 * Build the plan for @p spec: materialize the benchmark list and lay
 * out the scale-major submission order. Pure; the same spec always
 * yields the same plan.
 */
CampaignPlan buildCampaignPlan(const CampaignSpec &spec);

} // namespace didt

#endif // DIDT_RUNNER_PLAN_HH
