#include "runner/executor.hh"

#include <chrono>
#include <cstring>
#include <future>
#include <optional>

#include "core/emergency_estimator.hh"
#include "obs/metrics.hh"
#include "power/variation.hh"
#include "obs/scoped_timer.hh"
#include "util/json.hh"
#include "verify/failpoint.hh"
#include "wavelet/basis.hh"
#include "workload/generator.hh"
#include "workload/mix.hh"

namespace didt
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Campaign-level metrics (sidecar only; never read for result JSON). */
struct CampaignMetrics
{
    obs::Counter cells;
    obs::Counter cellFailures;
    obs::Counter cellsInterrupted;
    obs::Histogram cellMs;
    obs::Histogram calibrateMs;
};

CampaignMetrics &
campaignMetrics()
{
    auto &registry = obs::MetricsRegistry::global();
    static CampaignMetrics metrics{
        registry.counter("campaign.cells"),
        registry.counter("campaign.cell_failures"),
        registry.counter("campaign.cells_interrupted"),
        registry.histogram("campaign.cell_ms"),
        registry.histogram("campaign.calibrate_ms"),
    };
    return metrics;
}

/**
 * Stable identity of one campaign cell, used as the failpoint key for
 * the campaign.cell site and in failure messages: "mcf@1.2". The scale
 * prints exactly like the result JSON, so spec strings can be copied
 * from campaign output.
 */
std::string
cellKey(const std::string &benchmark, double scale, std::size_t cores = 1,
        std::size_t draw = 0, bool monte_carlo = false)
{
    std::string key = benchmark + "@" + jsonNumber(scale);
    // Chip and Monte Carlo cells extend the key; single-core MC-off
    // cells keep the historical form so existing failpoint specs stay
    // valid.
    if (cores != 1)
        key += "@c" + std::to_string(cores);
    if (monte_carlo)
        key += "@d" + std::to_string(draw);
    return key;
}

/**
 * Build the trace request for one plan cell. A single-core cell —
 * including a 1-core mix cell, which collapses to its core-0 profile
 * and seed — produces exactly the legacy request, so its cache
 * fingerprint (and on-disk trace file) is unchanged; a multi-core
 * cell carries per-core profiles with deterministically derived
 * seeds. Throws on unknown mix names (serve-safe: the failure lands
 * in the cell, not the process).
 */
TraceRequest
cellTraceRequest(const CampaignSpec &spec, std::size_t workload_index,
                 std::size_t cores)
{
    TraceRequest request;
    request.instructions = spec.instructions;
    request.trimWarmup = spec.trimWarmup;
    request.sampleDetail = spec.sampleDetail;
    request.sampleSkip = spec.sampleSkip;
    request.sampleWarmup = spec.sampleWarmup;

    if (spec.mixes.empty()) {
        // Benchmarks axis: the benchmark is cloned across cores with
        // derived per-core seeds.
        const BenchmarkProfile &profile =
            spec.profiles[workload_index];
        request.profile = profile;
        request.seed = spec.seed;
        if (cores > 1) {
            request.cores = cores;
            request.l2Banks = spec.l2Banks;
            request.l2BankPenalty = spec.l2BankPenalty;
            for (std::size_t i = 0; i < cores; ++i) {
                request.coreProfiles.push_back(profile);
                request.coreSeeds.push_back(
                    deriveCoreSeed(spec.seed, i));
            }
        }
        return request;
    }

    const std::string &name = spec.mixes[workload_index];
    const std::optional<WorkloadMix> mix = findMixByName(name);
    if (!mix)
        throw std::runtime_error("unknown workload mix: " + name);
    request.profile = mixProfileForCore(*mix, 0);
    request.seed = mixCoreSeed(*mix, spec.seed, 0);
    if (cores > 1) {
        request.cores = cores;
        request.l2Banks = spec.l2Banks;
        request.l2BankPenalty = spec.l2BankPenalty;
        for (std::size_t i = 0; i < cores; ++i) {
            request.coreProfiles.push_back(mixProfileForCore(*mix, i));
            request.coreSeeds.push_back(
                mixCoreSeed(*mix, spec.seed, i));
        }
    }
    return request;
}

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

Executor::Executor(const ExperimentSetup &setup, TraceRepository &repo,
                   std::size_t jobs)
    : setup_(setup), repo_(repo), pool_(jobs),
      workspaces_(pool_.size() + 1)
{
}

std::size_t
Executor::cachedModels() const
{
    std::lock_guard<std::mutex> lock(modelsMutex_);
    return models_.size();
}

const std::vector<CurrentTrace> &
Executor::trainingTraces()
{
    std::lock_guard<std::mutex> lock(trainingMutex_);
    if (!trainingBuilt_) {
        const std::vector<std::function<CurrentTrace()>> builders =
            calibrationTraceBuilders(setup_);
        training_.resize(builders.size());
        obs::ScopedTimer phase("campaign.training", {}, nullptr,
                               "campaign");
        // Workers start with an empty TraceContext; re-apply the
        // caller's so the per-trace work nests under the phase span.
        const obs::TraceContext ctx = obs::currentTraceContext();
        pool_.parallelFor(builders.size(), [&](std::size_t i) {
            obs::ScopedTraceContext scope(ctx);
            training_[i] = builders[i]();
        });
        trainingBuilt_ = true;
    }
    return training_;
}

std::vector<const Executor::CalibratedScale *>
Executor::calibratedScales(const CampaignSpec &spec)
{
    const std::vector<double> &scales = spec.impedanceScales;
    std::vector<const CalibratedScale *> result(scales.size(), nullptr);

    // The lock is held across the whole calibration phase: concurrent
    // runs serialize here (the parallelFor still fans out across the
    // pool), and an entry is never replaced once inserted, so returned
    // pointers stay valid for the executor's lifetime.
    std::lock_guard<std::mutex> lock(modelsMutex_);

    std::vector<std::size_t> missing;
    for (std::size_t si = 0; si < scales.size(); ++si) {
        const ModelKey key{doubleBits(scales[si]), spec.windowLength,
                           spec.levels, spec.basis};
        auto it = models_.find(key);
        if (it != models_.end()) {
            result[si] = it->second.get();
        } else {
            auto entry = std::make_unique<CalibratedScale>(
                setup_.makeNetwork(scales[si]));
            result[si] = entry.get();
            models_.emplace(key, std::move(entry));
            missing.push_back(si);
        }
    }
    if (missing.empty())
        return result;

    const std::vector<CurrentTrace> &training = trainingTraces();
    const WaveletBasis basis = WaveletBasis::byName(spec.basis);
    obs::ScopedTimer phase("campaign.calibrate", {}, nullptr,
                           "campaign");
    const obs::TraceContext ctx = obs::currentTraceContext();
    pool_.parallelFor(missing.size(), [&](std::size_t mi) {
        obs::ScopedTraceContext scope(ctx);
        obs::ScopedTimer timer("calibrate scale",
                               campaignMetrics().calibrateMs, nullptr,
                               "campaign");
        const std::size_t si = missing[mi];
        // result[si] points at the entry this run just inserted, so
        // writing through the const_cast is exclusive to this task.
        auto *entry = const_cast<CalibratedScale *>(result[si]);
        auto model = std::make_unique<VoltageVarianceModel>(
            entry->network, spec.windowLength, spec.levels, basis);
        model->calibrateOnTraces(training);
        entry->model = std::move(model);
    });
    return result;
}

CampaignResult
Executor::run(const CampaignPlan &plan, const ExecutionHooks &hooks)
{
    const Clock::time_point campaign_start = Clock::now();

    // Attach this run's spans under the caller-provided context (the
    // serve dispatcher passes its batch span; batch CLI passes the
    // default root), for this thread and — via capture below — the
    // pool workers evaluating cells.
    obs::ScopedTraceContext run_context(hooks.traceContext);

    CampaignResult result;
    result.spec = plan.spec;
    result.jobs = pool_.size();
    const std::vector<double> &scales = plan.spec.impedanceScales;
    const std::vector<std::size_t> &coreCounts =
        plan.spec.effectiveCoreCounts();

    result.cells.resize(plan.cellCount());
    if (hooks.cellCacheDeltas) {
        hooks.cellCacheDeltas->clear();
        hooks.cellCacheDeltas->resize(plan.cellCount());
    }
    std::vector<TraceCacheStats> localDeltas;
    std::vector<TraceCacheStats> &deltas =
        hooks.cellCacheDeltas ? *hooks.cellCacheDeltas : localDeltas;
    if (!hooks.cellCacheDeltas)
        deltas.resize(plan.cellCount());

    // Phase 1+2: training set and per-scale calibrated models, both
    // memoized across runs. A run that arrives pre-cancelled skips
    // calibration entirely and reports every cell as interrupted.
    const bool cancelled_early =
        hooks.cancel && hooks.cancel->load(std::memory_order_relaxed);
    std::vector<const CalibratedScale *> models;
    if (!cancelled_early)
        models = calibratedScales(plan.spec);
    result.calibrationMillis = millisSince(campaign_start);

    // Phase 3: the sweep itself. Cells are stored benchmark-major for
    // reporting but submitted in the plan's scale-major order, so the
    // first batch of tasks covers distinct benchmarks and primes the
    // trace cache before the sharing cells queue up behind it.
    std::optional<obs::ScopedTimer> sweep_phase;
    sweep_phase.emplace("campaign.sweep", obs::Histogram{}, nullptr,
                        "campaign");
    // Captured after the sweep span opens, so cell spans evaluated on
    // pool workers parent under it. Labels are precomputed per profile
    // (not per cell) and interned by ScopedTimer, so span creation on
    // the hot path does not allocate.
    const obs::TraceContext cell_context = obs::currentTraceContext();
    std::vector<std::string> cell_labels;
    cell_labels.reserve(plan.workloadCount());
    for (std::size_t pi = 0; pi < plan.workloadCount(); ++pi)
        cell_labels.push_back("cell " + plan.workloadName(pi));
    std::mutex progress_mutex;
    std::vector<std::future<void>> pending;
    std::vector<std::size_t> pendingCell; // submission order -> cell
    pending.reserve(plan.order.size());
    pendingCell.reserve(plan.order.size());
    for (const PlanCell &pc : plan.order) {
        const std::size_t ci = plan.storageIndex(pc);
        const std::size_t pi = pc.profileIndex;
        const std::size_t si = pc.scaleIndex;
        const std::size_t di = pc.drawIndex;
        const std::size_t cores = coreCounts[pc.coreIndex];
        // Identity fields are written on this thread before the task
        // runs, so even a task that faults before touching its cell
        // (e.g. an injected pool.task failure) leaves a fully
        // identified failed cell behind.
        CampaignCell &submitted = result.cells[ci];
        submitted.benchmark = plan.workloadName(pi);
        submitted.impedanceScale = scales[si];
        submitted.cores = cores;
        submitted.draw = di;
        if (cancelled_early) {
            submitted.failed = true;
            submitted.error = "interrupted before evaluation";
            campaignMetrics().cellsInterrupted.add(1);
            continue;
        }
        pendingCell.push_back(ci);
        pending.push_back(pool_.submit([&, ci, pi, si, di, cores] {
            obs::ScopedTraceContext cell_scope(cell_context);
            obs::ScopedTimer span(cell_labels[pi],
                                  campaignMetrics().cellMs, nullptr,
                                  "campaign");
            campaignMetrics().cells.add(1);
            const Clock::time_point cell_start = Clock::now();
            CampaignCell &cell = result.cells[ci];
            try {
                if (hooks.cancel &&
                    hooks.cancel->load(std::memory_order_relaxed)) {
                    cell.failed = true;
                    cell.error = "interrupted before evaluation";
                    campaignMetrics().cellsInterrupted.add(1);
                } else {
                    const std::string key = cellKey(
                        plan.workloadName(pi), scales[si], cores, di,
                        plan.spec.isMonteCarlo());
                    if (DIDT_FAILPOINT_KEYED("campaign.cell", key))
                        throw std::runtime_error(
                            "injected fault (campaign.cell): " + key);
                    const TraceRequest request =
                        cellTraceRequest(plan.spec, pi, cores);
                    const std::shared_ptr<const CurrentTrace> trace =
                        repo_.get(request, &deltas[ci]);
                    const std::size_t wi = ThreadPool::workerIndex();
                    AnalysisWorkspace &ws =
                        workspaces_[wi == ThreadPool::kNotAWorker
                                        ? pool_.size()
                                        : wi];
                    const CalibratedScale &cal = *models[si];
                    EmergencyProfile ep;
                    if (plan.spec.isMonteCarlo()) {
                        // The draw perturbs the supply network only;
                        // the trace and the calibrated variance model
                        // stay nominal, so the per-draw spread
                        // measures chip yield and model robustness
                        // across process corners at once.
                        SupplyNetworkConfig varied = drawSupplyConfig(
                            setup_.supplyBase, plan.spec.variation(),
                            deriveDrawSeed(plan.spec.mcSeed, di));
                        varied.impedanceScale = scales[si];
                        const SupplyNetwork drawn(varied);
                        ep = profileTrace(*trace, drawn, *cal.model,
                                          plan.spec.lowThreshold,
                                          plan.spec.highThreshold, ws,
                                          {},
                                          plan.spec.useCorrelation);
                    } else {
                        ep = profileTrace(*trace, cal.network,
                                          *cal.model,
                                          plan.spec.lowThreshold,
                                          plan.spec.highThreshold, ws,
                                          {},
                                          plan.spec.useCorrelation);
                    }

                    cell.traceCycles = trace->size();
                    cell.windows = ep.windows;
                    cell.estimatedBelowPct = 100.0 * ep.estimatedBelow;
                    cell.measuredBelowPct = 100.0 * ep.measuredBelow;
                    cell.estimatedAbovePct = 100.0 * ep.estimatedAbove;
                    cell.measuredAbovePct = 100.0 * ep.measuredAbove;
                    cell.estimatedVariance = ep.estimatedVariance;
                    cell.measuredVariance = ep.measuredVariance;
                }
            } catch (const std::exception &e) {
                // A faulting cell is a result, not an abort: the rest
                // of the sweep keeps going and the failure lands in
                // the result JSON.
                cell.failed = true;
                cell.error = e.what();
                campaignMetrics().cellFailures.add(1);
            }
            cell.wallMillis = millisSince(cell_start);
            if (hooks.onCell) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                hooks.onCell(cell);
            }
        }));
    }
    for (std::future<void> &f : pending)
        f.wait();
    for (std::size_t i = 0; i < pending.size(); ++i) {
        try {
            pending[i].get();
        } catch (const std::exception &e) {
            // The task itself faulted before the cell body's try block
            // (an injected pool.task fault): record it against the
            // right cell instead of aborting the campaign.
            CampaignCell &cell = result.cells[pendingCell[i]];
            if (!cell.failed) {
                cell.failed = true;
                cell.error = e.what();
                campaignMetrics().cellFailures.add(1);
            }
        }
    }
    sweep_phase.reset();

    // The result's cache section is the sum of what this run's cells
    // observed — for a fresh repository that equals the repository
    // totals; for the daemon's shared repository it is this request's
    // own traffic.
    for (const TraceCacheStats &delta : deltas)
        result.cacheStats += delta;
    result.interrupted =
        hooks.cancel && hooks.cancel->load(std::memory_order_relaxed);
    result.wallMillis = millisSince(campaign_start);
    return result;
}

} // namespace didt
