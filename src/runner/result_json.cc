#include "runner/result_json.hh"

#include <cmath>
#include <fstream>

#include "runner/campaign.hh"
#include "stats/quantiles.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "wavelet/basis.hh"
#include "workload/mix.hh"

namespace didt
{

namespace
{

/**
 * Emergency-budget thresholds (percent of cycles outside the voltage
 * band) swept by the Monte Carlo yield curve.
 */
constexpr double kEmergencyBudgetsPct[] = {0.01, 0.1, 0.5, 1.0, 2.0, 5.0};

/** Read an optional non-negative integer member into @p out. */
template <typename T>
bool
readCount(const JsonValue &json, const std::string &key, T *out,
          std::string *error)
{
    const JsonValue *member = json.find(key);
    if (!member)
        return true;
    if (member->kind() != JsonValue::Kind::Number) {
        *error = "spec field '" + key + "' must be a number";
        return false;
    }
    const double value = member->asNumber();
    if (value < 0.0 || value != std::floor(value)) {
        *error = "spec field '" + key +
                 "' must be a non-negative integer";
        return false;
    }
    *out = static_cast<T>(value);
    return true;
}

/** Read an optional number member into @p out. */
bool
readNumber(const JsonValue &json, const std::string &key, double *out,
           std::string *error)
{
    const JsonValue *member = json.find(key);
    if (!member)
        return true;
    if (member->kind() != JsonValue::Kind::Number) {
        *error = "spec field '" + key + "' must be a number";
        return false;
    }
    *out = member->asNumber();
    return true;
}

/** Quantile-band summary of an empirical distribution. */
JsonValue
quantileBlock(const EmpiricalDistribution &dist)
{
    JsonValue block = JsonValue::object();
    block.set("mean", dist.mean());
    block.set("min", dist.min());
    block.set("p05", dist.quantile(0.05));
    block.set("p25", dist.quantile(0.25));
    block.set("p50", dist.quantile(0.50));
    block.set("p75", dist.quantile(0.75));
    block.set("p95", dist.quantile(0.95));
    block.set("max", dist.max());
    return block;
}

/**
 * The Monte Carlo aggregation section: per (workload, cores, scale)
 * group, quantile bands of the per-draw emergency percentage and
 * resonance-band variance, plus the yield curve — the fraction of
 * drawn chips whose emergency percentage exceeds each budget. Cells
 * are stored draw-innermost, so each group is one contiguous run of
 * spec.drawCount() cells. Computed from the finished cells at
 * serialization time, so batch and served output agree byte for byte.
 */
JsonValue
monteCarloToJson(const CampaignResult &result)
{
    const CampaignSpec &spec = result.spec;
    const std::size_t draws = spec.drawCount();
    JsonValue mc = JsonValue::object();
    mc.set("draws", static_cast<long long>(spec.mcDraws));
    mc.set("seed", static_cast<long long>(spec.mcSeed));
    mc.set("sigma_r", spec.mcSigmaR);
    mc.set("sigma_resonance", spec.mcSigmaResonance);
    mc.set("sigma_q", spec.mcSigmaQ);
    JsonValue budgets = JsonValue::array();
    for (double budget : kEmergencyBudgetsPct)
        budgets.push(budget);
    mc.set("budget_pcts", std::move(budgets));

    JsonValue groups = JsonValue::array();
    for (std::size_t base = 0; base + draws <= result.cells.size();
         base += draws) {
        const CampaignCell &first = result.cells[base];
        JsonValue group = JsonValue::object();
        group.set("benchmark", first.benchmark);
        group.set("impedance_scale", first.impedanceScale);
        if (first.cores != 1)
            group.set("cores", static_cast<long long>(first.cores));

        EmpiricalDistribution emergency;
        EmpiricalDistribution variance;
        std::size_t failed = 0;
        for (std::size_t di = 0; di < draws; ++di) {
            const CampaignCell &cell = result.cells[base + di];
            if (cell.failed) {
                ++failed;
                continue;
            }
            emergency.push(cell.measuredBelowPct +
                           cell.measuredAbovePct);
            variance.push(cell.measuredVariance);
        }
        group.set("completed_draws",
                  static_cast<long long>(draws - failed));
        if (failed > 0)
            group.set("failed_draws", static_cast<long long>(failed));
        if (emergency.count() > 0) {
            group.set("emergency_pct", quantileBlock(emergency));
            group.set("measured_variance", quantileBlock(variance));
            JsonValue curve = JsonValue::array();
            for (double budget : kEmergencyBudgetsPct) {
                JsonValue point = JsonValue::object();
                point.set("budget_pct", budget);
                point.set("exceed_fraction",
                          emergency.exceedanceFraction(budget));
                curve.push(std::move(point));
            }
            group.set("yield_curve", std::move(curve));
        }
        groups.push(std::move(group));
    }
    mc.set("groups", std::move(groups));
    return mc;
}

} // namespace

JsonValue
campaignSpecToJson(const CampaignSpec &spec)
{
    JsonValue json = JsonValue::object();
    JsonValue benchmarks = JsonValue::array();
    for (const BenchmarkProfile &profile : spec.profiles)
        benchmarks.push(profile.name);
    json.set("benchmarks", std::move(benchmarks));
    JsonValue scales = JsonValue::array();
    for (double scale : spec.impedanceScales)
        scales.push(scale);
    json.set("impedance_scales", std::move(scales));
    json.set("window", static_cast<long long>(spec.windowLength));
    json.set("levels", static_cast<long long>(spec.levels));
    json.set("basis", spec.basis);
    json.set("low_threshold", spec.lowThreshold);
    json.set("high_threshold", spec.highThreshold);
    json.set("use_correlation", spec.useCorrelation);
    json.set("instructions", static_cast<long long>(spec.instructions));
    json.set("seed", static_cast<long long>(spec.seed));
    json.set("trim_warmup", static_cast<long long>(spec.trimWarmup));
    // Chip fields appear only when they deviate from the uniprocessor
    // defaults, so single-core spec JSON stays byte-identical to what
    // pre-chip builds wrote.
    if (spec.isChipSweep()) {
        JsonValue cores = JsonValue::array();
        for (std::size_t n : spec.effectiveCoreCounts())
            cores.push(static_cast<long long>(n));
        json.set("cores", std::move(cores));
        if (!spec.mixes.empty()) {
            JsonValue mixes = JsonValue::array();
            for (const std::string &mix : spec.mixes)
                mixes.push(mix);
            json.set("mixes", std::move(mixes));
        }
        json.set("l2_banks", static_cast<long long>(spec.l2Banks));
        json.set("l2_bank_penalty",
                 static_cast<long long>(spec.l2BankPenalty));
    }
    // Sampling fields appear only for sampled sweeps, so sampling-off
    // spec JSON stays byte-identical to pre-sampling builds.
    if (spec.isSampled()) {
        json.set("sample_detail",
                 static_cast<long long>(spec.sampleDetail));
        json.set("sample_skip", static_cast<long long>(spec.sampleSkip));
        json.set("sample_warmup",
                 static_cast<long long>(spec.sampleWarmup));
    }
    // Monte Carlo fields appear only when the draw axis is active, so
    // MC-off spec JSON stays byte-identical to pre-variation builds.
    if (spec.isMonteCarlo()) {
        json.set("mc_draws", static_cast<long long>(spec.mcDraws));
        json.set("mc_seed", static_cast<long long>(spec.mcSeed));
        json.set("mc_sigma_r", spec.mcSigmaR);
        json.set("mc_sigma_resonance", spec.mcSigmaResonance);
        json.set("mc_sigma_q", spec.mcSigmaQ);
    }
    return json;
}

bool
campaignSpecFromJson(const JsonValue &json, CampaignSpec *spec,
                     std::string *error)
{
    if (json.kind() != JsonValue::Kind::Object) {
        *error = "spec must be a JSON object";
        return false;
    }
    CampaignSpec parsed;
    if (const JsonValue *benchmarks = json.find("benchmarks")) {
        if (benchmarks->kind() != JsonValue::Kind::Array) {
            *error = "spec field 'benchmarks' must be an array";
            return false;
        }
        for (const JsonValue &name : benchmarks->items()) {
            if (name.kind() != JsonValue::Kind::String) {
                *error = "spec field 'benchmarks' must hold strings";
                return false;
            }
            const BenchmarkProfile *profile =
                findProfileByName(name.asString());
            if (!profile) {
                *error = "unknown benchmark '" + name.asString() + "'";
                return false;
            }
            parsed.profiles.push_back(*profile);
        }
    }
    if (const JsonValue *scales = json.find("impedance_scales")) {
        if (scales->kind() != JsonValue::Kind::Array) {
            *error = "spec field 'impedance_scales' must be an array";
            return false;
        }
        parsed.impedanceScales.clear();
        for (const JsonValue &scale : scales->items()) {
            if (scale.kind() != JsonValue::Kind::Number ||
                scale.asNumber() <= 0.0) {
                *error = "spec field 'impedance_scales' must hold "
                         "positive numbers";
                return false;
            }
            parsed.impedanceScales.push_back(scale.asNumber());
        }
        if (parsed.impedanceScales.empty()) {
            *error = "spec field 'impedance_scales' must not be empty";
            return false;
        }
    }
    if (!readCount(json, "window", &parsed.windowLength, error) ||
        !readCount(json, "levels", &parsed.levels, error) ||
        !readCount(json, "instructions", &parsed.instructions, error) ||
        !readCount(json, "seed", &parsed.seed, error) ||
        !readCount(json, "trim_warmup", &parsed.trimWarmup, error))
        return false;
    if (parsed.windowLength == 0) {
        *error = "spec field 'window' must be positive";
        return false;
    }
    if (const JsonValue *basis = json.find("basis")) {
        if (basis->kind() != JsonValue::Kind::String) {
            *error = "spec field 'basis' must be a string";
            return false;
        }
        if (!WaveletBasis::isKnownName(basis->asString())) {
            *error = "unknown wavelet basis '" + basis->asString() +
                     "' (try " + WaveletBasis::knownNamesHint() + ")";
            return false;
        }
        parsed.basis = basis->asString();
    }
    if (!readNumber(json, "low_threshold", &parsed.lowThreshold,
                    error) ||
        !readNumber(json, "high_threshold", &parsed.highThreshold,
                    error))
        return false;
    if (const JsonValue *corr = json.find("use_correlation")) {
        if (corr->kind() != JsonValue::Kind::Bool) {
            *error = "spec field 'use_correlation' must be a boolean";
            return false;
        }
        parsed.useCorrelation = corr->asBool();
    }
    if (const JsonValue *cores = json.find("cores")) {
        if (cores->kind() != JsonValue::Kind::Array) {
            *error = "spec field 'cores' must be an array";
            return false;
        }
        for (const JsonValue &count : cores->items()) {
            if (count.kind() != JsonValue::Kind::Number ||
                count.asNumber() < 1.0 ||
                count.asNumber() != std::floor(count.asNumber()) ||
                count.asNumber() > 1024.0) {
                *error = "spec field 'cores' must hold integers in "
                         "[1, 1024]";
                return false;
            }
            parsed.coreCounts.push_back(
                static_cast<std::size_t>(count.asNumber()));
        }
    }
    if (const JsonValue *mixes = json.find("mixes")) {
        if (mixes->kind() != JsonValue::Kind::Array) {
            *error = "spec field 'mixes' must be an array";
            return false;
        }
        for (const JsonValue &name : mixes->items()) {
            if (name.kind() != JsonValue::Kind::String) {
                *error = "spec field 'mixes' must hold strings";
                return false;
            }
            if (!findMixByName(name.asString())) {
                *error = "unknown workload mix '" + name.asString() +
                         "'";
                return false;
            }
            parsed.mixes.push_back(name.asString());
        }
        if (!parsed.profiles.empty()) {
            *error = "spec fields 'benchmarks' and 'mixes' are "
                     "mutually exclusive";
            return false;
        }
    }
    if (!readCount(json, "l2_banks", &parsed.l2Banks, error) ||
        !readCount(json, "l2_bank_penalty", &parsed.l2BankPenalty,
                   error))
        return false;
    if (parsed.l2Banks == 0 ||
        (parsed.l2Banks & (parsed.l2Banks - 1)) != 0) {
        *error = "spec field 'l2_banks' must be a power of two";
        return false;
    }
    if (!readCount(json, "sample_detail", &parsed.sampleDetail, error) ||
        !readCount(json, "sample_skip", &parsed.sampleSkip, error) ||
        !readCount(json, "sample_warmup", &parsed.sampleWarmup, error))
        return false;
    if (parsed.isSampled()) {
        if (parsed.sampleDetail == 0) {
            *error = "spec field 'sample_detail' must be positive when "
                     "'sample_skip' is set";
            return false;
        }
        if (parsed.sampleWarmup > parsed.sampleSkip) {
            *error = "spec field 'sample_warmup' must not exceed "
                     "'sample_skip'";
            return false;
        }
    }
    if (!readCount(json, "mc_draws", &parsed.mcDraws, error) ||
        !readCount(json, "mc_seed", &parsed.mcSeed, error) ||
        !readNumber(json, "mc_sigma_r", &parsed.mcSigmaR, error) ||
        !readNumber(json, "mc_sigma_resonance",
                    &parsed.mcSigmaResonance, error) ||
        !readNumber(json, "mc_sigma_q", &parsed.mcSigmaQ, error))
        return false;
    if (parsed.mcDraws > 100000) {
        *error = "spec field 'mc_draws' must not exceed 100000";
        return false;
    }
    for (double sigma : {parsed.mcSigmaR, parsed.mcSigmaResonance,
                         parsed.mcSigmaQ}) {
        if (sigma < 0.0 || sigma > 1.0) {
            *error = "spec fields 'mc_sigma_*' must be in [0, 1]";
            return false;
        }
    }
    *spec = std::move(parsed);
    return true;
}

JsonValue
campaignToJson(const CampaignResult &result, bool include_timing)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "didt-campaign-v1");
    doc.set("spec", campaignSpecToJson(result.spec));

    JsonValue cache = JsonValue::object();
    cache.set("lookups",
              static_cast<long long>(result.cacheStats.lookups));
    cache.set("memory_hits",
              static_cast<long long>(result.cacheStats.memoryHits));
    cache.set("disk_loads",
              static_cast<long long>(result.cacheStats.diskLoads));
    cache.set("disk_stores",
              static_cast<long long>(result.cacheStats.diskStores));
    cache.set("disk_corrupt",
              static_cast<long long>(result.cacheStats.diskCorrupt));
    cache.set("simulations",
              static_cast<long long>(result.cacheStats.simulations));
    // Evictions only happen under a memory budget, so budget-less runs
    // keep the cache section byte-identical to pre-budget builds.
    if (result.cacheStats.evictions > 0)
        cache.set("evictions",
                  static_cast<long long>(result.cacheStats.evictions));
    doc.set("cache", std::move(cache));

    JsonValue cells = JsonValue::array();
    for (const CampaignCell &cell : result.cells) {
        JsonValue c = JsonValue::object();
        c.set("benchmark", cell.benchmark);
        c.set("impedance_scale", cell.impedanceScale);
        // Uniprocessor cells omit the field: single-core campaign JSON
        // stays byte-identical to pre-chip builds.
        if (cell.cores != 1)
            c.set("cores", static_cast<long long>(cell.cores));
        // Likewise only Monte Carlo cells carry a draw index.
        if (result.spec.isMonteCarlo())
            c.set("draw", static_cast<long long>(cell.draw));
        c.set("trace_cycles", static_cast<long long>(cell.traceCycles));
        c.set("windows", static_cast<long long>(cell.windows));
        c.set("estimated_below_pct", cell.estimatedBelowPct);
        c.set("measured_below_pct", cell.measuredBelowPct);
        c.set("estimated_above_pct", cell.estimatedAbovePct);
        c.set("measured_above_pct", cell.measuredAbovePct);
        c.set("estimated_variance", cell.estimatedVariance);
        c.set("measured_variance", cell.measuredVariance);
        // Only failed cells carry failure fields, so a clean campaign's
        // JSON is byte-identical to what pre-failpoint builds wrote.
        if (cell.failed) {
            c.set("failed", true);
            c.set("error", cell.error);
        }
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    // The yield aggregation exists only for Monte Carlo campaigns, so
    // MC-off documents keep their historical bytes.
    if (result.spec.isMonteCarlo())
        doc.set("monte_carlo", monteCarloToJson(result));
    doc.set("rms_estimation_error_pct", result.rmsEstimationErrorPct());
    if (const std::size_t failed = result.failedCells(); failed > 0)
        doc.set("failed_cells", static_cast<long long>(failed));
    if (result.interrupted)
        doc.set("interrupted", true);

    if (include_timing) {
        JsonValue timing = JsonValue::object();
        timing.set("jobs", static_cast<long long>(result.jobs));
        timing.set("wall_ms", result.wallMillis);
        timing.set("calibration_ms", result.calibrationMillis);
        JsonValue cell_ms = JsonValue::array();
        for (const CampaignCell &cell : result.cells)
            cell_ms.push(cell.wallMillis);
        timing.set("cell_ms", std::move(cell_ms));
        doc.set("timing", std::move(timing));
    }
    return doc;
}

void
writeCampaignJson(const std::string &path, const CampaignResult &result,
                  bool include_timing)
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    campaignToJson(result, include_timing).write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing campaign JSON to ", path);
}

void
writeCampaignCsv(const std::string &path, const CampaignResult &result)
{
    // The draw column exists only for Monte Carlo campaigns, keeping
    // MC-off CSV headers (and bytes) unchanged.
    const bool mc = result.spec.isMonteCarlo();
    std::vector<std::string> columns{"benchmark", "impedance_scale"};
    if (mc)
        columns.push_back("draw");
    for (const char *name :
         {"trace_cycles", "windows", "estimated_below_pct",
          "measured_below_pct", "estimated_above_pct",
          "measured_above_pct", "estimated_variance",
          "measured_variance"})
        columns.push_back(name);
    Table table(columns);
    for (const CampaignCell &cell : result.cells) {
        table.newRow();
        table.add(cell.benchmark);
        table.add(cell.impedanceScale, 2);
        if (mc)
            table.add(static_cast<long long>(cell.draw));
        table.add(static_cast<long long>(cell.traceCycles));
        table.add(static_cast<long long>(cell.windows));
        table.add(cell.estimatedBelowPct, 4);
        table.add(cell.measuredBelowPct, 4);
        table.add(cell.estimatedAbovePct, 4);
        table.add(cell.measuredAbovePct, 4);
        table.add(cell.estimatedVariance, 10);
        table.add(cell.measuredVariance, 10);
    }
    table.writeCsvFile(path);
}

} // namespace didt
