#include "runner/result_json.hh"

#include <fstream>

#include "runner/campaign.hh"
#include "util/csv.hh"
#include "util/logging.hh"

namespace didt
{

JsonValue
campaignToJson(const CampaignResult &result, bool include_timing)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "didt-campaign-v1");

    JsonValue spec = JsonValue::object();
    JsonValue benchmarks = JsonValue::array();
    for (const BenchmarkProfile &profile : result.spec.profiles)
        benchmarks.push(profile.name);
    spec.set("benchmarks", std::move(benchmarks));
    JsonValue scales = JsonValue::array();
    for (double scale : result.spec.impedanceScales)
        scales.push(scale);
    spec.set("impedance_scales", std::move(scales));
    spec.set("window", static_cast<long long>(result.spec.windowLength));
    spec.set("levels", static_cast<long long>(result.spec.levels));
    spec.set("basis", result.spec.basis);
    spec.set("low_threshold", result.spec.lowThreshold);
    spec.set("high_threshold", result.spec.highThreshold);
    spec.set("use_correlation", result.spec.useCorrelation);
    spec.set("instructions",
             static_cast<long long>(result.spec.instructions));
    spec.set("seed", static_cast<long long>(result.spec.seed));
    spec.set("trim_warmup",
             static_cast<long long>(result.spec.trimWarmup));
    doc.set("spec", std::move(spec));

    JsonValue cache = JsonValue::object();
    cache.set("lookups",
              static_cast<long long>(result.cacheStats.lookups));
    cache.set("memory_hits",
              static_cast<long long>(result.cacheStats.memoryHits));
    cache.set("disk_loads",
              static_cast<long long>(result.cacheStats.diskLoads));
    cache.set("disk_stores",
              static_cast<long long>(result.cacheStats.diskStores));
    cache.set("disk_corrupt",
              static_cast<long long>(result.cacheStats.diskCorrupt));
    cache.set("simulations",
              static_cast<long long>(result.cacheStats.simulations));
    doc.set("cache", std::move(cache));

    JsonValue cells = JsonValue::array();
    for (const CampaignCell &cell : result.cells) {
        JsonValue c = JsonValue::object();
        c.set("benchmark", cell.benchmark);
        c.set("impedance_scale", cell.impedanceScale);
        c.set("trace_cycles", static_cast<long long>(cell.traceCycles));
        c.set("windows", static_cast<long long>(cell.windows));
        c.set("estimated_below_pct", cell.estimatedBelowPct);
        c.set("measured_below_pct", cell.measuredBelowPct);
        c.set("estimated_above_pct", cell.estimatedAbovePct);
        c.set("measured_above_pct", cell.measuredAbovePct);
        c.set("estimated_variance", cell.estimatedVariance);
        c.set("measured_variance", cell.measuredVariance);
        // Only failed cells carry failure fields, so a clean campaign's
        // JSON is byte-identical to what pre-failpoint builds wrote.
        if (cell.failed) {
            c.set("failed", true);
            c.set("error", cell.error);
        }
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    doc.set("rms_estimation_error_pct", result.rmsEstimationErrorPct());
    if (const std::size_t failed = result.failedCells(); failed > 0)
        doc.set("failed_cells", static_cast<long long>(failed));

    if (include_timing) {
        JsonValue timing = JsonValue::object();
        timing.set("jobs", static_cast<long long>(result.jobs));
        timing.set("wall_ms", result.wallMillis);
        timing.set("calibration_ms", result.calibrationMillis);
        JsonValue cell_ms = JsonValue::array();
        for (const CampaignCell &cell : result.cells)
            cell_ms.push(cell.wallMillis);
        timing.set("cell_ms", std::move(cell_ms));
        doc.set("timing", std::move(timing));
    }
    return doc;
}

void
writeCampaignJson(const std::string &path, const CampaignResult &result,
                  bool include_timing)
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    campaignToJson(result, include_timing).write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing campaign JSON to ", path);
}

void
writeCampaignCsv(const std::string &path, const CampaignResult &result)
{
    Table table({"benchmark", "impedance_scale", "trace_cycles",
                 "windows", "estimated_below_pct", "measured_below_pct",
                 "estimated_above_pct", "measured_above_pct",
                 "estimated_variance", "measured_variance"});
    for (const CampaignCell &cell : result.cells) {
        table.newRow();
        table.add(cell.benchmark);
        table.add(cell.impedanceScale, 2);
        table.add(static_cast<long long>(cell.traceCycles));
        table.add(static_cast<long long>(cell.windows));
        table.add(cell.estimatedBelowPct, 4);
        table.add(cell.measuredBelowPct, 4);
        table.add(cell.estimatedAbovePct, 4);
        table.add(cell.measuredAbovePct, 4);
        table.add(cell.estimatedVariance, 10);
        table.add(cell.measuredVariance, 10);
    }
    table.writeCsvFile(path);
}

} // namespace didt
