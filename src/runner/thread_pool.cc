#include "runner/thread_pool.hh"

namespace didt
{

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = resolveJobs(threads);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task captures any exception in its future; a bare
        // callable that throws would terminate, matching std::thread.
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> pending;
    pending.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        pending.push_back(submit([&fn, i] { fn(i); }));
    // Wait for everything before rethrowing so no iteration is still
    // touching caller state when the exception unwinds.
    for (std::future<void> &f : pending)
        f.wait();
    for (std::future<void> &f : pending)
        f.get();
}

std::size_t
ThreadPool::resolveJobs(std::size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace didt
