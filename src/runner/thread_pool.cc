#include "runner/thread_pool.hh"

#include <chrono>

#include "obs/metrics.hh"

namespace didt
{

namespace
{

/** Pool metrics shared by every pool instance (handles are cheap and
 *  the registry is process-wide). */
struct PoolMetrics
{
    obs::Counter tasks;
    obs::Gauge queueDepth;
    obs::Histogram taskMs;
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics{
        obs::MetricsRegistry::global().counter("pool.tasks"),
        obs::MetricsRegistry::global().gauge("pool.queue_depth"),
        obs::MetricsRegistry::global().histogram("pool.task_ms"),
    };
    return metrics;
}

/** The calling thread's index in the pool that spawned it. Workers of
 *  any pool write this once at startup; all other threads keep the
 *  sentinel. */
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = resolveJobs(threads);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::workerIndex()
{
    return tls_worker_index;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tls_worker_index = index;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task captures any exception in its future; a bare
        // callable that throws would terminate, matching std::thread.
        if (obs::metricsEnabled()) {
            const auto start = std::chrono::steady_clock::now();
            task();
            poolMetrics().taskMs.observe(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        } else {
            task();
        }
    }
}

void
ThreadPool::noteSubmitted(std::size_t queue_depth)
{
    if (!obs::metricsEnabled())
        return;
    PoolMetrics &metrics = poolMetrics();
    metrics.tasks.add(1);
    metrics.queueDepth.record(static_cast<double>(queue_depth));
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> pending;
    pending.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        pending.push_back(submit([&fn, i] { fn(i); }));
    // Wait for everything before rethrowing so no iteration is still
    // touching caller state when the exception unwinds.
    for (std::future<void> &f : pending)
        f.wait();
    for (std::future<void> &f : pending)
        f.get();
}

std::size_t
ThreadPool::resolveJobs(std::size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace didt
