/**
 * @file
 * Structured campaign results: the campaign JSON / CSV serializers on
 * top of the shared JSON document model (util/json.hh).
 *
 * The writer is byte-deterministic for a given document (object keys
 * keep insertion order, numbers format identically on every run), so
 * two campaign runs that compute the same values produce identical
 * files regardless of --jobs.
 */

#ifndef DIDT_RUNNER_RESULT_JSON_HH
#define DIDT_RUNNER_RESULT_JSON_HH

#include <string>

#include "util/json.hh"

namespace didt
{

struct CampaignResult;

/**
 * Render a campaign result as a JSON document.
 *
 * @param include_timing add the wall-clock section; off by default so
 *        outputs are byte-identical across --jobs settings.
 */
JsonValue campaignToJson(const CampaignResult &result,
                         bool include_timing = false);

/** Write campaign JSON to a file; fatal on I/O errors. */
void writeCampaignJson(const std::string &path,
                       const CampaignResult &result,
                       bool include_timing = false);

/** Write the per-cell table as CSV; fatal on I/O errors. */
void writeCampaignCsv(const std::string &path,
                      const CampaignResult &result);

} // namespace didt

#endif // DIDT_RUNNER_RESULT_JSON_HH
