/**
 * @file
 * Structured campaign results: the campaign JSON / CSV serializers on
 * top of the shared JSON document model (util/json.hh).
 *
 * The writer is byte-deterministic for a given document (object keys
 * keep insertion order, numbers format identically on every run), so
 * two campaign runs that compute the same values produce identical
 * files regardless of --jobs.
 */

#ifndef DIDT_RUNNER_RESULT_JSON_HH
#define DIDT_RUNNER_RESULT_JSON_HH

#include <string>

#include "util/json.hh"

namespace didt
{

struct CampaignResult;
struct CampaignSpec;

/**
 * Render a campaign spec as a JSON object — the "spec" section of the
 * campaign document, and the request payload of the didt-serve-v1
 * protocol (serve/protocol.hh).
 */
JsonValue campaignSpecToJson(const CampaignSpec &spec);

/**
 * Parse a campaign spec from the JSON object campaignSpecToJson
 * writes. Every field is optional and defaults to the CampaignSpec
 * default, so a request may carry only what it overrides. Never
 * panics: on a type mismatch, an unknown benchmark, or an unknown
 * wavelet basis it fills @p error and returns false, leaving @p spec
 * unspecified — the daemon turns that into a per-request error
 * response.
 */
bool campaignSpecFromJson(const JsonValue &json, CampaignSpec *spec,
                          std::string *error);

/**
 * Render a campaign result as a JSON document.
 *
 * @param include_timing add the wall-clock section; off by default so
 *        outputs are byte-identical across --jobs settings.
 */
JsonValue campaignToJson(const CampaignResult &result,
                         bool include_timing = false);

/** Write campaign JSON to a file; fatal on I/O errors. */
void writeCampaignJson(const std::string &path,
                       const CampaignResult &result,
                       bool include_timing = false);

/** Write the per-cell table as CSV; fatal on I/O errors. */
void writeCampaignCsv(const std::string &path,
                      const CampaignResult &result);

} // namespace didt

#endif // DIDT_RUNNER_RESULT_JSON_HH
