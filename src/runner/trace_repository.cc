#include "runner/trace_repository.hh"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "power/trace_io.hh"
#include "util/logging.hh"
#include "verify/failpoint.hh"

namespace didt
{

namespace
{

/**
 * Process-wide mirror of the per-repository counters. The per-instance
 * TraceCacheStats stays the authoritative, deterministic source for
 * campaign result JSON; these feed the metrics sidecar only.
 */
struct RepoMetrics
{
    obs::Counter lookups;
    obs::Counter memoryHits;
    obs::Counter diskLoads;
    obs::Counter diskStores;
    obs::Counter diskCorrupt;
    obs::Counter simulations;
    obs::Counter evictions;
    obs::Counter traceBytes;
    obs::Gauge residentBytes;
    obs::Histogram waitMs;
    obs::Histogram simulateMs;
};

RepoMetrics &
repoMetrics()
{
    auto &registry = obs::MetricsRegistry::global();
    static RepoMetrics metrics{
        registry.counter("repo.lookups"),
        registry.counter("repo.memory_hits"),
        registry.counter("repo.disk_loads"),
        registry.counter("repo.disk_stores"),
        registry.counter("repo.disk_corrupt"),
        registry.counter("repo.simulations"),
        registry.counter("repo.evictions"),
        registry.counter("repo.trace_bytes"),
        registry.gauge("repo.resident_bytes"),
        registry.histogram("repo.wait_ms"),
        registry.histogram("repo.simulate_ms"),
    };
    return metrics;
}

/** Incremental FNV-1a over raw bytes. */
class Fnv1a
{
  public:
    void bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }

    void f64(double v)
    {
        // Hash the bit pattern: the simulator is bit-deterministic, so
        // bit-equal parameters are the correct equivalence.
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/** Hash every field of @p p into @p h (order is part of the key). */
void
hashProfile(Fnv1a &h, const BenchmarkProfile &p)
{
    h.str(p.name);
    h.u64(p.floatingPoint ? 1 : 0);
    h.u64(p.codeBytes);
    h.u64(p.hotBytes);
    h.u64(p.warmBytes);
    h.u64(p.seed);
    h.u64(p.phases.size());
    for (const WorkloadPhase &ph : p.phases) {
        h.f64(ph.loadFrac);
        h.f64(ph.storeFrac);
        h.f64(ph.branchFrac);
        h.f64(ph.fpFrac);
        h.f64(ph.multFrac);
        h.f64(ph.divFrac);
        h.f64(ph.hotProb);
        h.f64(ph.warmProb);
        h.f64(ph.chaseProb);
        h.f64(ph.gateOnLoadProb);
        h.u64(ph.depFixed);
        h.f64(ph.predictableBranchFrac);
        h.f64(ph.depGeomP);
        h.f64(ph.dep2Prob);
        h.u64(ph.lengthInsts);
    }
}

} // namespace

TraceCacheStats &
TraceCacheStats::operator+=(const TraceCacheStats &other)
{
    lookups += other.lookups;
    memoryHits += other.memoryHits;
    diskLoads += other.diskLoads;
    diskStores += other.diskStores;
    diskCorrupt += other.diskCorrupt;
    simulations += other.simulations;
    evictions += other.evictions;
    return *this;
}

std::uint64_t
fingerprintTraceRequest(const TraceRequest &request)
{
    Fnv1a h;
    hashProfile(h, request.profile);
    h.u64(request.instructions);
    h.u64(request.seed);
    h.u64(request.trimWarmup);
    // Chip fields participate only for multi-core requests so every
    // single-core request keeps its historical fingerprint (and its
    // on-disk cache file).
    if (request.cores > 1) {
        h.u64(request.cores);
        h.u64(request.coreProfiles.size());
        for (const BenchmarkProfile &cp : request.coreProfiles)
            hashProfile(h, cp);
        h.u64(request.coreSeeds.size());
        for (std::uint64_t seed : request.coreSeeds)
            h.u64(seed);
        h.u64(request.l2Banks);
        h.u64(request.l2BankPenalty);
    }
    // Sampling dimensions participate only when sampling is on, so
    // unsampled requests keep their historical fingerprint.
    if (request.sampleSkip > 0) {
        h.u64(request.sampleDetail);
        h.u64(request.sampleSkip);
        h.u64(request.sampleWarmup);
    }
    return h.value();
}

TraceRepository::TraceRepository(const ExperimentSetup &setup,
                                 std::string cache_dir)
    : setup_(setup), cacheDir_(std::move(cache_dir))
{
}

std::string
TraceRepository::cachePath(const TraceRequest &request) const
{
    if (cacheDir_.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.trc",
                  static_cast<unsigned long long>(
                      fingerprintTraceRequest(request)));
    return cacheDir_ + "/" + name;
}

void
TraceRepository::touchLocked(Entry &entry)
{
    if (entry.resident && entry.lruIt != lru_.begin())
        lru_.splice(lru_.begin(), lru_, entry.lruIt);
}

void
TraceRepository::enforceBudgetLocked()
{
    if (budgetBytes_ == 0)
        return;
    // Never evict the MRU entry: the budget is a cap on the *shared*
    // tier, not a way to thrash the trace a request is using right now.
    while (residentBytes_ > budgetBytes_ && lru_.size() > 1) {
        const std::uint64_t victim = lru_.back();
        auto it = entries_.find(victim);
        if (it != entries_.end()) {
            residentBytes_ -= it->second.bytes;
            entries_.erase(it);
        }
        lru_.pop_back();
        ++stats_.evictions;
        repoMetrics().evictions.add(1);
    }
    repoMetrics().residentBytes.record(
        static_cast<double>(residentBytes_));
}

void
TraceRepository::setMemoryBudgetBytes(std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budgetBytes_ = bytes;
    enforceBudgetLocked();
}

std::uint64_t
TraceRepository::memoryBudgetBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return budgetBytes_;
}

std::uint64_t
TraceRepository::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residentBytes_;
}

std::shared_ptr<const CurrentTrace>
TraceRepository::get(const TraceRequest &request, TraceCacheStats *delta)
{
    const std::uint64_t key = fingerprintTraceRequest(request);

    std::shared_future<TracePtr> shared;
    std::promise<TracePtr> claim;
    bool producer = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.lookups;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Completed or in flight: either way this caller shares
            // the one production, so it counts as a memory hit.
            ++stats_.memoryHits;
            touchLocked(it->second);
            shared = it->second.future;
        } else {
            producer = true;
            shared = claim.get_future().share();
            Entry entry;
            entry.future = shared;
            entries_.emplace(key, std::move(entry));
        }
    }

    RepoMetrics &metrics = repoMetrics();
    metrics.lookups.add(1);
    if (delta)
        ++delta->lookups;

    if (producer) {
        try {
            claim.set_value(produce(request, delta));
        } catch (...) {
            // Evict the failed production before publishing the
            // exception: waiters already holding the shared future see
            // the error, but the next get() for this key elects a
            // fresh producer instead of replaying a stale failure
            // forever.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
            }
            claim.set_exception(std::current_exception());
            return shared.get(); // rethrows; never returns
        }
        // Production succeeded: account the trace against the memory
        // budget and evict older entries if the shared tier overflowed.
        const TracePtr trace = shared.get(); // already ready
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end() && !it->second.resident) {
                it->second.bytes = trace->size() * sizeof(Amp);
                lru_.push_front(key);
                it->second.lruIt = lru_.begin();
                it->second.resident = true;
                residentBytes_ += it->second.bytes;
                enforceBudgetLocked();
            }
        }
        return trace;
    }

    metrics.memoryHits.add(1);
    if (delta)
        ++delta->memoryHits;
    if (obs::metricsEnabled()) {
        // Time how long this consumer blocks behind the elected
        // producer (zero when the entry was already complete).
        const auto start = std::chrono::steady_clock::now();
        TracePtr trace = shared.get();
        metrics.waitMs.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count());
        return trace;
    }
    return shared.get();
}

std::shared_ptr<const CurrentTrace>
TraceRepository::get(const BenchmarkProfile &profile,
                     std::uint64_t instructions, std::uint64_t seed,
                     std::size_t trim_warmup)
{
    TraceRequest request;
    request.profile = profile;
    request.instructions = instructions;
    request.seed = seed;
    request.trimWarmup = trim_warmup;
    return get(request);
}

TraceRepository::TracePtr
TraceRepository::produce(const TraceRequest &request,
                         TraceCacheStats *delta)
{
    if (DIDT_FAILPOINT_KEYED("repo.produce", request.profile.name))
        throw std::runtime_error("injected fault (repo.produce): " +
                                 request.profile.name);

    RepoMetrics &metrics = repoMetrics();
    const std::string path = cachePath(request);
    bool rejected_corrupt = false;
    if (!path.empty()) {
        std::error_code ec;
        const bool on_disk = std::filesystem::exists(path, ec);
        if (on_disk) {
            std::optional<CurrentTrace> cached;
            if (!DIDT_FAILPOINT_KEYED("repo.disk_read", path))
                cached = tryReadTraceBinary(path);
            if (cached) {
                metrics.diskLoads.add(1);
                metrics.traceBytes.add(cached->size() * sizeof(Amp));
                if (delta)
                    ++delta->diskLoads;
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.diskLoads;
                return std::make_shared<const CurrentTrace>(
                    *std::move(cached));
            }
            // Present but unreadable: reject it, regenerate, and let
            // the write below replace the bad file.
            rejected_corrupt = true;
            metrics.diskCorrupt.add(1);
            didt_warn("rejecting corrupt trace cache file ", path);
        }
    }

    CurrentTrace trace;
    {
        obs::ScopedTimer timer("simulate " + request.profile.name,
                               metrics.simulateMs, nullptr, "repo");
        SamplingConfig sampling;
        sampling.detailCycles = request.sampleDetail;
        sampling.skipCycles = request.sampleSkip;
        sampling.warmupCycles = request.sampleWarmup;
        if (request.cores > 1) {
            // Chip request: co-simulate the per-core streams and cache
            // the aggregate chip current.
            if (request.coreProfiles.size() != request.cores ||
                request.coreSeeds.size() != request.cores)
                throw std::runtime_error(
                    "chip trace request: coreProfiles/coreSeeds must "
                    "match cores");
            std::vector<ChipWorkload> workloads(request.cores);
            for (std::size_t i = 0; i < request.cores; ++i) {
                workloads[i].profile = &request.coreProfiles[i];
                workloads[i].seed = request.coreSeeds[i];
            }
            ChipConfig chip;
            chip.l2Banks = request.l2Banks;
            chip.l2BankPenalty = request.l2BankPenalty;
            TraceSet set = chipCurrentTrace(setup_, workloads,
                                            request.instructions,
                                            request.trimWarmup, chip,
                                            sampling);
            trace = std::move(set.aggregate);
        } else {
            trace = benchmarkCurrentTrace(
                setup_, request.profile, request.instructions,
                request.seed, request.trimWarmup, sampling);
        }
    }

    bool stored = false;
    if (!path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        if (ec) {
            didt_warn("cannot create trace cache dir ", cacheDir_, ": ",
                      ec.message());
        } else if (DIDT_FAILPOINT_KEYED("repo.disk_write", path)) {
            // A failed store is not fatal: the trace is already in
            // memory; only a later process pays a re-simulation.
            didt_warn("injected fault (repo.disk_write): not storing ",
                      path);
        } else {
            writeTraceBinary(path, trace);
            stored = true;
            metrics.diskStores.add(1);
        }
    }

    metrics.simulations.add(1);
    metrics.traceBytes.add(trace.size() * sizeof(Amp));
    if (delta) {
        ++delta->simulations;
        if (rejected_corrupt)
            ++delta->diskCorrupt;
        if (stored)
            ++delta->diskStores;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.simulations;
    if (rejected_corrupt)
        ++stats_.diskCorrupt;
    if (stored)
        ++stats_.diskStores;
    return std::make_shared<const CurrentTrace>(std::move(trace));
}

TraceCacheStats
TraceRepository::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
TraceRepository::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace didt
