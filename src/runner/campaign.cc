#include "runner/campaign.hh"

#include <cmath>

#include "runner/executor.hh"
#include "runner/plan.hh"

namespace didt
{

const std::vector<BenchmarkProfile> &
CampaignSpec::effectiveProfiles() const
{
    return profiles.empty() ? spec2000Profiles() : profiles;
}

const std::vector<std::size_t> &
CampaignSpec::effectiveCoreCounts() const
{
    static const std::vector<std::size_t> uniprocessor{1};
    return coreCounts.empty() ? uniprocessor : coreCounts;
}

bool
CampaignSpec::isChipSweep() const
{
    if (!mixes.empty())
        return true;
    for (std::size_t cores : effectiveCoreCounts())
        if (cores != 1)
            return true;
    return false;
}

double
CampaignResult::rmsEstimationErrorPct() const
{
    double sq = 0.0;
    std::size_t ok = 0;
    for (const CampaignCell &cell : cells) {
        if (cell.failed)
            continue;
        const double err =
            cell.estimatedBelowPct - cell.measuredBelowPct;
        sq += err * err;
        ++ok;
    }
    return ok == 0 ? 0.0 : std::sqrt(sq / static_cast<double>(ok));
}

std::size_t
CampaignResult::failedCells() const
{
    std::size_t failed = 0;
    for (const CampaignCell &cell : cells)
        failed += cell.failed ? 1 : 0;
    return failed;
}

CampaignResult
runCharacterizationCampaign(const ExperimentSetup &setup,
                            const CampaignSpec &spec,
                            TraceRepository &repo, std::size_t jobs,
                            const std::function<void(const CampaignCell &)>
                                &on_cell,
                            const std::atomic<bool> *cancel)
{
    Executor executor(setup, repo, jobs);
    ExecutionHooks hooks;
    hooks.onCell = on_cell;
    hooks.cancel = cancel;
    return executor.run(buildCampaignPlan(spec), hooks);
}

} // namespace didt
