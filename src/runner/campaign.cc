#include "runner/campaign.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>

#include "core/emergency_estimator.hh"
#include "core/variance_model.hh"
#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "util/json.hh"
#include "verify/failpoint.hh"
#include "wavelet/basis.hh"

namespace didt
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Campaign-level metrics (sidecar only; never read for result JSON). */
struct CampaignMetrics
{
    obs::Counter cells;
    obs::Counter cellFailures;
    obs::Histogram cellMs;
    obs::Histogram calibrateMs;
};

CampaignMetrics &
campaignMetrics()
{
    auto &registry = obs::MetricsRegistry::global();
    static CampaignMetrics metrics{
        registry.counter("campaign.cells"),
        registry.counter("campaign.cell_failures"),
        registry.histogram("campaign.cell_ms"),
        registry.histogram("campaign.calibrate_ms"),
    };
    return metrics;
}

/**
 * Stable identity of one campaign cell, used as the failpoint key for
 * the campaign.cell site and in failure messages: "mcf@1.2". The scale
 * prints exactly like the result JSON, so spec strings can be copied
 * from campaign output.
 */
std::string
cellKey(const std::string &benchmark, double scale)
{
    return benchmark + "@" + jsonNumber(scale);
}

} // namespace

const std::vector<BenchmarkProfile> &
CampaignSpec::effectiveProfiles() const
{
    return profiles.empty() ? spec2000Profiles() : profiles;
}

double
CampaignResult::rmsEstimationErrorPct() const
{
    double sq = 0.0;
    std::size_t ok = 0;
    for (const CampaignCell &cell : cells) {
        if (cell.failed)
            continue;
        const double err =
            cell.estimatedBelowPct - cell.measuredBelowPct;
        sq += err * err;
        ++ok;
    }
    return ok == 0 ? 0.0 : std::sqrt(sq / static_cast<double>(ok));
}

std::size_t
CampaignResult::failedCells() const
{
    std::size_t failed = 0;
    for (const CampaignCell &cell : cells)
        failed += cell.failed ? 1 : 0;
    return failed;
}

CampaignResult
runCharacterizationCampaign(const ExperimentSetup &setup,
                            const CampaignSpec &spec,
                            TraceRepository &repo, std::size_t jobs,
                            const std::function<void(const CampaignCell &)>
                                &on_cell)
{
    const Clock::time_point campaign_start = Clock::now();

    CampaignResult result;
    result.spec = spec;
    // Materialize the all-SPEC default so the result echoes the exact
    // benchmark list it ran.
    result.spec.profiles = spec.effectiveProfiles();
    const std::vector<BenchmarkProfile> &profiles = result.spec.profiles;
    const std::vector<double> &scales = spec.impedanceScales;

    ThreadPool pool(jobs);
    result.jobs = pool.size();

    // Phase 1: build the calibration training set, each trace on its
    // own worker.
    const std::vector<std::function<CurrentTrace()>> builders =
        calibrationTraceBuilders(setup);
    std::vector<CurrentTrace> training(builders.size());
    {
        obs::ScopedTimer phase("campaign.training", {}, nullptr,
                               "campaign");
        pool.parallelFor(builders.size(), [&](std::size_t i) {
            training[i] = builders[i]();
        });
    }

    // Phase 2: one supply network + calibrated variance model per
    // impedance scale, calibrated in parallel on the shared training
    // set. Networks are stored first so the models' references stay
    // valid for the whole campaign.
    const WaveletBasis basis = WaveletBasis::byName(spec.basis);
    std::vector<SupplyNetwork> networks;
    networks.reserve(scales.size());
    for (double scale : scales)
        networks.push_back(setup.makeNetwork(scale));
    std::vector<std::unique_ptr<VoltageVarianceModel>> models(
        scales.size());
    {
        obs::ScopedTimer phase("campaign.calibrate", {}, nullptr,
                               "campaign");
        pool.parallelFor(scales.size(), [&](std::size_t si) {
            obs::ScopedTimer timer("calibrate scale",
                                   campaignMetrics().calibrateMs,
                                   nullptr, "campaign");
            auto model = std::make_unique<VoltageVarianceModel>(
                networks[si], spec.windowLength, spec.levels, basis);
            model->calibrateOnTraces(training);
            models[si] = std::move(model);
        });
    }
    result.calibrationMillis = millisSince(campaign_start);

    // Phase 3: the sweep itself. Cells are stored benchmark-major for
    // reporting but submitted scale-major, so the first batch of tasks
    // covers distinct benchmarks and primes the trace cache before the
    // sharing cells queue up behind it.
    result.cells.resize(profiles.size() * scales.size());
    // One analysis workspace per pool worker (plus a slot for any
    // non-worker thread), indexed lock-free via workerIndex(): every
    // cell on a worker reuses that worker's buffers, so the per-window
    // hot path runs allocation-free after the first cell.
    std::vector<AnalysisWorkspace> workspaces(pool.size() + 1);
    std::optional<obs::ScopedTimer> sweep_phase;
    sweep_phase.emplace("campaign.sweep", obs::Histogram{}, nullptr,
                        "campaign");
    std::mutex progress_mutex;
    std::vector<std::future<void>> pending;
    std::vector<std::size_t> pendingCell; // submission order -> cell
    pending.reserve(result.cells.size());
    pendingCell.reserve(result.cells.size());
    for (std::size_t si = 0; si < scales.size(); ++si) {
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            // Identity fields are written on this thread before the
            // task runs, so even a task that faults before touching its
            // cell (e.g. an injected pool.task failure) leaves a fully
            // identified failed cell behind.
            CampaignCell &submitted =
                result.cells[pi * scales.size() + si];
            submitted.benchmark = profiles[pi].name;
            submitted.impedanceScale = scales[si];
            pendingCell.push_back(pi * scales.size() + si);
            pending.push_back(pool.submit([&, si, pi] {
                obs::ScopedTimer span("cell " + profiles[pi].name,
                                      campaignMetrics().cellMs, nullptr,
                                      "campaign");
                campaignMetrics().cells.add(1);
                const Clock::time_point cell_start = Clock::now();
                CampaignCell &cell =
                    result.cells[pi * scales.size() + si];
                try {
                    const std::string key =
                        cellKey(profiles[pi].name, scales[si]);
                    if (DIDT_FAILPOINT_KEYED("campaign.cell", key))
                        throw std::runtime_error(
                            "injected fault (campaign.cell): " + key);
                    const std::shared_ptr<const CurrentTrace> trace =
                        repo.get(profiles[pi], spec.instructions,
                                 spec.seed, spec.trimWarmup);
                    const std::size_t wi = ThreadPool::workerIndex();
                    AnalysisWorkspace &ws =
                        workspaces[wi == ThreadPool::kNotAWorker
                                       ? pool.size()
                                       : wi];
                    const EmergencyProfile ep = profileTrace(
                        *trace, networks[si], *models[si],
                        spec.lowThreshold, spec.highThreshold, ws, {},
                        spec.useCorrelation);

                    cell.traceCycles = trace->size();
                    cell.windows = ep.windows;
                    cell.estimatedBelowPct = 100.0 * ep.estimatedBelow;
                    cell.measuredBelowPct = 100.0 * ep.measuredBelow;
                    cell.estimatedAbovePct = 100.0 * ep.estimatedAbove;
                    cell.measuredAbovePct = 100.0 * ep.measuredAbove;
                    cell.estimatedVariance = ep.estimatedVariance;
                    cell.measuredVariance = ep.measuredVariance;
                } catch (const std::exception &e) {
                    // A faulting cell is a result, not an abort: the
                    // rest of the sweep keeps going and the failure
                    // lands in the result JSON.
                    cell.failed = true;
                    cell.error = e.what();
                    campaignMetrics().cellFailures.add(1);
                }
                cell.wallMillis = millisSince(cell_start);
                if (on_cell) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    on_cell(cell);
                }
            }));
        }
    }
    for (std::future<void> &f : pending)
        f.wait();
    for (std::size_t i = 0; i < pending.size(); ++i) {
        try {
            pending[i].get();
        } catch (const std::exception &e) {
            // The task itself faulted before the cell body's try block
            // (an injected pool.task fault): record it against the
            // right cell instead of aborting the campaign.
            CampaignCell &cell = result.cells[pendingCell[i]];
            if (!cell.failed) {
                cell.failed = true;
                cell.error = e.what();
                campaignMetrics().cellFailures.add(1);
            }
        }
    }
    sweep_phase.reset();

    result.cacheStats = repo.stats();
    result.wallMillis = millisSince(campaign_start);
    return result;
}

} // namespace didt
