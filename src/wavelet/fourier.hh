/**
 * @file
 * Discrete Fourier transform (radix-2 FFT).
 *
 * The paper's Section 2 motivates wavelets *against* Fourier analysis:
 * the DFT's coefficients describe global frequency behaviour (its
 * Equation 1), so bursty, non-stationary signals smear across the
 * spectrum. This module provides the Fourier side of that comparison
 * — used by cross-validation tests (subband energies vs band-limited
 * spectral energy) and by the motivation bench that contrasts the two
 * transforms on transient current bursts.
 */

#ifndef DIDT_WAVELET_FOURIER_HH
#define DIDT_WAVELET_FOURIER_HH

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace didt
{

/**
 * In-place iterative radix-2 FFT.
 *
 * @param data complex samples; size must be a power of two
 * @param inverse compute the inverse transform (includes the 1/N
 *        normalization, so fft(fft(x), inverse) == x)
 */
void fft(std::vector<std::complex<double>> &data, bool inverse = false);

/** Forward DFT of a real signal (length must be a power of two). */
std::vector<std::complex<double>> dft(std::span<const double> signal);

/**
 * One-sided power spectrum of a real signal: |X[k]|^2 / N for
 * k = 0..N/2, with the energy of negative frequencies folded in so
 * that the spectrum sums to the signal's mean-square value
 * (Parseval).
 */
std::vector<double> powerSpectrum(std::span<const double> signal);

/**
 * Total spectral energy of @p signal between @p lo_hz and @p hi_hz
 * when sampled at @p sample_hz (sum of one-sided power-spectrum bins
 * whose center frequency falls in [lo, hi)).
 */
double bandEnergy(std::span<const double> signal, double lo_hz,
                  double hi_hz, double sample_hz);

} // namespace didt

#endif // DIDT_WAVELET_FOURIER_HH
