/**
 * @file
 * Flat single-buffer wavelet coefficient storage and reusable
 * transform scratch.
 *
 * The legacy WaveletDecomposition keeps one std::vector per level,
 * which costs a heap allocation per level per transform — millions of
 * transient allocations across a characterization sweep that serialize
 * worker threads on the allocator. FlatDecomposition stores the whole
 * coefficient matrix in one contiguous buffer with per-level offsets
 * and hands out std::span views, so a decomposition can be recomputed
 * in place window after window without touching the allocator once
 * the buffers reach steady-state capacity. DwtWorkspace bundles the
 * ping/pong scratch the pyramid algorithms need between levels.
 *
 * Workspaces and decompositions are plain value types with no internal
 * synchronization: each is meant to be owned by exactly one thread
 * (see DESIGN.md section 10, "Memory layout and workspace ownership").
 */

#ifndef DIDT_WAVELET_FLAT_DECOMPOSITION_HH
#define DIDT_WAVELET_FLAT_DECOMPOSITION_HH

#include <cstddef>
#include <span>
#include <vector>

namespace didt
{

struct WaveletDecomposition;

/**
 * A multi-level wavelet decomposition in one contiguous buffer.
 *
 * Layout: detail levels finest first (matching WaveletDecomposition's
 * level numbering), then the approximation row:
 *
 *     [ d0 ... | d1 ... | ... | d(L-1) ... | approx ... ]
 *
 * offsets_[j] is the start of detail level j; offsets_[L] starts the
 * approximation row; offsets_[L+1] == coeffs().size(). The dyadic
 * layout (DWT) halves the row length per level; the uniform layout
 * (MODWT) keeps every row at the signal length.
 */
class FlatDecomposition
{
  public:
    /** Number of detail levels. */
    std::size_t levels() const
    {
        return offsets_.empty() ? 0 : offsets_.size() - 2;
    }

    /** Length of the original signal. */
    std::size_t signalLength() const { return signalLength_; }

    /** Total number of coefficients (details + approximation). */
    std::size_t totalCoefficients() const { return coeffs_.size(); }

    /** Detail row @p level (0 = finest). */
    std::span<double> detail(std::size_t level);
    std::span<const double> detail(std::size_t level) const;

    /** Approximation (coarsest scaling) row. */
    std::span<double> approximation();
    std::span<const double> approximation() const;

    /** The whole coefficient buffer, rows in layout order. */
    std::span<double> coefficients() { return coeffs_; }
    std::span<const double> coefficients() const { return coeffs_; }

    /**
     * Sum of squared coefficients; by Parseval's relation this equals
     * the squared L2 norm of the original signal (orthonormal bases).
     */
    double energy() const;

    /**
     * Lay out storage for a decimated (DWT) decomposition of a
     * @p signal_length signal at @p levels levels: row j has
     * signal_length / 2^(j+1) coefficients and the approximation row
     * matches the coarsest detail row. Reuses existing capacity;
     * contents are left uninitialized. Panics when @p signal_length is
     * not divisible by 2^levels or @p levels is zero.
     */
    void layoutDyadic(std::size_t signal_length, std::size_t levels);

    /**
     * Lay out storage for an undecimated (MODWT) decomposition: every
     * row, including the approximation (smooth) row, has
     * @p signal_length coefficients.
     */
    void layoutUniform(std::size_t signal_length, std::size_t levels);

    /** Copy into the legacy vector-of-vectors representation. */
    WaveletDecomposition toNested() const;

    /** Adopt the layout and coefficients of a legacy decomposition. */
    void assignFrom(const WaveletDecomposition &nested);

  private:
    std::vector<double> coeffs_;
    std::vector<std::size_t> offsets_; ///< levels + 2 entries when laid out
    std::size_t signalLength_ = 0;

    std::span<double> row(std::size_t index);
    std::span<const double> row(std::size_t index) const;
};

/**
 * Reusable scratch for the pyramid transforms (Dwt, Modwt, subband
 * projection). Buffers grow to the high-water mark of the signals they
 * process and are then reused allocation-free. Owned by one thread at
 * a time; never shared concurrently.
 */
struct DwtWorkspace
{
    /** Ping/pong buffers for the per-level approximation chain. */
    std::vector<double> ping;
    std::vector<double> pong;

    /** Extra row buffer (e.g. MODWT detail reduction). */
    std::vector<double> extra;

    /** Scratch decomposition for masked reconstructions (subbands). */
    FlatDecomposition masked;
};

} // namespace didt

#endif // DIDT_WAVELET_FLAT_DECOMPOSITION_HH
