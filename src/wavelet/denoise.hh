/**
 * @file
 * Wavelet shrinkage denoising (VisuShrink).
 *
 * The paper's Section 2 notes wavelet thresholding is asymptotically
 * near-optimal for signal de-noising (Donoho-Johnstone). In this
 * library it is the preprocessing step for *measured* current traces:
 * instrumentation noise rides on top of the waveform and inflates the
 * fine-scale subband variances the characterizer feeds on. Universal-
 * threshold shrinkage removes it while keeping the bursts and edges
 * that matter for dI/dt.
 */

#ifndef DIDT_WAVELET_DENOISE_HH
#define DIDT_WAVELET_DENOISE_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/basis.hh"

namespace didt
{

/** Thresholding rule. */
enum class Shrinkage
{
    Soft, ///< shrink toward zero by the threshold (continuous)
    Hard, ///< zero below the threshold, keep above
};

/** Parameters of a denoising pass. */
struct DenoiseConfig
{
    /** Decomposition depth (0 = as deep as the length allows). */
    std::size_t levels = 0;

    /** Thresholding rule. */
    Shrinkage rule = Shrinkage::Soft;

    /**
     * Noise sigma; 0 = estimate it from the finest detail level via
     * the median absolute deviation (MAD / 0.6745).
     */
    double sigma = 0.0;
};

/**
 * Estimate the noise standard deviation of @p signal from its finest
 * Haar detail coefficients (robust MAD estimator).
 */
double estimateNoiseSigma(std::span<const double> signal,
                          const WaveletBasis &basis = WaveletBasis::haar());

/**
 * Denoise @p signal by universal-threshold wavelet shrinkage
 * (threshold sigma * sqrt(2 ln N) applied to all detail levels).
 *
 * @param signal input; length must be divisible by 2^levels
 * @param basis wavelet basis
 * @param config shrinkage parameters
 * @return the denoised signal (same length)
 */
std::vector<double> denoise(std::span<const double> signal,
                            const WaveletBasis &basis = WaveletBasis::haar(),
                            const DenoiseConfig &config = {});

} // namespace didt

#endif // DIDT_WAVELET_DENOISE_HH
