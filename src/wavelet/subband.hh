/**
 * @file
 * Wavelet subband projection (paper Section 2.2, Equations 4-5).
 *
 * A subband is the time-domain projection of one row of the wavelet
 * coefficient matrix. Summing all subbands (details plus approximation)
 * recreates the original signal; dropping subbands filters it.
 */

#ifndef DIDT_WAVELET_SUBBAND_HH
#define DIDT_WAVELET_SUBBAND_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/dwt.hh"

namespace didt
{

/**
 * Project a single detail level of @p dec back into the time domain.
 *
 * @param dwt the transform engine (must use the same basis as @p dec)
 * @param dec a forward decomposition
 * @param level detail level to project (0 = finest)
 * @return a signal of the original length containing only that level's
 *         contribution
 */
std::vector<double> detailSubband(const Dwt &dwt,
                                  const WaveletDecomposition &dec,
                                  std::size_t level);

/** Project the approximation row back into the time domain. */
std::vector<double> approximationSubband(const Dwt &dwt,
                                         const WaveletDecomposition &dec);

/**
 * All subbands of a decomposition: details (finest first) followed by
 * the approximation subband. Their element-wise sum equals the original
 * signal (perfect reconstruction).
 */
std::vector<std::vector<double>> allSubbands(const Dwt &dwt,
                                             const WaveletDecomposition &dec);

/**
 * Reconstruct keeping only the detail levels listed in @p keep_levels
 * (plus the approximation when @p keep_approximation). This implements
 * the paper's subband filtering: "if we choose to ignore some subbands
 * ... we are effectively filtering the original signal."
 */
std::vector<double> filteredReconstruction(
    const Dwt &dwt, const WaveletDecomposition &dec,
    const std::vector<std::size_t> &keep_levels, bool keep_approximation);

/**
 * In-place overloads on the flat layout: write the projection into
 * caller-owned @p out (which must hold dec.signalLength() samples),
 * using @p ws for the masked copy and pyramid scratch. Allocation-free
 * once the workspace has reached capacity.
 */
void detailSubband(const Dwt &dwt, const FlatDecomposition &dec,
                   std::size_t level, std::span<double> out,
                   DwtWorkspace &ws);

/** Flat-layout approximation projection into caller storage. */
void approximationSubband(const Dwt &dwt, const FlatDecomposition &dec,
                          std::span<double> out, DwtWorkspace &ws);

/** Flat-layout subband filtering into caller storage. */
void filteredReconstruction(const Dwt &dwt, const FlatDecomposition &dec,
                            std::span<const std::size_t> keep_levels,
                            bool keep_approximation, std::span<double> out,
                            DwtWorkspace &ws);

/**
 * Nominal frequency band of a detail level in cycles^-1, mapped to hertz
 * with @p clock_hz. Level j (0 = finest) spans
 * [clock / 2^(j+2), clock / 2^(j+1)].
 */
struct SubbandFrequency
{
    double lowHz;  ///< lower band edge
    double highHz; ///< upper band edge
};

/** Frequency band covered by detail level @p level at @p clock_hz. */
SubbandFrequency detailBandFrequency(std::size_t level, double clock_hz);

} // namespace didt

#endif // DIDT_WAVELET_SUBBAND_HH
