#include "wavelet/subband.hh"

#include <algorithm>

#include "util/logging.hh"

namespace didt
{

namespace
{

/**
 * Copy @p dec into the workspace's masked scratch, zero every detail
 * row for which @p keep_detail returns false (and the approximation
 * row unless @p keep_approx), and run the in-place inverse.
 */
template <typename KeepDetail>
void
projectMaskedFlat(const Dwt &dwt, const FlatDecomposition &dec,
                  const KeepDetail &keep_detail, bool keep_approx,
                  std::span<double> out, DwtWorkspace &ws)
{
    FlatDecomposition &masked = ws.masked;
    masked = dec;
    for (std::size_t j = 0; j < masked.levels(); ++j) {
        if (!keep_detail(j)) {
            const std::span<double> row = masked.detail(j);
            std::fill(row.begin(), row.end(), 0.0);
        }
    }
    if (!keep_approx) {
        const std::span<double> row = masked.approximation();
        std::fill(row.begin(), row.end(), 0.0);
    }
    dwt.inverse(masked, out, ws);
}

/**
 * Run the inverse transform on a copy of @p dec in which every
 * coefficient row except the selected one is zeroed.
 */
std::vector<double>
projectSelected(const Dwt &dwt, const WaveletDecomposition &dec,
                long long detail_level, bool keep_approx)
{
    WaveletDecomposition masked;
    masked.signalLength = dec.signalLength;
    masked.details.reserve(dec.details.size());
    for (std::size_t j = 0; j < dec.details.size(); ++j) {
        if (detail_level >= 0 &&
            j == static_cast<std::size_t>(detail_level)) {
            masked.details.push_back(dec.details[j]);
        } else {
            masked.details.emplace_back(dec.details[j].size(), 0.0);
        }
    }
    if (keep_approx)
        masked.approximation = dec.approximation;
    else
        masked.approximation.assign(dec.approximation.size(), 0.0);
    return dwt.inverse(masked);
}

} // namespace

std::vector<double>
detailSubband(const Dwt &dwt, const WaveletDecomposition &dec,
              std::size_t level)
{
    if (level >= dec.details.size())
        didt_panic("detailSubband: level ", level, " out of range (",
                   dec.details.size(), " levels)");
    return projectSelected(dwt, dec, static_cast<long long>(level), false);
}

std::vector<double>
approximationSubband(const Dwt &dwt, const WaveletDecomposition &dec)
{
    return projectSelected(dwt, dec, -1, true);
}

std::vector<std::vector<double>>
allSubbands(const Dwt &dwt, const WaveletDecomposition &dec)
{
    std::vector<std::vector<double>> bands;
    bands.reserve(dec.details.size() + 1);
    for (std::size_t j = 0; j < dec.details.size(); ++j)
        bands.push_back(detailSubband(dwt, dec, j));
    bands.push_back(approximationSubband(dwt, dec));
    return bands;
}

std::vector<double>
filteredReconstruction(const Dwt &dwt, const WaveletDecomposition &dec,
                       const std::vector<std::size_t> &keep_levels,
                       bool keep_approximation)
{
    WaveletDecomposition masked;
    masked.signalLength = dec.signalLength;
    masked.details.reserve(dec.details.size());
    for (std::size_t j = 0; j < dec.details.size(); ++j)
        masked.details.emplace_back(dec.details[j].size(), 0.0);
    for (std::size_t level : keep_levels) {
        if (level >= dec.details.size())
            didt_panic("filteredReconstruction: level ", level,
                       " out of range");
        masked.details[level] = dec.details[level];
    }
    if (keep_approximation)
        masked.approximation = dec.approximation;
    else
        masked.approximation.assign(dec.approximation.size(), 0.0);
    return dwt.inverse(masked);
}

void
detailSubband(const Dwt &dwt, const FlatDecomposition &dec,
              std::size_t level, std::span<double> out, DwtWorkspace &ws)
{
    if (level >= dec.levels())
        didt_panic("detailSubband: level ", level, " out of range (",
                   dec.levels(), " levels)");
    projectMaskedFlat(
        dwt, dec, [level](std::size_t j) { return j == level; }, false,
        out, ws);
}

void
approximationSubband(const Dwt &dwt, const FlatDecomposition &dec,
                     std::span<double> out, DwtWorkspace &ws)
{
    projectMaskedFlat(
        dwt, dec, [](std::size_t) { return false; }, true, out, ws);
}

void
filteredReconstruction(const Dwt &dwt, const FlatDecomposition &dec,
                       std::span<const std::size_t> keep_levels,
                       bool keep_approximation, std::span<double> out,
                       DwtWorkspace &ws)
{
    for (std::size_t level : keep_levels)
        if (level >= dec.levels())
            didt_panic("filteredReconstruction: level ", level,
                       " out of range");
    projectMaskedFlat(
        dwt, dec,
        [keep_levels](std::size_t j) {
            return std::find(keep_levels.begin(), keep_levels.end(), j) !=
                   keep_levels.end();
        },
        keep_approximation, out, ws);
}

SubbandFrequency
detailBandFrequency(std::size_t level, double clock_hz)
{
    if (clock_hz <= 0.0)
        didt_panic("detailBandFrequency: clock must be positive");
    const double denom_high = static_cast<double>(std::size_t(1) << (level + 1));
    const double denom_low = denom_high * 2.0;
    return SubbandFrequency{clock_hz / denom_low, clock_hz / denom_high};
}

} // namespace didt
