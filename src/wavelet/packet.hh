/**
 * @file
 * Wavelet packet transform.
 *
 * The dyadic DWT halves frequency resolution at every level, so the
 * resonant band (94-188 MHz at 3 GHz) lands in one wide subband. The
 * packet transform also splits the *detail* branches, producing 2^L
 * uniform-width bands at depth L — finer localization of the supply
 * resonance at the cost of more coefficients. Provided as an analysis
 * refinement over the paper's plain DWT (see
 * `bench/ablation_packets`), with best-basis selection by Shannon
 * entropy (Coifman-Wickerhauser).
 */

#ifndef DIDT_WAVELET_PACKET_HH
#define DIDT_WAVELET_PACKET_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/basis.hh"
#include "wavelet/dwt.hh"

namespace didt
{

/**
 * A full wavelet packet decomposition to a fixed depth.
 *
 * Nodes are indexed (level, position): level 0 holds the signal,
 * level l holds 2^l nodes of length N / 2^l. Children of (l, p) are
 * (l+1, 2p) [low-pass] and (l+1, 2p+1) [high-pass].
 */
class WaveletPacketTree
{
  public:
    /**
     * Decompose @p signal to @p depth levels.
     *
     * @param basis filter pair
     * @param signal input; length divisible by 2^depth
     * @param depth tree depth (>= 1)
     */
    WaveletPacketTree(const WaveletBasis &basis,
                      std::span<const double> signal, std::size_t depth);

    /** Tree depth. */
    std::size_t depth() const { return depth_; }

    /** Original signal length. */
    std::size_t signalLength() const { return signalLength_; }

    /** Coefficients of node (level, position). */
    const std::vector<double> &node(std::size_t level,
                                    std::size_t position) const;

    /**
     * Coefficients of the leaf nodes at full depth, ordered by
     * *increasing frequency* (Gray-code/Paley reordering of positions,
     * correcting the frequency flip high-pass branches introduce).
     */
    std::vector<const std::vector<double> *> frequencyOrderedLeaves() const;

    /**
     * Per-leaf band variance at full depth in frequency order; the
     * packet analogue of the DWT's per-scale subband variance. Band b
     * of 2^depth covers [b, b+1) * clock / 2^(depth+1).
     */
    std::vector<double> bandVariances() const;

    /**
     * Best-basis node selection by additive Shannon entropy
     * (Coifman-Wickerhauser): returns the (level, position) pairs of
     * the chosen cover of the time-frequency plane.
     */
    std::vector<std::pair<std::size_t, std::size_t>> bestBasis() const;

    /** Total energy of a node's coefficients. */
    double nodeEnergy(std::size_t level, std::size_t position) const;

  private:
    std::size_t depth_;
    std::size_t signalLength_;
    /** nodes_[level][position] = coefficient vector. */
    std::vector<std::vector<std::vector<double>>> nodes_;
    Dwt dwt_;

    double nodeEntropy(const std::vector<double> &coeffs) const;
};

/**
 * Frequency ordering of packet leaf positions: natural (Paley) order
 * -> frequency order via Gray-code permutation.
 */
std::vector<std::size_t> packetFrequencyOrder(std::size_t depth);

} // namespace didt

#endif // DIDT_WAVELET_PACKET_HH
