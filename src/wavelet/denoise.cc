#include "wavelet/denoise.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "wavelet/dwt.hh"

namespace didt
{

namespace
{

double
median(std::vector<double> xs)
{
    if (xs.empty())
        didt_panic("median of empty vector");
    const std::size_t mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid),
                     xs.end());
    double m = xs[mid];
    if (xs.size() % 2 == 0) {
        std::nth_element(xs.begin(),
                         xs.begin() + static_cast<long>(mid) - 1,
                         xs.end());
        m = 0.5 * (m + xs[mid - 1]);
    }
    return m;
}

double
shrink(double c, double threshold, Shrinkage rule)
{
    const double mag = std::fabs(c);
    switch (rule) {
      case Shrinkage::Hard:
        return mag <= threshold ? 0.0 : c;
      case Shrinkage::Soft:
        if (mag <= threshold)
            return 0.0;
        return c > 0.0 ? c - threshold : c + threshold;
    }
    didt_panic("unknown shrinkage rule");
}

} // namespace

double
estimateNoiseSigma(std::span<const double> signal,
                   const WaveletBasis &basis)
{
    if (signal.size() < 4)
        didt_panic("estimateNoiseSigma needs at least 4 samples");
    const Dwt dwt(basis);
    // One level suffices: only the finest details are used. Trim to an
    // even length.
    const std::size_t n = signal.size() & ~std::size_t(1);
    std::vector<double> approx;
    std::vector<double> detail;
    dwt.analyzeStep(signal.subspan(0, n), approx, detail);
    std::vector<double> mags(detail.size());
    for (std::size_t k = 0; k < detail.size(); ++k)
        mags[k] = std::fabs(detail[k]);
    // MAD-based robust sigma: median(|d|) / 0.6745.
    return median(std::move(mags)) / 0.6745;
}

std::vector<double>
denoise(std::span<const double> signal, const WaveletBasis &basis,
        const DenoiseConfig &config)
{
    if (signal.empty())
        didt_panic("denoise of empty signal");
    const Dwt dwt(basis);
    std::size_t levels = config.levels;
    if (levels == 0)
        levels = std::max<std::size_t>(1, dwt.maxLevels(signal.size()));
    if (signal.size() % (std::size_t(1) << levels) != 0)
        didt_fatal("signal length ", signal.size(),
                   " not divisible by 2^", levels);

    const double sigma = config.sigma > 0.0
                             ? config.sigma
                             : estimateNoiseSigma(signal, basis);
    const double threshold =
        sigma * std::sqrt(2.0 * std::log(static_cast<double>(
                                    std::max<std::size_t>(2,
                                                          signal.size()))));

    WaveletDecomposition dec = dwt.forward(signal, levels);
    for (auto &level : dec.details)
        for (double &c : level)
            c = shrink(c, threshold, config.rule);
    return dwt.inverse(dec);
}

} // namespace didt
