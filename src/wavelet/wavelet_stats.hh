/**
 * @file
 * Statistical summaries over wavelet coefficients (paper Section 4.1).
 *
 * Per-scale variance via Parseval's relation and adjacent-coefficient
 * correlation (the pulse-pattern detector), plus coefficient ranking
 * used by the online monitor's top-K term selection.
 */

#ifndef DIDT_WAVELET_WAVELET_STATS_HH
#define DIDT_WAVELET_WAVELET_STATS_HH

#include <cstddef>
#include <vector>

#include "wavelet/dwt.hh"

namespace didt
{

/** Per-scale statistics of a decomposition. */
struct ScaleStats
{
    /**
     * Subband variance per detail level (finest first). By Parseval,
     * the variance of the level-j subband signal equals the sum of
     * squared detail coefficients on that level divided by the signal
     * length.
     */
    std::vector<double> subbandVariance;

    /**
     * Lag-1 correlation between adjacent detail coefficients per level.
     * Strong positive/negative correlation indicates pulse trains that
     * can build resonance in the supply network.
     */
    std::vector<double> adjacentCorrelation;

    /** Variance of the approximation subband. */
    double approximationVariance = 0.0;
};

/** Compute per-scale statistics for @p dec. */
ScaleStats computeScaleStats(const WaveletDecomposition &dec);

/**
 * In-place overload for the flat layout: writes into @p out, reusing
 * its vectors' capacity so repeated calls on same-shaped
 * decompositions never allocate. Produces bit-identical values to the
 * nested overload.
 */
void computeScaleStats(const FlatDecomposition &dec, ScaleStats &out);

/** Identifies one coefficient in the matrix. */
struct CoefficientRef
{
    /** Detail level (finest = 0), or kApproximation. */
    std::size_t level;

    /** Position within the level. */
    std::size_t index;

    /** Coefficient value. */
    double value;

    /** Sentinel level value marking approximation coefficients. */
    static constexpr std::size_t kApproximation = static_cast<std::size_t>(-1);
};

/**
 * All coefficients of @p dec ordered by decreasing magnitude
 * (paper Section 5.1: "we order the coefficients by decreasing
 * magnitude").
 */
std::vector<CoefficientRef> rankCoefficients(const WaveletDecomposition &dec);

/**
 * Fraction of total energy captured by the @p k largest-magnitude
 * coefficients; measures the sparsity the paper exploits.
 */
double energyCaptured(const WaveletDecomposition &dec, std::size_t k);

} // namespace didt

#endif // DIDT_WAVELET_WAVELET_STATS_HH
