#include "wavelet/packet.hh"

#include <cmath>

#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace didt
{

std::vector<std::size_t>
packetFrequencyOrder(std::size_t depth)
{
    const std::size_t leaves = std::size_t(1) << depth;
    std::vector<std::size_t> order(leaves);
    for (std::size_t band = 0; band < leaves; ++band) {
        // The natural (Paley) position whose band is `band` is the
        // binary-to-Gray encoding of the band index: every traversal
        // of a high-pass edge flips the frequency orientation of the
        // subtree below it, and the flips telescope into g = b^(b>>1)
        // (verified empirically against FFT band energies).
        order[band] = band ^ (band >> 1);
    }
    return order;
}

WaveletPacketTree::WaveletPacketTree(const WaveletBasis &basis,
                                     std::span<const double> signal,
                                     std::size_t depth)
    : depth_(depth), signalLength_(signal.size()), dwt_(basis)
{
    if (depth_ == 0)
        didt_panic("packet tree needs depth >= 1");
    if (signalLength_ == 0 ||
        signalLength_ % (std::size_t(1) << depth_) != 0)
        didt_panic("signal length ", signalLength_,
                   " not divisible by 2^", depth_);

    nodes_.resize(depth_ + 1);
    nodes_[0].emplace_back(signal.begin(), signal.end());
    for (std::size_t level = 1; level <= depth_; ++level) {
        nodes_[level].resize(std::size_t(1) << level);
        for (std::size_t parent = 0;
             parent < nodes_[level - 1].size(); ++parent) {
            std::vector<double> approx;
            std::vector<double> detail;
            dwt_.analyzeStep(nodes_[level - 1][parent], approx, detail);
            nodes_[level][2 * parent] = std::move(approx);
            nodes_[level][2 * parent + 1] = std::move(detail);
        }
    }
}

const std::vector<double> &
WaveletPacketTree::node(std::size_t level, std::size_t position) const
{
    if (level > depth_ || position >= (std::size_t(1) << level))
        didt_panic("packet node (", level, ",", position,
                   ") out of range");
    return nodes_[level][position];
}

std::vector<const std::vector<double> *>
WaveletPacketTree::frequencyOrderedLeaves() const
{
    const auto order = packetFrequencyOrder(depth_);
    std::vector<const std::vector<double> *> leaves;
    leaves.reserve(order.size());
    for (std::size_t p : order)
        leaves.push_back(&nodes_[depth_][p]);
    return leaves;
}

std::vector<double>
WaveletPacketTree::bandVariances() const
{
    const auto leaves = frequencyOrderedLeaves();
    std::vector<double> variances;
    variances.reserve(leaves.size());
    const double n = static_cast<double>(signalLength_);
    for (std::size_t b = 0; b < leaves.size(); ++b) {
        double energy = 0.0;
        for (double c : *leaves[b])
            energy += c * c;
        if (b == 0) {
            // The lowest band carries the mean; report its variance
            // about the mean like the DWT approximation row.
            double sum = 0.0;
            for (double c : *leaves[b])
                sum += c;
            energy -= sum * sum / static_cast<double>(leaves[b]->size());
        }
        variances.push_back(energy / n);
    }
    return variances;
}

double
WaveletPacketTree::nodeEnergy(std::size_t level, std::size_t position) const
{
    double energy = 0.0;
    for (double c : node(level, position))
        energy += c * c;
    return energy;
}

double
WaveletPacketTree::nodeEntropy(const std::vector<double> &coeffs) const
{
    // Coifman-Wickerhauser additive (unnormalized) Shannon entropy.
    double entropy = 0.0;
    for (double c : coeffs) {
        const double e = c * c;
        if (e > 0.0)
            entropy -= e * std::log(e);
    }
    return entropy;
}

std::vector<std::pair<std::size_t, std::size_t>>
WaveletPacketTree::bestBasis() const
{
    // Bottom-up dynamic program: a node is kept whole when its own
    // entropy beats the best cost of its children.
    std::vector<std::vector<double>> cost(depth_ + 1);
    std::vector<std::vector<bool>> keep(depth_ + 1);
    for (std::size_t level = 0; level <= depth_; ++level) {
        cost[level].resize(nodes_[level].size());
        keep[level].assign(nodes_[level].size(), false);
    }
    for (std::size_t p = 0; p < nodes_[depth_].size(); ++p) {
        cost[depth_][p] = nodeEntropy(nodes_[depth_][p]);
        keep[depth_][p] = true;
    }
    for (std::size_t level = depth_; level-- > 0;) {
        for (std::size_t p = 0; p < nodes_[level].size(); ++p) {
            const double own = nodeEntropy(nodes_[level][p]);
            const double split =
                cost[level + 1][2 * p] + cost[level + 1][2 * p + 1];
            if (own <= split) {
                cost[level][p] = own;
                keep[level][p] = true;
            } else {
                cost[level][p] = split;
                keep[level][p] = false;
            }
        }
    }

    // Walk down from the root collecting the chosen cover.
    std::vector<std::pair<std::size_t, std::size_t>> basis;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
        const auto [level, p] = stack.back();
        stack.pop_back();
        if (keep[level][p]) {
            basis.emplace_back(level, p);
        } else {
            stack.emplace_back(level + 1, 2 * p);
            stack.emplace_back(level + 1, 2 * p + 1);
        }
    }
    return basis;
}

} // namespace didt
