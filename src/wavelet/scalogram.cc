#include "wavelet/scalogram.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/logging.hh"

namespace didt
{

Scalogram::Scalogram(const WaveletDecomposition &dec)
    : signalLength_(dec.signalLength), maxMagnitude_(0.0)
{
    magnitudes_.reserve(dec.details.size());
    for (const auto &level : dec.details) {
        std::vector<double> mags(level.size());
        for (std::size_t k = 0; k < level.size(); ++k) {
            mags[k] = std::fabs(level[k]);
            maxMagnitude_ = std::max(maxMagnitude_, mags[k]);
        }
        magnitudes_.push_back(std::move(mags));
    }
}

const std::vector<double> &
Scalogram::row(std::size_t j) const
{
    if (j >= magnitudes_.size())
        didt_panic("Scalogram row ", j, " out of range");
    return magnitudes_[j];
}

void
Scalogram::renderAscii(std::ostream &os, std::size_t time_width) const
{
    static const char shades[] = " .:-=+*%#";
    const std::size_t nshades = sizeof(shades) - 2;

    for (std::size_t j = 0; j < magnitudes_.size(); ++j) {
        const auto &mags = magnitudes_[j];
        os << "scale " << j << " |";
        for (std::size_t col = 0; col < time_width; ++col) {
            // Map the output column back to a coefficient index.
            const std::size_t k =
                col * mags.size() / std::max<std::size_t>(1, time_width);
            double v = 0.0;
            if (maxMagnitude_ > 0.0)
                v = mags[std::min(k, mags.size() - 1)] / maxMagnitude_;
            const auto shade = static_cast<std::size_t>(
                std::lround(v * static_cast<double>(nshades)));
            os << shades[std::min(shade, nshades)];
        }
        os << "|\n";
    }
}

void
Scalogram::writeCsv(std::ostream &os) const
{
    os << "scale,k,magnitude\n";
    for (std::size_t j = 0; j < magnitudes_.size(); ++j)
        for (std::size_t k = 0; k < magnitudes_[j].size(); ++k)
            os << j << ',' << k << ',' << magnitudes_[j][k] << '\n';
}

} // namespace didt
