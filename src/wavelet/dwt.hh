/**
 * @file
 * Fast discrete wavelet transform (Mallat's pyramid algorithm).
 *
 * Implements the O(N) fast wavelet transform the paper relies on
 * (Section 2.1), with periodic boundary extension. The decomposition
 * holds detail coefficients per level plus the final approximation,
 * mirroring the coefficient matrix of paper Figure 2.
 */

#ifndef DIDT_WAVELET_DWT_HH
#define DIDT_WAVELET_DWT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/basis.hh"
#include "wavelet/flat_decomposition.hh"

namespace didt
{

/**
 * A multi-level wavelet decomposition.
 *
 * Level numbering: details[0] is the *finest* scale (the paper's d[0,k]
 * row); details[L-1] is the coarsest detail level (the paper's most
 * negative j). approximation holds the coarse a[k] coefficients.
 */
struct WaveletDecomposition
{
    /** Detail coefficients, one vector per level, finest first. */
    std::vector<std::vector<double>> details;

    /** Approximation coefficients at the coarsest level. */
    std::vector<double> approximation;

    /** Length of the original signal. */
    std::size_t signalLength = 0;

    /** Number of detail levels. */
    std::size_t levels() const { return details.size(); }

    /** Total number of coefficients (details + approximation). */
    std::size_t totalCoefficients() const;

    /**
     * Sum of squared coefficients; by Parseval's relation this equals
     * the squared L2 norm of the original signal.
     */
    double energy() const;
};

/**
 * Discrete wavelet transform engine for a fixed basis.
 *
 * Uses periodic signal extension, so perfect reconstruction holds for
 * any signal whose length is divisible by 2^levels.
 */
class Dwt
{
  public:
    /** @param basis the wavelet basis (filters) to use. */
    explicit Dwt(WaveletBasis basis);

    /** The basis in use. */
    const WaveletBasis &basis() const { return basis_; }

    /**
     * Forward transform into caller-owned storage. @p out is re-laid
     * out for the signal and @p ws supplies the inter-level scratch;
     * once both have reached capacity the call performs no heap
     * allocation. Produces bit-identical coefficients to the legacy
     * allocating overload.
     *
     * @param signal input samples; length must be divisible by 2^levels
     * @param levels number of decomposition levels (>= 1)
     */
    void forward(std::span<const double> signal, std::size_t levels,
                 FlatDecomposition &out, DwtWorkspace &ws) const;

    /**
     * Inverse transform into caller-owned storage. @p out must have
     * exactly dec.signalLength() samples.
     */
    void inverse(const FlatDecomposition &dec, std::span<double> out,
                 DwtWorkspace &ws) const;

    /**
     * Forward transform, allocating form: a thin adapter over the
     * span-based pyramid kept for tests, benches, and cold paths.
     *
     * @param signal input samples; length must be divisible by 2^levels
     * @param levels number of decomposition levels (>= 1)
     * @return the multi-level decomposition
     */
    WaveletDecomposition forward(std::span<const double> signal,
                                 std::size_t levels) const;

    /** Inverse transform, allocating form (thin adapter): exact
     *  reconstruction of the original signal. */
    std::vector<double> inverse(const WaveletDecomposition &dec) const;

    /**
     * Single analysis step into caller storage: split @p input into
     * approximation and detail halves. @p input length must be even;
     * @p approx and @p detail must each hold input.size() / 2 samples
     * and must not alias @p input.
     */
    void analyzeStep(std::span<const double> input,
                     std::span<double> approx,
                     std::span<double> detail) const;

    /**
     * Single analysis step, allocating form: resizes @p approx and
     * @p detail to half the input length.
     */
    void analyzeStep(std::span<const double> input,
                     std::vector<double> &approx,
                     std::vector<double> &detail) const;

    /**
     * Single synthesis step into caller storage: merge approximation
     * and detail halves into @p out, which must hold twice their
     * length and must not alias either input.
     */
    void synthesizeStep(std::span<const double> approx,
                        std::span<const double> detail,
                        std::span<double> out) const;

    /**
     * Single synthesis step, allocating form: merge approximation and
     * detail halves back into a signal of twice the length.
     */
    std::vector<double> synthesizeStep(std::span<const double> approx,
                                       std::span<const double> detail) const;

    /**
     * Largest number of levels applicable to a signal of length @p n
     * (limited by divisibility by two and by filter length).
     */
    std::size_t maxLevels(std::size_t n) const;

  private:
    WaveletBasis basis_;
};

} // namespace didt

#endif // DIDT_WAVELET_DWT_HH
