/**
 * @file
 * Fast discrete wavelet transform (Mallat's pyramid algorithm).
 *
 * Implements the O(N) fast wavelet transform the paper relies on
 * (Section 2.1), with periodic boundary extension. The decomposition
 * holds detail coefficients per level plus the final approximation,
 * mirroring the coefficient matrix of paper Figure 2.
 */

#ifndef DIDT_WAVELET_DWT_HH
#define DIDT_WAVELET_DWT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/basis.hh"

namespace didt
{

/**
 * A multi-level wavelet decomposition.
 *
 * Level numbering: details[0] is the *finest* scale (the paper's d[0,k]
 * row); details[L-1] is the coarsest detail level (the paper's most
 * negative j). approximation holds the coarse a[k] coefficients.
 */
struct WaveletDecomposition
{
    /** Detail coefficients, one vector per level, finest first. */
    std::vector<std::vector<double>> details;

    /** Approximation coefficients at the coarsest level. */
    std::vector<double> approximation;

    /** Length of the original signal. */
    std::size_t signalLength = 0;

    /** Number of detail levels. */
    std::size_t levels() const { return details.size(); }

    /** Total number of coefficients (details + approximation). */
    std::size_t totalCoefficients() const;

    /**
     * Sum of squared coefficients; by Parseval's relation this equals
     * the squared L2 norm of the original signal.
     */
    double energy() const;
};

/**
 * Discrete wavelet transform engine for a fixed basis.
 *
 * Uses periodic signal extension, so perfect reconstruction holds for
 * any signal whose length is divisible by 2^levels.
 */
class Dwt
{
  public:
    /** @param basis the wavelet basis (filters) to use. */
    explicit Dwt(WaveletBasis basis);

    /** The basis in use. */
    const WaveletBasis &basis() const { return basis_; }

    /**
     * Forward transform.
     *
     * @param signal input samples; length must be divisible by 2^levels
     * @param levels number of decomposition levels (>= 1)
     * @return the multi-level decomposition
     */
    WaveletDecomposition forward(std::span<const double> signal,
                                 std::size_t levels) const;

    /** Inverse transform: exact reconstruction of the original signal. */
    std::vector<double> inverse(const WaveletDecomposition &dec) const;

    /**
     * Single analysis step: split @p input into approximation and detail
     * halves. @p input length must be even.
     */
    void analyzeStep(std::span<const double> input,
                     std::vector<double> &approx,
                     std::vector<double> &detail) const;

    /**
     * Single synthesis step: merge approximation and detail halves back
     * into a signal of twice the length.
     */
    std::vector<double> synthesizeStep(std::span<const double> approx,
                                       std::span<const double> detail) const;

    /**
     * Largest number of levels applicable to a signal of length @p n
     * (limited by divisibility by two and by filter length).
     */
    std::size_t maxLevels(std::size_t n) const;

  private:
    WaveletBasis basis_;
};

} // namespace didt

#endif // DIDT_WAVELET_DWT_HH
