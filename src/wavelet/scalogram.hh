/**
 * @file
 * Scalogram rendering (paper Figure 4).
 *
 * A scalogram visualizes detail-coefficient magnitudes as a grid:
 * rows are scales, columns are time positions, intensity is |d[j,k]|.
 */

#ifndef DIDT_WAVELET_SCALOGRAM_HH
#define DIDT_WAVELET_SCALOGRAM_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "wavelet/dwt.hh"

namespace didt
{

/** Magnitude grid of a wavelet decomposition's detail coefficients. */
class Scalogram
{
  public:
    /** Build from a decomposition; approximation row is excluded,
     *  matching the paper's Figure 4. */
    explicit Scalogram(const WaveletDecomposition &dec);

    /** Number of scale rows (finest first). */
    std::size_t scales() const { return magnitudes_.size(); }

    /** Coefficient magnitudes at scale row @p j. */
    const std::vector<double> &row(std::size_t j) const;

    /** Largest magnitude anywhere in the grid. */
    double maxMagnitude() const { return maxMagnitude_; }

    /**
     * Render as ASCII art: one text row per scale, each coefficient as a
     * shade character (' ' light to '#' dark) repeated to span the time
     * axis, so all rows align with the original signal length.
     *
     * @param os destination stream
     * @param time_width total character width of the time axis
     */
    void renderAscii(std::ostream &os, std::size_t time_width = 128) const;

    /** Write CSV rows: scale, k, magnitude. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<std::vector<double>> magnitudes_;
    std::size_t signalLength_;
    double maxMagnitude_;
};

} // namespace didt

#endif // DIDT_WAVELET_SCALOGRAM_HH
