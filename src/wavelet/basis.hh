/**
 * @file
 * Orthonormal wavelet bases (filter banks).
 *
 * The paper uses the Haar basis because it matches the sharp
 * discontinuities of processor current waveforms (Section 2.1);
 * Daubechies bases are provided for ablation studies.
 */

#ifndef DIDT_WAVELET_BASIS_HH
#define DIDT_WAVELET_BASIS_HH

#include <string>
#include <vector>

namespace didt
{

/**
 * An orthonormal wavelet basis described by its conjugate quadrature
 * filter pair. The high-pass (wavelet) filter is derived from the
 * low-pass (scaling) filter by the alternating-flip relation
 * g[n] = (-1)^n h[L-1-n].
 */
class WaveletBasis
{
  public:
    /**
     * Construct from a low-pass filter. The filter must satisfy the
     * orthonormality conditions (sum h = sqrt(2), sum h^2 = 1) to within
     * a small tolerance; violations panic.
     */
    WaveletBasis(std::string name, std::vector<double> lowpass);

    /** Basis name ("haar", "db4", ...). */
    const std::string &name() const { return name_; }

    /** Low-pass (scaling) analysis filter h. */
    const std::vector<double> &lowpass() const { return h_; }

    /** High-pass (wavelet) analysis filter g. */
    const std::vector<double> &highpass() const { return g_; }

    /** Filter length. */
    std::size_t length() const { return h_.size(); }

    /** The Haar basis: h = {1/sqrt 2, 1/sqrt 2}. */
    static WaveletBasis haar();

    /** Daubechies-4 (two vanishing moments). */
    static WaveletBasis daubechies4();

    /** Daubechies-6 (three vanishing moments). */
    static WaveletBasis daubechies6();

    /**
     * "Adjusted Haar": the 4-tap orthonormal rotation family
     * h(theta) = {1-c+s, 1+c+s, 1+c-s, 1-c-s} / (2 sqrt 2) with
     * c = cos(theta), s = sin(theta), evaluated at theta = 5 pi / 12.
     * The family interpolates between Haar (theta = pi/2, where the
     * outer taps vanish) and db4 (theta = pi/3); the ablation point
     * keeps Haar's step-tracking bias while gaining a smoothing tap
     * pair. Double-shift orthogonality holds exactly for every theta.
     */
    static WaveletBasis adjustedHaar();

    /**
     * Battle-Lemarie orthonormalized linear-spline wavelet,
     * truncated to 64 taps. Constructed numerically from the
     * closed-form frequency response
     *   H(w) = sqrt(2) cos^2(w/2) sqrt(P(w) / P(2w)),
     *   P(w) = 1 - (2/3) sin^2(w/2),
     * by dense frequency sampling. The taps decay like
     * (2 - sqrt 3)^|n| ~ 0.27^|n|, so the 64-tap truncation error is
     * far below double precision.
     */
    static WaveletBasis splineLinear();

    /** Look up a basis by name; fatal on unknown names. */
    static WaveletBasis byName(const std::string &name);

    /** All registered basis names, in canonical order. */
    static std::vector<std::string> allNames();

    /** Comma-separated registered names, for error messages. */
    static std::string knownNamesHint();

    /**
     * True when @ref byName would succeed. Request validators (the
     * didt_serve daemon) use this so a bad basis in a request becomes
     * an error response instead of a process exit.
     */
    static bool isKnownName(const std::string &name);

  private:
    std::string name_;
    std::vector<double> h_;
    std::vector<double> g_;
};

/**
 * Evaluate the Haar scaling function phi(t): 1 on [0,1), else 0
 * (paper Figure 1, left).
 */
double haarScalingFunction(double t);

/**
 * Evaluate the Haar wavelet function psi(t): 1 on [0,0.5),
 * -1 on [0.5,1), else 0 (paper Figure 1, right).
 */
double haarWaveletFunction(double t);

} // namespace didt

#endif // DIDT_WAVELET_BASIS_HH
