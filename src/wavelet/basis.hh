/**
 * @file
 * Orthonormal wavelet bases (filter banks).
 *
 * The paper uses the Haar basis because it matches the sharp
 * discontinuities of processor current waveforms (Section 2.1);
 * Daubechies bases are provided for ablation studies.
 */

#ifndef DIDT_WAVELET_BASIS_HH
#define DIDT_WAVELET_BASIS_HH

#include <string>
#include <vector>

namespace didt
{

/**
 * An orthonormal wavelet basis described by its conjugate quadrature
 * filter pair. The high-pass (wavelet) filter is derived from the
 * low-pass (scaling) filter by the alternating-flip relation
 * g[n] = (-1)^n h[L-1-n].
 */
class WaveletBasis
{
  public:
    /**
     * Construct from a low-pass filter. The filter must satisfy the
     * orthonormality conditions (sum h = sqrt(2), sum h^2 = 1) to within
     * a small tolerance; violations panic.
     */
    WaveletBasis(std::string name, std::vector<double> lowpass);

    /** Basis name ("haar", "db4", ...). */
    const std::string &name() const { return name_; }

    /** Low-pass (scaling) analysis filter h. */
    const std::vector<double> &lowpass() const { return h_; }

    /** High-pass (wavelet) analysis filter g. */
    const std::vector<double> &highpass() const { return g_; }

    /** Filter length. */
    std::size_t length() const { return h_.size(); }

    /** The Haar basis: h = {1/sqrt 2, 1/sqrt 2}. */
    static WaveletBasis haar();

    /** Daubechies-4 (two vanishing moments). */
    static WaveletBasis daubechies4();

    /** Daubechies-6 (three vanishing moments). */
    static WaveletBasis daubechies6();

    /** Look up a basis by name; fatal on unknown names. */
    static WaveletBasis byName(const std::string &name);

    /**
     * True when @ref byName would succeed. Request validators (the
     * didt_serve daemon) use this so a bad basis in a request becomes
     * an error response instead of a process exit.
     */
    static bool isKnownName(const std::string &name);

  private:
    std::string name_;
    std::vector<double> h_;
    std::vector<double> g_;
};

/**
 * Evaluate the Haar scaling function phi(t): 1 on [0,1), else 0
 * (paper Figure 1, left).
 */
double haarScalingFunction(double t);

/**
 * Evaluate the Haar wavelet function psi(t): 1 on [0,0.5),
 * -1 on [0.5,1), else 0 (paper Figure 1, right).
 */
double haarWaveletFunction(double t);

} // namespace didt

#endif // DIDT_WAVELET_BASIS_HH
