#include "wavelet/basis.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

WaveletBasis::WaveletBasis(std::string name, std::vector<double> lowpass)
    : name_(std::move(name)), h_(std::move(lowpass))
{
    if (h_.size() < 2 || h_.size() % 2 != 0)
        didt_panic("wavelet filter length must be even and >= 2, got ",
                   h_.size());

    double sum = 0.0;
    double sum_sq = 0.0;
    for (double c : h_) {
        sum += c;
        sum_sq += c * c;
    }
    if (std::fabs(sum - std::sqrt(2.0)) > 1e-9)
        didt_panic("basis '", name_, "': sum(h) = ", sum,
                   ", expected sqrt(2)");
    if (std::fabs(sum_sq - 1.0) > 1e-9)
        didt_panic("basis '", name_, "': sum(h^2) = ", sum_sq,
                   ", expected 1");

    // Alternating flip: g[n] = (-1)^n h[L-1-n].
    const std::size_t len = h_.size();
    g_.resize(len);
    for (std::size_t n = 0; n < len; ++n) {
        const double sign = (n % 2 == 0) ? 1.0 : -1.0;
        g_[n] = sign * h_[len - 1 - n];
    }
}

WaveletBasis
WaveletBasis::haar()
{
    const double r = 1.0 / std::sqrt(2.0);
    return WaveletBasis("haar", {r, r});
}

WaveletBasis
WaveletBasis::daubechies4()
{
    // Standard D4 coefficients (normalized so sum = sqrt 2).
    const double s3 = std::sqrt(3.0);
    const double norm = 4.0 * std::sqrt(2.0);
    return WaveletBasis("db4", {(1.0 + s3) / norm, (3.0 + s3) / norm,
                                (3.0 - s3) / norm, (1.0 - s3) / norm});
}

WaveletBasis
WaveletBasis::daubechies6()
{
    // Closed-form D6 coefficients (normalized so sum = sqrt 2).
    // Computing from the radicals instead of decimal literals keeps
    // the double-shift orthogonality defect at machine epsilon, which
    // the basis-wide perfect-reconstruction property tests rely on.
    const double s10 = std::sqrt(10.0);
    const double s5 = std::sqrt(5.0 + 2.0 * s10);
    const double norm = std::sqrt(2.0) / 32.0;
    return WaveletBasis("db6", {(1.0 + s10 + s5) * norm,
                                (5.0 + s10 + 3.0 * s5) * norm,
                                (10.0 - 2.0 * s10 + 2.0 * s5) * norm,
                                (10.0 - 2.0 * s10 - 2.0 * s5) * norm,
                                (5.0 + s10 - 3.0 * s5) * norm,
                                (1.0 + s10 - s5) * norm});
}

WaveletBasis
WaveletBasis::adjustedHaar()
{
    const double theta = 5.0 * M_PI / 12.0;
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const double norm = 2.0 * std::sqrt(2.0);
    return WaveletBasis("ahaar",
                        {(1.0 - c + s) / norm, (1.0 + c + s) / norm,
                         (1.0 + c - s) / norm, (1.0 - c - s) / norm});
}

WaveletBasis
WaveletBasis::splineLinear()
{
    // Taps in n = -kSupport .. kSupport+1, computed once by inverse
    // discrete-time Fourier transform of the closed-form H(w). The
    // even length keeps the SIMD synthesis kernels applicable, and
    // the fixed tap count keeps the filter bit-deterministic.
    static const std::vector<double> taps = [] {
        // The taps decay like exp(-0.66 n) (the nearest complex zero
        // of the downsampled autocorrelation), so truncating at
        // |n| = 63 leaves ~1e-18 outside the window — comfortably
        // below the 1e-12 perfect-reconstruction property bound.
        constexpr std::size_t kSamples = 8192;
        constexpr long long kSupport = 63;
        const auto spline_autocorr = [](double w) {
            const double sn = std::sin(0.5 * w);
            return 1.0 - (2.0 / 3.0) * sn * sn;
        };
        std::vector<double> h(2 * kSupport + 2, 0.0);
        for (std::size_t j = 0; j < kSamples; ++j) {
            const double w = 2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(kSamples);
            const double cs = std::cos(0.5 * w);
            const double mag =
                std::sqrt(2.0) * cs * cs *
                std::sqrt(spline_autocorr(w) / spline_autocorr(2.0 * w));
            for (long long n = -kSupport; n <= kSupport + 1; ++n) {
                h[static_cast<std::size_t>(n + kSupport)] +=
                    mag * std::cos(w * static_cast<double>(n)) /
                    static_cast<double>(kSamples);
            }
        }
        // Renormalize so sum(h) = sqrt(2) exactly; the sampling grid
        // leaves only ~1e-16 of drift but the constructor checks to
        // 1e-9 and perfect reconstruction benefits from the exact sum.
        double sum = 0.0;
        for (double v : h)
            sum += v;
        const double scale = std::sqrt(2.0) / sum;
        for (double &v : h)
            v *= scale;
        return h;
    }();
    return WaveletBasis("spline", taps);
}

namespace
{

using BasisFactory = WaveletBasis (*)();

struct BasisEntry
{
    const char *name;
    BasisFactory make;
};

constexpr BasisEntry kBasisRegistry[] = {
    {"haar", &WaveletBasis::haar},
    {"db4", &WaveletBasis::daubechies4},
    {"db6", &WaveletBasis::daubechies6},
    {"ahaar", &WaveletBasis::adjustedHaar},
    {"spline", &WaveletBasis::splineLinear},
};

} // namespace

WaveletBasis
WaveletBasis::byName(const std::string &name)
{
    for (const BasisEntry &entry : kBasisRegistry) {
        if (name == entry.name)
            return entry.make();
    }
    didt_fatal("unknown wavelet basis '", name, "' (try ",
               knownNamesHint(), ")");
}

bool
WaveletBasis::isKnownName(const std::string &name)
{
    for (const BasisEntry &entry : kBasisRegistry) {
        if (name == entry.name)
            return true;
    }
    return false;
}

std::vector<std::string>
WaveletBasis::allNames()
{
    std::vector<std::string> names;
    for (const BasisEntry &entry : kBasisRegistry)
        names.emplace_back(entry.name);
    return names;
}

std::string
WaveletBasis::knownNamesHint()
{
    std::string hint;
    for (const BasisEntry &entry : kBasisRegistry) {
        if (!hint.empty())
            hint += ", ";
        hint += entry.name;
    }
    return hint;
}

double
haarScalingFunction(double t)
{
    return (t >= 0.0 && t < 1.0) ? 1.0 : 0.0;
}

double
haarWaveletFunction(double t)
{
    if (t >= 0.0 && t < 0.5)
        return 1.0;
    if (t >= 0.5 && t < 1.0)
        return -1.0;
    return 0.0;
}

} // namespace didt
