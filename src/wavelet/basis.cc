#include "wavelet/basis.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

WaveletBasis::WaveletBasis(std::string name, std::vector<double> lowpass)
    : name_(std::move(name)), h_(std::move(lowpass))
{
    if (h_.size() < 2 || h_.size() % 2 != 0)
        didt_panic("wavelet filter length must be even and >= 2, got ",
                   h_.size());

    double sum = 0.0;
    double sum_sq = 0.0;
    for (double c : h_) {
        sum += c;
        sum_sq += c * c;
    }
    if (std::fabs(sum - std::sqrt(2.0)) > 1e-9)
        didt_panic("basis '", name_, "': sum(h) = ", sum,
                   ", expected sqrt(2)");
    if (std::fabs(sum_sq - 1.0) > 1e-9)
        didt_panic("basis '", name_, "': sum(h^2) = ", sum_sq,
                   ", expected 1");

    // Alternating flip: g[n] = (-1)^n h[L-1-n].
    const std::size_t len = h_.size();
    g_.resize(len);
    for (std::size_t n = 0; n < len; ++n) {
        const double sign = (n % 2 == 0) ? 1.0 : -1.0;
        g_[n] = sign * h_[len - 1 - n];
    }
}

WaveletBasis
WaveletBasis::haar()
{
    const double r = 1.0 / std::sqrt(2.0);
    return WaveletBasis("haar", {r, r});
}

WaveletBasis
WaveletBasis::daubechies4()
{
    // Standard D4 coefficients (normalized so sum = sqrt 2).
    const double s3 = std::sqrt(3.0);
    const double norm = 4.0 * std::sqrt(2.0);
    return WaveletBasis("db4", {(1.0 + s3) / norm, (3.0 + s3) / norm,
                                (3.0 - s3) / norm, (1.0 - s3) / norm});
}

WaveletBasis
WaveletBasis::daubechies6()
{
    // D6 low-pass coefficients (already normalized to sum = sqrt 2).
    return WaveletBasis(
        "db6",
        {0.33267055295095688, 0.80689150931333875, 0.45987750211933132,
         -0.13501102001039084, -0.08544127388224149, 0.03522629188210562});
}

WaveletBasis
WaveletBasis::byName(const std::string &name)
{
    if (name == "haar")
        return haar();
    if (name == "db4")
        return daubechies4();
    if (name == "db6")
        return daubechies6();
    didt_fatal("unknown wavelet basis '", name, "' (try haar, db4, db6)");
}

bool
WaveletBasis::isKnownName(const std::string &name)
{
    return name == "haar" || name == "db4" || name == "db6";
}

double
haarScalingFunction(double t)
{
    return (t >= 0.0 && t < 1.0) ? 1.0 : 0.0;
}

double
haarWaveletFunction(double t)
{
    if (t >= 0.0 && t < 0.5)
        return 1.0;
    if (t >= 0.5 && t < 1.0)
        return -1.0;
    return 0.0;
}

} // namespace didt
