#include "wavelet/dwt.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

std::size_t
WaveletDecomposition::totalCoefficients() const
{
    std::size_t n = approximation.size();
    for (const auto &level : details)
        n += level.size();
    return n;
}

double
WaveletDecomposition::energy() const
{
    double e = 0.0;
    for (const auto &level : details)
        for (double c : level)
            e += c * c;
    for (double c : approximation)
        e += c * c;
    return e;
}

Dwt::Dwt(WaveletBasis basis)
    : basis_(std::move(basis))
{
}

void
Dwt::analyzeStep(std::span<const double> input, std::vector<double> &approx,
                 std::vector<double> &detail) const
{
    const std::size_t n = input.size();
    if (n % 2 != 0 || n == 0)
        didt_panic("analyzeStep needs even non-zero length, got ", n);

    const auto &h = basis_.lowpass();
    const auto &g = basis_.highpass();
    const std::size_t flen = h.size();
    const std::size_t half = n / 2;

    approx.assign(half, 0.0);
    detail.assign(half, 0.0);
    for (std::size_t k = 0; k < half; ++k) {
        double a = 0.0;
        double d = 0.0;
        for (std::size_t m = 0; m < flen; ++m) {
            const std::size_t idx = (2 * k + m) % n; // periodic extension
            a += h[m] * input[idx];
            d += g[m] * input[idx];
        }
        approx[k] = a;
        detail[k] = d;
    }
}

std::vector<double>
Dwt::synthesizeStep(std::span<const double> approx,
                    std::span<const double> detail) const
{
    const std::size_t half = approx.size();
    if (detail.size() != half)
        didt_panic("synthesizeStep: approx/detail size mismatch ", half,
                   " vs ", detail.size());
    if (half == 0)
        didt_panic("synthesizeStep on empty halves");

    const auto &h = basis_.lowpass();
    const auto &g = basis_.highpass();
    const std::size_t flen = h.size();
    const std::size_t n = 2 * half;

    std::vector<double> out(n, 0.0);
    for (std::size_t k = 0; k < half; ++k) {
        for (std::size_t m = 0; m < flen; ++m) {
            const std::size_t idx = (2 * k + m) % n;
            out[idx] += h[m] * approx[k] + g[m] * detail[k];
        }
    }
    return out;
}

std::size_t
Dwt::maxLevels(std::size_t n) const
{
    std::size_t levels = 0;
    while (n % 2 == 0 && n / 2 >= 1 && n >= basis_.length()) {
        n /= 2;
        ++levels;
    }
    return levels;
}

WaveletDecomposition
Dwt::forward(std::span<const double> signal, std::size_t levels) const
{
    if (levels == 0)
        didt_panic("forward() requires at least one level");
    const std::size_t n = signal.size();
    if (n == 0)
        didt_panic("forward() on empty signal");
    if (n % (std::size_t(1) << levels) != 0)
        didt_panic("signal length ", n, " not divisible by 2^", levels);

    WaveletDecomposition dec;
    dec.signalLength = n;
    dec.details.reserve(levels);

    std::vector<double> current(signal.begin(), signal.end());
    for (std::size_t level = 0; level < levels; ++level) {
        std::vector<double> approx;
        std::vector<double> detail;
        analyzeStep(current, approx, detail);
        dec.details.push_back(std::move(detail));
        current = std::move(approx);
    }
    dec.approximation = std::move(current);
    return dec;
}

std::vector<double>
Dwt::inverse(const WaveletDecomposition &dec) const
{
    if (dec.details.empty())
        didt_panic("inverse() on empty decomposition");

    std::vector<double> current = dec.approximation;
    for (std::size_t level = dec.details.size(); level-- > 0;) {
        current = synthesizeStep(current, dec.details[level]);
    }
    if (current.size() != dec.signalLength)
        didt_panic("inverse() produced length ", current.size(),
                   ", expected ", dec.signalLength);
    return current;
}

} // namespace didt
