#include "wavelet/dwt.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

std::size_t
WaveletDecomposition::totalCoefficients() const
{
    std::size_t n = approximation.size();
    for (const auto &level : details)
        n += level.size();
    return n;
}

double
WaveletDecomposition::energy() const
{
    double e = 0.0;
    for (const auto &level : details)
        for (double c : level)
            e += c * c;
    for (double c : approximation)
        e += c * c;
    return e;
}

Dwt::Dwt(WaveletBasis basis)
    : basis_(std::move(basis))
{
}

void
Dwt::analyzeStep(std::span<const double> input, std::span<double> approx,
                 std::span<double> detail) const
{
    const std::size_t n = input.size();
    if (n % 2 != 0 || n == 0)
        didt_panic("analyzeStep needs even non-zero length, got ", n);
    const std::size_t half = n / 2;
    if (approx.size() != half || detail.size() != half)
        didt_panic("analyzeStep: output halves must hold ", half,
                   " samples, got ", approx.size(), " and ",
                   detail.size());

    const auto &h = basis_.lowpass();
    const auto &g = basis_.highpass();
    const std::size_t flen = h.size();

    // Outputs with the filter fully inside the signal need no periodic
    // wrap, so the hot region runs modulo-free through the dispatched
    // SIMD kernel; only the tail wraps. The kernel accumulates each
    // output in the scalar order (vector lanes are independent
    // outputs), so the results are bit-identical to the single general
    // loop at every dispatch level.
    const std::size_t no_wrap =
        flen <= n ? std::min(half, (n - flen) / 2 + 1) : 0;
    if (no_wrap > 0)
        simd::kernels().dwtAnalyze(input.data(), no_wrap, h.data(),
                                   g.data(), flen, approx.data(),
                                   detail.data());
    for (std::size_t k = no_wrap; k < half; ++k) {
        double a = 0.0;
        double d = 0.0;
        for (std::size_t m = 0; m < flen; ++m) {
            const std::size_t idx = (2 * k + m) % n; // periodic extension
            a += h[m] * input[idx];
            d += g[m] * input[idx];
        }
        approx[k] = a;
        detail[k] = d;
    }
}

void
Dwt::analyzeStep(std::span<const double> input, std::vector<double> &approx,
                 std::vector<double> &detail) const
{
    const std::size_t n = input.size();
    if (n % 2 != 0 || n == 0)
        didt_panic("analyzeStep needs even non-zero length, got ", n);
    approx.resize(n / 2);
    detail.resize(n / 2);
    analyzeStep(input, std::span<double>(approx),
                std::span<double>(detail));
}

void
Dwt::synthesizeStep(std::span<const double> approx,
                    std::span<const double> detail,
                    std::span<double> out) const
{
    const std::size_t half = approx.size();
    if (detail.size() != half)
        didt_panic("synthesizeStep: approx/detail size mismatch ", half,
                   " vs ", detail.size());
    if (half == 0)
        didt_panic("synthesizeStep on empty halves");
    const std::size_t n = 2 * half;
    if (out.size() != n)
        didt_panic("synthesizeStep: output must hold ", n,
                   " samples, got ", out.size());

    const auto &h = basis_.lowpass();
    const auto &g = basis_.highpass();
    const std::size_t flen = h.size();

    std::fill(out.begin(), out.end(), 0.0);
    // Same modulo-free split as analyzeStep. The kernel recasts the
    // (k, m) scatter as a per-output gather whose accumulation order
    // per output index is exactly the scalar k-ascending order, and
    // the wrapped tail below adds its (larger-k) contributions on top,
    // so out is bit-identical to the single general scatter loop.
    const std::size_t no_wrap =
        flen <= n ? std::min(half, (n - flen) / 2 + 1) : 0;
    if (no_wrap > 0 && flen % 2 == 0) {
        simd::kernels().dwtSynthesize(approx.data(), detail.data(),
                                      no_wrap, h.data(), g.data(), flen,
                                      out.data());
    } else {
        for (std::size_t k = 0; k < no_wrap; ++k) {
            double *o = out.data() + 2 * k;
            const double a = approx[k];
            const double d = detail[k];
            for (std::size_t m = 0; m < flen; ++m)
                o[m] += h[m] * a + g[m] * d;
        }
    }
    for (std::size_t k = no_wrap; k < half; ++k) {
        for (std::size_t m = 0; m < flen; ++m) {
            const std::size_t idx = (2 * k + m) % n;
            out[idx] += h[m] * approx[k] + g[m] * detail[k];
        }
    }
}

std::vector<double>
Dwt::synthesizeStep(std::span<const double> approx,
                    std::span<const double> detail) const
{
    std::vector<double> out(2 * approx.size(), 0.0);
    synthesizeStep(approx, detail, std::span<double>(out));
    return out;
}

std::size_t
Dwt::maxLevels(std::size_t n) const
{
    std::size_t levels = 0;
    while (n % 2 == 0 && n / 2 >= 1 && n >= basis_.length()) {
        n /= 2;
        ++levels;
    }
    return levels;
}

void
Dwt::forward(std::span<const double> signal, std::size_t levels,
             FlatDecomposition &out, DwtWorkspace &ws) const
{
    if (levels == 0)
        didt_panic("forward() requires at least one level");
    const std::size_t n = signal.size();
    if (n == 0)
        didt_panic("forward() on empty signal");
    if (n % (std::size_t(1) << levels) != 0)
        didt_panic("signal length ", n, " not divisible by 2^", levels);

    out.layoutDyadic(n, levels);

    // Ping/pong the approximation chain between the two scratch
    // buffers; details land directly in their final rows, and the last
    // approximation half is written straight into the output row.
    ws.ping.resize(n);
    ws.pong.resize(n / 2);
    std::copy(signal.begin(), signal.end(), ws.ping.begin());

    double *current = ws.ping.data();
    double *other = ws.pong.data();
    std::size_t len = n;
    for (std::size_t level = 0; level < levels; ++level) {
        const std::span<const double> input(current, len);
        len /= 2;
        const std::span<double> approx =
            level + 1 == levels ? out.approximation()
                                : std::span<double>(other, len);
        analyzeStep(input, approx, out.detail(level));
        std::swap(current, other);
    }
}

void
Dwt::inverse(const FlatDecomposition &dec, std::span<double> out,
             DwtWorkspace &ws) const
{
    const std::size_t levels = dec.levels();
    if (levels == 0)
        didt_panic("inverse() on empty decomposition");
    const std::size_t n = dec.signalLength();
    if (out.size() != n)
        didt_panic("inverse() output must hold ", n, " samples, got ",
                   out.size());

    ws.ping.resize(n);
    ws.pong.resize(n / 2);
    const std::span<const double> approx = dec.approximation();
    std::copy(approx.begin(), approx.end(), ws.ping.begin());

    double *current = ws.ping.data();
    double *other = ws.pong.data();
    std::size_t len = approx.size();
    for (std::size_t level = levels; level-- > 0;) {
        const std::span<double> merged =
            level == 0 ? out : std::span<double>(other, 2 * len);
        synthesizeStep(std::span<const double>(current, len),
                       dec.detail(level), merged);
        len *= 2;
        std::swap(current, other);
    }
    if (len != n)
        didt_panic("inverse() produced length ", len, ", expected ", n);
}

WaveletDecomposition
Dwt::forward(std::span<const double> signal, std::size_t levels) const
{
    DwtWorkspace ws;
    FlatDecomposition flat;
    forward(signal, levels, flat, ws);
    return flat.toNested();
}

std::vector<double>
Dwt::inverse(const WaveletDecomposition &dec) const
{
    if (dec.details.empty())
        didt_panic("inverse() on empty decomposition");

    DwtWorkspace ws;
    ws.masked.assignFrom(dec);
    std::vector<double> out(dec.signalLength, 0.0);
    inverse(ws.masked, std::span<double>(out), ws);
    return out;
}

} // namespace didt
