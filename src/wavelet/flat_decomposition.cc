#include "wavelet/flat_decomposition.hh"

#include <algorithm>

#include "util/logging.hh"
#include "wavelet/dwt.hh"

namespace didt
{

std::span<double>
FlatDecomposition::row(std::size_t index)
{
    return std::span<double>(coeffs_.data() + offsets_[index],
                             offsets_[index + 1] - offsets_[index]);
}

std::span<const double>
FlatDecomposition::row(std::size_t index) const
{
    return std::span<const double>(coeffs_.data() + offsets_[index],
                                   offsets_[index + 1] - offsets_[index]);
}

std::span<double>
FlatDecomposition::detail(std::size_t level)
{
    if (level >= levels())
        didt_panic("FlatDecomposition::detail: level ", level,
                   " out of range (", levels(), " levels)");
    return row(level);
}

std::span<const double>
FlatDecomposition::detail(std::size_t level) const
{
    if (level >= levels())
        didt_panic("FlatDecomposition::detail: level ", level,
                   " out of range (", levels(), " levels)");
    return row(level);
}

std::span<double>
FlatDecomposition::approximation()
{
    if (offsets_.empty())
        didt_panic("FlatDecomposition::approximation before layout");
    return row(levels());
}

std::span<const double>
FlatDecomposition::approximation() const
{
    if (offsets_.empty())
        didt_panic("FlatDecomposition::approximation before layout");
    return row(levels());
}

double
FlatDecomposition::energy() const
{
    double e = 0.0;
    for (double c : coeffs_)
        e += c * c;
    return e;
}

void
FlatDecomposition::layoutDyadic(std::size_t signal_length,
                                std::size_t levels)
{
    if (levels == 0)
        didt_panic("FlatDecomposition layout requires at least one level");
    if (signal_length == 0 ||
        signal_length % (std::size_t(1) << levels) != 0)
        didt_panic("signal length ", signal_length,
                   " not divisible by 2^", levels);

    signalLength_ = signal_length;
    offsets_.resize(levels + 2);
    std::size_t off = 0;
    std::size_t len = signal_length;
    for (std::size_t j = 0; j < levels; ++j) {
        offsets_[j] = off;
        len /= 2;
        off += len;
    }
    offsets_[levels] = off;       // approximation, same size as d(L-1)
    offsets_[levels + 1] = off + len;
    coeffs_.resize(offsets_[levels + 1]);
}

void
FlatDecomposition::layoutUniform(std::size_t signal_length,
                                 std::size_t levels)
{
    if (levels == 0)
        didt_panic("FlatDecomposition layout requires at least one level");
    if (signal_length == 0)
        didt_panic("FlatDecomposition layout on empty signal");

    signalLength_ = signal_length;
    offsets_.resize(levels + 2);
    for (std::size_t j = 0; j < levels + 2; ++j)
        offsets_[j] = j * signal_length;
    coeffs_.resize(offsets_[levels + 1]);
}

WaveletDecomposition
FlatDecomposition::toNested() const
{
    WaveletDecomposition nested;
    nested.signalLength = signalLength_;
    nested.details.reserve(levels());
    for (std::size_t j = 0; j < levels(); ++j) {
        const auto d = detail(j);
        nested.details.emplace_back(d.begin(), d.end());
    }
    const auto a = approximation();
    nested.approximation.assign(a.begin(), a.end());
    return nested;
}

void
FlatDecomposition::assignFrom(const WaveletDecomposition &nested)
{
    if (nested.details.empty())
        didt_panic("FlatDecomposition::assignFrom empty decomposition");

    signalLength_ = nested.signalLength;
    const std::size_t levels = nested.details.size();
    offsets_.resize(levels + 2);
    std::size_t off = 0;
    for (std::size_t j = 0; j < levels; ++j) {
        offsets_[j] = off;
        off += nested.details[j].size();
    }
    offsets_[levels] = off;
    offsets_[levels + 1] = off + nested.approximation.size();
    coeffs_.resize(offsets_[levels + 1]);
    for (std::size_t j = 0; j < levels; ++j)
        std::copy(nested.details[j].begin(), nested.details[j].end(),
                  coeffs_.begin() + static_cast<long>(offsets_[j]));
    std::copy(nested.approximation.begin(), nested.approximation.end(),
              coeffs_.begin() + static_cast<long>(offsets_[levels]));
}

} // namespace didt
