#include "wavelet/fourier.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace didt
{

void
fft(std::vector<std::complex<double>> &data, bool inverse)
{
    const std::size_t n = data.size();
    if (n == 0 || !std::has_single_bit(n))
        didt_panic("fft length must be a power of two, got ", n);
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Iterative Cooley-Tukey butterflies.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[i + k];
                const std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= scale;
    }
}

std::vector<std::complex<double>>
dft(std::span<const double> signal)
{
    std::vector<std::complex<double>> data(signal.begin(), signal.end());
    fft(data);
    return data;
}

std::vector<double>
powerSpectrum(std::span<const double> signal)
{
    const auto spectrum = dft(signal);
    const std::size_t n = signal.size();
    std::vector<double> power(n / 2 + 1, 0.0);
    const double norm = 1.0 / static_cast<double>(n) /
                        static_cast<double>(n);
    for (std::size_t k = 0; k <= n / 2; ++k) {
        double p = std::norm(spectrum[k]) * norm;
        // Fold the conjugate-symmetric negative frequency in, except
        // for DC and (even-length) Nyquist which are their own mirror.
        if (k != 0 && !(n % 2 == 0 && k == n / 2))
            p *= 2.0;
        power[k] = p;
    }
    return power;
}

double
bandEnergy(std::span<const double> signal, double lo_hz, double hi_hz,
           double sample_hz)
{
    if (sample_hz <= 0.0)
        didt_panic("bandEnergy needs a positive sample rate");
    const auto power = powerSpectrum(signal);
    const double bin_hz =
        sample_hz / static_cast<double>(signal.size());
    double total = 0.0;
    for (std::size_t k = 0; k < power.size(); ++k) {
        const double f = static_cast<double>(k) * bin_hz;
        if (f >= lo_hz && f < hi_hz)
            total += power[k];
    }
    return total;
}

} // namespace didt
