/**
 * @file
 * Maximal-overlap discrete wavelet transform (MODWT).
 *
 * The paper's wavelet-variance methodology follows Serroukh, Walden &
 * Percival (its reference [19]), whose estimator is defined on the
 * *undecimated* transform: every level keeps one coefficient per
 * sample, making the per-scale variance estimator shift-invariant and
 * statistically efficient (no dependence on how the dyadic grid lands
 * on the signal). This module implements the MODWT pyramid with the
 * standard 1/sqrt(2) filter rescaling, its inverse, and the unbiased
 * wavelet-variance estimator, as an alternative front end for the
 * characterization model (see `bench/ablation_modwt`).
 */

#ifndef DIDT_WAVELET_MODWT_HH
#define DIDT_WAVELET_MODWT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "wavelet/basis.hh"
#include "wavelet/flat_decomposition.hh"

namespace didt
{

/** An undecimated wavelet decomposition: every row has N samples. */
struct ModwtDecomposition
{
    /** Detail coefficients per level, finest first; each size N. */
    std::vector<std::vector<double>> details;

    /** Scaling coefficients at the coarsest level; size N. */
    std::vector<double> smooth;

    /** Number of levels. */
    std::size_t levels() const { return details.size(); }
};

/** MODWT engine for a fixed basis (periodic boundary handling). */
class Modwt
{
  public:
    /** @param basis wavelet basis; filters are rescaled by 1/sqrt 2. */
    explicit Modwt(WaveletBasis basis);

    /**
     * Forward transform. Unlike the decimated DWT the signal length
     * only needs to be >= the filter length (no divisibility
     * requirement), but must be non-zero.
     */
    ModwtDecomposition forward(std::span<const double> signal,
                               std::size_t levels) const;

    /**
     * Forward transform into caller-owned storage (uniform flat
     * layout: every row, including the smooth row exposed as
     * approximation(), has signal-length coefficients). Allocation-
     * free once @p out and @p ws have reached capacity; bit-identical
     * to the allocating overload.
     */
    void forward(std::span<const double> signal, std::size_t levels,
                 FlatDecomposition &out, DwtWorkspace &ws) const;

    /** Inverse transform (exact reconstruction). */
    std::vector<double> inverse(const ModwtDecomposition &dec) const;

    /**
     * Per-scale wavelet variance: nu_j^2 = mean of squared level-j
     * MODWT detail coefficients (the biased-at-boundaries periodic
     * estimator of Percival; by the MODWT energy decomposition the
     * levels plus smooth variance sum to the sample variance).
     */
    std::vector<double> waveletVariance(std::span<const double> signal,
                                        std::size_t levels) const;

    /**
     * In-place wavelet variance: writes nu_j^2 into @p out (which must
     * hold exactly @p levels values) without materializing the
     * decomposition — detail rows are reduced level by level out of
     * workspace scratch.
     */
    void waveletVariance(std::span<const double> signal,
                         std::size_t levels, std::span<double> out,
                         DwtWorkspace &ws) const;

    /** The basis in use (original, unscaled filters). */
    const WaveletBasis &basis() const { return basis_; }

  private:
    WaveletBasis basis_;
    std::vector<double> h_; ///< rescaled low-pass
    std::vector<double> g_; ///< rescaled high-pass
};

} // namespace didt

#endif // DIDT_WAVELET_MODWT_HH
