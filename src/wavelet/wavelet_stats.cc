#include "wavelet/wavelet_stats.hh"

#include <algorithm>
#include <cmath>

#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace didt
{

namespace
{

/** Per-scale statistics over one detail row. */
void
pushDetailStats(std::span<const double> level, double n, ScaleStats &out)
{
    double energy = 0.0;
    for (double c : level)
        energy += c * c;
    // Parseval: subband signal variance (about zero mean, since
    // detail subbands integrate to zero for orthonormal bases).
    out.subbandVariance.push_back(energy / n);
    out.adjacentCorrelation.push_back(lag1Autocorrelation(level));
}

/** Approximation subband variance: spread of the reconstructed
 *  coarse signal about its mean. For an orthonormal basis this is
 *  (sum a^2 - (sum a)^2 / m) / n with m approximation coefficients. */
double
approximationVarianceOf(std::span<const double> approx, double n)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double c : approx) {
        sum += c;
        sum_sq += c * c;
    }
    const double m = static_cast<double>(approx.size());
    return m > 0.0 ? (sum_sq - sum * sum / m) / n : 0.0;
}

} // namespace

ScaleStats
computeScaleStats(const WaveletDecomposition &dec)
{
    ScaleStats stats;
    const double n = static_cast<double>(dec.signalLength);
    if (n == 0.0)
        didt_panic("computeScaleStats on empty decomposition");

    stats.subbandVariance.reserve(dec.details.size());
    stats.adjacentCorrelation.reserve(dec.details.size());
    for (const auto &level : dec.details)
        pushDetailStats(level, n, stats);
    stats.approximationVariance =
        approximationVarianceOf(dec.approximation, n);
    return stats;
}

void
computeScaleStats(const FlatDecomposition &dec, ScaleStats &out)
{
    const double n = static_cast<double>(dec.signalLength());
    if (n == 0.0)
        didt_panic("computeScaleStats on empty decomposition");

    out.subbandVariance.clear();
    out.adjacentCorrelation.clear();
    out.subbandVariance.reserve(dec.levels());
    out.adjacentCorrelation.reserve(dec.levels());
    for (std::size_t j = 0; j < dec.levels(); ++j)
        pushDetailStats(dec.detail(j), n, out);
    out.approximationVariance =
        approximationVarianceOf(dec.approximation(), n);
}

std::vector<CoefficientRef>
rankCoefficients(const WaveletDecomposition &dec)
{
    std::vector<CoefficientRef> refs;
    refs.reserve(dec.totalCoefficients());
    for (std::size_t j = 0; j < dec.details.size(); ++j)
        for (std::size_t k = 0; k < dec.details[j].size(); ++k)
            refs.push_back(CoefficientRef{j, k, dec.details[j][k]});
    for (std::size_t k = 0; k < dec.approximation.size(); ++k)
        refs.push_back(CoefficientRef{CoefficientRef::kApproximation, k,
                                      dec.approximation[k]});
    std::stable_sort(refs.begin(), refs.end(),
                     [](const CoefficientRef &a, const CoefficientRef &b) {
                         return std::fabs(a.value) > std::fabs(b.value);
                     });
    return refs;
}

double
energyCaptured(const WaveletDecomposition &dec, std::size_t k)
{
    const double total = dec.energy();
    if (total <= 0.0)
        return 1.0;
    const auto ranked = rankCoefficients(dec);
    double captured = 0.0;
    const std::size_t limit = std::min(k, ranked.size());
    for (std::size_t i = 0; i < limit; ++i)
        captured += ranked[i].value * ranked[i].value;
    return captured / total;
}

} // namespace didt
