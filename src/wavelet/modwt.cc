#include "wavelet/modwt.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

Modwt::Modwt(WaveletBasis basis)
    : basis_(std::move(basis))
{
    const double scale = 1.0 / std::sqrt(2.0);
    h_.reserve(basis_.length());
    g_.reserve(basis_.length());
    for (double c : basis_.lowpass())
        h_.push_back(c * scale);
    for (double c : basis_.highpass())
        g_.push_back(c * scale);
}

ModwtDecomposition
Modwt::forward(std::span<const double> signal, std::size_t levels) const
{
    const std::size_t n = signal.size();
    if (n == 0)
        didt_panic("Modwt::forward on empty signal");
    if (levels == 0)
        didt_panic("Modwt::forward requires at least one level");
    // Upsampled filter span must fit the (periodic) signal to make
    // statistical sense.
    if ((std::size_t(1) << (levels - 1)) * (h_.size() - 1) >= n)
        didt_fatal("MODWT depth ", levels, " too deep for signal length ",
                   n);

    ModwtDecomposition dec;
    dec.details.reserve(levels);

    std::vector<double> current(signal.begin(), signal.end());
    std::vector<double> next(n);
    std::vector<double> detail(n);
    for (std::size_t j = 1; j <= levels; ++j) {
        const std::size_t stride = std::size_t(1) << (j - 1);
        for (std::size_t t = 0; t < n; ++t) {
            double a = 0.0;
            double d = 0.0;
            std::size_t idx = t;
            for (std::size_t l = 0; l < h_.size(); ++l) {
                a += h_[l] * current[idx];
                d += g_[l] * current[idx];
                // idx = (t - stride * (l + 1)) mod n, walked backward.
                idx = (idx + n - stride % n) % n;
            }
            next[t] = a;
            detail[t] = d;
        }
        dec.details.push_back(detail);
        current.swap(next);
    }
    dec.smooth = std::move(current);
    return dec;
}

std::vector<double>
Modwt::inverse(const ModwtDecomposition &dec) const
{
    if (dec.details.empty())
        didt_panic("Modwt::inverse on empty decomposition");
    const std::size_t n = dec.smooth.size();

    std::vector<double> current = dec.smooth;
    std::vector<double> prev(n);
    for (std::size_t j = dec.details.size(); j >= 1; --j) {
        const std::size_t stride = std::size_t(1) << (j - 1);
        const std::vector<double> &detail = dec.details[j - 1];
        if (detail.size() != n)
            didt_panic("MODWT level size mismatch");
        for (std::size_t t = 0; t < n; ++t) {
            double x = 0.0;
            std::size_t idx = t;
            for (std::size_t l = 0; l < h_.size(); ++l) {
                x += h_[l] * current[idx] + g_[l] * detail[idx];
                // idx = (t + stride * (l + 1)) mod n, walked forward.
                idx = (idx + stride) % n;
            }
            prev[t] = x;
        }
        current.swap(prev);
    }
    return current;
}

std::vector<double>
Modwt::waveletVariance(std::span<const double> signal,
                       std::size_t levels) const
{
    const ModwtDecomposition dec = forward(signal, levels);
    std::vector<double> variance(levels, 0.0);
    const double n = static_cast<double>(signal.size());
    for (std::size_t j = 0; j < levels; ++j) {
        double energy = 0.0;
        for (double w : dec.details[j])
            energy += w * w;
        variance[j] = energy / n;
    }
    return variance;
}

} // namespace didt
