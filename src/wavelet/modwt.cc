#include "wavelet/modwt.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

namespace
{

/**
 * One MODWT analysis step at the given filter stride: convolve
 * @p current with the upsampled rescaled filters, writing scaling
 * coefficients to @p next and wavelet coefficients to @p detail.
 * Neither output may alias @p current.
 */
void
modwtStep(std::span<const double> current, std::size_t stride,
          std::span<const double> h, std::span<const double> g,
          std::span<double> next, std::span<double> detail)
{
    const std::size_t n = current.size();
    const std::size_t flen = h.size();

    // Outputs at t >= stride * (flen - 1) read every tap without
    // wrapping (the depth check in the callers guarantees this region
    // is non-empty for real filters), so they run through the
    // dispatched modulo-free SIMD kernel; only the head wraps. Tap
    // order per output is unchanged, so results stay bit-identical.
    const std::size_t wrap_head =
        flen >= 1 && stride * (flen - 1) < n ? stride * (flen - 1) : n;
    for (std::size_t t = 0; t < wrap_head; ++t) {
        double a = 0.0;
        double d = 0.0;
        std::size_t idx = t;
        for (std::size_t l = 0; l < flen; ++l) {
            a += h[l] * current[idx];
            d += g[l] * current[idx];
            // idx = (t - stride * (l + 1)) mod n, walked backward.
            idx = (idx + n - stride % n) % n;
        }
        next[t] = a;
        detail[t] = d;
    }
    if (wrap_head < n)
        simd::kernels().modwtStep(current.data(), wrap_head,
                                  n - wrap_head, stride, h.data(),
                                  g.data(), flen, next.data(),
                                  detail.data());
}

} // namespace

Modwt::Modwt(WaveletBasis basis)
    : basis_(std::move(basis))
{
    const double scale = 1.0 / std::sqrt(2.0);
    h_.reserve(basis_.length());
    g_.reserve(basis_.length());
    for (double c : basis_.lowpass())
        h_.push_back(c * scale);
    for (double c : basis_.highpass())
        g_.push_back(c * scale);
}

void
Modwt::forward(std::span<const double> signal, std::size_t levels,
               FlatDecomposition &out, DwtWorkspace &ws) const
{
    const std::size_t n = signal.size();
    if (n == 0)
        didt_panic("Modwt::forward on empty signal");
    if (levels == 0)
        didt_panic("Modwt::forward requires at least one level");
    // Upsampled filter span must fit the (periodic) signal to make
    // statistical sense.
    if ((std::size_t(1) << (levels - 1)) * (h_.size() - 1) >= n)
        didt_fatal("MODWT depth ", levels, " too deep for signal length ",
                   n);

    out.layoutUniform(n, levels);
    ws.ping.resize(n);
    ws.pong.resize(n);
    std::copy(signal.begin(), signal.end(), ws.ping.begin());

    double *current = ws.ping.data();
    double *next = ws.pong.data();
    for (std::size_t j = 1; j <= levels; ++j) {
        const std::size_t stride = std::size_t(1) << (j - 1);
        modwtStep(std::span<const double>(current, n), stride, h_, g_,
                  std::span<double>(next, n), out.detail(j - 1));
        std::swap(current, next);
    }
    const std::span<double> smooth = out.approximation();
    std::copy(current, current + n, smooth.begin());
}

ModwtDecomposition
Modwt::forward(std::span<const double> signal, std::size_t levels) const
{
    DwtWorkspace ws;
    FlatDecomposition flat;
    forward(signal, levels, flat, ws);

    ModwtDecomposition dec;
    dec.details.reserve(levels);
    for (std::size_t j = 0; j < levels; ++j) {
        const auto d = flat.detail(j);
        dec.details.emplace_back(d.begin(), d.end());
    }
    const auto s = flat.approximation();
    dec.smooth.assign(s.begin(), s.end());
    return dec;
}

std::vector<double>
Modwt::inverse(const ModwtDecomposition &dec) const
{
    if (dec.details.empty())
        didt_panic("Modwt::inverse on empty decomposition");
    const std::size_t n = dec.smooth.size();

    std::vector<double> current = dec.smooth;
    std::vector<double> prev(n);
    for (std::size_t j = dec.details.size(); j >= 1; --j) {
        const std::size_t stride = std::size_t(1) << (j - 1);
        const std::vector<double> &detail = dec.details[j - 1];
        if (detail.size() != n)
            didt_panic("MODWT level size mismatch");
        for (std::size_t t = 0; t < n; ++t) {
            double x = 0.0;
            std::size_t idx = t;
            for (std::size_t l = 0; l < h_.size(); ++l) {
                x += h_[l] * current[idx] + g_[l] * detail[idx];
                // idx = (t + stride * (l + 1)) mod n, walked forward.
                idx = (idx + stride) % n;
            }
            prev[t] = x;
        }
        current.swap(prev);
    }
    return current;
}

void
Modwt::waveletVariance(std::span<const double> signal, std::size_t levels,
                       std::span<double> out, DwtWorkspace &ws) const
{
    if (out.size() != levels)
        didt_panic("waveletVariance output must hold ", levels,
                   " values, got ", out.size());
    const std::size_t n = signal.size();
    if (n == 0)
        didt_panic("Modwt::forward on empty signal");
    if (levels == 0)
        didt_panic("Modwt::forward requires at least one level");
    if ((std::size_t(1) << (levels - 1)) * (h_.size() - 1) >= n)
        didt_fatal("MODWT depth ", levels, " too deep for signal length ",
                   n);

    // Reduce each detail row to its energy as it is produced, so only
    // three signal-length rows of scratch are ever live.
    ws.ping.resize(n);
    ws.pong.resize(n);
    ws.extra.resize(n);
    std::copy(signal.begin(), signal.end(), ws.ping.begin());

    double *current = ws.ping.data();
    double *next = ws.pong.data();
    const std::span<double> detail(ws.extra.data(), n);
    for (std::size_t j = 1; j <= levels; ++j) {
        const std::size_t stride = std::size_t(1) << (j - 1);
        modwtStep(std::span<const double>(current, n), stride, h_, g_,
                  std::span<double>(next, n), detail);
        double energy = 0.0;
        for (double w : detail)
            energy += w * w;
        out[j - 1] = energy / static_cast<double>(n);
        std::swap(current, next);
    }
}

std::vector<double>
Modwt::waveletVariance(std::span<const double> signal,
                       std::size_t levels) const
{
    const ModwtDecomposition dec = forward(signal, levels);
    std::vector<double> variance(levels, 0.0);
    const double n = static_cast<double>(signal.size());
    for (std::size_t j = 0; j < levels; ++j) {
        double energy = 0.0;
        for (double w : dec.details[j])
            energy += w * w;
        variance[j] = energy / n;
    }
    return variance;
}

} // namespace didt
