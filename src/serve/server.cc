#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "runner/plan.hh"
#include "runner/result_json.hh"
#include "serve/batch.hh"
#include "util/logging.hh"
#include "verify/failpoint.hh"

namespace didt
{
namespace serve
{

namespace
{

/** Daemon-level metrics (sidecar only; stats responses use the
 *  server's own atomics so they survive registry resets). */
struct ServeMetrics
{
    obs::Counter connections;
    obs::Counter requests;
    obs::Counter rejected;
    obs::Counter badRequests;
    obs::Counter batches;
    obs::Gauge queueDepth;
    obs::Histogram requestMs;
};

ServeMetrics &
serveMetrics()
{
    auto &registry = obs::MetricsRegistry::global();
    static ServeMetrics metrics{
        registry.counter("serve.connections"),
        registry.counter("serve.requests"),
        registry.counter("serve.rejected"),
        registry.counter("serve.bad_requests"),
        registry.counter("serve.batches"),
        registry.gauge("serve.queue_depth"),
        registry.histogram("serve.request_ms"),
    };
    return metrics;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
bindUnixListener(const std::string &path, int *out_fd,
                 std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *error = "unix socket path too long: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str()); // replace a stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        *error = "cannot listen on " + path + ": " +
                 std::strerror(errno);
        ::close(fd);
        return false;
    }
    *out_fd = fd;
    return true;
}

bool
bindTcpListener(const std::string &host, int port, int *out_fd,
                int *bound_port, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "invalid TCP bind address: " + host;
        return false;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        *error = "cannot listen on " + host + ":" +
                 std::to_string(port) + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        *bound_port = ntohs(bound.sin_port);
    *out_fd = fd;
    return true;
}

} // namespace

Server::Server(const ExperimentSetup &setup, ServerConfig config)
    : config_(std::move(config)), repo_(setup, config_.cacheDir),
      executor_(
          std::make_unique<Executor>(setup, repo_, config_.jobs))
{
    repo_.setMemoryBudgetBytes(config_.cacheBytes);
}

Server::~Server()
{
    if (started_) {
        requestStop();
        wait();
    }
    closeFd(wakePipe_[0]);
    closeFd(wakePipe_[1]);
}

bool
Server::start(std::string *error)
{
    if (config_.unixPath.empty() && config_.tcpPort < 0) {
        *error = "no listener configured (need a unix path or a TCP "
                 "port)";
        return false;
    }
    if (::pipe(wakePipe_) < 0) {
        *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (!config_.unixPath.empty() &&
        !bindUnixListener(config_.unixPath, &unixFd_, error))
        return false;
    if (config_.tcpPort >= 0 &&
        !bindTcpListener(config_.tcpHost, config_.tcpPort, &tcpFd_,
                         &boundTcpPort_, error)) {
        closeFd(unixFd_);
        return false;
    }

    started_ = true;
    acceptor_ = std::thread([this] { acceptorLoop(); });
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
    if (!config_.metricsOut.empty())
        metricsThread_ = std::thread([this] { metricsLoop(); });
    return true;
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    queueCv_.notify_all();
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
    // Wake the acceptor's poll; a failed write means the pipe is gone
    // (already shut down) and the acceptor is no longer polling.
    const char byte = 1;
    if (wakePipe_[1] >= 0)
        (void)!::write(wakePipe_[1], &byte, 1);
    // Unblock idle connection reads; in-flight responses still write.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (Connection &conn : connections_)
        if (conn.fd >= 0)
            ::shutdown(conn.fd, SHUT_RD);
}

void
Server::wait()
{
    if (!started_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    // The dispatcher drains every admitted job before exiting, which
    // unblocks the connection threads waiting on responses.
    if (dispatcher_.joinable())
        dispatcher_.join();
    {
        // Splice the list out and join without the lock: an exiting
        // connection thread takes connMutex_ to close its fd, so
        // joining it while holding the lock would deadlock. Splicing
        // keeps the Connection nodes at stable addresses for the
        // threads still running their epilogue.
        std::list<Connection> remaining;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            remaining.splice(remaining.begin(), connections_);
        }
        for (Connection &conn : remaining)
            if (conn.thread.joinable())
                conn.thread.join();
    }
    if (metricsThread_.joinable())
        metricsThread_.join();
    closeFd(unixFd_);
    closeFd(tcpFd_);
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
    started_ = false;
}

void
Server::reapConnectionsLocked()
{
    for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->done.load(std::memory_order_acquire)) {
            if (it->thread.joinable())
                it->thread.join();
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptorLoop()
{
    std::vector<pollfd> fds;
    if (unixFd_ >= 0)
        fds.push_back({unixFd_, POLLIN, 0});
    if (tcpFd_ >= 0)
        fds.push_back({tcpFd_, POLLIN, 0});
    fds.push_back({wakePipe_[0], POLLIN, 0});

    for (;;) {
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            if (draining_)
                return;
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            didt_warn("didt_serve acceptor poll failed: ",
                      std::strerror(errno));
            return;
        }
        for (const pollfd &pfd : fds) {
            if (!(pfd.revents & POLLIN))
                continue;
            if (pfd.fd == wakePipe_[0])
                continue; // drained via the draining_ check above
            const int client =
                ::accept4(pfd.fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (client < 0)
                continue;
            if (DIDT_FAILPOINT("serve.accept")) {
                // An injected accept failure models resource
                // exhaustion: the connection is dropped, the daemon
                // keeps serving everyone else.
                droppedConnections_.fetch_add(1);
                ::close(client);
                continue;
            }
            connectionsAccepted_.fetch_add(1);
            serveMetrics().connections.add(1);
            std::lock_guard<std::mutex> lock(connMutex_);
            reapConnectionsLocked();
            connections_.emplace_back();
            Connection &conn = connections_.back();
            conn.fd = client;
            conn.thread =
                std::thread([this, &conn] { connectionLoop(&conn); });
        }
    }
}

void
Server::connectionLoop(Connection *conn)
{
    const int fd = conn->fd;
    for (;;) {
        std::string payload;
        std::string frame_error;
        const FrameStatus status = readFrame(
            fd, &payload, config_.maxFrameBytes, &frame_error);
        if (status == FrameStatus::Closed)
            break;
        if (status == FrameStatus::Malformed ||
            status == FrameStatus::Oversized) {
            // The stream is poisoned: answer once, then hang up.
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            (void)writeFrame(fd,
                             errorResponseJson("",
                                               ErrorCode::BadRequest,
                                               frame_error));
            break;
        }
        if (status != FrameStatus::Ok)
            break; // Truncated / IoError: nothing sane to answer on

        obs::ScopedTimer timer("serve request",
                               serveMetrics().requestMs, nullptr,
                               "serve");
        requests_.fetch_add(1);
        serveMetrics().requests.add(1);

        std::string response;
        Request request;
        std::string parse_error;
        if (DIDT_FAILPOINT("serve.decode")) {
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            response = errorResponseJson(
                "", ErrorCode::BadRequest,
                "injected fault (serve.decode)");
        } else if (!parseRequest(payload, &request, &parse_error)) {
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            response = errorResponseJson(
                request.id, ErrorCode::BadRequest, parse_error);
        } else {
            switch (request.type) {
            case RequestType::Ping:
                response = pongResponseJson(request.id);
                break;
            case RequestType::Stats:
                response = statsResponseJson(request.id, statsJson());
                break;
            case RequestType::Characterize:
                response = serveCharacterize(request);
                break;
            }
        }
        if (writeFrame(fd, response) != FrameStatus::Ok)
            break;
    }
    {
        // Close under the lock so requestStop() never shuts down a
        // reused descriptor.
        std::lock_guard<std::mutex> lock(connMutex_);
        ::close(fd);
        conn->fd = -1;
    }
    conn->done.store(true, std::memory_order_release);
}

std::string
Server::serveCharacterize(const Request &request)
{
    std::future<std::string> pending;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_) {
            rejectedDraining_.fetch_add(1);
            serveMetrics().rejected.add(1);
            return errorResponseJson(request.id,
                                     ErrorCode::ShuttingDown,
                                     "daemon is draining");
        }
        if (queue_.size() >= config_.maxQueue) {
            rejectedQueueFull_.fetch_add(1);
            serveMetrics().rejected.add(1);
            return errorResponseJson(
                request.id, ErrorCode::QueueFull,
                "admission queue is full (" +
                    std::to_string(queue_.size()) +
                    " queued); retry later");
        }
        Job job;
        job.id = request.id;
        job.spec = request.spec;
        job.key = batchKey(request.spec);
        pending = job.response.get_future();
        queue_.push_back(std::move(job));
        serveMetrics().queueDepth.record(
            static_cast<double>(queue_.size()));
        characterizations_.fetch_add(1);
    }
    queueCv_.notify_one();
    return pending.get();
}

void
Server::dispatcherLoop()
{
    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty()) {
                if (draining_)
                    return;
                continue;
            }
            // Take the head, then every queued job that can batch
            // with it (first-come order preserved within the batch).
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            const std::string &key = batch.front().key;
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->key == key) {
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
            serveMetrics().queueDepth.record(
                static_cast<double>(queue_.size()));
        }
        runBatch(std::move(batch));
    }
}

void
Server::runBatch(std::vector<Job> batch)
{
    batches_.fetch_add(1);
    serveMetrics().batches.add(1);

    std::vector<CampaignSpec> specs;
    specs.reserve(batch.size());
    for (const Job &job : batch)
        specs.push_back(job.spec);

    try {
        const CampaignSpec merged = mergeSpecs(specs);
        std::vector<TraceCacheStats> deltas;
        ExecutionHooks hooks;
        hooks.cellCacheDeltas = &deltas;
        const CampaignResult result =
            executor_->run(buildCampaignPlan(merged), hooks);
        for (Job &job : batch) {
            const CampaignResult sliced =
                sliceResult(result, deltas, job.spec);
            job.response.set_value(resultResponseJson(
                job.id, campaignToJson(sliced)));
        }
    } catch (const std::exception &e) {
        // Executor-level failures (cell-level faults land in the
        // result, not here) fail the batch's requests, not the daemon.
        for (Job &job : batch)
            job.response.set_value(errorResponseJson(
                job.id, ErrorCode::Internal, e.what()));
    }
}

void
Server::metricsLoop()
{
    const auto interval = std::chrono::duration<double, std::milli>(
        config_.metricsIntervalMs);
    std::unique_lock<std::mutex> lock(stopMutex_);
    for (;;) {
        const bool stopping = stopCv_.wait_for(
            lock, interval, [this] { return stopRequested_; });
        lock.unlock();
        obs::writeMetricsJson(config_.metricsOut,
                              obs::MetricsRegistry::global().snapshot());
        lock.lock();
        if (stopping)
            return;
    }
}

JsonValue
Server::statsJson() const
{
    JsonValue stats = JsonValue::object();
    stats.set("connections",
              static_cast<long long>(connectionsAccepted_.load()));
    stats.set("dropped_connections",
              static_cast<long long>(droppedConnections_.load()));
    stats.set("requests", static_cast<long long>(requests_.load()));
    stats.set("characterizations",
              static_cast<long long>(characterizations_.load()));
    stats.set("rejected_queue_full",
              static_cast<long long>(rejectedQueueFull_.load()));
    stats.set("rejected_draining",
              static_cast<long long>(rejectedDraining_.load()));
    stats.set("bad_requests",
              static_cast<long long>(badRequests_.load()));
    stats.set("batches", static_cast<long long>(batches_.load()));
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stats.set("queue_depth",
                  static_cast<long long>(queue_.size()));
        stats.set("max_queue",
                  static_cast<long long>(config_.maxQueue));
    }
    stats.set("jobs", static_cast<long long>(executor_->jobs()));
    stats.set("cached_models",
              static_cast<long long>(executor_->cachedModels()));

    const TraceCacheStats cache = repo_.stats();
    JsonValue cache_json = JsonValue::object();
    cache_json.set("lookups", static_cast<long long>(cache.lookups));
    cache_json.set("memory_hits",
                   static_cast<long long>(cache.memoryHits));
    cache_json.set("disk_loads",
                   static_cast<long long>(cache.diskLoads));
    cache_json.set("disk_stores",
                   static_cast<long long>(cache.diskStores));
    cache_json.set("disk_corrupt",
                   static_cast<long long>(cache.diskCorrupt));
    cache_json.set("simulations",
                   static_cast<long long>(cache.simulations));
    cache_json.set("evictions",
                   static_cast<long long>(cache.evictions));
    cache_json.set("resident_traces",
                   static_cast<long long>(repo_.residentTraces()));
    cache_json.set("resident_bytes",
                   static_cast<long long>(repo_.residentBytes()));
    cache_json.set("budget_bytes",
                   static_cast<long long>(repo_.memoryBudgetBytes()));
    stats.set("cache", std::move(cache_json));
    return stats;
}

} // namespace serve
} // namespace didt
