#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/scoped_timer.hh"
#include "runner/plan.hh"
#include "runner/result_json.hh"
#include "serve/batch.hh"
#include "util/logging.hh"
#include "verify/failpoint.hh"

namespace didt
{
namespace serve
{

namespace
{

/** Daemon-level metrics (sidecar only; stats responses use the
 *  server's own atomics so they survive registry resets). */
struct ServeMetrics
{
    obs::Counter connections;
    obs::Counter requests;
    obs::Counter rejected;
    obs::Counter badRequests;
    obs::Counter batches;
    obs::Gauge queueDepth;
    obs::Histogram requestMs;
    obs::Histogram queueMs;
    obs::Histogram mergeMs;
    obs::Histogram executeMs;
    obs::Histogram serializeMs;
};

ServeMetrics &
serveMetrics()
{
    auto &registry = obs::MetricsRegistry::global();
    static ServeMetrics metrics{
        registry.counter("serve.connections"),
        registry.counter("serve.requests"),
        registry.counter("serve.rejected"),
        registry.counter("serve.bad_requests"),
        registry.counter("serve.batches"),
        registry.gauge("serve.queue_depth"),
        registry.histogram("serve.request_ms"),
        registry.histogram("serve.queue_ms"),
        registry.histogram("serve.merge_ms"),
        registry.histogram("serve.execute_ms"),
        registry.histogram("serve.serialize_ms"),
    };
    return metrics;
}

double
millisBetween(std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

/** Request id as it appears in event details ("-" when anonymous). */
std::string
eventId(const std::string &id)
{
    return id.empty() ? "-" : id;
}

/** The optional "timings" sibling of a result response. */
JsonValue
requestTimingsJson(double queueMs, double mergeMs, double executeMs,
                   double serializeMs, const TraceCacheStats &cache)
{
    JsonValue timings = JsonValue::object();
    timings.set("queue_ms", queueMs);
    timings.set("merge_ms", mergeMs);
    timings.set("execute_ms", executeMs);
    timings.set("serialize_ms", serializeMs);
    JsonValue cache_json = JsonValue::object();
    cache_json.set("lookups", static_cast<long long>(cache.lookups));
    cache_json.set("memory_hits",
                   static_cast<long long>(cache.memoryHits));
    cache_json.set("disk_loads",
                   static_cast<long long>(cache.diskLoads));
    cache_json.set("simulations",
                   static_cast<long long>(cache.simulations));
    timings.set("cache", std::move(cache_json));
    return timings;
}

/** EventLog observer for fired failpoints (registered in start()). */
void
failPointFired(void *state, std::string_view site, std::string_view key)
{
    auto *events = static_cast<obs::EventLog *>(state);
    std::string detail(site);
    if (!key.empty()) {
        detail += " key=";
        detail += key;
    }
    events->append("failpoint_fired", std::move(detail));
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
bindUnixListener(const std::string &path, int *out_fd,
                 std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *error = "unix socket path too long: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str()); // replace a stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        *error = "cannot listen on " + path + ": " +
                 std::strerror(errno);
        ::close(fd);
        return false;
    }
    *out_fd = fd;
    return true;
}

bool
bindTcpListener(const std::string &host, int port, int *out_fd,
                int *bound_port, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "invalid TCP bind address: " + host;
        return false;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        *error = "cannot listen on " + host + ":" +
                 std::to_string(port) + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        *bound_port = ntohs(bound.sin_port);
    *out_fd = fd;
    return true;
}

} // namespace

Server::Server(const ExperimentSetup &setup, ServerConfig config)
    : config_(std::move(config)), repo_(setup, config_.cacheDir),
      executor_(
          std::make_unique<Executor>(setup, repo_, config_.jobs)),
      events_(config_.eventCapacity)
{
    repo_.setMemoryBudgetBytes(config_.cacheBytes);
}

Server::~Server()
{
    if (started_) {
        requestStop();
        wait();
    }
    closeFd(wakePipe_[0]);
    closeFd(wakePipe_[1]);
}

bool
Server::start(std::string *error)
{
    if (config_.unixPath.empty() && config_.tcpPort < 0) {
        *error = "no listener configured (need a unix path or a TCP "
                 "port)";
        return false;
    }
    if (::pipe(wakePipe_) < 0) {
        *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (!config_.unixPath.empty() &&
        !bindUnixListener(config_.unixPath, &unixFd_, error))
        return false;
    if (config_.tcpPort >= 0 &&
        !bindTcpListener(config_.tcpHost, config_.tcpPort, &tcpFd_,
                         &boundTcpPort_, error)) {
        closeFd(unixFd_);
        return false;
    }

    started_ = true;
    // Fired failpoints become ring events. Process-global: the last
    // started server owns the observer (tests run one live daemon at
    // a time); wait() removes it.
    verify::setFailPointObserver(&failPointFired, &events_);
    acceptor_ = std::thread([this] { acceptorLoop(); });
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
    if (!config_.metricsOut.empty())
        metricsThread_ = std::thread([this] { metricsLoop(); });
    return true;
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_)
            return;
        draining_ = true;
    }
    drainingFlag_.store(true, std::memory_order_relaxed);
    queueCv_.notify_all();
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
    // Wake the acceptor's poll; a failed write means the pipe is gone
    // (already shut down) and the acceptor is no longer polling.
    const char byte = 1;
    if (wakePipe_[1] >= 0)
        (void)!::write(wakePipe_[1], &byte, 1);
    // Unblock idle connection reads; in-flight responses still write.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (Connection &conn : connections_)
        if (conn.fd >= 0)
            ::shutdown(conn.fd, SHUT_RD);
}

void
Server::wait()
{
    if (!started_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    // The dispatcher drains every admitted job before exiting, which
    // unblocks the connection threads waiting on responses.
    if (dispatcher_.joinable())
        dispatcher_.join();
    {
        // Splice the list out and join without the lock: an exiting
        // connection thread takes connMutex_ to close its fd, so
        // joining it while holding the lock would deadlock. Splicing
        // keeps the Connection nodes at stable addresses for the
        // threads still running their epilogue.
        std::list<Connection> remaining;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            remaining.splice(remaining.begin(), connections_);
        }
        for (Connection &conn : remaining)
            if (conn.thread.joinable())
                conn.thread.join();
    }
    if (metricsThread_.joinable())
        metricsThread_.join();
    verify::setFailPointObserver(nullptr, nullptr);
    closeFd(unixFd_);
    closeFd(tcpFd_);
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
    // Final metrics rewrite after the drain settled every counter —
    // the interval thread's last write may predate the tail of the
    // drain, and the operator wants the sidecar to describe the whole
    // run once the process exits.
    if (!config_.metricsOut.empty())
        obs::writeMetricsJson(config_.metricsOut,
                              obs::MetricsRegistry::global().snapshot());
    started_ = false;
}

void
Server::reapConnectionsLocked()
{
    for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->done.load(std::memory_order_acquire)) {
            if (it->thread.joinable())
                it->thread.join();
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptorLoop()
{
    std::vector<pollfd> fds;
    if (unixFd_ >= 0)
        fds.push_back({unixFd_, POLLIN, 0});
    if (tcpFd_ >= 0)
        fds.push_back({tcpFd_, POLLIN, 0});
    fds.push_back({wakePipe_[0], POLLIN, 0});

    for (;;) {
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            if (draining_)
                return;
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            didt_warn("didt_serve acceptor poll failed: ",
                      std::strerror(errno));
            return;
        }
        for (const pollfd &pfd : fds) {
            if (!(pfd.revents & POLLIN))
                continue;
            if (pfd.fd == wakePipe_[0])
                continue; // drained via the draining_ check above
            const int client =
                ::accept4(pfd.fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (client < 0)
                continue;
            if (DIDT_FAILPOINT("serve.accept")) {
                // An injected accept failure models resource
                // exhaustion: the connection is dropped, the daemon
                // keeps serving everyone else.
                droppedConnections_.fetch_add(1);
                ::close(client);
                continue;
            }
            connectionsAccepted_.fetch_add(1);
            serveMetrics().connections.add(1);
            std::lock_guard<std::mutex> lock(connMutex_);
            reapConnectionsLocked();
            connections_.emplace_back();
            Connection &conn = connections_.back();
            conn.fd = client;
            conn.thread =
                std::thread([this, &conn] { connectionLoop(&conn); });
        }
    }
}

void
Server::connectionLoop(Connection *conn)
{
    const int fd = conn->fd;
    activeConnections_.fetch_add(1);
    for (;;) {
        std::string payload;
        std::string frame_error;
        const FrameStatus status = readFrame(
            fd, &payload, config_.maxFrameBytes, &frame_error);
        if (status == FrameStatus::Closed)
            break;
        if (status == FrameStatus::Malformed ||
            status == FrameStatus::Oversized) {
            // The stream is poisoned: answer once, then hang up.
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            events_.append("bad_request", frame_error);
            (void)writeFrame(fd,
                             errorResponseJson("",
                                               ErrorCode::BadRequest,
                                               frame_error));
            break;
        }
        if (status != FrameStatus::Ok)
            break; // Truncated / IoError: nothing sane to answer on

        requests_.fetch_add(1);
        serveMetrics().requests.add(1);

        std::string response;
        Request request;
        std::string parse_error;
        if (DIDT_FAILPOINT("serve.decode")) {
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            events_.append("bad_request",
                           "injected fault (serve.decode)");
            response = errorResponseJson(
                "", ErrorCode::BadRequest,
                "injected fault (serve.decode)");
        } else if (!parseRequest(payload, &request, &parse_error)) {
            badRequests_.fetch_add(1);
            serveMetrics().badRequests.add(1);
            events_.append("bad_request", parse_error);
            response = errorResponseJson(
                request.id, ErrorCode::BadRequest, parse_error);
        } else if (request.type == RequestType::Watch) {
            // The stream writes its own frames; when it ends because
            // the peer sent another request, that frame is still
            // unread and the next loop iteration answers it.
            if (!streamWatch(fd, request))
                break;
            continue;
        } else {
            // Root span of the request's trace tree: the context is
            // installed first so the span carries the request id, and
            // the span then parents everything the request does
            // (queue wait, batch, cells, serialize) — including work
            // on dispatcher/pool threads, via Job::ctx.
            obs::ScopedTraceContext request_scope(
                {0, request.id, {}});
            obs::ScopedTimer timer("request", serveMetrics().requestMs,
                                   nullptr, "serve");
            switch (request.type) {
            case RequestType::Ping:
                response = pongResponseJson(request.id);
                break;
            case RequestType::Stats:
                response =
                    request.wantPrometheus
                        ? statsPrometheusResponseJson(
                              request.id,
                              obs::prometheusText(
                                  obs::MetricsRegistry::global()
                                      .snapshot()))
                        : statsResponseJson(request.id, statsJson());
                break;
            case RequestType::Events:
                response = eventsResponseJson(
                    request.id,
                    events_.since(request.eventsAfter,
                                  request.eventsLimit));
                break;
            case RequestType::Characterize:
                response = serveCharacterize(request);
                break;
            case RequestType::Watch:
                break; // handled above
            }
        }
        if (writeFrame(fd, response) != FrameStatus::Ok)
            break;
    }
    activeConnections_.fetch_sub(1);
    {
        // Close under the lock so requestStop() never shuts down a
        // reused descriptor.
        std::lock_guard<std::mutex> lock(connMutex_);
        ::close(fd);
        conn->fd = -1;
    }
    conn->done.store(true, std::memory_order_release);
}

std::string
Server::serveCharacterize(const Request &request)
{
    std::future<std::string> pending;
    std::string key = batchKey(request.spec);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_) {
            rejectedDraining_.fetch_add(1);
            serveMetrics().rejected.add(1);
            events_.append("request_rejected",
                           eventId(request.id) + " shutting_down");
            return errorResponseJson(request.id,
                                     ErrorCode::ShuttingDown,
                                     "daemon is draining");
        }
        if (queue_.size() >= config_.maxQueue) {
            rejectedQueueFull_.fetch_add(1);
            serveMetrics().rejected.add(1);
            events_.append("request_rejected",
                           eventId(request.id) + " queue_full");
            return errorResponseJson(
                request.id, ErrorCode::QueueFull,
                "admission queue is full (" +
                    std::to_string(queue_.size()) +
                    " queued); retry later");
        }
        Job job;
        job.id = request.id;
        job.spec = request.spec;
        job.key = std::move(key);
        job.admitted = Clock::now();
        job.wantTimings = request.wantTimings;
        // The connection thread's context: parentSpan is the request's
        // root span, so dispatcher-side spans nest under it.
        job.ctx = obs::currentTraceContext();
        pending = job.response.get_future();
        events_.append("request_admitted",
                       eventId(request.id) + " key=" + job.key);
        queue_.push_back(std::move(job));
        serveMetrics().queueDepth.record(
            static_cast<double>(queue_.size()));
        characterizations_.fetch_add(1);
    }
    queueCv_.notify_one();
    return pending.get();
}

bool
Server::streamWatch(int fd, const Request &request)
{
    watchers_.fetch_add(1);
    auto &registry = obs::MetricsRegistry::global();
    obs::MetricsSnapshot prev = registry.snapshot();
    TraceCacheStats prevCache = repo_.stats();
    Clock::time_point lastTick = Clock::now();
    std::uint64_t seq = 0;
    bool alive = true;

    // First frame immediately (zero-interval deltas), then one per
    // tick: a subscriber sees current state without waiting a period.
    for (;;) {
        if (drainingFlag_.load(std::memory_order_relaxed))
            break;
        obs::MetricsSnapshot current = registry.snapshot();
        const obs::MetricsSnapshot delta =
            obs::diffSnapshots(prev, current);
        const TraceCacheStats cache = repo_.stats();
        TraceCacheStats cacheDelta;
        cacheDelta.lookups = cache.lookups - prevCache.lookups;
        cacheDelta.memoryHits = cache.memoryHits - prevCache.memoryHits;
        cacheDelta.diskLoads = cache.diskLoads - prevCache.diskLoads;
        cacheDelta.simulations =
            cache.simulations - prevCache.simulations;
        const Clock::time_point now = Clock::now();
        const double elapsedMs = millisBetween(lastTick, now);

        JsonValue deltaDoc = delta.toJson();
        JsonValue deltaMetrics;
        if (const JsonValue *metrics = deltaDoc.find("metrics"))
            deltaMetrics = *metrics;
        else
            deltaMetrics = JsonValue::array();
        const std::string frame = watchFrameJson(
            request.id, ++seq,
            watchStatsJson(elapsedMs, current, delta, cacheDelta),
            std::move(deltaMetrics));
        if (writeFrame(fd, frame) != FrameStatus::Ok) {
            alive = false;
            break;
        }
        prev = std::move(current);
        prevCache = cache;
        lastTick = now;
        if (request.watchCount != 0 && seq >= request.watchCount)
            break;

        // Sleep for the tick period, but wake when the peer sends a
        // frame (unsubscribe: the connection loop reads it next) or
        // hangs up. requestStop()'s shutdown(SHUT_RD) also makes the
        // fd readable, ending the stream at drain.
        pollfd pfd{fd, POLLIN, 0};
        const int timeoutMs = std::max(
            1, static_cast<int>(request.watchIntervalMs));
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            alive = false;
            break;
        }
        if (ready > 0)
            break; // readable: next request, EOF, or drain shutdown
    }
    watchers_.fetch_sub(1);
    return alive;
}

JsonValue
Server::watchStatsJson(double elapsedMs,
                       const obs::MetricsSnapshot &current,
                       const obs::MetricsSnapshot &delta,
                       const TraceCacheStats &cacheDelta) const
{
    JsonValue stats = JsonValue::object();
    stats.set("elapsed_ms", elapsedMs);
    stats.set("active_connections",
              static_cast<long long>(activeConnections_.load()));
    stats.set("watchers", static_cast<long long>(watchers_.load()));
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stats.set("queue_depth",
                  static_cast<long long>(queue_.size()));
    }
    stats.set("requests", static_cast<long long>(requests_.load()));
    stats.set("characterizations",
              static_cast<long long>(characterizations_.load()));
    stats.set("batches", static_cast<long long>(batches_.load()));

    const obs::MetricSnapshot *cells = current.find("campaign.cells");
    stats.set("cells_done",
              static_cast<long long>(cells ? cells->value : 0.0));
    const obs::MetricSnapshot *cellsDelta = delta.find("campaign.cells");
    const double cellsPerSec =
        (cellsDelta && elapsedMs > 0.0)
            ? cellsDelta->value * 1000.0 / elapsedMs
            : 0.0;
    stats.set("cells_per_sec", cellsPerSec);

    // Interval hit rate when the tick saw traffic; lifetime otherwise.
    const TraceCacheStats lifetime = repo_.stats();
    double hitRate = 0.0;
    if (cacheDelta.lookups > 0)
        hitRate = static_cast<double>(cacheDelta.memoryHits) /
                  static_cast<double>(cacheDelta.lookups);
    else if (lifetime.lookups > 0)
        hitRate = static_cast<double>(lifetime.memoryHits) /
                  static_cast<double>(lifetime.lookups);
    stats.set("cache_hit_rate", hitRate);

    const obs::MetricSnapshot *requestMs =
        current.find("serve.request_ms");
    stats.set("request_ms_p50",
              requestMs ? requestMs->histogram.quantile(0.5) : 0.0);
    stats.set("request_ms_p99",
              requestMs ? requestMs->histogram.quantile(0.99) : 0.0);
    return stats;
}

void
Server::dispatcherLoop()
{
    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty()) {
                if (draining_)
                    return;
                continue;
            }
            // Take the head, then every queued job that can batch
            // with it (first-come order preserved within the batch).
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            const std::string &key = batch.front().key;
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->key == key) {
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
            serveMetrics().queueDepth.record(
                static_cast<double>(queue_.size()));
        }
        runBatch(std::move(batch));
    }
}

void
Server::runBatch(std::vector<Job> batch)
{
    const Clock::time_point popped = Clock::now();
    obs::TraceEventSink &sink = obs::TraceEventSink::global();
    const std::uint64_t batchNumber = batches_.fetch_add(1) + 1;
    serveMetrics().batches.add(1);
    const std::string batchId =
        "batch-" + std::to_string(batchNumber);
    const Job &lead = batch.front();
    events_.append("batch_formed",
                   batchId + " size=" + std::to_string(batch.size()) +
                       " key=" + lead.key);

    // Queue-wait attribution: one value per member, measured from its
    // own admission to this pop. Each request's queue_wait span hangs
    // off that request's root span, not the batch.
    std::vector<double> queueMs(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        queueMs[i] = millisBetween(batch[i].admitted, popped);
        serveMetrics().queueMs.observe(queueMs[i]);
        if (sink.enabled())
            sink.record("queue_wait", "serve", batch[i].admitted,
                        popped, obs::newSpanId(),
                        batch[i].ctx.parentSpan,
                        batch[i].ctx.requestId, batchId);
    }

    // The batch span parents the merge/execute phases and — through
    // ExecutionHooks::traceContext — the executor's sweep and cell
    // spans; it itself hangs off the lead request's root span.
    const std::uint64_t batchSpan =
        sink.enabled() ? obs::newSpanId() : 0;
    obs::ScopedTraceContext batch_scope(
        {batchSpan, lead.ctx.requestId, batchId});

    std::vector<CampaignSpec> specs;
    specs.reserve(batch.size());
    for (const Job &job : batch)
        specs.push_back(job.spec);

    try {
        const Clock::time_point mergeStart = Clock::now();
        const CampaignSpec merged = mergeSpecs(specs);
        const CampaignPlan plan = buildCampaignPlan(merged);
        const Clock::time_point mergeEnd = Clock::now();
        const double mergeMs = millisBetween(mergeStart, mergeEnd);
        serveMetrics().mergeMs.observe(mergeMs);
        if (batchSpan != 0)
            sink.record("merge", "serve", mergeStart, mergeEnd,
                        obs::newSpanId(), batchSpan,
                        lead.ctx.requestId, batchId);

        std::vector<TraceCacheStats> deltas;
        ExecutionHooks hooks;
        hooks.cellCacheDeltas = &deltas;
        hooks.traceContext = obs::currentTraceContext();
        const Clock::time_point executeStart = Clock::now();
        const CampaignResult result = executor_->run(plan, hooks);
        const Clock::time_point executeEnd = Clock::now();
        const double executeMs =
            millisBetween(executeStart, executeEnd);
        serveMetrics().executeMs.observe(executeMs);
        if (batchSpan != 0)
            sink.record("execute", "serve", executeStart, executeEnd,
                        obs::newSpanId(), batchSpan,
                        lead.ctx.requestId, batchId);

        for (std::size_t i = 0; i < batch.size(); ++i) {
            Job &job = batch[i];
            const Clock::time_point serializeStart = Clock::now();
            const CampaignResult sliced =
                sliceResult(result, deltas, job.spec);
            JsonValue resultJson = campaignToJson(sliced);
            const Clock::time_point serializeEnd = Clock::now();
            const double serializeMs =
                millisBetween(serializeStart, serializeEnd);
            serveMetrics().serializeMs.observe(serializeMs);
            if (sink.enabled())
                sink.record("serialize", "serve", serializeStart,
                            serializeEnd, obs::newSpanId(),
                            job.ctx.parentSpan, job.ctx.requestId,
                            batchId);
            // Log completion before releasing the response so a client
            // that has seen its result always finds the event on a
            // subsequent `events` query (matches the failure path).
            events_.append("request_completed",
                           eventId(job.id) + " " + batchId);
            if (job.wantTimings) {
                const JsonValue timings = requestTimingsJson(
                    queueMs[i], mergeMs, executeMs, serializeMs,
                    sliced.cacheStats);
                job.response.set_value(resultResponseJson(
                    job.id, std::move(resultJson), &timings));
            } else {
                job.response.set_value(resultResponseJson(
                    job.id, std::move(resultJson)));
            }
        }
    } catch (const std::exception &e) {
        // Executor-level failures (cell-level faults land in the
        // result, not here) fail the batch's requests, not the daemon.
        for (Job &job : batch) {
            events_.append("request_failed",
                           eventId(job.id) + " " + std::string(e.what()));
            job.response.set_value(errorResponseJson(
                job.id, ErrorCode::Internal, e.what()));
        }
    }
    if (batchSpan != 0)
        sink.record("batch", "serve", popped, Clock::now(), batchSpan,
                    lead.ctx.parentSpan, lead.ctx.requestId, batchId);
}

void
Server::metricsLoop()
{
    const auto interval = std::chrono::duration<double, std::milli>(
        config_.metricsIntervalMs);
    std::unique_lock<std::mutex> lock(stopMutex_);
    for (;;) {
        const bool stopping = stopCv_.wait_for(
            lock, interval, [this] { return stopRequested_; });
        lock.unlock();
        obs::writeMetricsJson(config_.metricsOut,
                              obs::MetricsRegistry::global().snapshot());
        lock.lock();
        if (stopping)
            return;
    }
}

JsonValue
Server::statsJson() const
{
    JsonValue stats = JsonValue::object();
    stats.set("connections",
              static_cast<long long>(connectionsAccepted_.load()));
    stats.set("dropped_connections",
              static_cast<long long>(droppedConnections_.load()));
    stats.set("requests", static_cast<long long>(requests_.load()));
    stats.set("characterizations",
              static_cast<long long>(characterizations_.load()));
    stats.set("rejected_queue_full",
              static_cast<long long>(rejectedQueueFull_.load()));
    stats.set("rejected_draining",
              static_cast<long long>(rejectedDraining_.load()));
    stats.set("bad_requests",
              static_cast<long long>(badRequests_.load()));
    stats.set("batches", static_cast<long long>(batches_.load()));
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stats.set("queue_depth",
                  static_cast<long long>(queue_.size()));
        stats.set("max_queue",
                  static_cast<long long>(config_.maxQueue));
    }
    stats.set("active_connections",
              static_cast<long long>(activeConnections_.load()));
    stats.set("watchers", static_cast<long long>(watchers_.load()));
    stats.set("events_logged",
              static_cast<long long>(events_.appended()));
    stats.set("events_dropped",
              static_cast<long long>(events_.dropped()));
    stats.set("jobs", static_cast<long long>(executor_->jobs()));
    stats.set("cached_models",
              static_cast<long long>(executor_->cachedModels()));

    const TraceCacheStats cache = repo_.stats();
    JsonValue cache_json = JsonValue::object();
    cache_json.set("lookups", static_cast<long long>(cache.lookups));
    cache_json.set("memory_hits",
                   static_cast<long long>(cache.memoryHits));
    cache_json.set("disk_loads",
                   static_cast<long long>(cache.diskLoads));
    cache_json.set("disk_stores",
                   static_cast<long long>(cache.diskStores));
    cache_json.set("disk_corrupt",
                   static_cast<long long>(cache.diskCorrupt));
    cache_json.set("simulations",
                   static_cast<long long>(cache.simulations));
    cache_json.set("evictions",
                   static_cast<long long>(cache.evictions));
    cache_json.set("resident_traces",
                   static_cast<long long>(repo_.residentTraces()));
    cache_json.set("resident_bytes",
                   static_cast<long long>(repo_.residentBytes()));
    cache_json.set("budget_bytes",
                   static_cast<long long>(repo_.memoryBudgetBytes()));
    stats.set("cache", std::move(cache_json));
    return stats;
}

} // namespace serve
} // namespace didt
