/**
 * @file
 * Campaign-request batching for the didt_serve daemon.
 *
 * Requests that share one analysis configuration (window, levels,
 * basis, thresholds, correlation flag, instructions, seed, warmup
 * trim) differ only in which (benchmark, impedance scale) cells they
 * want, so the dispatcher merges them into a single campaign whose
 * cell set is the union and runs it once — one calibration, one trace
 * fetch per distinct workload, shared across the batch. Each request's
 * own result is then sliced back out of the merged run.
 *
 * Slicing preserves the daemon's byte-identity contract: a cell's
 * value depends only on the spec, never on what else ran beside it, so
 * the sliced document equals what a standalone didt_campaign run of
 * the request's spec writes. Cache traffic is attributed from the
 * executor's per-cell deltas; a cell wanted by several requests of one
 * batch counts toward each of them (each request's cache section
 * reports what serving it alone would have cost at most).
 */

#ifndef DIDT_SERVE_BATCH_HH
#define DIDT_SERVE_BATCH_HH

#include <string>
#include <vector>

#include "runner/campaign.hh"
#include "runner/trace_repository.hh"

namespace didt
{
namespace serve
{

/**
 * Deterministic identity of a spec's analysis configuration: two specs
 * are batchable iff their keys compare equal. Doubles are rendered
 * with jsonNumber so the key is exact, not approximate.
 */
std::string batchKey(const CampaignSpec &spec);

/**
 * Merge batchable specs into one campaign spec whose profile and
 * scale lists are the first-appearance-order unions of the inputs
 * (profiles materialized through effectiveProfiles). Requires at
 * least one spec; every spec must have an equal batchKey.
 */
CampaignSpec mergeSpecs(const std::vector<CampaignSpec> &specs);

/**
 * Slice one request's result out of a merged run.
 *
 * @param merged result of executing mergeSpecs(...) output
 * @param cell_deltas the executor's per-cell cache deltas for the
 *        merged run (ExecutionHooks::cellCacheDeltas)
 * @param request_spec the original request
 * @return a result identical to running @p request_spec alone against
 *         the same repository state
 */
CampaignResult sliceResult(const CampaignResult &merged,
                           const std::vector<TraceCacheStats> &cell_deltas,
                           const CampaignSpec &request_spec);

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_BATCH_HH
