#include "serve/protocol.hh"

#include "runner/result_json.hh"

namespace didt
{
namespace serve
{

namespace
{

/** The shared {"schema", "type", "id"} response envelope. */
JsonValue
envelope(const char *type, const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", type);
    doc.set("id", id);
    return doc;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::QueueFull:
        return "queue_full";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

bool
parseRequest(const std::string &payload, Request *request,
             std::string *error)
{
    JsonValue doc;
    try {
        doc = parseJson(payload);
    } catch (const std::exception &e) {
        *error = std::string("invalid JSON: ") + e.what();
        return false;
    }
    if (doc.kind() != JsonValue::Kind::Object) {
        *error = "request must be a JSON object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->kind() != JsonValue::Kind::String ||
        schema->asString() != kProtocolSchema) {
        *error = std::string("request schema must be \"") +
                 kProtocolSchema + "\"";
        return false;
    }

    Request parsed;
    if (const JsonValue *id = doc.find("id")) {
        if (id->kind() != JsonValue::Kind::String) {
            *error = "request 'id' must be a string";
            return false;
        }
        parsed.id = id->asString();
    }

    const JsonValue *type = doc.find("type");
    if (!type || type->kind() != JsonValue::Kind::String) {
        *error = "request 'type' must be a string";
        return false;
    }
    const std::string &name = type->asString();
    if (name == "ping") {
        parsed.type = RequestType::Ping;
    } else if (name == "stats") {
        parsed.type = RequestType::Stats;
    } else if (name == "characterize") {
        parsed.type = RequestType::Characterize;
        const JsonValue *spec = doc.find("spec");
        if (!spec) {
            *error = "characterize request requires a 'spec' object";
            return false;
        }
        if (!campaignSpecFromJson(*spec, &parsed.spec, error))
            return false;
    } else {
        *error = "unknown request type '" + name + "'";
        return false;
    }
    *request = std::move(parsed);
    return true;
}

std::string
characterizeRequestJson(const std::string &id, const JsonValue &spec)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "characterize");
    doc.set("id", id);
    doc.set("spec", spec);
    return doc.dump();
}

std::string
pingRequestJson(const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "ping");
    doc.set("id", id);
    return doc.dump();
}

std::string
statsRequestJson(const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "stats");
    doc.set("id", id);
    return doc.dump();
}

std::string
resultResponseJson(const std::string &id, JsonValue result)
{
    JsonValue doc = envelope("result", id);
    doc.set("result", std::move(result));
    return doc.dump();
}

std::string
pongResponseJson(const std::string &id)
{
    return envelope("pong", id).dump();
}

std::string
statsResponseJson(const std::string &id, JsonValue stats)
{
    JsonValue doc = envelope("stats", id);
    doc.set("stats", std::move(stats));
    return doc.dump();
}

std::string
errorResponseJson(const std::string &id, ErrorCode code,
                  const std::string &message)
{
    JsonValue doc = envelope("error", id);
    JsonValue err = JsonValue::object();
    err.set("code", errorCodeName(code));
    err.set("message", message);
    doc.set("error", std::move(err));
    return doc.dump();
}

} // namespace serve
} // namespace didt
