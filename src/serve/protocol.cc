#include "serve/protocol.hh"

#include "runner/result_json.hh"

namespace didt
{
namespace serve
{

namespace
{

/** The shared {"schema", "type", "id"} response envelope. */
JsonValue
envelope(const char *type, const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", type);
    doc.set("id", id);
    return doc;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::QueueFull:
        return "queue_full";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

bool
parseRequest(const std::string &payload, Request *request,
             std::string *error)
{
    JsonValue doc;
    try {
        doc = parseJson(payload);
    } catch (const std::exception &e) {
        *error = std::string("invalid JSON: ") + e.what();
        return false;
    }
    if (doc.kind() != JsonValue::Kind::Object) {
        *error = "request must be a JSON object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->kind() != JsonValue::Kind::String ||
        schema->asString() != kProtocolSchema) {
        *error = std::string("request schema must be \"") +
                 kProtocolSchema + "\"";
        return false;
    }

    Request parsed;
    if (const JsonValue *id = doc.find("id")) {
        if (id->kind() != JsonValue::Kind::String) {
            *error = "request 'id' must be a string";
            return false;
        }
        parsed.id = id->asString();
    }

    const JsonValue *type = doc.find("type");
    if (!type || type->kind() != JsonValue::Kind::String) {
        *error = "request 'type' must be a string";
        return false;
    }
    const std::string &name = type->asString();
    if (name == "ping") {
        parsed.type = RequestType::Ping;
    } else if (name == "stats") {
        parsed.type = RequestType::Stats;
        if (const JsonValue *format = doc.find("format")) {
            if (format->kind() != JsonValue::Kind::String ||
                (format->asString() != "json" &&
                 format->asString() != "prometheus")) {
                *error = "stats 'format' must be \"json\" or "
                         "\"prometheus\"";
                return false;
            }
            parsed.wantPrometheus = format->asString() == "prometheus";
        }
    } else if (name == "characterize") {
        parsed.type = RequestType::Characterize;
        const JsonValue *spec = doc.find("spec");
        if (!spec) {
            *error = "characterize request requires a 'spec' object";
            return false;
        }
        if (!campaignSpecFromJson(*spec, &parsed.spec, error))
            return false;
        if (const JsonValue *timings = doc.find("timings")) {
            if (timings->kind() != JsonValue::Kind::Bool) {
                *error = "characterize 'timings' must be a boolean";
                return false;
            }
            parsed.wantTimings = timings->asBool();
        }
    } else if (name == "watch") {
        parsed.type = RequestType::Watch;
        if (const JsonValue *interval = doc.find("interval_ms")) {
            if (interval->kind() != JsonValue::Kind::Number ||
                !(interval->asNumber() >= 10.0)) {
                *error = "watch 'interval_ms' must be a number >= 10";
                return false;
            }
            parsed.watchIntervalMs = interval->asNumber();
        }
        if (const JsonValue *count = doc.find("count")) {
            if (count->kind() != JsonValue::Kind::Number ||
                !(count->asNumber() >= 0.0)) {
                *error = "watch 'count' must be a number >= 0";
                return false;
            }
            parsed.watchCount =
                static_cast<std::uint64_t>(count->asNumber());
        }
    } else if (name == "events") {
        parsed.type = RequestType::Events;
        if (const JsonValue *after = doc.find("after")) {
            if (after->kind() != JsonValue::Kind::Number ||
                !(after->asNumber() >= 0.0)) {
                *error = "events 'after' must be a number >= 0";
                return false;
            }
            parsed.eventsAfter =
                static_cast<std::uint64_t>(after->asNumber());
        }
        if (const JsonValue *limit = doc.find("limit")) {
            if (limit->kind() != JsonValue::Kind::Number ||
                !(limit->asNumber() >= 0.0)) {
                *error = "events 'limit' must be a number >= 0";
                return false;
            }
            parsed.eventsLimit =
                static_cast<std::uint64_t>(limit->asNumber());
        }
    } else {
        *error = "unknown request type '" + name + "'";
        return false;
    }
    *request = std::move(parsed);
    return true;
}

std::string
characterizeRequestJson(const std::string &id, const JsonValue &spec,
                        bool timings)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "characterize");
    doc.set("id", id);
    doc.set("spec", spec);
    if (timings)
        doc.set("timings", true);
    return doc.dump();
}

std::string
pingRequestJson(const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "ping");
    doc.set("id", id);
    return doc.dump();
}

std::string
statsRequestJson(const std::string &id, bool prometheus)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "stats");
    doc.set("id", id);
    if (prometheus)
        doc.set("format", "prometheus");
    return doc.dump();
}

std::string
watchRequestJson(const std::string &id, double intervalMs,
                 std::uint64_t count)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "watch");
    doc.set("id", id);
    doc.set("interval_ms", intervalMs);
    doc.set("count", static_cast<long long>(count));
    return doc.dump();
}

std::string
eventsRequestJson(const std::string &id, std::uint64_t after,
                  std::uint64_t limit)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kProtocolSchema);
    doc.set("type", "events");
    doc.set("id", id);
    doc.set("after", static_cast<long long>(after));
    doc.set("limit", static_cast<long long>(limit));
    return doc.dump();
}

std::string
resultResponseJson(const std::string &id, JsonValue result,
                   const JsonValue *timings)
{
    JsonValue doc = envelope("result", id);
    doc.set("result", std::move(result));
    if (timings)
        doc.set("timings", *timings);
    return doc.dump();
}

std::string
pongResponseJson(const std::string &id)
{
    JsonValue doc = envelope("pong", id);
    JsonValue features = JsonValue::array();
    for (const char *feature : kProtocolFeatures)
        features.push(feature);
    doc.set("features", std::move(features));
    return doc.dump();
}

std::string
statsResponseJson(const std::string &id, JsonValue stats)
{
    JsonValue doc = envelope("stats", id);
    doc.set("stats", std::move(stats));
    return doc.dump();
}

std::string
statsPrometheusResponseJson(const std::string &id,
                            const std::string &text)
{
    JsonValue doc = envelope("stats", id);
    doc.set("prometheus", text);
    return doc.dump();
}

std::string
watchFrameJson(const std::string &id, std::uint64_t seq,
               JsonValue stats, JsonValue delta)
{
    JsonValue doc = envelope("watch", id);
    doc.set("seq", static_cast<long long>(seq));
    doc.set("stats", std::move(stats));
    doc.set("delta", std::move(delta));
    return doc.dump();
}

std::string
eventsResponseJson(const std::string &id,
                   const obs::EventLog::Query &query)
{
    JsonValue doc = envelope("events", id);
    JsonValue events = JsonValue::array();
    for (const obs::Event &event : query.events) {
        JsonValue e = JsonValue::object();
        e.set("seq", static_cast<long long>(event.seq));
        e.set("at_ms", event.atMs);
        e.set("type", event.type);
        e.set("detail", event.detail);
        events.push(std::move(e));
    }
    doc.set("events", std::move(events));
    doc.set("dropped", static_cast<long long>(query.dropped));
    doc.set("next", static_cast<long long>(query.next));
    return doc.dump();
}

std::string
errorResponseJson(const std::string &id, ErrorCode code,
                  const std::string &message)
{
    JsonValue doc = envelope("error", id);
    JsonValue err = JsonValue::object();
    err.set("code", errorCodeName(code));
    err.set("message", message);
    doc.set("error", std::move(err));
    return doc.dump();
}

} // namespace serve
} // namespace didt
