/**
 * @file
 * Blocking didt_serve client connection.
 *
 * One Client is one stream connection speaking didt-serve-v1 frames:
 * call() writes a request frame and blocks for the response frame.
 * Requests on one connection are served in order, so a client that
 * needs pipelining opens several connections. Used by the didt_client
 * tool and the serve tests; shares the frame codec (and therefore the
 * serve.read / serve.write failpoints) with the server.
 */

#ifndef DIDT_SERVE_CLIENT_HH
#define DIDT_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/frame.hh"

namespace didt
{
namespace serve
{

/** A connected didt_serve client. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to a Unix-domain daemon socket. */
    bool connectUnix(const std::string &path, std::string *error);

    /** Connect to a TCP daemon endpoint. */
    bool connectTcp(const std::string &host, int port,
                    std::string *error);

    /** True while the connection is open. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p request as one frame and block for the response frame.
     * False (with @p error set) on any transport failure; the
     * connection is closed and must be re-established.
     */
    bool call(const std::string &request, std::string *response,
              std::string *error,
              std::uint32_t max_frame = kDefaultMaxFrameBytes);

    /**
     * Send @p request as one frame without waiting for a response.
     * Used with receive() for streaming exchanges (watch frames),
     * where one request yields many response frames.
     */
    bool send(const std::string &request, std::string *error);

    /** Block for one response frame. False on any transport failure
     *  (connection closed) with @p error set. */
    bool receive(std::string *response, std::string *error,
                 std::uint32_t max_frame = kDefaultMaxFrameBytes);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd_ = -1;
};

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_CLIENT_HH
