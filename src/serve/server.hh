/**
 * @file
 * The didt_serve daemon core: characterization as a service.
 *
 * A Server owns one long-lived Executor (shared worker pool, shared
 * calibrated-model cache) and one long-lived TraceRepository (the
 * shared cross-request cache tier: byte-budgeted in-memory LRU plus
 * the optional disk tier), accepts didt-serve-v1 requests over Unix
 * and/or TCP stream sockets, and evaluates them through the same
 * plan/execute path as batch didt_campaign — so a served result is
 * byte-identical to a batch result for the same spec.
 *
 * Threading model:
 *  - an acceptor thread polls the listening sockets (plus a self-pipe
 *    for wakeups) and spawns one thread per connection;
 *  - connection threads read frames, answer ping/stats inline, and
 *    enqueue characterize requests on the bounded admission queue,
 *    blocking until the response is ready (each connection runs its
 *    requests in order and is the sole writer of its socket);
 *  - a dispatcher thread pops the queue, merges every batchable
 *    request it can see into one campaign (serve/batch.hh), runs it on
 *    the executor, and fulfills each request with its sliced result.
 *
 * Admission control: the queue is bounded by maxQueue; a request that
 * arrives when it is full is rejected immediately with the typed
 * queue_full error — backpressure is explicit, never an OOM or an
 * unbounded latency tail.
 *
 * Shutdown: requestStop() begins a graceful drain — listeners close,
 * idle connections are shut down, requests already admitted run to
 * completion and their responses are written, new requests are
 * rejected with shutting_down. wait() returns once everything is
 * joined; the process can then exit 0.
 *
 * Fault injection: the serve.accept / serve.read / serve.write /
 * serve.decode failpoints turn socket-layer faults into dropped
 * connections or per-request error responses; no failpoint crashes
 * the daemon.
 */

#ifndef DIDT_SERVE_SERVER_HH
#define DIDT_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/trace_event.hh"
#include "runner/executor.hh"
#include "runner/trace_repository.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "util/json.hh"

namespace didt
{
namespace serve
{

/** Everything configurable about one daemon instance. */
struct ServerConfig
{
    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /** TCP port; -1 disables the TCP listener, 0 binds ephemeral
     *  (read the bound port back with Server::tcpPort()). */
    int tcpPort = -1;

    /** TCP bind address. */
    std::string tcpHost = "127.0.0.1";

    /** Admission-queue capacity; a characterize request arriving when
     *  this many are queued is rejected with queue_full. */
    std::size_t maxQueue = 64;

    /** Trace-cache memory budget in bytes (0 = unlimited). */
    std::uint64_t cacheBytes = 0;

    /** Trace-cache directory ("" = no disk tier). */
    std::string cacheDir;

    /** Executor worker threads (0 = hardware concurrency). */
    std::size_t jobs = 0;

    /** Frame payload size limit. */
    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** When non-empty, a metrics JSON snapshot (didt-metrics-v1) is
     *  rewritten here every metricsIntervalMs and once on shutdown —
     *  live telemetry for an operator to watch. */
    std::string metricsOut;

    /** Telemetry rewrite period in milliseconds. */
    double metricsIntervalMs = 1000.0;

    /** Event-ring capacity: the newest this many daemon events are
     *  retained for `events` queries and the shutdown dump. */
    std::size_t eventCapacity = 1024;
};

/** The daemon: listeners + admission queue + dispatcher + executor. */
class Server
{
  public:
    Server(const ExperimentSetup &setup, ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the configured listeners and start the service threads.
     * False (with @p error set) when a socket cannot be bound; the
     * server is then inert and only needs destruction.
     */
    bool start(std::string *error);

    /** Begin a graceful drain (idempotent; callable from any thread,
     *  but not from a signal handler — signal handlers should set a
     *  flag and let the main loop call this). */
    void requestStop();

    /** Block until the drain completes and every thread is joined. */
    void wait();

    /** The TCP port actually bound (after start; -1 without TCP). */
    int tcpPort() const { return boundTcpPort_; }

    /** The shared execution engine. */
    Executor &executor() { return *executor_; }

    /** The shared trace repository. */
    TraceRepository &repository() { return repo_; }

    /** Daemon counters as the "stats" response payload. */
    JsonValue statsJson() const;

    /** The bounded daemon-event ring (admissions, batches, faults). */
    const obs::EventLog &events() const { return events_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One admitted characterize request awaiting execution. */
    struct Job
    {
        std::string id;
        CampaignSpec spec;
        std::string key; ///< batchKey(spec)
        std::promise<std::string> response;
        Clock::time_point admitted;  ///< queue-wait start
        bool wantTimings = false;    ///< echo a "timings" breakdown
        obs::TraceContext ctx;       ///< request span / id for nesting
    };

    /** One live client connection. */
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptorLoop();
    void connectionLoop(Connection *conn);
    void dispatcherLoop();
    void metricsLoop();

    /** Run one merged batch and fulfill every member's promise. */
    void runBatch(std::vector<Job> batch);

    /**
     * Admit a characterize request, block until served, and return the
     * response payload (a result or a typed error; never throws).
     */
    std::string serveCharacterize(const Request &request);

    /**
     * Serve a watch subscription on @p fd: send one live-stats frame
     * per tick until the frame budget is spent, the peer sends another
     * frame (left unread for the connection loop — that request
     * unsubscribes and is answered normally), the peer hangs up, or
     * the daemon drains. False when the connection is dead.
     */
    bool streamWatch(int fd, const Request &request);

    /** The per-tick "stats" object of a watch frame. */
    JsonValue watchStatsJson(double elapsedMs,
                             const obs::MetricsSnapshot &current,
                             const obs::MetricsSnapshot &delta,
                             const TraceCacheStats &cacheDelta) const;

    /** Reap joined connection threads; under connMutex_. */
    void reapConnectionsLocked();

    const ServerConfig config_;
    TraceRepository repo_;
    std::unique_ptr<Executor> executor_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1};

    std::thread acceptor_;
    std::thread dispatcher_;
    std::thread metricsThread_;

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    bool draining_ = false;
    /** Mirrors draining_ for lock-free polls (watch ticks). */
    std::atomic<bool> drainingFlag_{false};

    std::mutex connMutex_;
    std::list<Connection> connections_;

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> characterizations_{0};
    std::atomic<std::uint64_t> rejectedQueueFull_{0};
    std::atomic<std::uint64_t> rejectedDraining_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> connectionsAccepted_{0};
    std::atomic<std::uint64_t> droppedConnections_{0};
    std::atomic<std::uint64_t> activeConnections_{0};
    std::atomic<std::uint64_t> watchers_{0};

    obs::EventLog events_;

    bool started_ = false;
};

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_SERVER_HH
