/**
 * @file
 * Wire framing for the didt_serve protocol.
 *
 * Every message on a didt_serve connection is one frame: a fixed
 * 12-byte header followed by a JSON payload.
 *
 *   offset  size  field
 *   0       4     magic "DSRV"
 *   4       2     protocol version, little-endian (currently 1)
 *   6       2     reserved, must be zero
 *   8       4     payload length in bytes, little-endian
 *
 * The codec is split into a pure buffer layer (encodeFrame /
 * decodeFrame — what the fuzz driver and golden tests exercise) and an
 * fd layer (readFrame / writeFrame) that adds blocking socket I/O and
 * the serve.read / serve.write failpoints. Decoding is strict: a bad
 * magic, an unsupported version, a non-zero reserved field, or a
 * payload length above the limit each poison the connection — framing
 * errors are not recoverable mid-stream, so the server answers with a
 * typed error frame when possible and closes.
 */

#ifndef DIDT_SERVE_FRAME_HH
#define DIDT_SERVE_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace didt
{
namespace serve
{

/** Frame header magic, on the wire in this byte order. */
inline constexpr char kFrameMagic[4] = {'D', 'S', 'R', 'V'};

/** Protocol version this build speaks. */
inline constexpr std::uint16_t kFrameVersion = 1;

/** Fixed header size in bytes. */
inline constexpr std::size_t kFrameHeaderBytes = 12;

/** Default payload size limit (16 MiB). */
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

/** Outcome of one frame read / decode. */
enum class FrameStatus
{
    Ok,        ///< a complete frame was decoded
    NeedMore,  ///< buffer holds only a frame prefix (decode only)
    Closed,    ///< peer closed cleanly between frames (read only)
    Truncated, ///< peer closed mid-frame
    Malformed, ///< bad magic, version, or reserved field
    Oversized, ///< payload length above the limit
    IoError,   ///< socket read/write failure (or injected fault)
};

/** Printable status name for diagnostics. */
const char *frameStatusName(FrameStatus status);

/** Encode @p payload as one frame (header + payload bytes). */
std::string encodeFrame(const std::string &payload);

/**
 * Decode one frame from the front of @p data.
 *
 * On Ok, *payload receives the payload bytes and *consumed the total
 * frame size. On NeedMore, *consumed is 0 and the caller should supply
 * more bytes. Any other status is a permanent decode failure for this
 * stream; *error (when non-null) describes it.
 */
FrameStatus decodeFrame(const char *data, std::size_t size,
                        std::string *payload, std::size_t *consumed,
                        std::uint32_t max_payload = kDefaultMaxFrameBytes,
                        std::string *error = nullptr);

/**
 * Read exactly one frame from @p fd (blocking). Distinguishes a clean
 * close between frames (Closed) from a close mid-frame (Truncated).
 * The serve.read failpoint turns the first byte read into an injected
 * IoError, modelling a connection reset.
 */
FrameStatus readFrame(int fd, std::string *payload,
                      std::uint32_t max_payload = kDefaultMaxFrameBytes,
                      std::string *error = nullptr);

/**
 * Write @p payload as one frame to @p fd (blocking, MSG_NOSIGNAL — a
 * vanished peer surfaces as IoError, never SIGPIPE). The serve.write
 * failpoint injects an IoError before any byte is sent.
 */
FrameStatus writeFrame(int fd, const std::string &payload,
                       std::string *error = nullptr);

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_FRAME_HH
