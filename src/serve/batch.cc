#include "serve/batch.hh"

#include <map>
#include <set>

#include "util/json.hh"
#include "util/logging.hh"

namespace didt
{
namespace serve
{

std::string
batchKey(const CampaignSpec &spec)
{
    std::string key;
    key += "w=" + std::to_string(spec.windowLength);
    key += ";l=" + std::to_string(spec.levels);
    key += ";b=" + spec.basis;
    key += ";lo=" + jsonNumber(spec.lowThreshold);
    key += ";hi=" + jsonNumber(spec.highThreshold);
    key += ";c=" + std::string(spec.useCorrelation ? "1" : "0");
    key += ";i=" + std::to_string(spec.instructions);
    key += ";s=" + std::to_string(spec.seed);
    key += ";t=" + std::to_string(spec.trimWarmup);
    return key;
}

CampaignSpec
mergeSpecs(const std::vector<CampaignSpec> &specs)
{
    if (specs.empty())
        didt_panic("mergeSpecs requires at least one spec");
    const std::string key = batchKey(specs.front());

    CampaignSpec merged = specs.front();
    merged.profiles.clear();
    merged.impedanceScales.clear();
    std::set<std::string> seen_profiles;
    std::set<std::uint64_t> seen_scales;
    for (const CampaignSpec &spec : specs) {
        if (batchKey(spec) != key)
            didt_panic("mergeSpecs called with incompatible specs");
        for (const BenchmarkProfile &profile : spec.effectiveProfiles())
            if (seen_profiles.insert(profile.name).second)
                merged.profiles.push_back(profile);
        for (double scale : spec.impedanceScales) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(scale));
            __builtin_memcpy(&bits, &scale, sizeof(bits));
            if (seen_scales.insert(bits).second)
                merged.impedanceScales.push_back(scale);
        }
    }
    return merged;
}

CampaignResult
sliceResult(const CampaignResult &merged,
            const std::vector<TraceCacheStats> &cell_deltas,
            const CampaignSpec &request_spec)
{
    // Index the merged run's cells by identity. Scales are keyed by
    // bit pattern — merging already deduplicated by bit pattern, so
    // lookup is exact.
    std::map<std::pair<std::string, std::uint64_t>, std::size_t> index;
    for (std::size_t i = 0; i < merged.cells.size(); ++i) {
        const CampaignCell &cell = merged.cells[i];
        std::uint64_t bits;
        __builtin_memcpy(&bits, &cell.impedanceScale, sizeof(bits));
        index.emplace(std::make_pair(cell.benchmark, bits), i);
    }

    CampaignResult result;
    result.spec = request_spec;
    result.spec.profiles = request_spec.effectiveProfiles();
    result.jobs = merged.jobs;
    result.interrupted = merged.interrupted;
    result.wallMillis = merged.wallMillis;
    result.calibrationMillis = merged.calibrationMillis;
    result.cells.reserve(result.spec.profiles.size() *
                         result.spec.impedanceScales.size());
    for (const BenchmarkProfile &profile : result.spec.profiles) {
        for (double scale : result.spec.impedanceScales) {
            std::uint64_t bits;
            __builtin_memcpy(&bits, &scale, sizeof(bits));
            const auto it =
                index.find(std::make_pair(profile.name, bits));
            if (it == index.end())
                didt_panic("merged campaign is missing cell ",
                           profile.name, "@", jsonNumber(scale));
            result.cells.push_back(merged.cells[it->second]);
            if (it->second < cell_deltas.size())
                result.cacheStats += cell_deltas[it->second];
        }
    }
    return result;
}

} // namespace serve
} // namespace didt
