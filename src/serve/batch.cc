#include "serve/batch.hh"

#include <map>
#include <set>
#include <tuple>

#include "util/json.hh"
#include "util/logging.hh"

namespace didt
{
namespace serve
{

std::string
batchKey(const CampaignSpec &spec)
{
    std::string key;
    key += "w=" + std::to_string(spec.windowLength);
    key += ";l=" + std::to_string(spec.levels);
    key += ";b=" + spec.basis;
    key += ";lo=" + jsonNumber(spec.lowThreshold);
    key += ";hi=" + jsonNumber(spec.highThreshold);
    key += ";c=" + std::string(spec.useCorrelation ? "1" : "0");
    key += ";i=" + std::to_string(spec.instructions);
    key += ";s=" + std::to_string(spec.seed);
    key += ";t=" + std::to_string(spec.trimWarmup);
    // Chip dimensions join the key only for chip sweeps, so every
    // single-core spec keeps its historical key (and merges with
    // requests from pre-chip clients). Chip sweeps merge only when
    // their core counts, mixes, and L2 model agree — the benchmark
    // and scale axes still merge freely.
    if (spec.isChipSweep()) {
        key += ";n=";
        for (std::size_t cores : spec.effectiveCoreCounts())
            key += std::to_string(cores) + ",";
        if (!spec.mixes.empty()) {
            key += ";m=";
            for (const std::string &mix : spec.mixes)
                key += mix + ",";
        }
        key += ";l2b=" + std::to_string(spec.l2Banks);
        key += ";l2p=" + std::to_string(spec.l2BankPenalty);
    }
    // Sampling dimensions join the key only for sampled sweeps (same
    // pattern as the chip block): sampling-off specs keep their
    // historical key, and a sampled request never merges with a
    // full-detail one.
    if (spec.isSampled()) {
        key += ";sd=" + std::to_string(spec.sampleDetail);
        key += ";ss=" + std::to_string(spec.sampleSkip);
        key += ";sw=" + std::to_string(spec.sampleWarmup);
    }
    // Monte Carlo dimensions likewise join only when the draw axis is
    // active: MC-off specs keep their historical key, and MC requests
    // merge only when draws, seed, and sigmas all agree (the drawn
    // networks are then identical across the batch).
    if (spec.isMonteCarlo()) {
        key += ";mcd=" + std::to_string(spec.mcDraws);
        key += ";mcs=" + std::to_string(spec.mcSeed);
        key += ";mcr=" + jsonNumber(spec.mcSigmaR);
        key += ";mcf=" + jsonNumber(spec.mcSigmaResonance);
        key += ";mcq=" + jsonNumber(spec.mcSigmaQ);
    }
    return key;
}

CampaignSpec
mergeSpecs(const std::vector<CampaignSpec> &specs)
{
    if (specs.empty())
        didt_panic("mergeSpecs requires at least one spec");
    const std::string key = batchKey(specs.front());

    CampaignSpec merged = specs.front();
    merged.profiles.clear();
    merged.impedanceScales.clear();
    std::set<std::string> seen_profiles;
    std::set<std::uint64_t> seen_scales;
    for (const CampaignSpec &spec : specs) {
        if (batchKey(spec) != key)
            didt_panic("mergeSpecs called with incompatible specs");
        // Under the mixes axis the mixes list (identical across the
        // batch, it is in the key) is the workload axis; profiles stay
        // empty rather than materializing the all-SPEC default.
        if (merged.mixes.empty())
            for (const BenchmarkProfile &profile :
                 spec.effectiveProfiles())
                if (seen_profiles.insert(profile.name).second)
                    merged.profiles.push_back(profile);
        for (double scale : spec.impedanceScales) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(scale));
            __builtin_memcpy(&bits, &scale, sizeof(bits));
            if (seen_scales.insert(bits).second)
                merged.impedanceScales.push_back(scale);
        }
    }
    return merged;
}

CampaignResult
sliceResult(const CampaignResult &merged,
            const std::vector<TraceCacheStats> &cell_deltas,
            const CampaignSpec &request_spec)
{
    // Index the merged run's cells by identity. Scales are keyed by
    // bit pattern — merging already deduplicated by bit pattern, so
    // lookup is exact. Cores joins the identity so a chip sweep's
    // cells never alias a uniprocessor cell of the same workload, and
    // the Monte Carlo draw index joins so each draw slices back to
    // itself (always 0 for MC-off cells, where it is inert).
    std::map<std::tuple<std::string, std::size_t, std::uint64_t,
                        std::size_t>,
             std::size_t>
        index;
    for (std::size_t i = 0; i < merged.cells.size(); ++i) {
        const CampaignCell &cell = merged.cells[i];
        std::uint64_t bits;
        __builtin_memcpy(&bits, &cell.impedanceScale, sizeof(bits));
        index.emplace(std::make_tuple(cell.benchmark, cell.cores, bits,
                                      cell.draw),
                      i);
    }

    CampaignResult result;
    result.spec = request_spec;
    if (request_spec.mixes.empty())
        result.spec.profiles = request_spec.effectiveProfiles();
    result.jobs = merged.jobs;
    result.interrupted = merged.interrupted;
    result.wallMillis = merged.wallMillis;
    result.calibrationMillis = merged.calibrationMillis;
    const std::size_t workloads = result.spec.mixes.empty()
                                      ? result.spec.profiles.size()
                                      : result.spec.mixes.size();
    const std::vector<std::size_t> &core_counts =
        result.spec.effectiveCoreCounts();
    const std::size_t draws = result.spec.drawCount();
    result.cells.reserve(workloads * core_counts.size() *
                         result.spec.impedanceScales.size() * draws);
    for (std::size_t wi = 0; wi < workloads; ++wi) {
        const std::string &workload =
            result.spec.mixes.empty() ? result.spec.profiles[wi].name
                                      : result.spec.mixes[wi];
        for (std::size_t cores : core_counts) {
            for (double scale : result.spec.impedanceScales) {
                std::uint64_t bits;
                __builtin_memcpy(&bits, &scale, sizeof(bits));
                for (std::size_t draw = 0; draw < draws; ++draw) {
                    const auto it = index.find(std::make_tuple(
                        workload, cores, bits, draw));
                    if (it == index.end())
                        didt_panic("merged campaign is missing cell ",
                                   workload, "@", jsonNumber(scale),
                                   "@c", cores, "@d", draw);
                    result.cells.push_back(merged.cells[it->second]);
                    if (it->second < cell_deltas.size())
                        result.cacheStats += cell_deltas[it->second];
                }
            }
        }
    }
    return result;
}

} // namespace serve
} // namespace didt
