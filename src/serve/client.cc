#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace didt
{
namespace serve
{

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connectUnix(const std::string &path, std::string *error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *error = "unix socket path too long: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *error = "cannot connect to " + path + ": " +
                 std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::connectTcp(const std::string &host, int port, std::string *error)
{
    close();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "invalid address: " + host;
        return false;
    }

    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *error = "cannot connect to " + host + ":" +
                 std::to_string(port) + ": " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::call(const std::string &request, std::string *response,
             std::string *error, std::uint32_t max_frame)
{
    return send(request, error) && receive(response, error, max_frame);
}

bool
Client::send(const std::string &request, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (writeFrame(fd_, request, error) != FrameStatus::Ok) {
        close();
        return false;
    }
    return true;
}

bool
Client::receive(std::string *response, std::string *error,
                std::uint32_t max_frame)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    const FrameStatus status =
        readFrame(fd_, response, max_frame, error);
    if (status != FrameStatus::Ok) {
        if (status == FrameStatus::Closed && error)
            *error = "connection closed by daemon";
        close();
        return false;
    }
    return true;
}

} // namespace serve
} // namespace didt
