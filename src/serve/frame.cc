#include "serve/frame.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

#include "verify/failpoint.hh"

namespace didt
{
namespace serve
{

namespace
{

std::uint16_t
readLe16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
readLe32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
}

/**
 * Validate a complete 12-byte header; on success *payload_length is
 * the announced payload size.
 */
FrameStatus
checkHeader(const unsigned char *header, std::uint32_t max_payload,
            std::uint32_t *payload_length, std::string *error)
{
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
        setError(error, "bad frame magic");
        return FrameStatus::Malformed;
    }
    const std::uint16_t version = readLe16(header + 4);
    if (version != kFrameVersion) {
        setError(error, "unsupported frame version " +
                            std::to_string(version));
        return FrameStatus::Malformed;
    }
    if (readLe16(header + 6) != 0) {
        setError(error, "non-zero reserved frame field");
        return FrameStatus::Malformed;
    }
    const std::uint32_t length = readLe32(header + 8);
    if (length > max_payload) {
        setError(error, "frame payload of " + std::to_string(length) +
                            " bytes exceeds the " +
                            std::to_string(max_payload) + " byte limit");
        return FrameStatus::Oversized;
    }
    *payload_length = length;
    return FrameStatus::Ok;
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
    case FrameStatus::Ok:
        return "ok";
    case FrameStatus::NeedMore:
        return "need-more";
    case FrameStatus::Closed:
        return "closed";
    case FrameStatus::Truncated:
        return "truncated";
    case FrameStatus::Malformed:
        return "malformed";
    case FrameStatus::Oversized:
        return "oversized";
    case FrameStatus::IoError:
        return "io-error";
    }
    return "unknown";
}

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    frame.append(kFrameMagic, sizeof(kFrameMagic));
    frame.push_back(static_cast<char>(kFrameVersion & 0xff));
    frame.push_back(static_cast<char>(kFrameVersion >> 8));
    frame.push_back('\0'); // reserved
    frame.push_back('\0');
    frame.push_back(static_cast<char>(length & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.append(payload);
    return frame;
}

FrameStatus
decodeFrame(const char *data, std::size_t size, std::string *payload,
            std::size_t *consumed, std::uint32_t max_payload,
            std::string *error)
{
    *consumed = 0;
    if (size < kFrameHeaderBytes)
        return FrameStatus::NeedMore;
    const unsigned char *header =
        reinterpret_cast<const unsigned char *>(data);
    std::uint32_t length = 0;
    const FrameStatus status =
        checkHeader(header, max_payload, &length, error);
    if (status != FrameStatus::Ok)
        return status;
    if (size < kFrameHeaderBytes + length)
        return FrameStatus::NeedMore;
    payload->assign(data + kFrameHeaderBytes, length);
    *consumed = kFrameHeaderBytes + length;
    return FrameStatus::Ok;
}

FrameStatus
readFrame(int fd, std::string *payload, std::uint32_t max_payload,
          std::string *error)
{
    if (DIDT_FAILPOINT("serve.read")) {
        setError(error, "injected fault (serve.read)");
        return FrameStatus::IoError;
    }

    unsigned char header[kFrameHeaderBytes];
    std::size_t have = 0;
    while (have < kFrameHeaderBytes) {
        const ssize_t n =
            ::recv(fd, header + have, kFrameHeaderBytes - have, 0);
        if (n == 0) {
            if (have == 0)
                return FrameStatus::Closed;
            setError(error, "connection closed mid-header");
            return FrameStatus::Truncated;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("recv: ") +
                                std::strerror(errno));
            return FrameStatus::IoError;
        }
        have += static_cast<std::size_t>(n);
    }

    std::uint32_t length = 0;
    const FrameStatus status =
        checkHeader(header, max_payload, &length, error);
    if (status != FrameStatus::Ok)
        return status;

    payload->resize(length);
    std::size_t got = 0;
    while (got < length) {
        const ssize_t n = ::recv(fd, &(*payload)[got], length - got, 0);
        if (n == 0) {
            setError(error, "connection closed mid-payload");
            return FrameStatus::Truncated;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("recv: ") +
                                std::strerror(errno));
            return FrameStatus::IoError;
        }
        got += static_cast<std::size_t>(n);
    }
    return FrameStatus::Ok;
}

FrameStatus
writeFrame(int fd, const std::string &payload, std::string *error)
{
    if (DIDT_FAILPOINT("serve.write")) {
        setError(error, "injected fault (serve.write)");
        return FrameStatus::IoError;
    }

    const std::string frame = encodeFrame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, std::string("send: ") +
                                std::strerror(errno));
            return FrameStatus::IoError;
        }
        sent += static_cast<std::size_t>(n);
    }
    return FrameStatus::Ok;
}

} // namespace serve
} // namespace didt
