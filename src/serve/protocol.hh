/**
 * @file
 * The didt-serve-v1 request/response schema.
 *
 * Frame payloads are JSON documents (util/json). Every request carries
 * the schema marker, a type, and a client-chosen id echoed back in the
 * response so clients can correlate:
 *
 *   {"schema": "didt-serve-v1", "type": "characterize",
 *    "id": "r1", "spec": { ...didt-campaign-v1 spec fields... }}
 *
 * Request types: "ping" (liveness), "stats" (daemon counters),
 * "characterize" (run the embedded campaign spec; every spec field is
 * optional and defaults as in CampaignSpec), "watch" (subscribe to
 * periodic live-stats frames), and "events" (read the daemon's bounded
 * event ring). Responses mirror the envelope with type "pong",
 * "stats", "result", "watch", "events", or "error":
 *
 *   {"schema": "didt-serve-v1", "type": "result", "id": "r1",
 *    "result": { ...didt-campaign-v1 document... }}
 *   {"schema": "didt-serve-v1", "type": "error", "id": "r1",
 *    "error": {"code": "queue_full", "message": "..."}}
 *
 * The embedded result document is byte-identical to what didt_campaign
 * writes for the same spec (both sides share campaignToJson and the
 * deterministic writer), which is what lets didt_client replay a
 * campaign file and reproduce it byte-for-byte.
 *
 * Live-telemetry extension (additive, version-negotiated): a "pong"
 * response advertises the daemon's optional capabilities in a
 * "features" array ("watch", "events", "timings"); a didt-serve-v1
 * peer without the member supports none of them. A characterize
 * request may set "timings": true to receive a wall-time breakdown
 * (queue/merge/execute/serialize ms plus cache deltas) as a "timings"
 * sibling of "result" — never inside the result document, so replay
 * byte-identity is unaffected. A watch request ({"interval_ms": N,
 * "count": M}) turns the connection into a stream: the server sends
 * one "watch" frame per tick ({"seq", "stats", "delta"}) until M
 * frames were sent (0 = unbounded), the client sends any other
 * request (which unsubscribes and is then answered normally), or the
 * daemon drains. An events request ({"after": S, "limit": N}) returns
 * ring entries with seq > S.
 *
 * Error codes are closed-enumeration (ErrorCode) so clients can switch
 * on them: bad_request (unparseable or invalid request — the sender's
 * fault), queue_full (typed backpressure: admission queue at capacity;
 * retry later), shutting_down (daemon is draining), internal (the
 * request was valid but evaluation failed).
 */

#ifndef DIDT_SERVE_PROTOCOL_HH
#define DIDT_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.hh"
#include "runner/campaign.hh"
#include "util/json.hh"

namespace didt
{
namespace serve
{

/** Schema marker carried by every request and response. */
inline constexpr const char *kProtocolSchema = "didt-serve-v1";

/** Optional capabilities advertised in "pong" (sorted). "chip" means
 *  characterize specs may carry cores/mixes/l2_banks/l2_bank_penalty
 *  members (N-core chip cells); "mc" means they may carry the
 *  mc_draws/mc_seed/mc_sigma_* members (variation-aware Monte Carlo
 *  cells that batch and replay byte-identically). */
inline constexpr const char *kProtocolFeatures[] = {"chip", "events",
                                                    "mc", "timings",
                                                    "watch"};

/** Typed error codes a response can carry. */
enum class ErrorCode
{
    BadRequest,   ///< malformed or invalid request payload
    QueueFull,    ///< admission queue at capacity (backpressure)
    ShuttingDown, ///< daemon is draining; no new work accepted
    Internal,     ///< valid request, evaluation failed
};

/** Wire name of an error code ("bad_request", ...). */
const char *errorCodeName(ErrorCode code);

/** What a request asks the daemon to do. */
enum class RequestType
{
    Ping,
    Stats,
    Characterize,
    Watch,
    Events,
};

/** A decoded request. */
struct Request
{
    RequestType type = RequestType::Ping;
    std::string id;    ///< echoed back verbatim; may be empty
    CampaignSpec spec; ///< Characterize only

    /** Characterize: echo a "timings" breakdown in the response. */
    bool wantTimings = false;

    /** Stats: render in Prometheus text exposition format. */
    bool wantPrometheus = false;

    /** Watch: tick period (>= 10 ms enforced at parse). */
    double watchIntervalMs = 1000.0;

    /** Watch: frames to send before the stream ends (0 = unbounded). */
    std::uint64_t watchCount = 0;

    /** Events: return ring entries with seq > after. */
    std::uint64_t eventsAfter = 0;

    /** Events: max entries returned (0 = no limit). */
    std::uint64_t eventsLimit = 0;
};

/**
 * Parse and validate one request payload. Never throws: on any problem
 * (bad JSON, wrong schema, unknown type, invalid spec) fills @p error
 * with a bad_request message and returns false.
 */
bool parseRequest(const std::string &payload, Request *request,
                  std::string *error);

/** Serialize a characterize request (didt_client's encoder). */
std::string characterizeRequestJson(const std::string &id,
                                    const JsonValue &spec,
                                    bool timings = false);

/** Serialize a ping / stats request (Prometheus rendering optional). */
std::string pingRequestJson(const std::string &id);
std::string statsRequestJson(const std::string &id,
                             bool prometheus = false);

/** Serialize a watch subscription request. */
std::string watchRequestJson(const std::string &id, double intervalMs,
                             std::uint64_t count);

/** Serialize an events query request. */
std::string eventsRequestJson(const std::string &id,
                              std::uint64_t after, std::uint64_t limit);

/**
 * Serialize a "result" response embedding a campaign document, plus an
 * optional "timings" sibling (never merged into the result document —
 * replay byte-identity depends on "result" alone).
 */
std::string resultResponseJson(const std::string &id, JsonValue result,
                               const JsonValue *timings = nullptr);

/** Serialize a "pong" response (advertises kProtocolFeatures). */
std::string pongResponseJson(const std::string &id);

/** Serialize a "stats" response embedding a daemon-stats object. */
std::string statsResponseJson(const std::string &id, JsonValue stats);

/** Serialize a "stats" response carrying Prometheus exposition text. */
std::string statsPrometheusResponseJson(const std::string &id,
                                        const std::string &text);

/** Serialize one "watch" stream frame. */
std::string watchFrameJson(const std::string &id, std::uint64_t seq,
                           JsonValue stats, JsonValue delta);

/** Serialize an "events" response from a ring query. */
std::string eventsResponseJson(const std::string &id,
                               const obs::EventLog::Query &query);

/** Serialize an "error" response with a typed code. */
std::string errorResponseJson(const std::string &id, ErrorCode code,
                              const std::string &message);

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_PROTOCOL_HH
