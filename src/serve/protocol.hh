/**
 * @file
 * The didt-serve-v1 request/response schema.
 *
 * Frame payloads are JSON documents (util/json). Every request carries
 * the schema marker, a type, and a client-chosen id echoed back in the
 * response so clients can correlate:
 *
 *   {"schema": "didt-serve-v1", "type": "characterize",
 *    "id": "r1", "spec": { ...didt-campaign-v1 spec fields... }}
 *
 * Request types: "ping" (liveness), "stats" (daemon counters), and
 * "characterize" (run the embedded campaign spec; every spec field is
 * optional and defaults as in CampaignSpec). Responses mirror the
 * envelope with type "pong", "stats", "result", or "error":
 *
 *   {"schema": "didt-serve-v1", "type": "result", "id": "r1",
 *    "result": { ...didt-campaign-v1 document... }}
 *   {"schema": "didt-serve-v1", "type": "error", "id": "r1",
 *    "error": {"code": "queue_full", "message": "..."}}
 *
 * The embedded result document is byte-identical to what didt_campaign
 * writes for the same spec (both sides share campaignToJson and the
 * deterministic writer), which is what lets didt_client replay a
 * campaign file and reproduce it byte-for-byte.
 *
 * Error codes are closed-enumeration (ErrorCode) so clients can switch
 * on them: bad_request (unparseable or invalid request — the sender's
 * fault), queue_full (typed backpressure: admission queue at capacity;
 * retry later), shutting_down (daemon is draining), internal (the
 * request was valid but evaluation failed).
 */

#ifndef DIDT_SERVE_PROTOCOL_HH
#define DIDT_SERVE_PROTOCOL_HH

#include <string>

#include "runner/campaign.hh"
#include "util/json.hh"

namespace didt
{
namespace serve
{

/** Schema marker carried by every request and response. */
inline constexpr const char *kProtocolSchema = "didt-serve-v1";

/** Typed error codes a response can carry. */
enum class ErrorCode
{
    BadRequest,   ///< malformed or invalid request payload
    QueueFull,    ///< admission queue at capacity (backpressure)
    ShuttingDown, ///< daemon is draining; no new work accepted
    Internal,     ///< valid request, evaluation failed
};

/** Wire name of an error code ("bad_request", ...). */
const char *errorCodeName(ErrorCode code);

/** What a request asks the daemon to do. */
enum class RequestType
{
    Ping,
    Stats,
    Characterize,
};

/** A decoded request. */
struct Request
{
    RequestType type = RequestType::Ping;
    std::string id;    ///< echoed back verbatim; may be empty
    CampaignSpec spec; ///< Characterize only
};

/**
 * Parse and validate one request payload. Never throws: on any problem
 * (bad JSON, wrong schema, unknown type, invalid spec) fills @p error
 * with a bad_request message and returns false.
 */
bool parseRequest(const std::string &payload, Request *request,
                  std::string *error);

/** Serialize a characterize request (didt_client's encoder). */
std::string characterizeRequestJson(const std::string &id,
                                    const JsonValue &spec);

/** Serialize a ping / stats request. */
std::string pingRequestJson(const std::string &id);
std::string statsRequestJson(const std::string &id);

/** Serialize a "result" response embedding a campaign document. */
std::string resultResponseJson(const std::string &id, JsonValue result);

/** Serialize a "pong" response. */
std::string pongResponseJson(const std::string &id);

/** Serialize a "stats" response embedding a daemon-stats object. */
std::string statsResponseJson(const std::string &id, JsonValue stats);

/** Serialize an "error" response with a typed code. */
std::string errorResponseJson(const std::string &id, ErrorCode code,
                              const std::string &message);

} // namespace serve
} // namespace didt

#endif // DIDT_SERVE_PROTOCOL_HH
