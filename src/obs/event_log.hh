/**
 * @file
 * Bounded in-memory ring of structured daemon events.
 *
 * The serve daemon appends one Event per lifecycle transition
 * (request admitted/rejected/completed/failed, batch formed,
 * failpoint fired); clients read them back with the `events` request
 * and the daemon dumps the ring on SIGTERM drain. The ring is bounded:
 * when capacity is reached the oldest event is dropped and a drop
 * counter incremented, so a long-lived daemon holds the most recent
 * window of activity at a fixed memory cost.
 *
 * Sequence numbers are assigned at append time, start at 1, and never
 * reuse: a client polls with `after = <last seen seq>` and misses
 * nothing that is still in the ring (the dropped counter tells it how
 * much history fell off the far end).
 */

#ifndef DIDT_OBS_EVENT_LOG_HH
#define DIDT_OBS_EVENT_LOG_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace didt::obs
{

/** One structured daemon event. */
struct Event
{
    std::uint64_t seq = 0; ///< assignment order, starts at 1
    double atMs = 0.0;     ///< milliseconds since the log's epoch
    std::string type;      ///< e.g. "request_admitted", "batch_formed"
    std::string detail;    ///< free-form context (request id, site, ...)
};

/** Bounded, thread-safe event ring. */
class EventLog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** @param capacity max retained events (>= 1 enforced). */
    explicit EventLog(std::size_t capacity = 1024);

    /** Append one event, dropping the oldest at capacity. */
    void append(std::string type, std::string detail = {});

    /** What a query returns. */
    struct Query
    {
        std::vector<Event> events; ///< seq-ascending
        std::uint64_t dropped = 0; ///< total evicted since start
        std::uint64_t next = 0;    ///< pass as `after` to resume
    };

    /**
     * Events with seq > @p after, oldest first, at most @p limit
     * (0 = no limit). `next` is the last returned seq (or @p after
     * when nothing matched), i.e. the resume cursor.
     */
    Query since(std::uint64_t after, std::size_t limit = 0) const;

    /** Events ever appended. */
    std::uint64_t appended() const;

    /** Events evicted by the capacity bound. */
    std::uint64_t dropped() const;

    /** Retained ring size. */
    std::size_t size() const;

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    Clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::deque<Event> ring_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t dropped_ = 0;
};

} // namespace didt::obs

#endif // DIDT_OBS_EVENT_LOG_HH
