#include "obs/scoped_timer.hh"

#include <mutex>
#include <set>

namespace didt::obs
{

namespace
{
std::mutex g_labelMutex;
/// Interned span labels. std::set nodes never move, so returned
/// references stay valid for the life of the process; std::less<>
/// enables lookup by string_view without a temporary std::string.
std::set<std::string, std::less<>> &
labelTable()
{
    static std::set<std::string, std::less<>> table;
    return table;
}
} // namespace

const std::string &
internSpanLabel(std::string_view label)
{
    std::lock_guard<std::mutex> lock(g_labelMutex);
    auto &table = labelTable();
    auto it = table.find(label);
    if (it == table.end())
        it = table.emplace(label).first;
    return *it;
}

ScopedTimer::ScopedTimer(std::string_view label, Histogram histogram,
                         TraceEventSink *sink, const char *category)
    : category_(category), histogram_(std::move(histogram)),
      sink_(sink ? sink : &TraceEventSink::global()),
      active_((histogram_ && metricsEnabled()) || sink_->enabled())
{
    if (!active_)
        return;
    start_ = Clock::now();
    if (sink_->enabled()) {
        label_ = &internSpanLabel(label);
        spanId_ = newSpanId();
        TraceContext &ctx = detail::threadTraceContext();
        parentId_ = ctx.parentSpan;
        ctx.parentSpan = spanId_;
    }
}

ScopedTimer::~ScopedTimer()
{
    if (!active_)
        return;
    const Clock::time_point end = Clock::now();
    if (histogram_)
        histogram_.observe(
            std::chrono::duration<double, std::milli>(end - start_)
                .count());
    if (spanId_ != 0) {
        TraceContext &ctx = detail::threadTraceContext();
        ctx.parentSpan = parentId_;
        sink_->record(*label_, category_, start_, end, spanId_,
                      parentId_, ctx.requestId, ctx.batchId);
    }
}

double
ScopedTimer::elapsedMillis() const
{
    if (!active_)
        return 0.0;
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start_)
        .count();
}

} // namespace didt::obs
