#include "obs/scoped_timer.hh"

namespace didt::obs
{

ScopedTimer::ScopedTimer(std::string label, Histogram histogram,
                         TraceEventSink *sink, const char *category)
    : label_(std::move(label)), category_(category),
      histogram_(std::move(histogram)),
      sink_(sink ? sink : &TraceEventSink::global()),
      active_((histogram_ && metricsEnabled()) || sink_->enabled())
{
    if (active_)
        start_ = Clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (!active_)
        return;
    const Clock::time_point end = Clock::now();
    if (histogram_)
        histogram_.observe(
            std::chrono::duration<double, std::milli>(end - start_)
                .count());
    sink_->record(std::move(label_), category_, start_, end);
}

double
ScopedTimer::elapsedMillis() const
{
    if (!active_)
        return 0.0;
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start_)
        .count();
}

} // namespace didt::obs
