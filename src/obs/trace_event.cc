#include "obs/trace_event.hh"

#include <algorithm>
#include <fstream>

#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace didt::obs
{

TraceEventSink::TraceEventSink() : epoch_(Clock::now()) {}

void
TraceEventSink::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

bool
TraceEventSink::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

void
TraceEventSink::record(std::string name, std::string category,
                       Clock::time_point start, Clock::time_point end)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = threadIndex();
    event.startUs =
        std::chrono::duration<double, std::micro>(start - epoch_).count();
    event.durationUs =
        std::chrono::duration<double, std::micro>(end - start).count();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
TraceEventSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceEventSink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceEventSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

void
TraceEventSink::writeChromeTrace(const std::string &path) const
{
    std::vector<TraceEvent> sorted = events();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startUs < b.startUs;
                     });

    JsonValue doc = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (const TraceEvent &event : sorted) {
        JsonValue e = JsonValue::object();
        e.set("name", event.name);
        e.set("cat", event.category);
        e.set("ph", "X");
        e.set("pid", static_cast<long long>(1));
        e.set("tid", static_cast<long long>(event.tid));
        e.set("ts", event.startUs);
        e.set("dur", event.durationUs);
        arr.push(std::move(e));
    }
    doc.set("traceEvents", std::move(arr));
    doc.set("displayTimeUnit", "ms");

    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    doc.write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing trace events to ", path);
}

TraceEventSink &
TraceEventSink::global()
{
    static TraceEventSink sink;
    return sink;
}

} // namespace didt::obs
