#include "obs/trace_event.hh"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace didt::obs
{

namespace
{
std::atomic<std::uint64_t> g_nextSpanId{1};
thread_local TraceContext t_traceContext;
} // namespace

const TraceContext &
currentTraceContext()
{
    return t_traceContext;
}

TraceContext &
detail::threadTraceContext()
{
    return t_traceContext;
}

std::uint64_t
newSpanId()
{
    return g_nextSpanId.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : saved_(std::exchange(t_traceContext, std::move(context)))
{
}

ScopedTraceContext::~ScopedTraceContext()
{
    t_traceContext = std::move(saved_);
}

TraceEventSink::TraceEventSink() : epoch_(Clock::now()) {}

void
TraceEventSink::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

bool
TraceEventSink::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

void
TraceEventSink::record(std::string name, std::string category,
                       Clock::time_point start, Clock::time_point end)
{
    record(std::move(name), std::move(category), start, end, 0, 0, {},
           {});
}

void
TraceEventSink::record(std::string name, std::string category,
                       Clock::time_point start, Clock::time_point end,
                       std::uint64_t spanId, std::uint64_t parentId,
                       std::string requestId, std::string batchId)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = threadIndex();
    event.startUs =
        std::chrono::duration<double, std::micro>(start - epoch_).count();
    event.durationUs =
        std::chrono::duration<double, std::micro>(end - start).count();
    event.spanId = spanId;
    event.parentId = parentId;
    event.requestId = std::move(requestId);
    event.batchId = std::move(batchId);
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
TraceEventSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceEventSink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceEventSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

void
TraceEventSink::writeChromeTrace(const std::string &path) const
{
    std::vector<TraceEvent> sorted = events();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startUs < b.startUs;
                     });

    JsonValue doc = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (const TraceEvent &event : sorted) {
        JsonValue e = JsonValue::object();
        e.set("name", event.name);
        e.set("cat", event.category);
        e.set("ph", "X");
        e.set("pid", static_cast<long long>(1));
        e.set("tid", static_cast<long long>(event.tid));
        e.set("ts", event.startUs);
        e.set("dur", event.durationUs);
        if (event.spanId != 0 || event.parentId != 0 ||
            !event.requestId.empty() || !event.batchId.empty()) {
            JsonValue args = JsonValue::object();
            if (event.spanId != 0)
                args.set("span",
                         static_cast<long long>(event.spanId));
            if (event.parentId != 0)
                args.set("parent",
                         static_cast<long long>(event.parentId));
            if (!event.requestId.empty())
                args.set("request", event.requestId);
            if (!event.batchId.empty())
                args.set("batch", event.batchId);
            e.set("args", std::move(args));
        }
        arr.push(std::move(e));
    }
    doc.set("traceEvents", std::move(arr));
    doc.set("displayTimeUnit", "ms");

    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    doc.write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing trace events to ", path);
}

TraceEventSink &
TraceEventSink::global()
{
    static TraceEventSink sink;
    return sink;
}

} // namespace didt::obs
