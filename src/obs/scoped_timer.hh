/**
 * @file
 * RAII wall-time spans: one object per phase or work item.
 *
 * On destruction a ScopedTimer records its elapsed milliseconds into
 * an optional Histogram metric and, when trace collection is enabled,
 * emits a complete Chrome trace_event span into a TraceEventSink.
 * Timers nest naturally — an inner span's time range lies inside the
 * outer span's, which Perfetto renders as stacked slices.
 *
 * When metrics are disabled and the sink is off, construction skips
 * the clock reads entirely, so dormant instrumentation costs a couple
 * of branches.
 */

#ifndef DIDT_OBS_SCOPED_TIMER_HH
#define DIDT_OBS_SCOPED_TIMER_HH

#include <chrono>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace_event.hh"

namespace didt::obs
{

/** Times a scope; records on destruction. */
class ScopedTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param label slice name in the trace (may carry per-item detail,
     *        e.g. "cell gzip@1.50"; the histogram carries the
     *        aggregate)
     * @param histogram latency histogram the elapsed milliseconds are
     *        observed into; default-constructed skips metric recording
     * @param sink trace sink for the span (defaults to the global one)
     * @param category trace_event category
     */
    explicit ScopedTimer(std::string label, Histogram histogram = {},
                         TraceEventSink *sink = nullptr,
                         const char *category = "didt");

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Milliseconds since construction (0 while dormant). */
    double elapsedMillis() const;

  private:
    std::string label_;
    const char *category_;
    Histogram histogram_;
    TraceEventSink *sink_;
    bool active_;
    Clock::time_point start_;
};

} // namespace didt::obs

#endif // DIDT_OBS_SCOPED_TIMER_HH
