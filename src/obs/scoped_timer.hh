/**
 * @file
 * RAII wall-time spans: one object per phase or work item.
 *
 * On destruction a ScopedTimer records its elapsed milliseconds into
 * an optional Histogram metric and, when trace collection is enabled,
 * emits a complete Chrome trace_event span into a TraceEventSink.
 * Timers nest naturally — an inner span's time range lies inside the
 * outer span's, which Perfetto renders as stacked slices — and the
 * nesting is recorded structurally: each traced span allocates a
 * process-unique id, parents itself under the thread's current
 * TraceContext, and installs itself as the parent for spans opened
 * while it is live (restored on destruction).
 *
 * Labels are std::string_view into a process-wide interned name
 * table, so constructing a span never allocates a per-span
 * std::string: callers pass literals or precomputed labels, and the
 * first traced use of a label copies it into the table once.
 *
 * When metrics are disabled and the sink is off, construction skips
 * the clock reads and the interning entirely, so dormant
 * instrumentation costs a couple of branches.
 */

#ifndef DIDT_OBS_SCOPED_TIMER_HH
#define DIDT_OBS_SCOPED_TIMER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hh"
#include "obs/trace_event.hh"

namespace didt::obs
{

/**
 * Copy @p label into the process-wide span-label table (first use
 * only) and return the stable interned string. Repeated calls with
 * the same text return the same object, so span creation can keep a
 * pointer instead of a per-span copy.
 */
const std::string &internSpanLabel(std::string_view label);

/** Times a scope; records on destruction. */
class ScopedTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param label slice name in the trace (may carry per-item detail,
     *        e.g. "cell gzip@1.50"; the histogram carries the
     *        aggregate). Interned on first traced use; need not
     *        outlive the constructor call.
     * @param histogram latency histogram the elapsed milliseconds are
     *        observed into; default-constructed skips metric recording
     * @param sink trace sink for the span (defaults to the global one)
     * @param category trace_event category
     */
    explicit ScopedTimer(std::string_view label,
                         Histogram histogram = {},
                         TraceEventSink *sink = nullptr,
                         const char *category = "didt");

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Milliseconds since construction (0 while dormant). */
    double elapsedMillis() const;

    /** The span's trace id (0 when the sink was off at construction). */
    std::uint64_t spanId() const { return spanId_; }

  private:
    const std::string *label_ = nullptr;
    const char *category_;
    Histogram histogram_;
    TraceEventSink *sink_;
    bool active_;
    Clock::time_point start_;
    std::uint64_t spanId_ = 0;
    std::uint64_t parentId_ = 0;
};

} // namespace didt::obs

#endif // DIDT_OBS_SCOPED_TIMER_HH
