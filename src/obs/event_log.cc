#include "obs/event_log.hh"

#include <algorithm>

namespace didt::obs
{

EventLog::EventLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      epoch_(Clock::now())
{
}

void
EventLog::append(std::string type, std::string detail)
{
    const Clock::time_point now = Clock::now();
    Event event;
    event.atMs =
        std::chrono::duration<double, std::milli>(now - epoch_).count();
    event.type = std::move(type);
    event.detail = std::move(detail);
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = nextSeq_++;
    if (ring_.size() == capacity_) {
        ring_.pop_front();
        ++dropped_;
    }
    ring_.push_back(std::move(event));
}

EventLog::Query
EventLog::since(std::uint64_t after, std::size_t limit) const
{
    Query query;
    std::lock_guard<std::mutex> lock(mutex_);
    query.dropped = dropped_;
    query.next = after;
    for (const Event &event : ring_) {
        if (event.seq <= after)
            continue;
        if (limit != 0 && query.events.size() == limit)
            break;
        query.events.push_back(event);
        query.next = event.seq;
    }
    return query;
}

std::uint64_t
EventLog::appended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextSeq_ - 1;
}

std::uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

} // namespace didt::obs
