#include "obs/metrics.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>

#include "util/logging.hh"

namespace didt::obs
{

namespace
{

/** Stripe count; power of two so the thread id maps with a mask. */
constexpr std::size_t kStripes = 16;

std::atomic<bool> g_metricsEnabled{true};

inline std::size_t
stripeIndex()
{
    return threadIndex() & (kStripes - 1);
}

/** Relaxed CAS add for atomic<double> (no fetch_add pre-C++20 FP). */
inline void
atomicAdd(std::atomic<double> &cell, double delta)
{
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed))
        ;
}

inline void
atomicMin(std::atomic<double> &cell, double value)
{
    double cur = cell.load(std::memory_order_relaxed);
    while (value < cur &&
           !cell.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed))
        ;
}

inline void
atomicMax(std::atomic<double> &cell, double value)
{
    double cur = cell.load(std::memory_order_relaxed);
    while (value > cur &&
           !cell.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed))
        ;
}

} // namespace

std::size_t
threadIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed);
    return index;
}

void
setMetricsEnabled(bool enabled)
{
    g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Metric cell blocks
// ---------------------------------------------------------------------------

namespace detail
{

/** One cache line per stripe so concurrent threads don't false-share. */
struct alignas(64) CounterStripe
{
    std::atomic<std::uint64_t> value{0};
};

struct CounterImpl
{
    std::array<CounterStripe, kStripes> stripes;

    void zero()
    {
        for (CounterStripe &s : stripes)
            s.value.store(0, std::memory_order_relaxed);
    }
};

struct GaugeImpl
{
    std::atomic<std::uint64_t> records{0};
    std::atomic<double> last{0.0};
    std::atomic<double> high{0.0};

    void zero()
    {
        records.store(0, std::memory_order_relaxed);
        last.store(0.0, std::memory_order_relaxed);
        high.store(0.0, std::memory_order_relaxed);
    }
};

struct alignas(64) HistogramStripe
{
    explicit HistogramStripe(std::size_t buckets) : counts(buckets) {}

    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> low{std::numeric_limits<double>::infinity()};
    std::atomic<double> high{-std::numeric_limits<double>::infinity()};

    void zero()
    {
        for (auto &c : counts)
            c.store(0, std::memory_order_relaxed);
        count.store(0, std::memory_order_relaxed);
        sum.store(0.0, std::memory_order_relaxed);
        low.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
        high.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    }
};

struct HistogramImpl
{
    explicit HistogramImpl(std::vector<double> bucket_bounds)
        : bounds(std::move(bucket_bounds))
    {
        stripes.reserve(kStripes);
        for (std::size_t i = 0; i < kStripes; ++i)
            stripes.push_back(
                std::make_unique<HistogramStripe>(bounds.size() + 1));
    }

    std::vector<double> bounds;
    std::vector<std::unique_ptr<HistogramStripe>> stripes;

    void zero()
    {
        for (auto &s : stripes)
            s->zero();
    }
};

} // namespace detail

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

void
Counter::add(std::uint64_t delta)
{
    if (!impl_ || !metricsEnabled())
        return;
    impl_->stripes[stripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
}

std::uint64_t
Counter::total() const
{
    if (!impl_)
        return 0;
    std::uint64_t sum = 0;
    for (const detail::CounterStripe &s : impl_->stripes)
        sum += s.value.load(std::memory_order_relaxed);
    return sum;
}

void
Gauge::record(double value)
{
    if (!impl_ || !metricsEnabled())
        return;
    impl_->records.fetch_add(1, std::memory_order_relaxed);
    impl_->last.store(value, std::memory_order_relaxed);
    atomicMax(impl_->high, value);
}

double
Gauge::last() const
{
    return impl_ ? impl_->last.load(std::memory_order_relaxed) : 0.0;
}

double
Gauge::max() const
{
    return impl_ ? impl_->high.load(std::memory_order_relaxed) : 0.0;
}

void
Histogram::observe(double value)
{
    if (!impl_ || !metricsEnabled())
        return;
    detail::HistogramStripe &stripe =
        *impl_->stripes[stripeIndex()];
    const auto it = std::lower_bound(impl_->bounds.begin(),
                                     impl_->bounds.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - impl_->bounds.begin());
    stripe.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(stripe.sum, value);
    atomicMin(stripe.low, value);
    atomicMax(stripe.high, value);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    if (!impl_)
        return snap;
    snap.bounds = impl_->bounds;
    snap.counts.assign(snap.bounds.size() + 1, 0);
    double low = std::numeric_limits<double>::infinity();
    double high = -std::numeric_limits<double>::infinity();
    for (const auto &stripe : impl_->stripes) {
        const std::uint64_t n =
            stripe->count.load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        snap.count += n;
        snap.sum += stripe->sum.load(std::memory_order_relaxed);
        low = std::min(low, stripe->low.load(std::memory_order_relaxed));
        high = std::max(high,
                        stripe->high.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < snap.counts.size(); ++b)
            snap.counts[b] +=
                stripe->counts[b].load(std::memory_order_relaxed);
    }
    if (snap.count > 0) {
        snap.min = low;
        snap.max = high;
    }
    return snap;
}

double
HistogramSnapshot::mean() const
{
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0)
            continue;
        const std::uint64_t next = seen + counts[b];
        if (static_cast<double>(next) >= target) {
            // Linear interpolation inside the bucket. Edges: the
            // previous bound below, the bound (or the observed max for
            // the overflow bucket) above; the first bucket starts at
            // the observed min.
            const double lo = b == 0 ? std::min(min, bounds[0])
                                     : bounds[b - 1];
            const double hi = b < bounds.size() ? bounds[b] : max;
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(counts[b]);
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
        seen = next;
    }
    return max;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct MetricsRegistry::State
{
    mutable std::mutex mutex;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;

    void checkKindFree(const std::string &name, MetricKind wanted) const
    {
        const bool taken =
            (wanted != MetricKind::Counter && counters.count(name)) ||
            (wanted != MetricKind::Gauge && gauges.count(name)) ||
            (wanted != MetricKind::Histogram && histograms.count(name));
        if (taken)
            didt_panic("metric '", name,
                       "' already registered with a different kind "
                       "than ",
                       metricKindName(wanted));
    }
};

MetricsRegistry::MetricsRegistry() : state_(std::make_shared<State>()) {}

Counter
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->counters.find(name);
    if (it != state_->counters.end())
        return it->second;
    state_->checkKindFree(name, MetricKind::Counter);
    Counter handle;
    handle.impl_ = std::make_shared<detail::CounterImpl>();
    state_->counters.emplace(name, handle);
    return handle;
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->gauges.find(name);
    if (it != state_->gauges.end())
        return it->second;
    state_->checkKindFree(name, MetricKind::Gauge);
    Gauge handle;
    handle.impl_ = std::make_shared<detail::GaugeImpl>();
    state_->gauges.emplace(name, handle);
    return handle;
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()))
        didt_panic("histogram '", name,
                   "' needs non-empty ascending bucket bounds");
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->histograms.find(name);
    if (it != state_->histograms.end()) {
        if (it->second.impl_->bounds != bounds)
            didt_panic("histogram '", name,
                       "' re-registered with different bounds");
        return it->second;
    }
    state_->checkKindFree(name, MetricKind::Histogram);
    Histogram handle;
    handle.impl_ = std::make_shared<detail::HistogramImpl>(bounds);
    state_->histograms.emplace(name, handle);
    return handle;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(state_->mutex);
    snap.metrics.reserve(state_->counters.size() +
                         state_->gauges.size() +
                         state_->histograms.size());
    for (const auto &[name, handle] : state_->counters) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricKind::Counter;
        m.value = static_cast<double>(handle.total());
        snap.metrics.push_back(std::move(m));
    }
    for (const auto &[name, handle] : state_->gauges) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricKind::Gauge;
        m.value = handle.last();
        m.maxValue = handle.max();
        snap.metrics.push_back(std::move(m));
    }
    for (const auto &[name, handle] : state_->histograms) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricKind::Histogram;
        m.histogram = handle.snapshot();
        snap.metrics.push_back(std::move(m));
    }
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (auto &[name, handle] : state_->counters)
        handle.impl_->zero();
    for (auto &[name, handle] : state_->gauges)
        handle.impl_->zero();
    for (auto &[name, handle] : state_->histograms)
        handle.impl_->zero();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

const MetricSnapshot *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricSnapshot &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

JsonValue
MetricsSnapshot::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "didt-metrics-v1");
    JsonValue arr = JsonValue::array();
    for (const MetricSnapshot &m : metrics) {
        JsonValue entry = JsonValue::object();
        entry.set("name", m.name);
        entry.set("kind", metricKindName(m.kind));
        switch (m.kind) {
          case MetricKind::Counter:
            entry.set("value", m.value);
            break;
          case MetricKind::Gauge:
            entry.set("value", m.value);
            entry.set("max", m.maxValue);
            break;
          case MetricKind::Histogram: {
            const HistogramSnapshot &h = m.histogram;
            entry.set("count", static_cast<long long>(h.count));
            entry.set("sum", h.sum);
            entry.set("min", h.min);
            entry.set("max", h.max);
            entry.set("mean", h.mean());
            entry.set("p50", h.quantile(0.5));
            entry.set("p95", h.quantile(0.95));
            JsonValue bounds = JsonValue::array();
            for (double b : h.bounds)
                bounds.push(b);
            entry.set("bounds", std::move(bounds));
            JsonValue buckets = JsonValue::array();
            for (std::uint64_t c : h.counts)
                buckets.push(static_cast<long long>(c));
            entry.set("buckets", std::move(buckets));
            break;
          }
        }
        arr.push(std::move(entry));
    }
    doc.set("metrics", std::move(arr));
    return doc;
}

void
writeMetricsJson(const std::string &path, const MetricsSnapshot &snapshot)
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    snapshot.toJson().write(out);
    out << '\n';
    if (!out)
        didt_fatal("error writing metrics JSON to ", path);
}

MetricsSnapshot
diffSnapshots(const MetricsSnapshot &previous,
              const MetricsSnapshot &current)
{
    MetricsSnapshot delta;
    delta.metrics.reserve(current.metrics.size());
    for (const MetricSnapshot &cur : current.metrics) {
        const MetricSnapshot *prev = previous.find(cur.name);
        MetricSnapshot d = cur;
        switch (cur.kind) {
          case MetricKind::Counter:
            if (prev != nullptr)
                d.value = std::max(0.0, cur.value - prev->value);
            break;
          case MetricKind::Gauge:
            break; // levels pass through unchanged
          case MetricKind::Histogram: {
            if (prev == nullptr)
                break;
            const HistogramSnapshot &p = prev->histogram;
            HistogramSnapshot &h = d.histogram;
            h.count = cur.histogram.count >= p.count
                          ? cur.histogram.count - p.count
                          : 0;
            h.sum = cur.histogram.sum - p.sum;
            if (p.counts.size() == h.counts.size())
                for (std::size_t i = 0; i < h.counts.size(); ++i)
                    h.counts[i] = h.counts[i] >= p.counts[i]
                                      ? h.counts[i] - p.counts[i]
                                      : 0;
            break;
          }
        }
        delta.metrics.push_back(std::move(d));
    }
    return delta;
}

const std::vector<double> &
defaultLatencyBucketsMs()
{
    static const std::vector<double> bounds{
        0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,   25.0,
        50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
        30000.0};
    return bounds;
}

} // namespace didt::obs
