/**
 * @file
 * Lock-cheap process-wide metrics: named counters, gauges, and
 * fixed-bucket latency histograms.
 *
 * Instrumentation sits on the hot paths of a parallel campaign
 * (worker loops, cache lookups, per-cell analysis), so updates must
 * never serialize the ThreadPool. Counter and histogram cells are
 * sharded into cache-line-padded stripes indexed by a dense per-thread
 * id: an update is one relaxed atomic RMW on a stripe that, with up to
 * kStripes concurrently active threads, no other thread touches.
 * Aggregation happens only on demand (snapshot()) by summing stripes.
 *
 * Registration (name -> handle) takes a registry mutex but is meant
 * for startup / first-touch; handles are cheap value types (shared
 * ownership of the cell block) and should be cached by the
 * instrumented code, e.g. in a function-local static.
 *
 * Naming scheme: "subsystem.name" (pool.tasks, repo.memory_hits,
 * campaign.cell_ms, sim.cycles, controller.stall_cycles). Histogram
 * metrics carry a unit suffix (_ms).
 *
 * Metrics never feed result files: campaign result JSON stays
 * byte-identical whether metrics are enabled or not. Snapshots are
 * written to a separate sidecar file (writeMetricsJson).
 */

#ifndef DIDT_OBS_METRICS_HH
#define DIDT_OBS_METRICS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/json.hh"

namespace didt::obs
{

/**
 * Dense id of the calling thread (0, 1, 2, ... in first-use order).
 * Stable for the thread's lifetime; used to pick a metric stripe and
 * as the tid in trace events.
 */
std::size_t threadIndex();

/**
 * Process-wide instrumentation switch. When false, counter/gauge/
 * histogram updates and ScopedTimer clock reads are skipped; handle
 * and registry structure stays intact. Defaults to true.
 */
void setMetricsEnabled(bool enabled);
bool metricsEnabled();

/** What a named metric measures. */
enum class MetricKind
{
    Counter,   ///< monotonic event count
    Gauge,     ///< sampled level (reports last and high-water values)
    Histogram, ///< fixed-bucket value distribution
};

/** Printable kind name ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** Aggregated state of one histogram. */
struct HistogramSnapshot
{
    /** Inclusive upper bucket edges, ascending. */
    std::vector<double> bounds;

    /** Per-bucket counts; counts.size() == bounds.size() + 1, the
     *  last bucket catching values above the largest edge. */
    std::vector<std::uint64_t> counts;

    std::uint64_t count = 0; ///< total observations
    double sum = 0.0;        ///< sum of observed values
    double min = 0.0;        ///< smallest observation (0 when empty)
    double max = 0.0;        ///< largest observation (0 when empty)

    /** Mean observation (0 when empty). */
    double mean() const;

    /**
     * Approximate quantile (0..1) by linear interpolation inside the
     * containing bucket; exact at bucket edges.
     */
    double quantile(double q) const;
};

/** Aggregated state of one named metric. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;

    /** Counter total, or gauge last-recorded value. */
    double value = 0.0;

    /** Gauge high-water mark (gauges only). */
    double maxValue = 0.0;

    /** Histogram aggregate (histograms only). */
    HistogramSnapshot histogram;
};

/** A point-in-time aggregation of a whole registry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<MetricSnapshot> metrics;

    /** Lookup by full name; nullptr when absent. */
    const MetricSnapshot *find(const std::string &name) const;

    /**
     * Deterministic JSON document (schema "didt-metrics-v1"): metrics
     * sorted by name, fixed member order per kind.
     */
    JsonValue toJson() const;
};

/** Write a snapshot as JSON to @p path; fatal on I/O errors. */
void writeMetricsJson(const std::string &path,
                      const MetricsSnapshot &snapshot);

/**
 * Interval delta between two snapshots of the same registry: for each
 * metric in @p current, counters report value - previous (0 floor),
 * histograms report per-bucket/count/sum differences, and gauges pass
 * through current last/max (levels have no meaningful delta). Metrics
 * absent from @p previous are treated as previously zero; metrics
 * absent from @p current are dropped. Histogram min/max remain the
 * lifetime values from @p current (stripes don't keep interval
 * extrema). Result stays sorted by name. This is what the serve
 * `watch` stream sends per tick.
 */
MetricsSnapshot diffSnapshots(const MetricsSnapshot &previous,
                              const MetricsSnapshot &current);

namespace detail
{
struct CounterImpl;
struct GaugeImpl;
struct HistogramImpl;
} // namespace detail

/** Handle to a monotonic counter. Default-constructed handles no-op. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta (relaxed, striped; never blocks). */
    void add(std::uint64_t delta = 1);

    /** Sum over all stripes. */
    std::uint64_t total() const;

    explicit operator bool() const { return impl_ != nullptr; }

  private:
    friend class MetricsRegistry;
    std::shared_ptr<detail::CounterImpl> impl_;
};

/** Handle to a sampled-level gauge. Default-constructed handles no-op. */
class Gauge
{
  public:
    Gauge() = default;

    /** Record the current level (keeps last value and high-water). */
    void record(double value);

    /** Most recently recorded value. */
    double last() const;

    /** Largest value ever recorded. */
    double max() const;

    explicit operator bool() const { return impl_ != nullptr; }

  private:
    friend class MetricsRegistry;
    std::shared_ptr<detail::GaugeImpl> impl_;
};

/** Handle to a fixed-bucket histogram. Default-constructed handles
 *  no-op. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation (relaxed, striped; never blocks). */
    void observe(double value);

    /** Aggregate over all stripes. */
    HistogramSnapshot snapshot() const;

    explicit operator bool() const { return impl_ != nullptr; }

  private:
    friend class MetricsRegistry;
    std::shared_ptr<detail::HistogramImpl> impl_;
};

/**
 * Default latency bucket edges in milliseconds: 0.05 to 30000 in a
 * 1-2.5-5 progression, suitable for task/cell/phase wall times.
 */
const std::vector<double> &defaultLatencyBucketsMs();

/**
 * A named-metric registry. Handles returned for one name always share
 * state; asking for an existing name with a different kind (or
 * different histogram bounds) panics. The process-wide instance is
 * global(); tests can build private registries.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();

    /** Find-or-create a counter. */
    Counter counter(const std::string &name);

    /** Find-or-create a gauge. */
    Gauge gauge(const std::string &name);

    /**
     * Find-or-create a histogram with the given inclusive upper
     * bucket edges (must be non-empty, ascending).
     */
    Histogram histogram(const std::string &name,
                        const std::vector<double> &bounds =
                            defaultLatencyBucketsMs());

    /** Aggregate every metric; sorted by name. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric's cells; existing handles stay valid. */
    void reset();

    /** The process-wide registry. */
    static MetricsRegistry &global();

  private:
    struct State;
    std::shared_ptr<State> state_;
};

} // namespace didt::obs

#endif // DIDT_OBS_METRICS_HH
