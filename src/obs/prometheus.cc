#include "obs/prometheus.hh"

#include <cctype>
#include <sstream>

#include "util/json.hh"

namespace didt::obs
{

std::string
prometheusFamilyName(const std::string &name, MetricKind kind)
{
    std::string family = "didt_";
    family.reserve(family.size() + name.size() + 6);
    for (char c : name) {
        const bool legal = std::isalnum(static_cast<unsigned char>(c)) ||
                           c == '_' || c == ':';
        family.push_back(legal ? c : '_');
    }
    if (kind == MetricKind::Counter)
        family += "_total";
    return family;
}

namespace
{
void
renderSample(std::ostream &os, const std::string &family, double value)
{
    os << family << ' ' << jsonNumber(value) << '\n';
}
} // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot)
{
    std::ostringstream os;
    for (const MetricSnapshot &metric : snapshot.metrics) {
        const std::string family =
            prometheusFamilyName(metric.name, metric.kind);
        switch (metric.kind) {
          case MetricKind::Counter:
            os << "# TYPE " << family << " counter\n";
            renderSample(os, family, metric.value);
            break;
          case MetricKind::Gauge:
            os << "# TYPE " << family << " gauge\n";
            renderSample(os, family, metric.value);
            os << "# TYPE " << family << "_max gauge\n";
            renderSample(os, family + "_max", metric.maxValue);
            break;
          case MetricKind::Histogram: {
            const HistogramSnapshot &h = metric.histogram;
            os << "# TYPE " << family << " histogram\n";
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.bounds.size(); ++i) {
                if (i < h.counts.size())
                    cumulative += h.counts[i];
                os << family << "_bucket{le=\""
                   << jsonNumber(h.bounds[i]) << "\"} " << cumulative
                   << '\n';
            }
            os << family << "_bucket{le=\"+Inf\"} " << h.count << '\n';
            renderSample(os, family + "_sum", h.sum);
            os << family << "_count " << h.count << '\n';
            break;
          }
        }
    }
    return os.str();
}

} // namespace didt::obs
