/**
 * @file
 * Chrome trace_event collection for Perfetto / chrome://tracing.
 *
 * Spans recorded by ScopedTimer land here as complete ("ph":"X")
 * events with the recording thread's dense id as the tid, so a
 * campaign's thread-pool utilization can be inspected visually
 * (one lane per worker, one slice per cell/phase).
 *
 * Spans additionally carry a process-unique span id plus the parent
 * span id and request/batch labels taken from the calling thread's
 * TraceContext, so a served campaign renders as one tree per request
 * (queue-wait -> batch-merge -> per-cell execute -> serialize) rather
 * than a flat pile of global slices. The context is thread-local;
 * code that hops threads (the serve dispatcher handing work to
 * Executor pool workers) captures currentTraceContext() and re-applies
 * it on the worker via ScopedTraceContext.
 *
 * Collection is off by default; enable it (e.g. from --trace-out)
 * before the instrumented run. Each span costs one short mutex-guarded
 * append at scope exit — spans wrap phases and cells, never per-cycle
 * work, so the sink does not serialize the hot paths.
 */

#ifndef DIDT_OBS_TRACE_EVENT_HH
#define DIDT_OBS_TRACE_EVENT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace didt::obs
{

/** One complete span, microseconds relative to the sink's epoch. */
struct TraceEvent
{
    std::string name;      ///< slice label
    std::string category;  ///< trace_event "cat" field
    std::size_t tid = 0;   ///< dense thread id (threadIndex())
    double startUs = 0.0;  ///< span start
    double durationUs = 0.0; ///< span length
    std::uint64_t spanId = 0;   ///< process-unique id (0 = none)
    std::uint64_t parentId = 0; ///< enclosing span's id (0 = root)
    std::string requestId;      ///< serve request the span belongs to
    std::string batchId;        ///< dispatcher batch the span belongs to
};

/**
 * Ambient per-thread span context. parentSpan is the id new spans
 * attach under; requestId/batchId label every span recorded while the
 * context is current. Default-constructed means "root, unattributed".
 */
struct TraceContext
{
    std::uint64_t parentSpan = 0;
    std::string requestId;
    std::string batchId;
};

/** The calling thread's current context (default: root, no labels). */
const TraceContext &currentTraceContext();

namespace detail
{
/** Mutable access for span push/pop; not part of the public surface. */
TraceContext &threadTraceContext();
} // namespace detail

/** Allocate a fresh process-unique span id (never 0). */
std::uint64_t newSpanId();

/**
 * RAII: installs @p context as the calling thread's TraceContext and
 * restores the previous one on destruction. Use to carry a request's
 * identity across a thread hop (capture currentTraceContext() on the
 * sending side, apply it in the worker).
 */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(TraceContext context);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext saved_;
};

/** Collects spans and writes Chrome trace_event JSON. */
class TraceEventSink
{
  public:
    using Clock = std::chrono::steady_clock;

    TraceEventSink();

    /** Turn collection on or off (off by default). */
    void setEnabled(bool enabled);

    /** Whether record() currently stores events. */
    bool enabled() const;

    /** Store one complete span; no-op while disabled. */
    void record(std::string name, std::string category,
                Clock::time_point start, Clock::time_point end);

    /**
     * Store one complete span with explicit tree linkage: @p spanId
     * names the span, @p parentId its enclosing span (0 = root), and
     * @p requestId / @p batchId attribute it to a serve request and
     * dispatcher batch (empty = unattributed). No-op while disabled.
     */
    void record(std::string name, std::string category,
                Clock::time_point start, Clock::time_point end,
                std::uint64_t spanId, std::uint64_t parentId,
                std::string requestId, std::string batchId);

    /** Number of stored events. */
    std::size_t eventCount() const;

    /** Copy of the stored events (test/report use). */
    std::vector<TraceEvent> events() const;

    /** Drop all stored events. */
    void clear();

    /**
     * Write the stored events as Chrome trace_event JSON
     * ({"traceEvents": [...]}; loadable in Perfetto). Events are
     * sorted by start time so output is stable for a given set of
     * spans. Span/parent ids and request/batch labels are emitted
     * under "args". Fatal on I/O errors.
     */
    void writeChromeTrace(const std::string &path) const;

    /** The process-wide sink ScopedTimer records into. */
    static TraceEventSink &global();

  private:
    std::atomic<bool> enabled_{false};
    Clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

} // namespace didt::obs

#endif // DIDT_OBS_TRACE_EVENT_HH
