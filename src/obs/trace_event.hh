/**
 * @file
 * Chrome trace_event collection for Perfetto / chrome://tracing.
 *
 * Spans recorded by ScopedTimer land here as complete ("ph":"X")
 * events with the recording thread's dense id as the tid, so a
 * campaign's thread-pool utilization can be inspected visually
 * (one lane per worker, one slice per cell/phase).
 *
 * Collection is off by default; enable it (e.g. from --trace-out)
 * before the instrumented run. Each span costs one short mutex-guarded
 * append at scope exit — spans wrap phases and cells, never per-cycle
 * work, so the sink does not serialize the hot paths.
 */

#ifndef DIDT_OBS_TRACE_EVENT_HH
#define DIDT_OBS_TRACE_EVENT_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace didt::obs
{

/** One complete span, microseconds relative to the sink's epoch. */
struct TraceEvent
{
    std::string name;      ///< slice label
    std::string category;  ///< trace_event "cat" field
    std::size_t tid = 0;   ///< dense thread id (threadIndex())
    double startUs = 0.0;  ///< span start
    double durationUs = 0.0; ///< span length
};

/** Collects spans and writes Chrome trace_event JSON. */
class TraceEventSink
{
  public:
    using Clock = std::chrono::steady_clock;

    TraceEventSink();

    /** Turn collection on or off (off by default). */
    void setEnabled(bool enabled);

    /** Whether record() currently stores events. */
    bool enabled() const;

    /** Store one complete span; no-op while disabled. */
    void record(std::string name, std::string category,
                Clock::time_point start, Clock::time_point end);

    /** Number of stored events. */
    std::size_t eventCount() const;

    /** Copy of the stored events (test/report use). */
    std::vector<TraceEvent> events() const;

    /** Drop all stored events. */
    void clear();

    /**
     * Write the stored events as Chrome trace_event JSON
     * ({"traceEvents": [...]}; loadable in Perfetto). Events are
     * sorted by start time so output is stable for a given set of
     * spans. Fatal on I/O errors.
     */
    void writeChromeTrace(const std::string &path) const;

    /** The process-wide sink ScopedTimer records into. */
    static TraceEventSink &global();

  private:
    std::atomic<bool> enabled_{false};
    Clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

} // namespace didt::obs

#endif // DIDT_OBS_TRACE_EVENT_HH
