/**
 * @file
 * Prometheus text exposition rendering for metrics snapshots.
 *
 * Maps the registry's dotted metric names ("serve.requests") onto
 * Prometheus families ("didt_serve_requests_total"): a "didt_" prefix,
 * dots and other illegal characters replaced by underscores, counters
 * suffixed "_total". Histograms render in the standard cumulative
 * form: one "_bucket" sample per upper edge with an `le` label, an
 * "le=\"+Inf\"" bucket equal to "_count", plus "_sum" and "_count".
 * Gauges additionally expose their high-water mark as a second
 * "<family>_max" gauge.
 *
 * Output is deterministic for a given snapshot (families in snapshot
 * order, i.e. sorted by source name; numbers via jsonNumber), so the
 * daemon's `stats --prom` endpoint can be golden-tested and scraped.
 */

#ifndef DIDT_OBS_PROMETHEUS_HH
#define DIDT_OBS_PROMETHEUS_HH

#include <string>

#include "obs/metrics.hh"

namespace didt::obs
{

/**
 * The Prometheus family name for a registry metric: "didt_" prefix,
 * illegal characters mapped to '_', counters suffixed "_total".
 */
std::string prometheusFamilyName(const std::string &name,
                                 MetricKind kind);

/** Render @p snapshot in Prometheus text exposition format. */
std::string prometheusText(const MetricsSnapshot &snapshot);

} // namespace didt::obs

#endif // DIDT_OBS_PROMETHEUS_HH
