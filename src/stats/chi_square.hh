/**
 * @file
 * Chi-square distribution and goodness-of-fit test for normality.
 *
 * Paper Section 4.1: execution windows are classified as Gaussian using
 * the chi-square goodness-of-fit test at 95% significance against a
 * normal distribution with the sample mean and variance.
 */

#ifndef DIDT_STATS_CHI_SQUARE_HH
#define DIDT_STATS_CHI_SQUARE_HH

#include <cstddef>
#include <span>

namespace didt
{

/** Regularized lower incomplete gamma function P(a, x). */
double regularizedGammaP(double a, double x);

/** Chi-square CDF with @p dof degrees of freedom. */
double chiSquareCdf(double x, std::size_t dof);

/**
 * Critical value of the chi-square distribution: the x such that
 * CDF(x; dof) = 1 - alpha. Found by bisection on the CDF.
 */
double chiSquareCriticalValue(std::size_t dof, double alpha);

/** Result of a goodness-of-fit normality test. */
struct NormalityResult
{
    bool accepted;        ///< true if the Gaussian hypothesis is not rejected
    double statistic;     ///< chi-square statistic
    double criticalValue; ///< rejection threshold at the chosen alpha
    std::size_t dof;      ///< degrees of freedom used
    bool degenerate;      ///< sample variance too small to test (rejected)
    double mean;          ///< sample mean (always filled)
    double variance;      ///< population variance (always filled)
};

/**
 * Chi-square goodness-of-fit test for normality.
 *
 * Bins the sample into equal-probability bins under the fitted
 * N(mean, variance) hypothesis; degrees of freedom are bins - 3
 * (two parameters estimated from the data). Windows with negligible
 * variance are reported as degenerate and not accepted, matching the
 * paper's treatment of near-constant windows as non-Gaussian.
 *
 * @param xs samples (window of per-cycle current values)
 * @param alpha significance level (paper uses 0.05)
 */
NormalityResult chiSquareNormalityTest(std::span<const double> xs,
                                       double alpha = 0.05);

} // namespace didt

#endif // DIDT_STATS_CHI_SQUARE_HH
