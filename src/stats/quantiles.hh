/**
 * @file
 * Empirical distribution helpers for Monte Carlo yield aggregation.
 *
 * The variation campaigns summarize per-draw observables (emergency
 * fraction, resonance-band variance) into quantile bands and yield
 * curves. Everything here is deterministic: quantiles are computed
 * from an exact sort with linear interpolation (the "type 7"
 * definition), so the same draws always serialize to the same bytes.
 */

#ifndef DIDT_STATS_QUANTILES_HH
#define DIDT_STATS_QUANTILES_HH

#include <cstddef>
#include <span>
#include <vector>

namespace didt
{

/**
 * Linear-interpolation empirical quantile of an ascending-sorted,
 * non-empty sample: position q * (n - 1), interpolated between the
 * two straddling order statistics. @p q is clamped to [0, 1].
 */
double empiricalQuantile(std::span<const double> sorted, double q);

/**
 * An accumulated empirical distribution with lazily-sorted quantile,
 * CDF, and exceedance queries. Query methods panic on an empty
 * distribution.
 */
class EmpiricalDistribution
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Empirical quantile (see @ref empiricalQuantile). */
    double quantile(double q) const;

    /** Fraction of samples <= @p x. */
    double cdfAt(double x) const;

    /** Fraction of samples strictly above @p x (1 - cdfAt(x)). */
    double exceedanceFraction(double x) const;

    /** Sample mean. */
    double mean() const;

    /** Smallest sample. */
    double min() const;

    /** Largest sample. */
    double max() const;

  private:
    void ensureSorted() const;
    [[noreturn]] void failEmpty(const char *what) const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace didt

#endif // DIDT_STATS_QUANTILES_HH
