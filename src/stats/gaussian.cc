#include "stats/gaussian.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

Gaussian::Gaussian(double mean, double stddev)
    : mean_(mean), stddev_(stddev)
{
    if (stddev < 0.0)
        didt_panic("Gaussian stddev must be >= 0, got ", stddev);
}

double
Gaussian::pdf(double x) const
{
    if (stddev_ == 0.0)
        return x == mean_ ? INFINITY : 0.0;
    const double z = (x - mean_) / stddev_;
    return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * M_PI));
}

double
Gaussian::cdf(double x) const
{
    if (stddev_ == 0.0)
        return x < mean_ ? 0.0 : 1.0;
    return stdNormalCdf((x - mean_) / stddev_);
}

double
Gaussian::quantile(double p) const
{
    if (stddev_ == 0.0)
        return mean_;
    return mean_ + stddev_ * stdNormalQuantile(p);
}

double
stdNormalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
stdNormalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        didt_panic("stdNormalQuantile requires p in (0,1), got ", p);

    // Acklam's rational approximation, refined with one Halley step.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    const double phigh = 1.0 - plow;
    double x;

    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= phigh) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step against the exact CDF.
    const double e = stdNormalCdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

} // namespace didt
