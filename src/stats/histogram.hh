/**
 * @file
 * Fixed-range binned histogram used for voltage/current profiles
 * (paper Figures 10 and 11).
 */

#ifndef DIDT_STATS_HISTOGRAM_HH
#define DIDT_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace didt
{

/**
 * Histogram with uniformly-sized bins over [lo, hi). Samples outside the
 * range are clamped into the first/last bin so totals are preserved
 * (the tails matter for voltage-emergency counting), but the clamps are
 * counted: underflow()/overflow() report how many samples fell outside
 * the range, so truncated distribution tails (supply-variation corner
 * draws, for instance) are visible instead of silently absorbed.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin (must exceed @p lo)
     * @param bins number of bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void push(double x);

    /**
     * Add a block of samples. Bin indices are computed through the
     * dispatched SIMD kernel (floor((x - lo) / width), identical
     * arithmetic to push()); counts land in exactly the bins push()
     * would pick, one sample at a time.
     */
    void pushBlock(std::span<const double> xs);

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total number of samples pushed. */
    std::uint64_t total() const { return total_; }

    /** Raw count in bin @p i. */
    std::uint64_t count(std::size_t i) const;

    /** Fraction of samples in bin @p i (0 when empty). */
    double fraction(std::size_t i) const;

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Width of each bin. */
    double binWidth() const { return width_; }

    /** Lower edge of the histogram range. */
    double lo() const { return lo_; }

    /** Upper edge of the histogram range. */
    double hi() const { return hi_; }

    /** Fraction of samples strictly below @p threshold. */
    double fractionBelow(double threshold) const;

    /**
     * Samples that fell below lo (including NaNs) and were clamped
     * into the first bin.
     */
    std::uint64_t underflow() const { return underflow_; }

    /** Samples at or above hi that were clamped into the last bin. */
    std::uint64_t overflow() const { return overflow_; }

    /** Reset all counts. */
    void clear();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

} // namespace didt

#endif // DIDT_STATS_HISTOGRAM_HH
