#include "stats/quantiles.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace didt
{

double
empiricalQuantile(std::span<const double> sorted, double q)
{
    if (sorted.empty())
        didt_panic("empiricalQuantile on an empty sample");
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    if (lo + 1 >= sorted.size())
        return sorted[sorted.size() - 1];
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

void
EmpiricalDistribution::push(double x)
{
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
}

double
EmpiricalDistribution::quantile(double q) const
{
    if (samples_.empty())
        failEmpty("quantile");
    ensureSorted();
    return empiricalQuantile(samples_, q);
}

double
EmpiricalDistribution::cdfAt(double x) const
{
    if (samples_.empty())
        failEmpty("cdfAt");
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalDistribution::exceedanceFraction(double x) const
{
    return 1.0 - cdfAt(x);
}

double
EmpiricalDistribution::mean() const
{
    if (samples_.empty())
        failEmpty("mean");
    // Sum in sorted order so the float accumulation is canonical
    // regardless of which queries ran first.
    ensureSorted();
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
EmpiricalDistribution::min() const
{
    if (samples_.empty())
        failEmpty("min");
    ensureSorted();
    return samples_.front();
}

double
EmpiricalDistribution::max() const
{
    if (samples_.empty())
        failEmpty("max");
    ensureSorted();
    return samples_.back();
}

void
EmpiricalDistribution::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

void
EmpiricalDistribution::failEmpty(const char *what) const
{
    didt_panic("EmpiricalDistribution::", what,
               " on an empty distribution");
}

} // namespace didt
